// hinchtrace — summarize a Chrome trace-event file produced by the obs
// tracing layer (xspclc run --trace=..., the figure benches' --trace
// flags, hinchd's `trace` command, or obs::write_chrome_trace directly).
//
//   hinchtrace <trace.json> [--session=<pid>]
//
// Prints the clock domain, per-lane busy time and utilization, the top
// tasks by total span duration, counter high-water marks, and the
// reconfiguration markers. Doubles as a validator: it exits nonzero on
// unparseable JSON or on a file that is not a trace-event document, so
// CI runs it against the fig10 trace artifact.
//
// Multi-session traces (obs::to_chrome_json over TraceProcess entries,
// as hinchd emits) carry one Chrome pid per session. Without --session
// the summary covers every session and lists them; --session=<pid>
// restricts everything to that session's events.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

struct LaneStats {
  std::string name;
  double busy_us = 0;
  uint64_t spans = 0;
  double first_ts = -1;
  double last_end = 0;
};

struct TaskStats {
  double total_us = 0;
  uint64_t runs = 0;
};

int fail(const std::string& msg) {
  std::fprintf(stderr, "hinchtrace: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int64_t session_filter = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--session=", 0) == 0) {
      session_filter = std::atoll(arg.c_str() + 10);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: hinchtrace <trace.json> [--session=<pid>]\n");
    return 2;
  }
  auto parsed = support::json::parse_file(path);
  if (!parsed.is_ok()) return fail(parsed.status().message());
  const support::json::Value& root = parsed.value();
  if (!root.is_object()) return fail("top level is not a JSON object");
  const support::json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail("missing traceEvents array");

  std::string clock = "unknown";
  if (const support::json::Value* other = root.find("otherData"))
    clock = other->string_or("clock", clock);
  const char* unit = clock == "cycles" ? "cycles" : "us";

  // Lanes keyed by (pid, tid): multi-session traces reuse worker tids
  // across sessions, so the pid disambiguates.
  std::map<std::pair<int64_t, int64_t>, LaneStats> lanes;
  std::map<std::string, TaskStats> tasks;
  // Counter high-water marks, keyed by "name@lane"-independent name.
  std::map<std::string, int64_t> counter_max;
  struct Marker {
    double ts;
    std::string name;
    int64_t lane;
  };
  std::vector<Marker> reconfigs;
  uint64_t total_events = 0;
  std::map<int64_t, std::string> session_names;   // pid -> process_name
  std::map<int64_t, uint64_t> session_events;     // pid -> non-meta events

  for (const support::json::Value& ev : events->array()) {
    if (!ev.is_object()) return fail("traceEvents entry is not an object");
    std::string ph = ev.string_or("ph", "");
    if (ph.empty()) return fail("event without ph field");
    std::string name = ev.string_or("name", "?");
    int64_t pid = static_cast<int64_t>(ev.number_or("pid", 0));
    int64_t tid = static_cast<int64_t>(ev.number_or("tid", 0));
    if (ph == "M") {
      if (name == "process_name") {
        if (const support::json::Value* a = ev.find("args"))
          session_names[pid] = a->string_or("name", "");
        continue;
      }
      if (session_filter >= 0 && pid != session_filter) continue;
      ++total_events;
      if (name == "thread_name")
        if (const support::json::Value* a = ev.find("args"))
          lanes[{pid, tid}].name = a->string_or("name", "");
      continue;
    }
    ++session_events[pid];
    if (session_filter >= 0 && pid != session_filter) continue;
    ++total_events;
    double ts = ev.number_or("ts", 0);
    LaneStats& lane = lanes[{pid, tid}];
    if (ph == "X") {
      double dur = ev.number_or("dur", 0);
      lane.busy_us += dur;
      ++lane.spans;
      if (lane.first_ts < 0 || ts < lane.first_ts) lane.first_ts = ts;
      lane.last_end = std::max(lane.last_end, ts + dur);
      TaskStats& t = tasks[name];
      t.total_us += dur;
      ++t.runs;
    } else if (ph == "i") {
      std::string cat = ev.string_or("cat", "");
      if (cat == "reconfig") reconfigs.push_back({ts, name, tid});
    } else if (ph == "C") {
      if (const support::json::Value* a = ev.find("args")) {
        int64_t v = static_cast<int64_t>(a->number_or("value", 0));
        auto [it, inserted] = counter_max.emplace(name, v);
        if (!inserted) it->second = std::max(it->second, v);
      }
    }
  }

  double span_end = 0;
  for (const auto& [key, lane] : lanes)
    span_end = std::max(span_end, lane.last_end);

  std::printf("trace: %s\n", path);
  std::printf("clock: %s   events: %" PRIu64 "   span: %.0f %s\n",
              clock.c_str(), total_events, span_end, unit);
  if (session_filter >= 0) {
    auto it = session_names.find(session_filter);
    std::printf("session: %" PRId64 "%s%s\n", session_filter,
                it != session_names.end() ? " " : "",
                it != session_names.end() ? it->second.c_str() : "");
    if (session_events.count(session_filter) == 0)
      std::fprintf(stderr,
                   "hinchtrace: warning: no events carry pid %" PRId64 "\n",
                   session_filter);
  } else if (session_events.size() > 1) {
    std::printf("sessions (use --session=<pid> to focus):\n");
    for (const auto& [pid, count] : session_events) {
      auto it = session_names.find(pid);
      std::printf("  pid=%-6" PRId64 " events=%-10" PRIu64 " %s\n", pid,
                  count,
                  it != session_names.end() ? it->second.c_str() : "");
    }
  }
  if (const support::json::Value* other = root.find("otherData")) {
    int64_t dropped = static_cast<int64_t>(other->number_or("dropped", 0));
    if (dropped > 0)
      std::printf("dropped: %" PRId64 " events lost to ring wraparound\n",
                  dropped);
  }

  const bool multi = session_filter < 0 && session_events.size() > 1;
  std::printf("\nlanes:\n");
  for (const auto& [key, lane] : lanes) {
    double util = span_end > 0 ? 100.0 * lane.busy_us / span_end : 0;
    std::string label =
        lane.name.empty() ? "tid " + std::to_string(key.second) : lane.name;
    if (multi) label = "s" + std::to_string(key.first) + ":" + label;
    std::printf("  %-10s spans=%-8" PRIu64 " busy=%-12.0f util=%5.1f%%\n",
                label.c_str(), lane.spans, lane.busy_us, util);
  }

  std::vector<std::pair<std::string, TaskStats>> by_cost(tasks.begin(),
                                                         tasks.end());
  std::sort(by_cost.begin(), by_cost.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("\ntop tasks (by total %s):\n", unit);
  size_t shown = 0;
  for (const auto& [name, t] : by_cost) {
    if (++shown > 10) break;
    std::printf("  %-24s total=%-12.0f runs=%-8" PRIu64 " mean=%.0f\n",
                name.c_str(), t.total_us, t.runs,
                t.runs ? t.total_us / static_cast<double>(t.runs) : 0);
  }

  if (!counter_max.empty()) {
    std::printf("\ncounter high-water marks:\n");
    for (const auto& [name, v] : counter_max)
      std::printf("  %-24s max=%" PRId64 "\n", name.c_str(), v);
  }

  if (!reconfigs.empty()) {
    std::printf("\nreconfigurations: %zu\n", reconfigs.size());
    size_t listed = 0;
    for (const Marker& m : reconfigs) {
      if (++listed > 10) {
        std::printf("  ... (%zu more)\n", reconfigs.size() - 10);
        break;
      }
      std::printf("  ts=%-12.0f lane=%" PRId64 "\n", m.ts, m.lane);
    }
    // Adaptation summary: splice spacing over the run. A healthy
    // feedback policy reconfigures on load edges only — a small min gap
    // relative to the span is the signature of an oscillating policy
    // (degenerate hysteresis band; see docs/OBSERVABILITY.md).
    std::vector<double> ts_sorted;
    ts_sorted.reserve(reconfigs.size());
    for (const Marker& m : reconfigs) ts_sorted.push_back(m.ts);
    std::sort(ts_sorted.begin(), ts_sorted.end());
    std::printf("\nadaptation summary:\n");
    std::printf("  first=%.0f last=%.0f (%.1f%% of span apart)\n",
                ts_sorted.front(), ts_sorted.back(),
                span_end > 0
                    ? 100.0 * (ts_sorted.back() - ts_sorted.front()) /
                          span_end
                    : 0.0);
    if (ts_sorted.size() > 1) {
      double min_gap = ts_sorted[1] - ts_sorted[0], sum_gap = 0;
      for (size_t i = 1; i < ts_sorted.size(); ++i) {
        double gap = ts_sorted[i] - ts_sorted[i - 1];
        sum_gap += gap;
        if (gap < min_gap) min_gap = gap;
      }
      std::printf("  inter-splice gap: min=%.0f mean=%.0f (%s)\n", min_gap,
                  sum_gap / static_cast<double>(ts_sorted.size() - 1),
                  unit);
    }
  }
  return 0;
}
