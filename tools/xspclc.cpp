// xspclc — the XSPCL processing tool (the paper's "conversion tool from
// XSPCL to an executable that uses the run time system", §3).
//
//   xspclc validate <spec.xml>            check the specification
//   xspclc dot      <spec.xml> [-o f]     Graphviz of the source tree
//   xspclc taskdot  <spec.xml> [-o f]     Graphviz of the compiled task
//                                         DAG (slices expanded, groups
//                                         fused)
//   xspclc codegen  <spec.xml> --name N [-o f] [--no-main]
//                                         emit C++ glue code
//   xspclc run      <spec.xml> [--backend=sim|threads] [--cores=N]
//                   [--iterations=N]      load and execute directly
//   xspclc predict  <spec.xml> [--cores=N] [--iterations=N]
//                                         profile 1 core, predict speedup
//   xspclc emit-app <pip|jpip|blur> [--reconfigurable] [-o f]
//                                         dump a built-in application spec
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "perf/predict.hpp"
#include "sp/dot.hpp"
#include "sp/validate.hpp"
#include "xspcl/codegen.hpp"
#include "xspcl/loader.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xspclc <validate|dot|taskdot|codegen|run|predict|emit-app> "
               "...\n(see the header of tools/xspclc.cpp)\n");
  return 2;
}

struct Args {
  std::string command;
  std::string input;
  std::string output;
  std::string name = "app";
  std::string backend = "sim";
  int cores = 1;
  long long iterations = 32;
  bool emit_main = true;
  bool reconfigurable = false;
};

bool parse_args(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->input = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "-o" && i + 1 < argc) {
      args->output = argv[++i];
    } else if (const char* v = value("--name=")) {
      args->name = v;
    } else if (const char* v = value("--backend=")) {
      args->backend = v;
    } else if (const char* v = value("--cores=")) {
      args->cores = std::atoi(v);
    } else if (const char* v = value("--iterations=")) {
      args->iterations = std::atoll(v);
    } else if (a == "--no-main") {
      args->emit_main = false;
    } else if (a == "--reconfigurable") {
      args->reconfigurable = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int write_output(const Args& args, const std::string& text) {
  if (args.output.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream f(args.output);
  f << text;
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", args.output.c_str());
    return 1;
  }
  return 0;
}

int fail(const support::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();

  if (args.command == "emit-app") {
    std::string text;
    if (args.input == "pip") {
      apps::PipConfig c;
      if (args.reconfigurable) {
        c.reconfigurable = true;
        c.pips = 2;
      }
      text = apps::pip_xspcl(c);
    } else if (args.input == "jpip") {
      apps::JpipConfig c;
      if (args.reconfigurable) {
        c.reconfigurable = true;
        c.pips = 2;
      }
      text = apps::jpip_xspcl(c);
    } else if (args.input == "blur") {
      apps::BlurConfig c;
      c.reconfigurable = args.reconfigurable;
      text = apps::blur_xspcl(c);
    } else {
      std::fprintf(stderr, "unknown app '%s' (pip, jpip, blur)\n",
                   args.input.c_str());
      return 2;
    }
    return write_output(args, text);
  }

  auto graph = xspcl::load_file(args.input);
  if (!graph.is_ok()) return fail(graph.status());
  const sp::Node& root = *graph.value();

  if (args.command == "validate") {
    sp::GraphStats stats = sp::stats(root);
    std::printf(
        "OK: %d components (%d after data-parallel expansion), %d parallel "
        "regions, %d options, %d managers, %s form\n",
        stats.leaves, stats.expanded_leaves, stats.par_nodes, stats.options,
        stats.managers, sp::is_sp_form(root) ? "SP" : "non-SP (crossdep)");
    return 0;
  }
  if (args.command == "dot") {
    return write_output(args, sp::to_dot(root, args.name));
  }
  if (args.command == "codegen") {
    xspcl::CodegenOptions options;
    options.app_name = args.name;
    options.emit_main = args.emit_main;
    options.default_iterations = args.iterations;
    return write_output(args, xspcl::generate_cpp(root, options));
  }

  components::register_standard_globally();
  auto prog =
      hinch::Program::build(root, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) return fail(prog.status());
  hinch::RunConfig run;
  run.iterations = args.iterations;

  if (args.command == "taskdot") {
    return write_output(args, prog.value()->task_graph_dot(args.name));
  }
  if (args.command == "run") {
    if (args.backend == "threads") {
      hinch::ThreadResult r =
          hinch::run_on_threads(*prog.value(), run, args.cores);
      std::printf("backend=threads workers=%d iterations=%lld "
                  "wall_seconds=%.6f jobs=%llu\n",
                  args.cores, args.iterations, r.wall_seconds,
                  static_cast<unsigned long long>(r.jobs));
    } else {
      hinch::SimParams sim;
      sim.cores = args.cores;
      hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
      std::printf(
          "backend=sim cores=%d iterations=%lld cycles=%llu jobs=%llu "
          "l1_hit_rate=%.3f reconfigs=%llu\n",
          args.cores, args.iterations,
          static_cast<unsigned long long>(r.total_cycles),
          static_cast<unsigned long long>(r.jobs), r.mem.l1_hit_rate(),
          static_cast<unsigned long long>(r.sched.reconfigurations));
    }
    return 0;
  }
  if (args.command == "predict") {
    // Profile one iteration window on a single simulated core, then
    // evaluate the SPC model for 1..cores processors.
    hinch::SimParams sim;
    sim.cores = 1;
    hinch::RunConfig profile_run = run;
    profile_run.iterations = std::min<long long>(args.iterations, 8);
    hinch::SimResult profile =
        hinch::run_on_sim(*prog.value(), profile_run, sim);
    std::vector<double> cost(profile.task_cycles.size(), 0);
    for (size_t i = 0; i < cost.size(); ++i) {
      if (profile.task_runs[i])
        cost[i] = static_cast<double>(profile.task_cycles[i]) /
                  static_cast<double>(profile.task_runs[i]);
    }
    std::printf("processors predicted_cycles predicted_speedup\n");
    perf::Prediction base =
        perf::predict_from_profile(*prog.value(), cost, 1);
    for (int p = 1; p <= std::max(1, args.cores); ++p) {
      perf::Prediction pred =
          perf::predict_from_profile(*prog.value(), cost, p);
      std::printf("%10d %16.0f %17.2f\n", p, pred.total(args.iterations),
                  base.total(args.iterations) / pred.total(args.iterations));
    }
    return 0;
  }
  return usage();
}
