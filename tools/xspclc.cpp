// xspclc — the XSPCL processing tool (the paper's "conversion tool from
// XSPCL to an executable that uses the run time system", §3).
//
//   xspclc validate <spec.xml>            check the specification
//   xspclc dot      <spec.xml> [-o f]     Graphviz of the source tree
//   xspclc taskdot  <spec.xml> [-o f]     Graphviz of the compiled task
//                                         DAG (slices expanded, groups
//                                         fused)
//   xspclc codegen  <spec.xml> --name N [-o f] [--no-main]
//                                         emit C++ glue code
//   xspclc run      <spec.xml> [--backend=sim|threads] [--cores=N]
//                   [--iterations=N]      load and execute directly
//                   [--platform=p.xml]    simulate on an XML platform spec
//                                         (tiles, core classes, interconnect;
//                                         see specs/platform_2tile.xml)
//                   [--trace=out.json]    write a Chrome trace-event file
//                                         (load in Perfetto / about:tracing)
//                   [--metrics]           dump the unified metrics registry
//   xspclc predict  <spec.xml> [--cores=N] [--iterations=N]
//                   [--platform=p.xml]    profile 1 core, predict speedup
//   xspclc emit-app <pip|jpip|blur> [--reconfigurable] [-o f]
//                                         dump a built-in application spec
//   xspclc passes                         list the registered SP-IR passes
//
// Spec-taking subcommands accept --passes=a,b,c to replace the default
// SP-IR pipeline (normalize, strip-dead-options) and --dump-after=
// <pass|all> to write after-<pass>.dot for the named pass(es). The
// auto-group and fuse-kernels passes price their fusions with the perf
// cost model at --cores=N; fuse-kernels rewrites chains registered in
// components::standard_fusions(). Listing fuse-kernels before
// auto-group is legal but diagnosed (groups feed the kernel matcher).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "obs/chrome_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/fusion.hpp"
#include "perf/predict.hpp"
#include "sp/dot.hpp"
#include "sp/pass.hpp"
#include "sp/validate.hpp"
#include "xspcl/codegen.hpp"
#include "xspcl/loader.hpp"
#include "xspcl/platform_xml.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xspclc <validate|dot|taskdot|codegen|run|predict|"
               "emit-app|passes> ...\n(see the header of tools/xspclc.cpp)\n");
  return 2;
}

struct Args {
  std::string command;
  std::string input;
  std::string output;
  std::string name = "app";
  std::string backend = "sim";
  int cores = 1;
  long long iterations = 32;
  bool emit_main = true;
  bool reconfigurable = false;
  bool passes_given = false;
  std::string passes;      // comma-separated, valid when passes_given
  std::string dump_after;  // pass name or "all"
  std::string trace_out;   // Chrome trace-event output path
  std::string platform;    // XML platform spec path (sim backend)
  bool metrics = false;
};

bool parse_args(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->input = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (a == "-o" && i + 1 < argc) {
      args->output = argv[++i];
    } else if (const char* v = value("--name=")) {
      args->name = v;
    } else if (const char* v = value("--backend=")) {
      args->backend = v;
    } else if (const char* v = value("--cores=")) {
      args->cores = std::atoi(v);
    } else if (const char* v = value("--iterations=")) {
      args->iterations = std::atoll(v);
    } else if (const char* v = value("--passes=")) {
      args->passes_given = true;
      args->passes = v;
    } else if (const char* v = value("--dump-after=")) {
      args->dump_after = v;
    } else if (const char* v = value("--trace=")) {
      args->trace_out = v;
    } else if (const char* v = value("--platform=")) {
      args->platform = v;
    } else if (a == "--metrics") {
      args->metrics = true;
    } else if (a == "--no-main") {
      args->emit_main = false;
    } else if (a == "--reconfigurable") {
      args->reconfigurable = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int write_output(const Args& args, const std::string& text) {
  if (args.output.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream f(args.output);
  f << text;
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", args.output.c_str());
    return 1;
  }
  return 0;
}

int fail(const support::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

int list_passes() {
  std::printf("%-20s %-8s %s\n", "pass", "default", "description");
  for (const sp::PassInfo& p : sp::registered_passes())
    std::printf("%-20s %-8s %s\n", p.name.c_str(),
                p.default_on ? "on" : "off", p.description.c_str());
  return 0;
}

// Comma-separated pass list -> names ("" -> none).
std::vector<std::string> split_passes(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "passes") == 0) return list_passes();
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();

  if (args.command == "emit-app") {
    std::string text;
    if (args.input == "pip") {
      apps::PipConfig c;
      if (args.reconfigurable) {
        c.reconfigurable = true;
        c.pips = 2;
      }
      text = apps::pip_xspcl(c);
    } else if (args.input == "jpip") {
      apps::JpipConfig c;
      if (args.reconfigurable) {
        c.reconfigurable = true;
        c.pips = 2;
      }
      text = apps::jpip_xspcl(c);
    } else if (args.input == "blur") {
      apps::BlurConfig c;
      c.reconfigurable = args.reconfigurable;
      text = apps::blur_xspcl(c);
    } else {
      std::fprintf(stderr, "unknown app '%s' (pip, jpip, blur)\n",
                   args.input.c_str());
      return 2;
    }
    return write_output(args, text);
  }

  auto graph = xspcl::load_file(args.input);
  if (!graph.is_ok()) return fail(graph.status());
  sp::NodePtr owned = std::move(graph).take();

  components::register_standard_globally();

  // Assemble and run the SP-IR pipeline here (so --dump-after can
  // observe every stage); Program::build below gets PassOptions::none()
  // to avoid running it twice.
  sp::PassManager pipeline;
  if (!args.passes_given) {
    pipeline = sp::make_pipeline(sp::PassOptions{});
  } else {
    std::vector<std::string> names = split_passes(args.passes);
    // The canonical order runs fuse-kernels after auto-group (fused runs
    // feed the kernel matcher). Honour the user's order, but say why the
    // other one usually finds less.
    {
      int fuse_at = -1, group_at = -1;
      for (int i = 0; i < static_cast<int>(names.size()); ++i) {
        if (names[static_cast<size_t>(i)] == "fuse-kernels" && fuse_at < 0)
          fuse_at = i;
        if (names[static_cast<size_t>(i)] == "auto-group") group_at = i;
      }
      if (fuse_at >= 0 && group_at >= 0 && fuse_at < group_at)
        std::fprintf(stderr,
                     "warning: --passes runs 'fuse-kernels' (position %d) "
                     "before 'auto-group' (position %d); the canonical "
                     "pipeline groups first so the kernel matcher also "
                     "sees fused runs\n",
                     fuse_at + 1, group_at + 1);
    }
    // Both fusion passes share one stream-size measurement and cost
    // model; measure only when a pass that prices fusions is requested.
    sp::PassOptions options = sp::PassOptions::none();
    bool wants_fusion = false;
    for (const std::string& name : names)
      if (name == "auto-group" || name == "fuse-kernels")
        wants_fusion = true;
    if (wants_fusion) {
      auto bytes = perf::measure_stream_slot_bytes(
          *owned, hinch::ComponentRegistry::global());
      if (!bytes.is_ok()) return fail(bytes.status());
      perf::FusionModel model;
      model.cores = std::max(1, args.cores);
      options.advisor = perf::make_fusion_advisor(bytes.value(), model);
      options.kernel_patterns = &components::standard_fusions();
      options.kernel_advisor =
          perf::make_kernel_fusion_advisor(std::move(bytes).take(), model);
    }
    for (const std::string& name : names) {
      auto pass = sp::pass_by_name(name, options);
      if (!pass.is_ok()) return fail(pass.status());
      pipeline.add(std::move(pass).value());
    }
  }
  if (!args.dump_after.empty()) {
    if (args.dump_after != "all") {
      bool known = false;
      for (const sp::PassInfo& p : sp::registered_passes())
        if (p.name == args.dump_after) known = true;
      if (!known)
        return fail(support::not_found("--dump-after: no pass named '" +
                                       args.dump_after + "'"));
    }
    pipeline.set_dump_hook([&args](const std::string& pass,
                                   const sp::Node& g) {
      if (args.dump_after != "all" && args.dump_after != pass) return;
      std::string path = "after-" + pass + ".dot";
      std::ofstream f(path);
      f << sp::to_dot(g, args.name + ":" + pass);
      if (!f)
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      else
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    });
  }
  auto transformed = pipeline.run(std::move(owned));
  if (!transformed.is_ok()) return fail(transformed.status());
  owned = std::move(transformed).take();
  const sp::Node& root = *owned;

  if (args.command == "validate") {
    sp::GraphStats stats = sp::stats(root);
    std::printf(
        "OK: %d components (%d after data-parallel expansion), %d parallel "
        "regions, %d options, %d managers, %s form\n",
        stats.leaves, stats.expanded_leaves, stats.par_nodes, stats.options,
        stats.managers, sp::is_sp_form(root) ? "SP" : "non-SP (crossdep)");
    return 0;
  }
  if (args.command == "dot") {
    return write_output(args, sp::to_dot(root, args.name));
  }
  if (args.command == "codegen") {
    xspcl::CodegenOptions options;
    options.app_name = args.name;
    options.emit_main = args.emit_main;
    options.default_iterations = args.iterations;
    return write_output(args, xspcl::generate_cpp(root, options));
  }

  hinch::BuildConfig build_config;
  build_config.passes = sp::PassOptions::none();  // pipeline already ran
  auto prog = hinch::Program::build(root, hinch::ComponentRegistry::global(),
                                    build_config);
  if (!prog.is_ok()) return fail(prog.status());
  hinch::RunConfig run;
  run.iterations = args.iterations;

  if (args.command == "taskdot") {
    return write_output(args, prog.value()->task_graph_dot(args.name));
  }
  if (args.command == "run") {
    std::unique_ptr<obs::TraceSession> trace;
    if (!args.trace_out.empty()) {
      if (!obs::kTraceCompiledIn)
        std::fprintf(stderr,
                     "warning: built with HINCH_TRACING=OFF; the trace "
                     "will contain no events\n");
      trace = std::make_unique<obs::TraceSession>();
    }
    // The registry doubles as the run's live-poll surface: executors
    // publish "live.*" gauges into it mid-run, which lets policy
    // components in the spec adapt (docs/OBSERVABILITY.md). The final
    // gauge values stay in the --metrics dump alongside the collected
    // result metrics.
    obs::MetricsRegistry metrics;
    if (args.backend == "threads") {
      hinch::ThreadResult r = hinch::run_on_threads(
          *prog.value(), run, args.cores, trace.get(), &metrics);
      std::printf("backend=threads workers=%d iterations=%lld "
                  "wall_seconds=%.6f jobs=%llu\n",
                  args.cores, args.iterations, r.wall_seconds,
                  static_cast<unsigned long long>(r.jobs));
      if (args.metrics) hinch::collect_metrics(*prog.value(), r, &metrics);
    } else {
      hinch::SimParams sim;
      sim.cores = args.cores;
      if (!args.platform.empty()) {
        auto platform = xspcl::load_platform_file(args.platform);
        if (!platform.is_ok()) return fail(platform.status());
        sim.platform = std::move(platform).take();
        sim.cores = 1;  // the platform defines the core count
      }
      sim.trace = trace.get();
      sim.metrics = &metrics;
      hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
      if (!sim.platform.empty()) {
        std::printf(
            "backend=sim platform=%s tiles=%d cores=%d iterations=%lld "
            "cycles=%llu jobs=%llu l1_hit_rate=%.3f remote_hits=%llu "
            "utilization=%.3f\n",
            sim.platform.name.c_str(), r.tiles,
            static_cast<int>(r.core_busy.size()), args.iterations,
            static_cast<unsigned long long>(r.total_cycles),
            static_cast<unsigned long long>(r.jobs), r.mem.l1_hit_rate(),
            static_cast<unsigned long long>(r.mem.remote_hits),
            r.utilization());
      } else {
        std::printf(
            "backend=sim cores=%d iterations=%lld cycles=%llu jobs=%llu "
            "l1_hit_rate=%.3f reconfigs=%llu\n",
            args.cores, args.iterations,
            static_cast<unsigned long long>(r.total_cycles),
            static_cast<unsigned long long>(r.jobs), r.mem.l1_hit_rate(),
            static_cast<unsigned long long>(r.sched.reconfigurations));
      }
      if (args.metrics) hinch::collect_metrics(*prog.value(), r, &metrics);
    }
    if (args.metrics) std::fputs(metrics.to_text().c_str(), stdout);
    if (trace != nullptr &&
        !obs::write_chrome_trace(*trace, args.trace_out))
      return 1;
    return 0;
  }
  if (args.command == "predict") {
    // Profile one iteration window on a single simulated core, then
    // evaluate the SPC model for 1..cores processors.
    hinch::SimParams sim;
    sim.cores = 1;
    hinch::RunConfig profile_run = run;
    profile_run.iterations = std::min<long long>(args.iterations, 8);
    hinch::SimResult profile =
        hinch::run_on_sim(*prog.value(), profile_run, sim);
    std::vector<double> cost(profile.task_cycles.size(), 0);
    for (size_t i = 0; i < cost.size(); ++i) {
      if (profile.task_runs[i])
        cost[i] = static_cast<double>(profile.task_cycles[i]) /
                  static_cast<double>(profile.task_runs[i]);
    }
    std::printf("processors predicted_cycles predicted_speedup\n");
    perf::Prediction base =
        perf::predict_from_profile(*prog.value(), cost, 1);
    for (int p = 1; p <= std::max(1, args.cores); ++p) {
      perf::Prediction pred =
          perf::predict_from_profile(*prog.value(), cost, p);
      std::printf("%10d %16.0f %17.2f\n", p, pred.total(args.iterations),
                  base.total(args.iterations) / pred.total(args.iterations));
    }
    if (!args.platform.empty()) {
      auto platform = xspcl::load_platform_file(args.platform);
      if (!platform.is_ok()) return fail(platform.status());
      perf::Prediction pred =
          perf::predict_from_profile(*prog.value(), cost, platform.value());
      std::printf(
          "platform %s cores=%d effective_processors=%.2f "
          "predicted_cycles=%.0f predicted_speedup=%.2f\n",
          platform.value().name.c_str(), pred.processors, pred.effective,
          pred.total(args.iterations),
          base.total(args.iterations) / pred.total(args.iterations));
    }
    return 0;
  }
  return usage();
}
