// hinchd — long-lived multi-tenant Hinch streaming server.
//
// One process, one SessionExecutor (shared work-stealing pool), many
// tenants: each `open` names a built-in application (apps::catalog), its
// spec is compiled once through the SpecCache, and each `feed` runs a
// batch of iterations as a hinch::Session on the shared pool. Closing a
// tenant cancels and drains only its jobs; everyone else keeps
// streaming. This is the server the session-scoped runtime refactor
// exists for (docs/RUNTIME.md, "Session lifecycle").
//
// Serve mode (default) reads a line protocol from stdin:
//
//   open <app> [key=value ...]  admit a tenant (apps: pip|jpip|blur|mjpeg)
//                               extra keys: trace=1 attaches a per-session
//                               trace (timestamps relative to each batch)
//                               -> ok open <tid> <app>
//   feed <tid> <iterations>     run one batch of iterations
//                               -> ok feed <tid> <iterations>
//   wait <tid>                  block until the tenant's batches finish
//                               -> done <tid> batch=<n> status=<s>
//                                  iters=<n> jobs=<n> checksum=<hex> ...
//   close <tid>                 cancel in-flight batches, drain, forget
//                               -> ok close <tid>
//   cap <n>                     set the active-session cap (0 = uncapped)
//   stats                       server gauges + pool + spec-cache counters
//   trace <tid> <path>          write the tenant's last batch as Chrome
//                               JSON, pid = tid (hinchtrace --session=<tid>)
//   quit                        close every tenant, shut the pool down
//                               -> bye
//
// Responses go to stdout (one "ok"/"done"/"err" line per command, `stats`
// multi-line); diagnostics to stderr. `hinchd --loadgen ... | hinchd`
// pipes a generated client script into a server — the CI end-to-end
// smoke runs exactly that.
//
//   hinchd [--workers=N] [--max-sessions=N] [--rebalance] [--period=MS]
//   hinchd --loadgen [--sessions=N] [--apps=pip,blur] [--iters=N]
//                    [--feeds=M] [--churn]
//
// --rebalance wires components::ServerRebalance between commands: the
// aggregate backlog in the shared registry adjusts the active cap with
// hysteresis (overload queues new tenants instead of thrashing the pool).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/session.hpp"
#include "obs/chrome_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"
#include "xspcl/spec_cache.hpp"

namespace {

struct Batch {
  hinch::SessionPtr session;
  int64_t iterations = 0;
};

struct Tenant {
  int id = -1;
  std::string app;
  std::string spec;
  int stream_depth = 5;
  std::unique_ptr<obs::TraceSession> trace;  // when opened with trace=1
  std::vector<Batch> batches;                // in feed order
  int64_t iterations_fed = 0;
};

// Chained FNV over every sink component's checksum: one number that is
// equal iff all output video of the batch is equal.
uint64_t output_checksum(hinch::Program& prog) {
  uint64_t hash = 14695981039346656037ULL;
  bool any = false;
  for (int i = 0; i < prog.component_count(); ++i) {
    const auto* access =
        dynamic_cast<const components::SinkAccess*>(&prog.component(i));
    if (access == nullptr) continue;
    any = true;
    uint64_t c = access->sink().checksum();
    for (int b = 0; b < 8; ++b) {
      hash ^= (c >> (8 * b)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return any ? hash : 0;
}

struct ServeOptions {
  int workers = 4;
  int max_sessions = 0;
  bool rebalance = false;
};

int serve(const ServeOptions& opts) {
  components::register_standard_globally();
  hinch::SessionExecutor::Config pool;
  pool.workers = opts.workers;
  pool.max_active_sessions = opts.max_sessions;
  hinch::SessionExecutor exec(pool);
  xspcl::SpecCache cache;
  components::ServerRebalanceConfig rb_config;
  rb_config.max_active = opts.max_sessions;
  components::ServerRebalance rebalance(rb_config);

  std::map<int, Tenant> tenants;
  int next_tenant = 0;
  bool running = true;

  auto err = [](const std::string& msg) {
    std::printf("err %s\n", msg.c_str());
  };

  auto wait_tenant = [&](Tenant& t) {
    for (size_t i = 0; i < t.batches.size(); ++i) {
      Batch& b = t.batches[i];
      hinch::SessionResult r = b.session->wait();
      std::printf("done %d batch=%zu status=%s iters=%lld jobs=%llu "
                  "checksum=%016llx wall=%.3fs\n",
                  t.id, i, hinch::session_status_name(r.status),
                  static_cast<long long>(r.iterations_done),
                  static_cast<unsigned long long>(r.jobs),
                  static_cast<unsigned long long>(
                      output_checksum(b.session->program())),
                  r.wall_seconds);
    }
  };

  auto close_tenant = [&](Tenant& t) {
    for (Batch& b : t.batches) exec.cancel(b.session);
    for (Batch& b : t.batches) b.session->wait();
  };

  std::string line;
  char buf[4096];
  while (running && std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    line.assign(buf);
    std::vector<std::string> raw = support::split(line, ' ');
    std::vector<std::string> tokens;
    for (const std::string& t : raw) {
      std::string trimmed(support::trim(t));
      if (!trimmed.empty()) tokens.push_back(std::move(trimmed));
    }
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];

    if (cmd == "open") {
      if (tokens.size() < 2) {
        err("open needs an app name");
        continue;
      }
      bool with_trace = false;
      int depth = 5;
      std::vector<std::string> param_tokens;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "trace=1") {
          with_trace = true;
        } else if (tokens[i].rfind("depth=", 0) == 0) {
          depth = std::atoi(tokens[i].c_str() + 6);
        } else {
          param_tokens.push_back(tokens[i]);
        }
      }
      auto params = apps::parse_catalog_params(param_tokens);
      if (!params.is_ok()) {
        err(params.status().message());
        continue;
      }
      auto spec = apps::builtin_xspcl(tokens[1], params.value());
      if (!spec.is_ok()) {
        err(spec.status().message());
        continue;
      }
      Tenant t;
      t.id = next_tenant++;
      t.app = tokens[1];
      t.spec = std::move(spec).take();
      t.stream_depth = depth < 1 ? 1 : depth;
      if (with_trace && obs::kTraceCompiledIn)
        t.trace = std::make_unique<obs::TraceSession>();
      int id = t.id;
      tenants.emplace(id, std::move(t));
      std::printf("ok open %d %s\n", id, tokens[1].c_str());
    } else if (cmd == "feed") {
      if (tokens.size() != 3) {
        err("usage: feed <tid> <iterations>");
        continue;
      }
      auto it = tenants.find(std::atoi(tokens[1].c_str()));
      if (it == tenants.end()) {
        err("no such tenant");
        continue;
      }
      long long iters = std::atoll(tokens[2].c_str());
      if (iters < 1) {
        err("iterations must be >= 1");
        continue;
      }
      Tenant& t = it->second;
      hinch::Program::BuildConfig build;
      build.stream_depth = t.stream_depth;
      auto prog = cache.build_program(
          t.spec, hinch::ComponentRegistry::global(), build);
      if (!prog.is_ok()) {
        err(prog.status().message());
        continue;
      }
      hinch::SessionConfig cfg;
      cfg.run.iterations = iters;
      cfg.run.window = t.stream_depth;
      cfg.name = t.app;
      cfg.trace = t.trace.get();
      cfg.record_frame_times = true;
      Batch b;
      b.iterations = iters;
      b.session = exec.submit(std::move(prog).take(), cfg);
      t.batches.push_back(std::move(b));
      t.iterations_fed += iters;
      std::printf("ok feed %d %lld\n", t.id, iters);
    } else if (cmd == "wait") {
      if (tokens.size() != 2) {
        err("usage: wait <tid>");
        continue;
      }
      auto it = tenants.find(std::atoi(tokens[1].c_str()));
      if (it == tenants.end()) {
        err("no such tenant");
        continue;
      }
      wait_tenant(it->second);
    } else if (cmd == "close") {
      if (tokens.size() != 2) {
        err("usage: close <tid>");
        continue;
      }
      auto it = tenants.find(std::atoi(tokens[1].c_str()));
      if (it == tenants.end()) {
        err("no such tenant");
        continue;
      }
      close_tenant(it->second);
      tenants.erase(it);
      std::printf("ok close %s\n", tokens[1].c_str());
    } else if (cmd == "cap") {
      if (tokens.size() != 2) {
        err("usage: cap <n>");
        continue;
      }
      exec.set_active_cap(std::atoi(tokens[1].c_str()));
      std::printf("ok cap %d\n", exec.active_cap());
    } else if (cmd == "stats") {
      hinch::SessionExecutor::PoolStats pool_stats = exec.pool_stats();
      xspcl::SpecCache::Stats cache_stats = cache.stats();
      std::printf("stats tenants=%zu active=%d queued=%d completed=%llu "
                  "cap=%d\n",
                  tenants.size(), exec.active_sessions(),
                  exec.queued_sessions(),
                  static_cast<unsigned long long>(exec.sessions_completed()),
                  exec.active_cap());
      std::printf("stats pool workers=%d jobs=%llu steals=%llu parks=%llu\n",
                  exec.workers(),
                  static_cast<unsigned long long>(pool_stats.jobs),
                  static_cast<unsigned long long>(pool_stats.steals),
                  static_cast<unsigned long long>(pool_stats.idle_parks));
      std::printf("stats cache entries=%zu hits=%llu misses=%llu\n",
                  cache.size(),
                  static_cast<unsigned long long>(cache_stats.hits),
                  static_cast<unsigned long long>(cache_stats.misses));
    } else if (cmd == "trace") {
      if (tokens.size() != 3) {
        err("usage: trace <tid> <path>");
        continue;
      }
      auto it = tenants.find(std::atoi(tokens[1].c_str()));
      if (it == tenants.end()) {
        err("no such tenant");
        continue;
      }
      if (it->second.trace == nullptr) {
        err("tenant was not opened with trace=1 (or tracing is "
            "compiled out)");
        continue;
      }
      // Producers must be quiescent: wait out the batches first.
      for (Batch& b : it->second.batches) b.session->wait();
      std::vector<obs::TraceProcess> procs;
      procs.push_back(obs::TraceProcess{it->second.id, it->second.app,
                                        it->second.trace.get()});
      if (!obs::write_chrome_trace(procs, tokens[2])) {
        err("cannot write trace");
        continue;
      }
      std::printf("ok trace %d %s\n", it->second.id, tokens[2].c_str());
    } else if (cmd == "quit") {
      for (auto& [id, t] : tenants) close_tenant(t);
      tenants.clear();
      running = false;
      std::printf("bye\n");
    } else {
      err("unknown command '" + cmd + "'");
    }
    if (opts.rebalance) {
      int rec = rebalance.recommend(exec.metrics().snapshot(),
                                    exec.workers(), exec.active_cap());
      if (rec != exec.active_cap()) {
        exec.set_active_cap(rec);
        std::fprintf(stderr, "hinchd: rebalanced active cap -> %d\n", rec);
      }
    }
    std::fflush(stdout);
  }

  for (auto& [id, t] : tenants) close_tenant(t);
  tenants.clear();
  exec.shutdown();
  return 0;
}

struct LoadgenOptions {
  int sessions = 4;
  std::vector<std::string> apps = {"blur", "pip"};
  int iters = 24;
  int feeds = 1;
  bool churn = false;
};

// Emit a client script. With --churn, tenants are closed while later
// ones are still feeding, exercising teardown-under-load.
int loadgen(const LoadgenOptions& opts) {
  std::vector<int> open_order;
  for (int i = 0; i < opts.sessions; ++i) {
    const std::string& app = opts.apps[static_cast<size_t>(i) %
                                       opts.apps.size()];
    // Small frame sizes: the load generator stresses session churn, not
    // pixel throughput.
    std::printf("open %s width=96 height=64 frames=8\n", app.c_str());
    open_order.push_back(i);
    for (int f = 0; f < opts.feeds; ++f)
      std::printf("feed %d %d\n", i, opts.iters);
    if (opts.churn && i >= 2) {
      // Close the tenant opened two steps ago while this one streams.
      std::printf("close %d\n", i - 2);
    }
  }
  std::printf("stats\n");
  for (int i : open_order) {
    if (opts.churn && i < opts.sessions - 2) continue;  // already closed
    std::printf("wait %d\n", i);
    std::printf("close %d\n", i);
  }
  std::printf("stats\n");
  std::printf("quit\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: hinchd [--workers=N] [--max-sessions=N] "
               "[--rebalance]\n"
               "       hinchd --loadgen [--sessions=N] [--apps=a,b] "
               "[--iters=N] [--feeds=M] [--churn]\n"
               "(see the header of tools/hinchd.cpp)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool is_loadgen = false;
  ServeOptions serve_opts;
  LoadgenOptions load_opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto int_flag = [&](const char* name, int* out) {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = std::atoi(arg.c_str() + prefix.size());
      return true;
    };
    if (arg == "--loadgen") {
      is_loadgen = true;
    } else if (arg == "--rebalance") {
      serve_opts.rebalance = true;
    } else if (arg == "--churn") {
      load_opts.churn = true;
    } else if (arg.rfind("--apps=", 0) == 0) {
      load_opts.apps.clear();
      for (const std::string& a :
           support::split(arg.substr(std::strlen("--apps=")), ','))
        load_opts.apps.push_back(std::string(support::trim(a)));
      if (load_opts.apps.empty()) return usage();
    } else if (int_flag("--workers", &serve_opts.workers) ||
               int_flag("--max-sessions", &serve_opts.max_sessions) ||
               int_flag("--sessions", &load_opts.sessions) ||
               int_flag("--iters", &load_opts.iters) ||
               int_flag("--feeds", &load_opts.feeds)) {
      // parsed
    } else {
      return usage();
    }
  }
  if (is_loadgen) return loadgen(load_opts);
  if (serve_opts.workers < 1 || load_opts.sessions < 0) return usage();
  return serve(serve_opts);
}
