// Adaptive quality: the §2 non-interactive use of events — "in
// non-interactive applications, events can be used to respond to
// special input values."
//
// A scene_change component watches the video and raises an event when
// motion spikes; the manager reacts by switching the blur pipeline from
// the expensive 5x5 kernel to the cheap 3x3 one (quality is wasted on
// fast-moving content), and back when a "calm" ticker fires.
#include <cstdio>

#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "xspcl/loader.hpp"

namespace {

const char* kSpec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="src" class="video_source">
        <param name="seed" value="61"/>
        <param name="width" value="180"/>
        <param name="height" value="144"/>
        <param name="frames" value="12"/>
        <outport name="out" stream="raw"/>
      </component>
      <component name="detect" class="scene_change">
        <param name="queue" value="adapt"/>
        <param name="event" value="motion"/>
        <param name="threshold" value="300"/>
        <inport name="in" stream="raw"/>
        <outport name="out" stream="video"/>
      </component>
      <component name="calm" class="event_ticker">
        <param name="event" value="calm"/>
        <param name="queue" value="adapt"/>
        <param name="period" value="10"/>
      </component>
      <manager name="quality" queue="adapt">
        <on event="motion" action="disable" option="hq"/>
        <on event="motion" action="enable"  option="lq"/>
        <on event="calm"   action="enable"  option="hq"/>
        <on event="calm"   action="disable" option="lq"/>
        <body>
          <option name="hq" enabled="true">
            <parallel shape="crossdep" n="4">
              <parblock>
                <component name="h5" class="blur_h">
                  <param name="kernel" value="5"/>
                  <inport name="in" stream="video"/>
                  <outport name="out" stream="tmp5"/>
                </component>
              </parblock>
              <parblock>
                <component name="v5" class="blur_v">
                  <param name="kernel" value="5"/>
                  <inport name="in" stream="tmp5"/>
                  <outport name="out" stream="smoothed"/>
                </component>
              </parblock>
            </parallel>
          </option>
          <option name="lq" enabled="false">
            <parallel shape="crossdep" n="4">
              <parblock>
                <component name="h3" class="blur_h">
                  <param name="kernel" value="3"/>
                  <inport name="in" stream="video"/>
                  <outport name="out" stream="tmp3"/>
                </component>
              </parblock>
              <parblock>
                <component name="v3" class="blur_v">
                  <param name="kernel" value="3"/>
                  <inport name="in" stream="tmp3"/>
                  <outport name="out" stream="smoothed"/>
                </component>
              </parblock>
            </parallel>
          </option>
        </body>
      </manager>
      <component name="sink" class="frame_sink">
        <inport name="in" stream="smoothed"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";

}  // namespace

int main() {
  components::register_standard_globally();
  auto prog = xspcl::build_program(kSpec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
    return 1;
  }

  hinch::RunConfig run;
  run.iterations = 40;
  hinch::SimParams sim;
  sim.cores = 3;
  hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);

  std::printf("adaptive blur ran %lld frames on %d cores: %llu cycles\n",
              static_cast<long long>(run.iterations), sim.cores,
              static_cast<unsigned long long>(r.total_cycles));
  std::printf("scene events handled: %llu, quality switches (splices): "
              "%llu\n",
              static_cast<unsigned long long>(r.sched.events_handled),
              static_cast<unsigned long long>(r.sched.reconfigurations));
  for (int i = 0; i < prog.value()->component_count(); ++i) {
    auto* sink = dynamic_cast<const components::SinkAccess*>(
        &prog.value()->component(i));
    if (sink)
      std::printf("sink: %d frames, checksum %016llx\n",
                  sink->sink().frames(),
                  static_cast<unsigned long long>(sink->sink().checksum()));
  }
  return 0;
}
