// Picture-in-Picture player (the paper's first evaluation application).
//
// Builds the PiP application from its XSPCL specification, verifies it
// against the hand-written sequential version (bit-identical output),
// runs it on the SpaceCAKE simulator for 1..N cores, and writes the
// composed video to pip_out.rawv.
//
// Usage: pip_player [--pips=N] [--frames=N] [--cores=N]
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "media/mjpeg.hpp"
#include "media/y4m.hpp"
#include "xspcl/loader.hpp"

int main(int argc, char** argv) {
  apps::PipConfig config;
  config.width = 360;   // laptop-friendly default; paper used 720x576
  config.height = 288;
  config.frames = 32;
  config.slices = 8;
  config.store_output = true;
  int max_cores = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pips=", 7) == 0)
      config.pips = std::atoi(argv[i] + 7);
    else if (std::strncmp(argv[i], "--frames=", 9) == 0)
      config.frames = std::atoi(argv[i] + 9);
    else if (std::strncmp(argv[i], "--cores=", 8) == 0)
      max_cores = std::atoi(argv[i] + 8);
    else {
      std::fprintf(stderr, "usage: %s [--pips=N] [--frames=N] [--cores=N]\n",
                   argv[0]);
      return 2;
    }
  }

  components::register_standard_globally();
  std::string spec = apps::pip_xspcl(config);
  auto prog = xspcl::build_program(spec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
    return 1;
  }

  // Hand-written sequential baseline: fused downscale+blend, no runtime.
  apps::SeqResult seq = apps::run_pip_sequential(config);
  std::printf("sequential: %llu cycles (%d frames)\n",
              static_cast<unsigned long long>(seq.cycles), seq.frames);

  hinch::RunConfig run;
  run.iterations = config.frames;
  const components::SinkAccess* sink = nullptr;

  for (int cores = 1; cores <= max_cores; ++cores) {
    hinch::SimParams sim;
    sim.cores = cores;
    sim.sync_costs = cores > 1;  // §4.2: 1-node runs disable sync ops
    hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
    std::printf("xspcl/sim cores=%d: %llu cycles, speedup %.2f\n", cores,
                static_cast<unsigned long long>(r.total_cycles),
                static_cast<double>(seq.cycles) /
                    static_cast<double>(r.total_cycles));
    for (int i = 0; i < prog.value()->component_count(); ++i) {
      auto* s = dynamic_cast<const components::SinkAccess*>(
          &prog.value()->component(i));
      if (s) sink = s;
    }
    if (sink && sink->sink().checksum() != seq.checksum) {
      std::fprintf(stderr, "OUTPUT MISMATCH vs sequential version!\n");
      return 1;
    }
  }
  std::printf("XSPCL output is bit-identical to the sequential version "
              "(checksum %016llx)\n",
              static_cast<unsigned long long>(seq.checksum));

  if (sink && sink->sink().frames() > 0) {
    media::RawVideo out(media::PixelFormat::kYuv420, config.width,
                        config.height);
    for (int i = 0; i < sink->sink().frames(); ++i)
      out.append(sink->sink().frame(i)->clone());
    support::Status st = out.save("pip_out.rawv");
    if (st.is_ok())
      std::printf("wrote %d composed frames to pip_out.rawv\n",
                  out.frame_count());
    st = media::save_y4m(out, "pip_out.y4m", 25, 1);
    if (st.is_ok())
      std::printf("wrote pip_out.y4m (play with: mpv pip_out.y4m)\n");
  }
  return 0;
}
