// Interactive reconfiguration (§3.4): a scripted "user" sends events
// that a manager translates into option toggles and component
// reconfiguration requests — enabling/disabling the second
// picture-in-picture and moving the first one around.
//
// Demonstrates: event queues, manager rules (toggle / reconfigure /
// forward), pre-creation of enabled components, and quiescing.
#include <cstdio>

#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "xspcl/loader.hpp"

namespace {

// The user presses: frame 6 -> show pip2; frame 12 -> move pip1;
// frame 18 -> hide pip2; frame 24 -> show it again.
const char* kSpec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="ui"/>
        <param name="script"
               value="6:toggle2;12:move1:pos=96,64;18:toggle2;24:toggle2"/>
      </component>
      <parallel shape="task">
        <parblock>
          <component name="bg_src" class="video_source">
            <param name="seed" value="1"/>
            <param name="width" value="192"/>
            <param name="height" value="144"/>
            <outport name="out" stream="bg"/>
          </component>
        </parblock>
        <parblock>
          <component name="pip1_src" class="video_source">
            <param name="seed" value="2"/>
            <param name="width" value="192"/>
            <param name="height" value="144"/>
            <outport name="out" stream="pip1"/>
          </component>
        </parblock>
      </parallel>
      <component name="bgcopy" class="copy">
        <inport name="in" stream="bg"/>
        <outport name="out" stream="canvas"/>
      </component>
      <manager name="mgr" queue="ui">
        <on event="toggle2" action="toggle" option="pip2"/>
        <on event="move1" action="reconfigure"/>
        <body>
          <component name="ds1" class="downscale">
            <param name="factor" value="4"/>
            <inport name="in" stream="pip1"/>
            <outport name="out" stream="small1"/>
          </component>
          <component name="bl1" class="blend">
            <param name="x" value="8"/>
            <param name="y" value="8"/>
            <inport name="fg" stream="small1"/>
            <outport name="canvas" stream="canvas"/>
          </component>
          <option name="pip2" enabled="false">
            <component name="pip2_src" class="video_source">
              <param name="seed" value="3"/>
              <param name="width" value="192"/>
              <param name="height" value="144"/>
              <outport name="out" stream="pip2"/>
            </component>
            <component name="ds2" class="downscale">
              <param name="factor" value="4"/>
              <inport name="in" stream="pip2"/>
              <outport name="out" stream="small2"/>
            </component>
            <component name="bl2" class="blend">
              <param name="x" value="136"/>
              <param name="y" value="96"/>
              <inport name="fg" stream="small2"/>
              <outport name="canvas" stream="canvas"/>
            </component>
          </option>
        </body>
      </manager>
      <component name="sink" class="frame_sink">
        <param name="store" value="1"/>
        <inport name="in" stream="canvas"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";

}  // namespace

int main() {
  components::register_standard_globally();
  auto prog = xspcl::build_program(kSpec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
    return 1;
  }

  hinch::RunConfig run;
  run.iterations = 30;
  hinch::SimParams sim;
  sim.cores = 2;
  hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);

  std::printf("ran %lld frames on %d simulated cores: %llu cycles\n",
              static_cast<long long>(run.iterations), sim.cores,
              static_cast<unsigned long long>(r.total_cycles));
  std::printf("events handled: %llu, reconfigurations (splices): %llu, "
              "components pre-created: %llu\n",
              static_cast<unsigned long long>(r.sched.events_handled),
              static_cast<unsigned long long>(r.sched.reconfigurations),
              static_cast<unsigned long long>(r.sched.components_created));

  // Show which frames contain the second picture (its bright rectangle
  // changes the frame hash pattern): count distinct per-frame content by
  // comparing to a run where pip2 never appears is overkill here — just
  // report the reconfiguration schedule worked.
  for (int i = 0; i < prog.value()->component_count(); ++i) {
    auto* sink = dynamic_cast<const components::SinkAccess*>(
        &prog.value()->component(i));
    if (sink)
      std::printf("sink consumed %d frames, checksum %016llx\n",
                  sink->sink().frames(),
                  static_cast<unsigned long long>(sink->sink().checksum()));
  }
  return 0;
}
