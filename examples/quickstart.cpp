// Quickstart: define a three-component streaming application in XSPCL,
// load it, and run it on both Hinch executors.
//
//   video_source --> downscale (4 slices) --> frame_sink
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "xspcl/loader.hpp"

namespace {

const char* kSpec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="src" class="video_source">
        <param name="seed" value="42"/>
        <param name="width" value="320"/>
        <param name="height" value="240"/>
        <param name="frames" value="8"/>
        <outport name="out" stream="video"/>
      </component>
      <parallel shape="slice" n="4"><parblock>
        <component name="down" class="downscale">
          <param name="factor" value="2"/>
          <inport name="in" stream="video"/>
          <outport name="out" stream="small"/>
        </component>
      </parblock></parallel>
      <component name="sink" class="frame_sink">
        <inport name="in" stream="small"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";

}  // namespace

int main() {
  // 1. The standard component library provides video_source, downscale,
  //    frame_sink, and friends.
  components::register_standard_globally();

  // 2. XSPCL text -> validated SP graph -> executable Program.
  auto prog = xspcl::build_program(kSpec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
    return 1;
  }

  hinch::RunConfig run;
  run.iterations = 32;  // 32 frames; up to 5 iterations pipelined

  // 3a. SpaceCAKE-simulator backend: deterministic virtual cycles.
  for (int cores : {1, 2, 4}) {
    hinch::SimParams sim;
    sim.cores = cores;
    hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
    std::printf("sim     cores=%d  cycles=%-12llu jobs=%llu l1=%.1f%%\n",
                cores, static_cast<unsigned long long>(r.total_cycles),
                static_cast<unsigned long long>(r.jobs),
                100.0 * r.mem.l1_hit_rate());
  }

  // 3b. Native thread backend: same program, real parallel execution.
  hinch::ThreadResult t = hinch::run_on_threads(*prog.value(), run, 2);
  std::printf("threads workers=2 wall=%.3f ms jobs=%llu\n",
              1e3 * t.wall_seconds, static_cast<unsigned long long>(t.jobs));

  // 4. Both backends computed the same video, frame for frame.
  for (int i = 0; i < prog.value()->component_count(); ++i) {
    auto* sink = dynamic_cast<const components::SinkAccess*>(
        &prog.value()->component(i));
    if (sink) {
      std::printf("output checksum %016llx over %d frames\n",
                  static_cast<unsigned long long>(sink->sink().checksum()),
                  sink->sink().frames());
    }
  }
  return 0;
}
