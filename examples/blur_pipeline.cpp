// Gaussian blur pipeline: demonstrates the non-SP `crossdep` shape
// (Fig. 5) and the performance-prediction tool of Fig. 1.
//
// The vertical blur of slice i needs boundary rows produced by the
// horizontal blur of slices i-1, i, i+1 — crossdep expresses exactly
// those dependencies without a full barrier between the phases.
#include <cstdio>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "perf/predict.hpp"
#include "sp/validate.hpp"
#include "xspcl/loader.hpp"

int main() {
  components::register_standard_globally();

  for (int kernel : {3, 5}) {
    apps::BlurConfig config;
    config.kernel = kernel;
    config.frames = 24;
    std::string spec = apps::blur_xspcl(config);

    auto graph = xspcl::load_string(spec);
    if (!graph.is_ok()) {
      std::fprintf(stderr, "%s\n", graph.status().to_string().c_str());
      return 1;
    }
    std::printf("blur %dx%d: graph is %s\n", kernel, kernel,
                sp::is_sp_form(*graph.value())
                    ? "SP"
                    : "non-SP (crossdep, as intended)");

    auto prog = hinch::Program::build(*graph.value(),
                                      hinch::ComponentRegistry::global());
    if (!prog.is_ok()) {
      std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
      return 1;
    }

    hinch::RunConfig run;
    run.iterations = config.frames;

    // Profile one core, then compare measured vs predicted speedups —
    // the XSPCL -> Prediction path of Fig. 1.
    hinch::SimParams sim1;
    sim1.cores = 1;
    sim1.sync_costs = false;
    hinch::SimResult base = hinch::run_on_sim(*prog.value(), run, sim1);
    std::vector<double> cost(base.task_cycles.size(), 0);
    for (size_t i = 0; i < cost.size(); ++i)
      if (base.task_runs[i])
        cost[i] = static_cast<double>(base.task_cycles[i]) /
                  static_cast<double>(base.task_runs[i]);

    std::printf("  cores  measured speedup  predicted speedup\n");
    for (int cores = 1; cores <= 8; cores *= 2) {
      hinch::SimParams sim;
      sim.cores = cores;
      sim.sync_costs = cores > 1;
      hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
      perf::Prediction p1 =
          perf::predict_from_profile(*prog.value(), cost, 1);
      perf::Prediction pc =
          perf::predict_from_profile(*prog.value(), cost, cores);
      std::printf("  %5d  %16.2f  %17.2f\n", cores,
                  static_cast<double>(base.total_cycles) /
                      static_cast<double>(r.total_cycles),
                  p1.total(config.frames) / pc.total(config.frames));
    }
  }
  return 0;
}
