// Transcoder: decode an MJPEG stream, soften it with the separable
// Gaussian blur, and re-encode — a classic CE pipeline built entirely
// from standard components, including the encode side (jpeg_encode /
// mjpeg_sink) that the paper's evaluation applications don't exercise.
//
//   mjpeg_source -> jpeg_decode -> idct(Y) -> blur_h -> blur_v
//                                            -> jpeg_encode -> mjpeg_sink
//
// Writes transcoded.mjpg and reports the before/after PSNR and sizes.
#include <cstdio>

#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "media/jpeg.hpp"
#include "media/metrics.hpp"
#include "xspcl/loader.hpp"

namespace {

const char* kSpec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="src" class="mjpeg_source">
        <param name="seed" value="90"/>
        <param name="width" value="320"/>
        <param name="height" value="240"/>
        <param name="frames" value="6"/>
        <param name="quality" value="90"/>
        <outport name="out" stream="jpeg_in"/>
      </component>
      <component name="dec" class="jpeg_decode">
        <inport name="jpeg" stream="jpeg_in"/>
        <outport name="coeffs" stream="coeffs"/>
      </component>
      <parallel shape="slice" n="4"><parblock>
        <component name="luma" class="idct">
          <param name="plane" value="0"/>
          <inport name="coeffs" stream="coeffs"/>
          <outport name="out" stream="y"/>
        </component>
      </parblock></parallel>
      <parallel shape="crossdep" n="4">
        <parblock>
          <component name="h" class="blur_h">
            <param name="kernel" value="3"/>
            <inport name="in" stream="y"/>
            <outport name="out" stream="tmp"/>
          </component>
        </parblock>
        <parblock>
          <component name="v" class="blur_v">
            <param name="kernel" value="3"/>
            <inport name="in" stream="tmp"/>
            <outport name="out" stream="soft"/>
          </component>
        </parblock>
      </parallel>
      <component name="enc" class="jpeg_encode">
        <param name="quality" value="80"/>
        <param name="restart" value="8"/>
        <inport name="in" stream="soft"/>
        <outport name="jpeg" stream="jpeg_out"/>
      </component>
      <component name="out" class="mjpeg_sink">
        <inport name="in" stream="jpeg_out"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";

}  // namespace

int main() {
  components::register_standard_globally();
  auto prog = xspcl::build_program(kSpec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "%s\n", prog.status().to_string().c_str());
    return 1;
  }

  hinch::RunConfig run;
  run.iterations = 12;
  hinch::SimParams sim;
  sim.cores = 3;
  hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
  std::printf("transcoded %lld frames on %d simulated cores: %llu cycles\n",
              static_cast<long long>(run.iterations), sim.cores,
              static_cast<unsigned long long>(r.total_cycles));

  for (int i = 0; i < prog.value()->component_count(); ++i) {
    auto* sink = dynamic_cast<const components::MjpegSinkAccess*>(
        &prog.value()->component(i));
    if (!sink) continue;
    media::MjpegClip clip = sink->clip();
    std::printf("output: %d compressed frames, %zu bytes total\n",
                clip.frame_count(), clip.total_bytes());
    support::Status st = clip.save("transcoded.mjpg");
    if (st.is_ok()) std::printf("wrote transcoded.mjpg\n");
    // Sanity: the re-encoded frames decode again.
    auto decoded = media::jpeg::decode(clip.frame(0).data(),
                                       clip.frame(0).size());
    if (decoded.is_ok())
      std::printf("first output frame decodes: %dx%d\n",
                  decoded.value()->width(), decoded.value()->height());
  }
  return 0;
}
