# Empty dependencies file for ablation_queue_contention.
# This may be replaced when dependencies are built.
