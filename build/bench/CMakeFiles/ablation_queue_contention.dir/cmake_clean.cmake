file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_contention.dir/ablation_queue_contention.cpp.o"
  "CMakeFiles/ablation_queue_contention.dir/ablation_queue_contention.cpp.o.d"
  "ablation_queue_contention"
  "ablation_queue_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
