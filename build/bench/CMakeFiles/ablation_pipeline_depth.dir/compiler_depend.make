# Empty compiler generated dependencies file for ablation_pipeline_depth.
# This may be replaced when dependencies are built.
