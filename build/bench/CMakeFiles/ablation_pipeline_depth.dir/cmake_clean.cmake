file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_depth.dir/ablation_pipeline_depth.cpp.o"
  "CMakeFiles/ablation_pipeline_depth.dir/ablation_pipeline_depth.cpp.o.d"
  "ablation_pipeline_depth"
  "ablation_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
