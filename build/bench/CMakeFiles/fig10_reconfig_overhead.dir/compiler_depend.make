# Empty compiler generated dependencies file for fig10_reconfig_overhead.
# This may be replaced when dependencies are built.
