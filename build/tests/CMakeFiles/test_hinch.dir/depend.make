# Empty dependencies file for test_hinch.
# This may be replaced when dependencies are built.
