file(REMOVE_RECURSE
  "CMakeFiles/test_hinch.dir/test_hinch.cpp.o"
  "CMakeFiles/test_hinch.dir/test_hinch.cpp.o.d"
  "test_hinch"
  "test_hinch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hinch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
