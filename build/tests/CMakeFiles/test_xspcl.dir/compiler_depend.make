# Empty compiler generated dependencies file for test_xspcl.
# This may be replaced when dependencies are built.
