file(REMOVE_RECURSE
  "CMakeFiles/test_xspcl.dir/test_xspcl.cpp.o"
  "CMakeFiles/test_xspcl.dir/test_xspcl.cpp.o.d"
  "test_xspcl"
  "test_xspcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xspcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
