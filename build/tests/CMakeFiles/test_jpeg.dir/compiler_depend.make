# Empty compiler generated dependencies file for test_jpeg.
# This may be replaced when dependencies are built.
