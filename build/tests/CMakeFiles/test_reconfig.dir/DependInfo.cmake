
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_reconfig.cpp" "tests/CMakeFiles/test_reconfig.dir/test_reconfig.cpp.o" "gcc" "tests/CMakeFiles/test_reconfig.dir/test_reconfig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/xspcl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xspcl_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/xspcl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/xspcl_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xspcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hinch/CMakeFiles/xspcl_hinch.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/xspcl_components.dir/DependInfo.cmake"
  "/root/repo/build/src/xspcl/CMakeFiles/xspcl_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/xspcl_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/xspcl_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
