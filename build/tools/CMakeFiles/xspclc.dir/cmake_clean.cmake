file(REMOVE_RECURSE
  "CMakeFiles/xspclc.dir/xspclc.cpp.o"
  "CMakeFiles/xspclc.dir/xspclc.cpp.o.d"
  "xspclc"
  "xspclc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspclc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
