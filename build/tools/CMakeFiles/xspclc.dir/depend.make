# Empty dependencies file for xspclc.
# This may be replaced when dependencies are built.
