# Empty compiler generated dependencies file for transcoder.
# This may be replaced when dependencies are built.
