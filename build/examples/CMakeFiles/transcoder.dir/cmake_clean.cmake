file(REMOVE_RECURSE
  "CMakeFiles/transcoder.dir/transcoder.cpp.o"
  "CMakeFiles/transcoder.dir/transcoder.cpp.o.d"
  "transcoder"
  "transcoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
