file(REMOVE_RECURSE
  "CMakeFiles/codegen_demo.dir/pip_small_gen.cpp.o"
  "CMakeFiles/codegen_demo.dir/pip_small_gen.cpp.o.d"
  "codegen_demo"
  "codegen_demo.pdb"
  "pip_small_gen.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
