file(REMOVE_RECURSE
  "CMakeFiles/pip_player.dir/pip_player.cpp.o"
  "CMakeFiles/pip_player.dir/pip_player.cpp.o.d"
  "pip_player"
  "pip_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pip_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
