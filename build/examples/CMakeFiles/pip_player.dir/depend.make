# Empty dependencies file for pip_player.
# This may be replaced when dependencies are built.
