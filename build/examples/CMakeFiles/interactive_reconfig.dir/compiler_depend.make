# Empty compiler generated dependencies file for interactive_reconfig.
# This may be replaced when dependencies are built.
