file(REMOVE_RECURSE
  "CMakeFiles/interactive_reconfig.dir/interactive_reconfig.cpp.o"
  "CMakeFiles/interactive_reconfig.dir/interactive_reconfig.cpp.o.d"
  "interactive_reconfig"
  "interactive_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
