file(REMOVE_RECURSE
  "CMakeFiles/xspcl_media.dir/frame.cpp.o"
  "CMakeFiles/xspcl_media.dir/frame.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/jpeg_common.cpp.o"
  "CMakeFiles/xspcl_media.dir/jpeg_common.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/jpeg_decode.cpp.o"
  "CMakeFiles/xspcl_media.dir/jpeg_decode.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/jpeg_encode.cpp.o"
  "CMakeFiles/xspcl_media.dir/jpeg_encode.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/kernels.cpp.o"
  "CMakeFiles/xspcl_media.dir/kernels.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/metrics.cpp.o"
  "CMakeFiles/xspcl_media.dir/metrics.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/mjpeg.cpp.o"
  "CMakeFiles/xspcl_media.dir/mjpeg.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/synth.cpp.o"
  "CMakeFiles/xspcl_media.dir/synth.cpp.o.d"
  "CMakeFiles/xspcl_media.dir/y4m.cpp.o"
  "CMakeFiles/xspcl_media.dir/y4m.cpp.o.d"
  "libxspcl_media.a"
  "libxspcl_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
