# Empty dependencies file for xspcl_media.
# This may be replaced when dependencies are built.
