file(REMOVE_RECURSE
  "libxspcl_media.a"
)
