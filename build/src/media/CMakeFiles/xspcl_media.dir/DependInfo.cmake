
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/frame.cpp" "src/media/CMakeFiles/xspcl_media.dir/frame.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/frame.cpp.o.d"
  "/root/repo/src/media/jpeg_common.cpp" "src/media/CMakeFiles/xspcl_media.dir/jpeg_common.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/jpeg_common.cpp.o.d"
  "/root/repo/src/media/jpeg_decode.cpp" "src/media/CMakeFiles/xspcl_media.dir/jpeg_decode.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/jpeg_decode.cpp.o.d"
  "/root/repo/src/media/jpeg_encode.cpp" "src/media/CMakeFiles/xspcl_media.dir/jpeg_encode.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/jpeg_encode.cpp.o.d"
  "/root/repo/src/media/kernels.cpp" "src/media/CMakeFiles/xspcl_media.dir/kernels.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/kernels.cpp.o.d"
  "/root/repo/src/media/metrics.cpp" "src/media/CMakeFiles/xspcl_media.dir/metrics.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/metrics.cpp.o.d"
  "/root/repo/src/media/mjpeg.cpp" "src/media/CMakeFiles/xspcl_media.dir/mjpeg.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/mjpeg.cpp.o.d"
  "/root/repo/src/media/synth.cpp" "src/media/CMakeFiles/xspcl_media.dir/synth.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/synth.cpp.o.d"
  "/root/repo/src/media/y4m.cpp" "src/media/CMakeFiles/xspcl_media.dir/y4m.cpp.o" "gcc" "src/media/CMakeFiles/xspcl_media.dir/y4m.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/xspcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
