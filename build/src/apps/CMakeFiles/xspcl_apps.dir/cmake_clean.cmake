file(REMOVE_RECURSE
  "CMakeFiles/xspcl_apps.dir/blur.cpp.o"
  "CMakeFiles/xspcl_apps.dir/blur.cpp.o.d"
  "CMakeFiles/xspcl_apps.dir/jpip.cpp.o"
  "CMakeFiles/xspcl_apps.dir/jpip.cpp.o.d"
  "CMakeFiles/xspcl_apps.dir/pip.cpp.o"
  "CMakeFiles/xspcl_apps.dir/pip.cpp.o.d"
  "CMakeFiles/xspcl_apps.dir/seq_machine.cpp.o"
  "CMakeFiles/xspcl_apps.dir/seq_machine.cpp.o.d"
  "libxspcl_apps.a"
  "libxspcl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
