file(REMOVE_RECURSE
  "libxspcl_apps.a"
)
