# Empty dependencies file for xspcl_apps.
# This may be replaced when dependencies are built.
