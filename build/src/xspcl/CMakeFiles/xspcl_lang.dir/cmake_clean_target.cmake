file(REMOVE_RECURSE
  "libxspcl_lang.a"
)
