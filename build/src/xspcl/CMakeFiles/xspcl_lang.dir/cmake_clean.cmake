file(REMOVE_RECURSE
  "CMakeFiles/xspcl_lang.dir/codegen.cpp.o"
  "CMakeFiles/xspcl_lang.dir/codegen.cpp.o.d"
  "CMakeFiles/xspcl_lang.dir/elaborate.cpp.o"
  "CMakeFiles/xspcl_lang.dir/elaborate.cpp.o.d"
  "CMakeFiles/xspcl_lang.dir/loader.cpp.o"
  "CMakeFiles/xspcl_lang.dir/loader.cpp.o.d"
  "CMakeFiles/xspcl_lang.dir/parser.cpp.o"
  "CMakeFiles/xspcl_lang.dir/parser.cpp.o.d"
  "libxspcl_lang.a"
  "libxspcl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
