# Empty dependencies file for xspcl_lang.
# This may be replaced when dependencies are built.
