file(REMOVE_RECURSE
  "libxspcl_support.a"
)
