# Empty dependencies file for xspcl_support.
# This may be replaced when dependencies are built.
