file(REMOVE_RECURSE
  "CMakeFiles/xspcl_support.dir/log.cpp.o"
  "CMakeFiles/xspcl_support.dir/log.cpp.o.d"
  "CMakeFiles/xspcl_support.dir/status.cpp.o"
  "CMakeFiles/xspcl_support.dir/status.cpp.o.d"
  "CMakeFiles/xspcl_support.dir/strings.cpp.o"
  "CMakeFiles/xspcl_support.dir/strings.cpp.o.d"
  "libxspcl_support.a"
  "libxspcl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
