file(REMOVE_RECURSE
  "CMakeFiles/xspcl_xml.dir/dom.cpp.o"
  "CMakeFiles/xspcl_xml.dir/dom.cpp.o.d"
  "CMakeFiles/xspcl_xml.dir/parser.cpp.o"
  "CMakeFiles/xspcl_xml.dir/parser.cpp.o.d"
  "CMakeFiles/xspcl_xml.dir/writer.cpp.o"
  "CMakeFiles/xspcl_xml.dir/writer.cpp.o.d"
  "libxspcl_xml.a"
  "libxspcl_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
