file(REMOVE_RECURSE
  "libxspcl_xml.a"
)
