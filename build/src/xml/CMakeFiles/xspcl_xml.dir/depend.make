# Empty dependencies file for xspcl_xml.
# This may be replaced when dependencies are built.
