# Empty dependencies file for xspcl_sim.
# This may be replaced when dependencies are built.
