file(REMOVE_RECURSE
  "libxspcl_sim.a"
)
