file(REMOVE_RECURSE
  "CMakeFiles/xspcl_sim.dir/cache.cpp.o"
  "CMakeFiles/xspcl_sim.dir/cache.cpp.o.d"
  "CMakeFiles/xspcl_sim.dir/engine.cpp.o"
  "CMakeFiles/xspcl_sim.dir/engine.cpp.o.d"
  "libxspcl_sim.a"
  "libxspcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
