file(REMOVE_RECURSE
  "CMakeFiles/xspcl_hinch.dir/component.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/component.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/event.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/event.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/program.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/program.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/registry.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/registry.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/runtime.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/runtime.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/scheduler.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/scheduler.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/sim_executor.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/sim_executor.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/stream.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/stream.cpp.o.d"
  "CMakeFiles/xspcl_hinch.dir/thread_executor.cpp.o"
  "CMakeFiles/xspcl_hinch.dir/thread_executor.cpp.o.d"
  "libxspcl_hinch.a"
  "libxspcl_hinch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_hinch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
