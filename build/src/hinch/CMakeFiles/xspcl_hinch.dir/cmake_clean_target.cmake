file(REMOVE_RECURSE
  "libxspcl_hinch.a"
)
