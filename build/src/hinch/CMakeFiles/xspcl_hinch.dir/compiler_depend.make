# Empty compiler generated dependencies file for xspcl_hinch.
# This may be replaced when dependencies are built.
