
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hinch/component.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/component.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/component.cpp.o.d"
  "/root/repo/src/hinch/event.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/event.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/event.cpp.o.d"
  "/root/repo/src/hinch/program.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/program.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/program.cpp.o.d"
  "/root/repo/src/hinch/registry.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/registry.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/registry.cpp.o.d"
  "/root/repo/src/hinch/runtime.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/runtime.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/runtime.cpp.o.d"
  "/root/repo/src/hinch/scheduler.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/scheduler.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/scheduler.cpp.o.d"
  "/root/repo/src/hinch/sim_executor.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/sim_executor.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/sim_executor.cpp.o.d"
  "/root/repo/src/hinch/stream.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/stream.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/stream.cpp.o.d"
  "/root/repo/src/hinch/thread_executor.cpp" "src/hinch/CMakeFiles/xspcl_hinch.dir/thread_executor.cpp.o" "gcc" "src/hinch/CMakeFiles/xspcl_hinch.dir/thread_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/xspcl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/xspcl_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xspcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/xspcl_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
