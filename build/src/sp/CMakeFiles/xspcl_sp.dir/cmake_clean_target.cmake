file(REMOVE_RECURSE
  "libxspcl_sp.a"
)
