
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sp/dot.cpp" "src/sp/CMakeFiles/xspcl_sp.dir/dot.cpp.o" "gcc" "src/sp/CMakeFiles/xspcl_sp.dir/dot.cpp.o.d"
  "/root/repo/src/sp/graph.cpp" "src/sp/CMakeFiles/xspcl_sp.dir/graph.cpp.o" "gcc" "src/sp/CMakeFiles/xspcl_sp.dir/graph.cpp.o.d"
  "/root/repo/src/sp/transform.cpp" "src/sp/CMakeFiles/xspcl_sp.dir/transform.cpp.o" "gcc" "src/sp/CMakeFiles/xspcl_sp.dir/transform.cpp.o.d"
  "/root/repo/src/sp/validate.cpp" "src/sp/CMakeFiles/xspcl_sp.dir/validate.cpp.o" "gcc" "src/sp/CMakeFiles/xspcl_sp.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/xspcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
