file(REMOVE_RECURSE
  "CMakeFiles/xspcl_sp.dir/dot.cpp.o"
  "CMakeFiles/xspcl_sp.dir/dot.cpp.o.d"
  "CMakeFiles/xspcl_sp.dir/graph.cpp.o"
  "CMakeFiles/xspcl_sp.dir/graph.cpp.o.d"
  "CMakeFiles/xspcl_sp.dir/transform.cpp.o"
  "CMakeFiles/xspcl_sp.dir/transform.cpp.o.d"
  "CMakeFiles/xspcl_sp.dir/validate.cpp.o"
  "CMakeFiles/xspcl_sp.dir/validate.cpp.o.d"
  "libxspcl_sp.a"
  "libxspcl_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
