# Empty dependencies file for xspcl_sp.
# This may be replaced when dependencies are built.
