# Empty compiler generated dependencies file for xspcl_perf.
# This may be replaced when dependencies are built.
