file(REMOVE_RECURSE
  "CMakeFiles/xspcl_perf.dir/predict.cpp.o"
  "CMakeFiles/xspcl_perf.dir/predict.cpp.o.d"
  "libxspcl_perf.a"
  "libxspcl_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
