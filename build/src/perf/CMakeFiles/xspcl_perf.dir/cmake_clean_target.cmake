file(REMOVE_RECURSE
  "libxspcl_perf.a"
)
