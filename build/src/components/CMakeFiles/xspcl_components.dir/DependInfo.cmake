
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/clip_cache.cpp" "src/components/CMakeFiles/xspcl_components.dir/clip_cache.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/clip_cache.cpp.o.d"
  "/root/repo/src/components/events.cpp" "src/components/CMakeFiles/xspcl_components.dir/events.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/events.cpp.o.d"
  "/root/repo/src/components/filters.cpp" "src/components/CMakeFiles/xspcl_components.dir/filters.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/filters.cpp.o.d"
  "/root/repo/src/components/jpeg_stages.cpp" "src/components/CMakeFiles/xspcl_components.dir/jpeg_stages.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/jpeg_stages.cpp.o.d"
  "/root/repo/src/components/register.cpp" "src/components/CMakeFiles/xspcl_components.dir/register.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/register.cpp.o.d"
  "/root/repo/src/components/sinks.cpp" "src/components/CMakeFiles/xspcl_components.dir/sinks.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/sinks.cpp.o.d"
  "/root/repo/src/components/sources.cpp" "src/components/CMakeFiles/xspcl_components.dir/sources.cpp.o" "gcc" "src/components/CMakeFiles/xspcl_components.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hinch/CMakeFiles/xspcl_hinch.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/xspcl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/xspcl_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xspcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/xspcl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
