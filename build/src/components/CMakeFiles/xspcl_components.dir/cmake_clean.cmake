file(REMOVE_RECURSE
  "CMakeFiles/xspcl_components.dir/clip_cache.cpp.o"
  "CMakeFiles/xspcl_components.dir/clip_cache.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/events.cpp.o"
  "CMakeFiles/xspcl_components.dir/events.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/filters.cpp.o"
  "CMakeFiles/xspcl_components.dir/filters.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/jpeg_stages.cpp.o"
  "CMakeFiles/xspcl_components.dir/jpeg_stages.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/register.cpp.o"
  "CMakeFiles/xspcl_components.dir/register.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/sinks.cpp.o"
  "CMakeFiles/xspcl_components.dir/sinks.cpp.o.d"
  "CMakeFiles/xspcl_components.dir/sources.cpp.o"
  "CMakeFiles/xspcl_components.dir/sources.cpp.o.d"
  "libxspcl_components.a"
  "libxspcl_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xspcl_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
