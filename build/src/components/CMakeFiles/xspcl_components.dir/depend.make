# Empty dependencies file for xspcl_components.
# This may be replaced when dependencies are built.
