file(REMOVE_RECURSE
  "libxspcl_components.a"
)
