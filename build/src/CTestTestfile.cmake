# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("xml")
subdirs("media")
subdirs("sp")
subdirs("sim")
subdirs("hinch")
subdirs("components")
subdirs("xspcl")
subdirs("perf")
subdirs("apps")
