// Internal dispatch table behind media's runtime-selected kernel tiers.
//
// Each tier (scalar / SSE2 / AVX2 / NEON) fills one KernelOps with row
// kernels for the interiors the public entry points in kernels.cpp carve
// out; borders and ragged vector tails always run the scalar
// formulation, so every tier is bit-identical by construction at the
// edges and must be proven bit-identical in the interior
// (tests/test_kernels_equiv.cpp sweeps ragged widths per tier).
//
// The vector translation units are compiled with per-file instruction
// set flags (src/media/CMakeLists.txt) and keep all their helpers at
// internal linkage: nothing inline-linked from here may be compiled
// under -mavx2, or the linker could pick an AVX2-encoded copy for a
// baseline host.
#pragma once

#include <cstdint>

#include "media/kernels.hpp"

namespace media::detail {

struct KernelOps {
  KernelDispatch tier;
  const char* name;

  // Gaussian blur interiors. blur_h*: columns [r, w-r) of one row, the
  // caller handles the clamped borders. blur_v*: all `w` columns of one
  // output row given the (already clamped) neighbour row pointers.
  void (*blur_h3_row)(const uint8_t* in, uint8_t* out, int w);
  void (*blur_h5_row)(const uint8_t* in, uint8_t* out, int w);
  void (*blur_v3_row)(const uint8_t* ra, const uint8_t* rb,
                      const uint8_t* rc, uint8_t* out, int w);
  void (*blur_v5_row)(const uint8_t* ra, const uint8_t* rb,
                      const uint8_t* rc, const uint8_t* rd,
                      const uint8_t* re, uint8_t* out, int w);

  // Box downscale: n output pixels from 2n (resp. 4n) input pixels of
  // each source row.
  void (*down2_row)(const uint8_t* a, const uint8_t* b, uint8_t* out, int n);
  void (*down4_row)(const uint8_t* r0, const uint8_t* r1, const uint8_t* r2,
                    const uint8_t* r3, uint8_t* out, int n);

  // Alpha blend: dst[i] = (src[i]*alpha + dst[i]*(256-alpha) + 128) >> 8.
  void (*blend_row)(const uint8_t* src, uint8_t* dst, int n, int alpha256);

  // Fused factor-2 downscale + blend (no intermediate row).
  void (*down2_blend_row)(const uint8_t* a, const uint8_t* b, uint8_t* dst,
                          int n, int alpha256);

  // Fixed-point AAN IDCT of one 8x8 block, prescale multipliers supplied
  // by the caller (jpeg_decode.cpp owns the table). Writes eight 8-byte
  // rows `stride` bytes apart, so interior plane blocks decode in place
  // with no staging copy (stride = 8 for a packed 64-byte block).
  void (*idct8x8)(const int16_t in[64], const int32_t prescale[64],
                  uint8_t* out, int stride);
};

// Per-tier tables. scalar_ops() always exists; the others return nullptr
// when the translation unit was built without that instruction set.
const KernelOps* scalar_ops();
const KernelOps* sse2_ops();
const KernelOps* avx2_ops();
const KernelOps* neon_ops();

// The table for the currently active dispatch policy (kernels.cpp).
const KernelOps* kernel_ops();

// Scalar fixed-point AAN IDCT (defined in jpeg_decode.cpp): the
// reference all vector idct8x8 implementations must match bit-for-bit,
// and their per-block fallback beyond kSimdIdctMaxCoef.
void idct8x8_scalar(const int16_t in[64], const int32_t prescale[64],
                    uint8_t* out, int stride);

// ---- shared fixed-point constants -----------------------------------------
// One definition for the scalar and vector AAN IDCTs, so exactness is a
// property of the flowgraph, not of which TU compiled it.

constexpr int kAanPrescaleBits = 14;
constexpr int kAanConstBits = 14;
constexpr int kAanPass1Shift = 5;   // pass-1 descale: 2^14 -> 2^9
constexpr int kAanFinalShift = 12;  // 2^9 * 8 (flowgraph gain) = 2^12

constexpr int32_t kFix1_414213562 = 23170;  // sqrt(2)          * 2^14
constexpr int32_t kFix1_847759065 = 30274;  // 2 cos(pi/8)      * 2^14
constexpr int32_t kFix1_082392200 = 17734;  // 2(cos(pi/8)-cos(3pi/8)) * 2^14
constexpr int32_t kFix2_613125930 = 42813;  // 2(cos(pi/8)+cos(3pi/8)) * 2^14

// Largest |coefficient| for which the int32-lane vector IDCT is provably
// overflow-free: with M = 1536 * max(prescale) = 1536 * 31521, the worst
// pass-1 intermediate is < 35.9*M = 1.74e9 and the worst pass-2
// intermediate < 40.3*M = 1.95e9, both inside int32 (interval analysis
// over the AAN flowgraph, kernels_avx2.cpp). Real 8-bit baseline streams
// stay under 1024 + q/2 <= 1152; blocks exceeding the bound (crafted
// streams, 16-bit quant tables) take idct8x8_scalar inside the vector
// entry point, so dispatch is bit-exact for every input.
constexpr int32_t kSimdIdctMaxCoef = 1536;

// Gaussian taps (sum 256) shared with kernels.cpp's gaussian_taps().
constexpr int16_t kBlurTaps3[3] = {70, 116, 70};
constexpr int16_t kBlurTaps5[5] = {16, 62, 100, 62, 16};

}  // namespace media::detail
