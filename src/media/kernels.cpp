#include "media/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "media/kernels_simd.hpp"
#include "support/cpu.hpp"

// Hot-path structure: every kernel splits border columns/rows from the
// interior so the inner loops run clamp-free on hoisted row pointers;
// the interiors themselves go through the KernelOps dispatch table
// (scalar / SSE2 / AVX2 / NEON, kernels_simd.hpp). All tiers must stay
// bit-identical to the straightforward scalar formulation
// (tests/test_kernels_equiv.cpp pins them against unoptimized references
// and against each other); the `*_cycles` companions model the simulated
// core and are independent of these host-side choices (docs/PERF.md).

namespace media {
namespace {

inline int clampi(int v, int lo, int hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

inline uint8_t mix(uint8_t fg, uint8_t bg, int alpha256) {
  int v = (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8;
  return static_cast<uint8_t>(v);
}

// Average of one factor x factor source box with rounding (generic-factor
// fallback; row pointer hoisted out of the dx loop by the caller).
inline uint8_t box_average_rows(const uint8_t* top, int stride, int factor) {
  unsigned sum = 0;
  const uint8_t* row = top;
  for (int dy = 0; dy < factor; ++dy) {
    for (int dx = 0; dx < factor; ++dx) sum += row[dx];
    row += stride;
  }
  unsigned n = static_cast<unsigned>(factor) * static_cast<unsigned>(factor);
  return static_cast<uint8_t>((sum + n / 2) / n);
}

// Horizontal taps over [x0, x1) with border clamping — used only for the
// few columns within `r` of either edge.
inline void blur_h_border(const uint8_t* in, uint8_t* out, int x0, int x1,
                          const int16_t* taps, int r, int width) {
  for (int x = x0; x < x1; ++x) {
    int acc = 128;
    for (int k = -r; k <= r; ++k)
      acc += taps[k + r] * in[clampi(x + k, 0, width - 1)];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

// ---- scalar row kernels (the reference tier) --------------------------------

void blur_h3_row_scalar(const uint8_t* in, uint8_t* out, int w) {
  const int t0 = detail::kBlurTaps3[0], t1 = detail::kBlurTaps3[1],
            t2 = detail::kBlurTaps3[2];
  for (int x = 1; x < w - 1; ++x) {
    int acc = 128 + t0 * in[x - 1] + t1 * in[x] + t2 * in[x + 1];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_h5_row_scalar(const uint8_t* in, uint8_t* out, int w) {
  const int t0 = detail::kBlurTaps5[0], t1 = detail::kBlurTaps5[1],
            t2 = detail::kBlurTaps5[2], t3 = detail::kBlurTaps5[3],
            t4 = detail::kBlurTaps5[4];
  for (int x = 2; x < w - 2; ++x) {
    int acc = 128 + t0 * in[x - 2] + t1 * in[x - 1] + t2 * in[x] +
              t3 * in[x + 1] + t4 * in[x + 2];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v3_row_scalar(const uint8_t* ra, const uint8_t* rb,
                        const uint8_t* rc, uint8_t* out, int w) {
  const int t0 = detail::kBlurTaps3[0], t1 = detail::kBlurTaps3[1],
            t2 = detail::kBlurTaps3[2];
  for (int x = 0; x < w; ++x) {
    int acc = 128 + t0 * ra[x] + t1 * rb[x] + t2 * rc[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v5_row_scalar(const uint8_t* ra, const uint8_t* rb,
                        const uint8_t* rc, const uint8_t* rd,
                        const uint8_t* re, uint8_t* out, int w) {
  const int t0 = detail::kBlurTaps5[0], t1 = detail::kBlurTaps5[1],
            t2 = detail::kBlurTaps5[2], t3 = detail::kBlurTaps5[3],
            t4 = detail::kBlurTaps5[4];
  for (int x = 0; x < w; ++x) {
    int acc = 128 + t0 * ra[x] + t1 * rb[x] + t2 * rc[x] + t3 * rd[x] +
              t4 * re[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void down2_row_scalar(const uint8_t* a, const uint8_t* b, uint8_t* out,
                      int n) {
  for (int x = 0; x < n; ++x) {
    unsigned sum = static_cast<unsigned>(a[0]) + a[1] + b[0] + b[1];
    out[x] = static_cast<uint8_t>((sum + 2) >> 2);
    a += 2;
    b += 2;
  }
}

void down4_row_scalar(const uint8_t* r0, const uint8_t* r1, const uint8_t* r2,
                      const uint8_t* r3, uint8_t* out, int n) {
  for (int x = 0; x < n; ++x) {
    unsigned sum = 0;
    for (int i = 0; i < 4; ++i)
      sum += static_cast<unsigned>(r0[i]) + r1[i] + r2[i] + r3[i];
    out[x] = static_cast<uint8_t>((sum + 8) >> 4);
    r0 += 4;
    r1 += 4;
    r2 += 4;
    r3 += 4;
  }
}

void blend_row_scalar(const uint8_t* src, uint8_t* dst, int n, int alpha256) {
  for (int x = 0; x < n; ++x) dst[x] = mix(src[x], dst[x], alpha256);
}

void down2_blend_row_scalar(const uint8_t* a, const uint8_t* b, uint8_t* dst,
                            int n, int alpha256) {
  for (int x = 0; x < n; ++x) {
    unsigned sum = static_cast<unsigned>(a[0]) + a[1] + b[0] + b[1];
    uint8_t v = static_cast<uint8_t>((sum + 2) >> 2);
    dst[x] = mix(v, dst[x], alpha256);
    a += 2;
    b += 2;
  }
}

const detail::KernelOps kScalarOps = {
    KernelDispatch::kScalar,
    "scalar",
    &blur_h3_row_scalar,
    &blur_h5_row_scalar,
    &blur_v3_row_scalar,
    &blur_v5_row_scalar,
    &down2_row_scalar,
    &down4_row_scalar,
    &blend_row_scalar,
    &down2_blend_row_scalar,
    &detail::idct8x8_scalar,
};

// ---- dispatch state ---------------------------------------------------------

std::atomic<KernelDispatch> g_policy{KernelDispatch::kAuto};
std::atomic<const detail::KernelOps*> g_ops{nullptr};

// Table for an explicit tier, or nullptr when the build or this host
// (with the HINCH_FORCE_SCALAR override) cannot run it.
const detail::KernelOps* resolve(KernelDispatch d) {
  const support::CpuFeatures& f = support::cpu_features();
  switch (d) {
    case KernelDispatch::kScalar:
      return &kScalarOps;
    case KernelDispatch::kSse2:
      return f.sse2 ? detail::sse2_ops() : nullptr;
    case KernelDispatch::kAvx2:
      return f.avx2 ? detail::avx2_ops() : nullptr;
    case KernelDispatch::kNeon:
      return f.neon ? detail::neon_ops() : nullptr;
    case KernelDispatch::kAuto: {
      if (f.avx2)
        if (const detail::KernelOps* t = detail::avx2_ops()) return t;
      if (f.neon)
        if (const detail::KernelOps* t = detail::neon_ops()) return t;
      if (f.sse2)
        if (const detail::KernelOps* t = detail::sse2_ops()) return t;
      return &kScalarOps;
    }
  }
  return &kScalarOps;
}

}  // namespace

namespace detail {

const KernelOps* scalar_ops() { return &kScalarOps; }

const KernelOps* kernel_ops() {
  const KernelOps* t = g_ops.load(std::memory_order_acquire);
  if (t == nullptr) {
    // First use: resolve the current policy. Racing first calls resolve
    // to the same table, so the blind store is idempotent.
    t = resolve(g_policy.load(std::memory_order_relaxed));
    if (t == nullptr) t = &kScalarOps;
    g_ops.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace detail

void set_kernel_dispatch(KernelDispatch dispatch) {
  const detail::KernelOps* t = resolve(dispatch);
  if (t == nullptr) t = &kScalarOps;  // requested tier unavailable
  g_policy.store(dispatch, std::memory_order_relaxed);
  g_ops.store(t, std::memory_order_release);
}

KernelDispatch kernel_dispatch() {
  return g_policy.load(std::memory_order_relaxed);
}

KernelDispatch active_kernel_dispatch() { return detail::kernel_ops()->tier; }

bool kernel_dispatch_available(KernelDispatch dispatch) {
  if (dispatch == KernelDispatch::kAuto) return true;
  const detail::KernelOps* t = resolve(dispatch);
  return t != nullptr && t->tier == dispatch;
}

const char* kernel_dispatch_name(KernelDispatch dispatch) {
  switch (dispatch) {
    case KernelDispatch::kAuto:
      return "auto";
    case KernelDispatch::kScalar:
      return "scalar";
    case KernelDispatch::kSse2:
      return "sse2";
    case KernelDispatch::kAvx2:
      return "avx2";
    case KernelDispatch::kNeon:
      return "neon";
  }
  return "?";
}

// ---- copy ----------------------------------------------------------------

void copy_plane(ConstPlaneView src, PlaneView dst, int row0, int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y)
    std::memcpy(dst.row(y), src.row(y), static_cast<size_t>(src.width));
}

uint64_t copy_cycles(int width, int rows) {
  // One load + one store per pixel; ~0.5 cycle each on a wide VLIW.
  return static_cast<uint64_t>(width) * static_cast<uint64_t>(rows);
}

uint64_t io_cycles(uint64_t bytes) { return bytes / 4; }

// ---- downscale -------------------------------------------------------------

void downscale_box(ConstPlaneView src, PlaneView dst, int factor, int row0,
                   int row1) {
  SUP_CHECK(factor >= 1);
  SUP_CHECK(src.width >= dst.width * factor);
  SUP_CHECK(src.height >= dst.height * factor);
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  if (factor == 1) {
    for (int y = row0; y < row1; ++y)
      std::memcpy(dst.row(y), src.row(y), static_cast<size_t>(dst.width));
    return;
  }
  const detail::KernelOps* ops = detail::kernel_ops();
  if (factor == 2) {
    for (int y = row0; y < row1; ++y)
      ops->down2_row(src.row(y * 2), src.row(y * 2 + 1), dst.row(y),
                     dst.width);
    return;
  }
  if (factor == 4) {
    for (int y = row0; y < row1; ++y)
      ops->down4_row(src.row(y * 4), src.row(y * 4 + 1), src.row(y * 4 + 2),
                     src.row(y * 4 + 3), dst.row(y), dst.width);
    return;
  }
  for (int y = row0; y < row1; ++y) {
    const uint8_t* top = src.row(y * factor);
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x)
      out[x] = box_average_rows(top + x * factor, src.stride, factor);
  }
}

uint64_t downscale_cycles(int out_width, int out_rows, int factor) {
  // factor^2 adds + divide per output pixel.
  uint64_t per_pixel = static_cast<uint64_t>(factor) * factor + 3;
  return static_cast<uint64_t>(out_width) * out_rows * per_pixel;
}

// ---- blend -----------------------------------------------------------------

void blend(ConstPlaneView fg, PlaneView dst, int dst_x, int dst_y,
           int alpha256, int row0, int row1) {
  SUP_CHECK(alpha256 >= 0 && alpha256 <= 256);
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + fg.height, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + fg.width, dst.width);
  const int n = x_end - x_begin;
  if (n <= 0) return;
  const detail::KernelOps* ops = detail::kernel_ops();
  for (int y = y_begin; y < y_end; ++y) {
    const uint8_t* src_row = fg.row(y - dst_y) + (x_begin - dst_x);
    uint8_t* dst_row = dst.row(y) + x_begin;
    ops->blend_row(src_row, dst_row, n, alpha256);
  }
}

uint64_t blend_cycles(int fg_width, int fg_rows) {
  // Two multiplies, add, shift per pixel.
  return static_cast<uint64_t>(fg_width) * fg_rows * 4;
}

// ---- fused downscale + blend -------------------------------------------------

void downscale_blend(ConstPlaneView src, PlaneView dst, int factor, int dst_x,
                     int dst_y, int alpha256, int row0, int row1) {
  // Same preconditions as the unfused pair, so fused and unfused paths
  // fail identically on bad wiring.
  SUP_CHECK(factor >= 1);
  SUP_CHECK(alpha256 >= 0 && alpha256 <= 256);
  const int out_w = src.width / factor;
  const int out_h = src.height / factor;
  SUP_CHECK(src.width >= out_w * factor);
  SUP_CHECK(src.height >= out_h * factor);
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + out_h, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + out_w, dst.width);
  if (x_end <= x_begin) return;
  const int n = x_end - x_begin;
  const detail::KernelOps* ops = detail::kernel_ops();
  if (factor == 1) {
    for (int y = y_begin; y < y_end; ++y)
      ops->blend_row(src.row(y - dst_y) + (x_begin - dst_x),
                     dst.row(y) + x_begin, n, alpha256);
    return;
  }
  if (factor == 2) {
    for (int y = y_begin; y < y_end; ++y) {
      const int sy = (y - dst_y) * 2;
      ops->down2_blend_row(src.row(sy) + (x_begin - dst_x) * 2,
                           src.row(sy + 1) + (x_begin - dst_x) * 2,
                           dst.row(y) + x_begin, n, alpha256);
    }
    return;
  }
  for (int y = y_begin; y < y_end; ++y) {
    uint8_t* dst_row = dst.row(y);
    const uint8_t* top = src.row((y - dst_y) * factor);
    for (int x = x_begin; x < x_end; ++x) {
      uint8_t v = box_average_rows(top + (x - dst_x) * factor, src.stride,
                                   factor);
      dst_row[x] = mix(v, dst_row[x], alpha256);
    }
  }
}

uint64_t downscale_blend_cycles(int out_width, int out_rows, int factor) {
  // Same arithmetic as the two kernels minus the intermediate store/load,
  // which the cache model accounts for separately.
  return downscale_cycles(out_width, out_rows, factor) +
         blend_cycles(out_width, out_rows);
}

// ---- Gaussian blur ------------------------------------------------------------

const int16_t* gaussian_taps(int kernel_size) {
  SUP_CHECK_MSG(kernel_size == 3 || kernel_size == 5,
                "only 3x3 and 5x5 Gaussian kernels are provided");
  return kernel_size == 3 ? detail::kBlurTaps3 : detail::kBlurTaps5;
}

namespace {

// One horizontal-blur row — the shared per-row code of blur_h and the
// fused blur_hv, so the two entry points are bit-identical by
// construction (same border/interior split, same dispatched row
// kernel).
inline void blur_h_one_row(const uint8_t* in, uint8_t* out, int w,
                           int kernel_size, const int16_t* taps, int r,
                           const detail::KernelOps* ops) {
  if (w <= 2 * r) {  // degenerate: every column is a border column
    blur_h_border(in, out, 0, w, taps, r, w);
    return;
  }
  if (kernel_size == 3) {
    blur_h_border(in, out, 0, 1, taps, r, w);
    ops->blur_h3_row(in, out, w);
    blur_h_border(in, out, w - 1, w, taps, r, w);
    return;
  }
  blur_h_border(in, out, 0, 2, taps, r, w);
  ops->blur_h5_row(in, out, w);
  blur_h_border(in, out, w - 2, w, taps, r, w);
}

}  // namespace

void blur_h(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  const int16_t* taps = gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  const int w = dst.width;
  const detail::KernelOps* ops = detail::kernel_ops();
  for (int y = row0; y < row1; ++y)
    blur_h_one_row(src.row(y), dst.row(y), w, kernel_size, taps, r, ops);
}

void blur_v(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  (void)gaussian_taps(kernel_size);  // validates kernel_size
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  const int w = dst.width;
  const int hmax = src.height - 1;
  const detail::KernelOps* ops = detail::kernel_ops();
  // Row pointers are clamped once per output row (border rows reuse the
  // edge row), so the per-pixel loop is clamp-free for every row.
  if (kernel_size == 3) {
    for (int y = row0; y < row1; ++y)
      ops->blur_v3_row(src.row(clampi(y - 1, 0, hmax)), src.row(y),
                       src.row(clampi(y + 1, 0, hmax)), dst.row(y), w);
    return;
  }
  for (int y = row0; y < row1; ++y)
    ops->blur_v5_row(src.row(clampi(y - 2, 0, hmax)),
                     src.row(clampi(y - 1, 0, hmax)), src.row(y),
                     src.row(clampi(y + 1, 0, hmax)),
                     src.row(clampi(y + 2, 0, hmax)), dst.row(y), w);
}

uint64_t blur_cycles(int width, int rows, int kernel_size) {
  // kernel_size multiply-accumulates + clamp/shift per pixel.
  uint64_t per_pixel = static_cast<uint64_t>(kernel_size) * 2 + 2;
  return static_cast<uint64_t>(width) * rows * per_pixel;
}

// ---- fused separable blur ----------------------------------------------------

void blur_hv(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
             int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  const int16_t* taps = gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  if (row0 >= row1) return;
  const int w = dst.width;
  const int hmax = src.height - 1;
  const detail::KernelOps* ops = detail::kernel_ops();
  // Ring of kernel_size horizontally-blurred rows, slot = source row mod
  // kernel_size. Walking y upward needs at most one new h-row per output
  // row (y + r); clamped border rows hit slots already resident.
  std::vector<uint8_t> ring(static_cast<size_t>(kernel_size) *
                            static_cast<size_t>(w));
  int slot_row[5] = {-1, -1, -1, -1, -1};
  auto hrow = [&](int sy) -> const uint8_t* {
    const int slot = sy % kernel_size;
    uint8_t* buf = ring.data() + static_cast<size_t>(slot) * w;
    if (slot_row[slot] != sy) {
      blur_h_one_row(src.row(sy), buf, w, kernel_size, taps, r, ops);
      slot_row[slot] = sy;
    }
    return buf;
  };
  if (kernel_size == 3) {
    for (int y = row0; y < row1; ++y)
      ops->blur_v3_row(hrow(clampi(y - 1, 0, hmax)), hrow(y),
                       hrow(clampi(y + 1, 0, hmax)), dst.row(y), w);
    return;
  }
  for (int y = row0; y < row1; ++y)
    ops->blur_v5_row(hrow(clampi(y - 2, 0, hmax)),
                     hrow(clampi(y - 1, 0, hmax)), hrow(y),
                     hrow(clampi(y + 1, 0, hmax)),
                     hrow(clampi(y + 2, 0, hmax)), dst.row(y), w);
}

uint64_t blur_hv_cycles(int width, int rows, int kernel_size) {
  // Both passes' arithmetic; the elided intermediate store/load is the
  // cache model's to account for (same convention as
  // downscale_blend_cycles).
  return 2 * blur_cycles(width, rows, kernel_size);
}

}  // namespace media
