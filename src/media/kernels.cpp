#include "media/kernels.hpp"

#include <algorithm>
#include <cstring>

namespace media {
namespace {

inline int clampi(int v, int lo, int hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// sigma = 1 Gaussian taps in 8.8 fixed point, normalized to sum 256.
const int16_t kTaps3[3] = {70, 116, 70};
const int16_t kTaps5[5] = {16, 62, 100, 62, 16};

// Average of one factor x factor source box with rounding.
inline uint8_t box_average(ConstPlaneView src, int sx, int sy, int factor) {
  unsigned sum = 0;
  for (int dy = 0; dy < factor; ++dy) {
    const uint8_t* row = src.row(sy + dy) + sx;
    for (int dx = 0; dx < factor; ++dx) sum += row[dx];
  }
  unsigned n = static_cast<unsigned>(factor) * static_cast<unsigned>(factor);
  return static_cast<uint8_t>((sum + n / 2) / n);
}

inline uint8_t mix(uint8_t fg, uint8_t bg, int alpha256) {
  int v = (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8;
  return static_cast<uint8_t>(v);
}

}  // namespace

// ---- copy ----------------------------------------------------------------

void copy_plane(ConstPlaneView src, PlaneView dst, int row0, int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y)
    std::memcpy(dst.row(y), src.row(y), static_cast<size_t>(src.width));
}

uint64_t copy_cycles(int width, int rows) {
  // One load + one store per pixel; ~0.5 cycle each on a wide VLIW.
  return static_cast<uint64_t>(width) * static_cast<uint64_t>(rows);
}

uint64_t io_cycles(uint64_t bytes) { return bytes / 4; }

// ---- downscale -------------------------------------------------------------

void downscale_box(ConstPlaneView src, PlaneView dst, int factor, int row0,
                   int row1) {
  SUP_CHECK(factor >= 1);
  SUP_CHECK(src.width >= dst.width * factor);
  SUP_CHECK(src.height >= dst.height * factor);
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x)
      out[x] = box_average(src, x * factor, y * factor, factor);
  }
}

uint64_t downscale_cycles(int out_width, int out_rows, int factor) {
  // factor^2 adds + divide per output pixel.
  uint64_t per_pixel = static_cast<uint64_t>(factor) * factor + 3;
  return static_cast<uint64_t>(out_width) * out_rows * per_pixel;
}

// ---- blend -----------------------------------------------------------------

void blend(ConstPlaneView fg, PlaneView dst, int dst_x, int dst_y,
           int alpha256, int row0, int row1) {
  SUP_CHECK(alpha256 >= 0 && alpha256 <= 256);
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + fg.height, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + fg.width, dst.width);
  for (int y = y_begin; y < y_end; ++y) {
    const uint8_t* src_row = fg.row(y - dst_y);
    uint8_t* dst_row = dst.row(y);
    for (int x = x_begin; x < x_end; ++x)
      dst_row[x] = mix(src_row[x - dst_x], dst_row[x], alpha256);
  }
}

uint64_t blend_cycles(int fg_width, int fg_rows) {
  // Two multiplies, add, shift per pixel.
  return static_cast<uint64_t>(fg_width) * fg_rows * 4;
}

// ---- fused downscale + blend -------------------------------------------------

void downscale_blend(ConstPlaneView src, PlaneView dst, int factor, int dst_x,
                     int dst_y, int alpha256, int row0, int row1) {
  const int out_w = src.width / factor;
  const int out_h = src.height / factor;
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + out_h, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + out_w, dst.width);
  for (int y = y_begin; y < y_end; ++y) {
    uint8_t* dst_row = dst.row(y);
    const int sy = (y - dst_y) * factor;
    for (int x = x_begin; x < x_end; ++x) {
      uint8_t v = box_average(src, (x - dst_x) * factor, sy, factor);
      dst_row[x] = mix(v, dst_row[x], alpha256);
    }
  }
}

uint64_t downscale_blend_cycles(int out_width, int out_rows, int factor) {
  // Same arithmetic as the two kernels minus the intermediate store/load,
  // which the cache model accounts for separately.
  return downscale_cycles(out_width, out_rows, factor) +
         blend_cycles(out_width, out_rows);
}

// ---- Gaussian blur ------------------------------------------------------------

const int16_t* gaussian_taps(int kernel_size) {
  SUP_CHECK_MSG(kernel_size == 3 || kernel_size == 5,
                "only 3x3 and 5x5 Gaussian kernels are provided");
  return kernel_size == 3 ? kTaps3 : kTaps5;
}

void blur_h(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  const int16_t* taps = gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    const uint8_t* in = src.row(y);
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * in[clampi(x + k, 0, src.width - 1)];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void blur_v(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1) {
  SUP_CHECK(src.width == dst.width && src.height == dst.height);
  const int16_t* taps = gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * src.row(clampi(y + k, 0, src.height - 1))[x];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

uint64_t blur_cycles(int width, int rows, int kernel_size) {
  // kernel_size multiply-accumulates + clamp/shift per pixel.
  uint64_t per_pixel = static_cast<uint64_t>(kernel_size) * 2 + 2;
  return static_cast<uint64_t>(width) * rows * per_pixel;
}

}  // namespace media
