// Image-processing kernels used by the paper's three applications
// (PiP, JPiP, Blur). Every kernel operates on single planes and takes an
// explicit output row range [row0, row1) so the Hinch `slice` and
// `crossdep` shapes can run disjoint horizontal bands in parallel.
//
// `*_cycles` companions give the analytic compute-cost (in simulated
// TriMedia-like cycles) of the corresponding call; the SpaceCAKE-sim
// executor charges these, while wall-clock executors ignore them.
#pragma once

#include <cstdint>

#include "media/frame.hpp"

namespace media {

// ---- runtime kernel dispatch ----------------------------------------------
//
// Every pixel kernel below (and the fixed-point AAN IDCT in jpeg.hpp)
// routes its inner row loops through one of several implementation
// tiers, selected once at runtime — the same reference-retention pattern
// as HuffmanImpl/IdctImpl, extended to vector instruction sets. The
// scalar tier is the bit-exactness reference; every vector tier must
// produce byte-identical output (tests/test_kernels_equiv.cpp pins this
// across ragged widths and borders). See docs/PERF.md ("dispatch
// ladder").
enum class KernelDispatch {
  kAuto,    // probe support::cpu_features() and take the best tier
  kScalar,  // portable reference (also forced by HINCH_FORCE_SCALAR)
  kSse2,    // 128-bit x86
  kAvx2,    // 256-bit x86
  kNeon,    // 128-bit AArch64
};

// Select the tier. kAuto resolves through support::cpu_features(), which
// honours HINCH_FORCE_SCALAR; explicitly requesting a tier the host (or
// the build) lacks falls back to scalar. Thread-safe; intended to be set
// at startup or between runs, not concurrently with kernel calls.
void set_kernel_dispatch(KernelDispatch dispatch);

// The policy as last set (default kAuto).
KernelDispatch kernel_dispatch();

// The tier actually executing (never kAuto).
KernelDispatch active_kernel_dispatch();

// True when requesting `dispatch` would run that tier (compiled in and
// supported by this host, with the HINCH_FORCE_SCALAR override applied).
bool kernel_dispatch_available(KernelDispatch dispatch);

const char* kernel_dispatch_name(KernelDispatch dispatch);

// ---- copy ----------------------------------------------------------------

void copy_plane(ConstPlaneView src, PlaneView dst, int row0, int row1);
uint64_t copy_cycles(int width, int rows);

// Cost of streaming `bytes` through a DMA-style file/device interface
// (sources and sinks): the core mostly issues transfers rather than
// touching every pixel.
uint64_t io_cycles(uint64_t bytes);

// ---- spatial downscale (box filter) ---------------------------------------

// dst[x, y] = average of the factor x factor source box. Source must be at
// least factor times the destination size. Rows refer to the destination.
void downscale_box(ConstPlaneView src, PlaneView dst, int factor, int row0,
                   int row1);
uint64_t downscale_cycles(int out_width, int out_rows, int factor);

// ---- alpha blend -----------------------------------------------------------

// Blend foreground `fg` over `dst` with its top-left corner at
// (dst_x, dst_y). alpha256 in [0, 256]: 256 = fully opaque foreground.
// Rows refer to the destination plane; rows outside the overlap are
// untouched.
void blend(ConstPlaneView fg, PlaneView dst, int dst_x, int dst_y,
           int alpha256, int row0, int row1);
uint64_t blend_cycles(int fg_width, int fg_rows);

// ---- fused downscale + blend (hand-written sequential baseline) ------------

// Computes the downscaled foreground and blends it into `dst` in a single
// traversal, with no intermediate buffer — exactly the kernel fusion the
// paper's hand-written PiP/JPiP versions use (§4.1).
void downscale_blend(ConstPlaneView src, PlaneView dst, int factor, int dst_x,
                     int dst_y, int alpha256, int row0, int row1);
uint64_t downscale_blend_cycles(int out_width, int out_rows, int factor);

// ---- separable Gaussian blur ------------------------------------------------

// Fixed-point tap sets (sum = 256) for sigma = 1.
// kernel_size must be 3 or 5.
const int16_t* gaussian_taps(int kernel_size);

// Horizontal pass: dst[x,y] = sum of taps over src[x-r .. x+r, y].
// Borders clamp. Rows refer to dst (same size as src).
void blur_h(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1);
// Vertical pass: dst[x,y] = sum of taps over src[x, y-r .. y+r].
void blur_v(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
            int row1);
uint64_t blur_cycles(int width, int rows, int kernel_size);

// ---- fused separable blur (both passes, one traversal) ----------------------

// blur_h followed by blur_v with no intermediate plane: the horizontal
// pass's rows live in a kernel_size-row ring (an L1-sized strip) and are
// consumed by the vertical taps as they rotate out. Bit-identical to
// blur_h into a scratch plane then blur_v, for any row range — border
// rows reach into the clamped neighbours exactly as the 2-pass
// composition does (the ring recomputes up to kernel_size/2 halo rows
// at a slice boundary; the *_cycles helper charges the same 2-pass
// arithmetic either way).
void blur_hv(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
             int row1);
uint64_t blur_hv_cycles(int width, int rows, int kernel_size);

}  // namespace media
