// Planar YUV image frames — the payload that flows through Hinch streams.
//
// The paper's applications process the Y, U, and V colour fields as
// separate concurrent components, so all kernel APIs operate on single
// planes (PlaneView) with explicit row ranges for data-parallel slices.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/check.hpp"

namespace media {

// Mutable view of one image plane. Does not own the pixels.
struct PlaneView {
  uint8_t* data = nullptr;
  int width = 0;
  int height = 0;
  int stride = 0;  // bytes between successive rows

  uint8_t* row(int y) {
    SUP_DCHECK(y >= 0 && y < height);
    return data + static_cast<ptrdiff_t>(y) * stride;
  }
  const uint8_t* row(int y) const {
    SUP_DCHECK(y >= 0 && y < height);
    return data + static_cast<ptrdiff_t>(y) * stride;
  }
  size_t bytes() const {
    return static_cast<size_t>(width) * static_cast<size_t>(height);
  }
};

// Read-only view of one image plane.
struct ConstPlaneView {
  const uint8_t* data = nullptr;
  int width = 0;
  int height = 0;
  int stride = 0;

  ConstPlaneView() = default;
  ConstPlaneView(const uint8_t* d, int w, int h, int s)
      : data(d), width(w), height(h), stride(s) {}
  ConstPlaneView(const PlaneView& v)  // NOLINT: implicit by design
      : data(v.data), width(v.width), height(v.height), stride(v.stride) {}

  const uint8_t* row(int y) const {
    SUP_DCHECK(y >= 0 && y < height);
    return data + static_cast<ptrdiff_t>(y) * stride;
  }
  size_t bytes() const {
    return static_cast<size_t>(width) * static_cast<size_t>(height);
  }
};

enum class PixelFormat {
  kGray,    // one plane
  kYuv420,  // chroma subsampled 2x2
  kYuv444,  // full-resolution chroma
};

// Number of planes for a format (1 or 3).
int plane_count(PixelFormat fmt);

// Dimensions of plane `i` for a `w`x`h` frame of the given format.
void plane_dims(PixelFormat fmt, int w, int h, int plane, int* pw, int* ph);

// A planar image frame. Owns its pixel storage (one contiguous block).
class Frame {
 public:
  Frame(PixelFormat fmt, int width, int height);

  PixelFormat format() const { return fmt_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int planes() const { return plane_count(fmt_); }

  PlaneView plane(int i);
  ConstPlaneView plane(int i) const;

  // Total payload size in bytes.
  size_t bytes() const { return data_.size(); }
  // Byte offset of plane `i` inside the contiguous payload (used for
  // memory-traffic accounting on stream slots).
  size_t plane_offset(int i) const {
    SUP_CHECK(i >= 0 && i < planes());
    return offsets_[static_cast<size_t>(i)];
  }
  uint8_t* raw() { return data_.data(); }
  const uint8_t* raw() const { return data_.data(); }

  // Fill every plane with a constant value.
  void fill(uint8_t value);

  // Deep equality (format, dimensions, pixels).
  bool equals(const Frame& other) const;

  std::shared_ptr<Frame> clone() const;

 private:
  PixelFormat fmt_;
  int width_;
  int height_;
  std::vector<size_t> offsets_;  // per-plane start offset into data_
  std::vector<uint8_t> data_;
};

using FramePtr = std::shared_ptr<Frame>;

FramePtr make_frame(PixelFormat fmt, int width, int height);

}  // namespace media
