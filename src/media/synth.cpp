#include "media/synth.hpp"

#include "support/rng.hpp"

namespace media {
namespace {

// Per-clip constants derived from the seed once.
struct ClipParams {
  int grad_dx, grad_dy;    // gradient drift per frame
  int rect_w, rect_h;      // bouncing rectangle size
  int rect_speed_x, rect_speed_y;
  int check_size;          // checkerboard cell size
  uint8_t base_u, base_v;  // chroma bias
};

ClipParams derive(const SynthSpec& spec) {
  support::SplitMix64 rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
  ClipParams p;
  p.grad_dx = 1 + static_cast<int>(rng.next_below(3));
  p.grad_dy = 1 + static_cast<int>(rng.next_below(3));
  p.rect_w = spec.width / 4 + static_cast<int>(rng.next_below(
                                  static_cast<uint64_t>(spec.width / 8 + 1)));
  p.rect_h = spec.height / 4 + static_cast<int>(rng.next_below(
                                   static_cast<uint64_t>(spec.height / 8 + 1)));
  p.rect_speed_x = 2 + static_cast<int>(rng.next_below(4));
  p.rect_speed_y = 1 + static_cast<int>(rng.next_below(4));
  p.check_size = 8 + static_cast<int>(rng.next_below(3)) * 4;
  p.base_u = static_cast<uint8_t>(96 + rng.next_below(64));
  p.base_v = static_cast<uint8_t>(96 + rng.next_below(64));
  return p;
}

// Triangle-wave bounce of a point moving at `speed` inside [0, range).
int bounce(int t, int speed, int range) {
  if (range <= 1) return 0;
  int period = 2 * (range - 1);
  int x = (t * speed) % period;
  return x < range ? x : period - x;
}

}  // namespace

void render_synth_frame(const SynthSpec& spec, int t, Frame& out) {
  SUP_CHECK(out.format() == spec.format && out.width() == spec.width &&
            out.height() == spec.height);
  const ClipParams p = derive(spec);

  // Luma: moving gradient + checkerboard + bouncing bright rectangle.
  PlaneView y = out.plane(0);
  const int gx = t * p.grad_dx;
  const int gy = t * p.grad_dy;
  const int rx = bounce(t, p.rect_speed_x,
                        spec.width - p.rect_w > 0 ? spec.width - p.rect_w : 1);
  const int ry =
      bounce(t, p.rect_speed_y,
             spec.height - p.rect_h > 0 ? spec.height - p.rect_h : 1);
  const int phase = (t / 4) % 2;
  for (int row = 0; row < y.height; ++row) {
    uint8_t* dst = y.row(row);
    for (int col = 0; col < y.width; ++col) {
      int v = ((col + gx) + (row + gy)) & 0xff;
      int check =
          (((col / p.check_size) + (row / p.check_size) + phase) & 1) * 32;
      int pix = (v >> 1) + check + 48;
      if (col >= rx && col < rx + p.rect_w && row >= ry &&
          row < ry + p.rect_h) {
        pix += 64;
      }
      dst[col] = static_cast<uint8_t>(pix > 235 ? 235 : pix);
    }
  }

  if (out.planes() == 1) return;

  // Chroma: slow horizontal/vertical ramps around the clip's bias.
  for (int c = 1; c <= 2; ++c) {
    PlaneView pl = out.plane(c);
    uint8_t base = c == 1 ? p.base_u : p.base_v;
    for (int row = 0; row < pl.height; ++row) {
      uint8_t* dst = pl.row(row);
      for (int col = 0; col < pl.width; ++col) {
        int ramp = c == 1 ? ((col + t) % 64) - 32 : ((row + t) % 64) - 32;
        int pix = base + ramp / 2;
        dst[col] = static_cast<uint8_t>(pix < 16 ? 16 : (pix > 240 ? 240 : pix));
      }
    }
  }
}

FramePtr make_synth_frame(const SynthSpec& spec, int t) {
  FramePtr f = make_frame(spec.format, spec.width, spec.height);
  render_synth_frame(spec, t, *f);
  return f;
}

}  // namespace media
