#include <cmath>
#include <cstring>

#include "media/jpeg.hpp"
#include "media/jpeg_common.hpp"
#include "support/strings.hpp"

namespace media::jpeg {
namespace {

support::Status bad(const char* what) {
  return support::invalid_argument(std::string("JPEG decode: ") + what);
}

// ---- bit reader with 0xFF00 unstuffing and RSTn awareness --------------------

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  void set_pos(size_t pos) { pos_ = pos; }
  size_t pos() const { return pos_; }

  // Returns -1 on end of data / marker encountered.
  int next_bit() {
    if (nbits_ == 0) {
      if (!fill()) return -1;
    }
    --nbits_;
    return (acc_ >> nbits_) & 1;
  }

  // Read `n` bits MSB-first; -1 on failure.
  int32_t get_bits(int n) {
    int32_t v = 0;
    for (int i = 0; i < n; ++i) {
      int b = next_bit();
      if (b < 0) return -1;
      v = (v << 1) | b;
    }
    return v;
  }

  // Align to a byte boundary and consume an expected RSTn marker.
  bool consume_restart(int expected_index) {
    nbits_ = 0;
    if (pos_ + 1 >= size_) return false;
    if (data_[pos_] != 0xff) return false;
    uint8_t m = data_[pos_ + 1];
    if (m != static_cast<uint8_t>(kRST0 + (expected_index & 7))) return false;
    pos_ += 2;
    return true;
  }

 private:
  bool fill() {
    while (pos_ < size_) {
      uint8_t byte = data_[pos_];
      if (byte == 0xff) {
        if (pos_ + 1 < size_ && data_[pos_ + 1] == 0x00) {
          pos_ += 2;  // stuffed 0xff
          acc_ = 0xff;
          nbits_ = 8;
          return true;
        }
        return false;  // a real marker terminates entropy data
      }
      ++pos_;
      acc_ = byte;
      nbits_ = 8;
      return true;
    }
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t acc_ = 0;
  int nbits_ = 0;
};

// Decode one Huffman symbol (T.81 §F.2.2.3). Returns -1 on failure.
int decode_symbol(BitReader& br, const HuffDecodeTable& t) {
  int32_t code = br.next_bit();
  if (code < 0) return -1;
  for (int len = 1; len <= 16; ++len) {
    if (t.max_code[static_cast<size_t>(len)] >= 0 &&
        code <= t.max_code[static_cast<size_t>(len)]) {
      int idx = t.val_ptr[static_cast<size_t>(len)] +
                (code - t.min_code[static_cast<size_t>(len)]);
      if (idx < 0 || idx >= static_cast<int>(t.values.size())) return -1;
      return t.values[static_cast<size_t>(idx)];
    }
    int b = br.next_bit();
    if (b < 0) return -1;
    code = (code << 1) | b;
  }
  return -1;
}

// Sign-extend a `nbits`-wide magnitude value (T.81 EXTEND).
inline int extend(int v, int nbits) {
  return v < (1 << (nbits - 1)) ? v - (1 << nbits) + 1 : v;
}

struct FrameComponent {
  int id = 0;
  int h = 1, v = 1;     // sampling factors
  int quant_id = 0;
  int dc_table = 0, ac_table = 0;
  int dc_pred = 0;
};

// ---- inverse DCT ---------------------------------------------------------------

struct IdctTables {
  float c[8][8];  // scale(u) * cos[(2x+1) u pi / 16], indexed [x][u]
  IdctTables() {
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        float s = u == 0 ? std::sqrt(0.125f) : 0.5f;
        c[x][u] =
            s * std::cos((2 * x + 1) * u * 3.14159265358979323846f / 16);
      }
    }
  }
};

const IdctTables& idct_tables() {
  static const IdctTables t;
  return t;
}

void idct_block(const int16_t in[64], float out[64]) {
  const IdctTables& t = idct_tables();
  float tmp[64];
  // rows: for each row v, inverse over u
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int u = 0; u < 8; ++u)
        acc += static_cast<float>(in[v * 8 + u]) * t.c[x][u];
      tmp[v * 8 + x] = acc;
    }
  }
  // columns
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int v = 0; v < 8; ++v) acc += tmp[v * 8 + x] * t.c[y][v];
      out[y * 8 + x] = acc;
    }
  }
}

}  // namespace

support::Result<CoeffImage> decode_to_coefficients(const uint8_t* data,
                                                   size_t size) {
  if (size < 4 || data[0] != 0xff || data[1] != kSOI)
    return bad("missing SOI marker");

  std::array<std::array<uint16_t, 64>, 4> quant_tables{};
  std::array<bool, 4> quant_present{};
  std::array<HuffDecodeTable, 4> dc_tables;
  std::array<HuffDecodeTable, 4> ac_tables;
  std::vector<FrameComponent> comps;
  int width = 0, height = 0;
  int restart_interval = 0;
  size_t pos = 2;
  size_t scan_start = 0;

  // --- marker segment parsing ---
  while (pos + 1 < size) {
    if (data[pos] != 0xff) return bad("expected marker");
    uint8_t marker = data[pos + 1];
    pos += 2;
    if (marker == kEOI) return bad("EOI before SOS");
    if (marker >= kRST0 && marker <= kRST0 + 7) continue;
    if (pos + 1 >= size) return bad("truncated segment");
    size_t seg_len = static_cast<size_t>(data[pos]) << 8 | data[pos + 1];
    if (seg_len < 2 || pos + seg_len > size) return bad("bad segment length");
    const uint8_t* seg = data + pos + 2;
    size_t len = seg_len - 2;

    switch (marker) {
      case kDQT: {
        size_t off = 0;
        while (off < len) {
          int precision = seg[off] >> 4;
          int id = seg[off] & 0x0f;
          if (id > 3) return bad("bad DQT id");
          ++off;
          size_t entry = precision ? 2 : 1;
          if (off + 64 * entry > len) return bad("truncated DQT");
          for (int i = 0; i < 64; ++i) {
            uint16_t q = precision
                             ? static_cast<uint16_t>(seg[off] << 8 | seg[off + 1])
                             : seg[off];
            quant_tables[static_cast<size_t>(id)][kZigZag[i]] = q;
            off += entry;
          }
          quant_present[static_cast<size_t>(id)] = true;
        }
        break;
      }
      case kDHT: {
        size_t off = 0;
        while (off + 17 <= len) {
          int cls = seg[off] >> 4;
          int id = seg[off] & 0x0f;
          if (cls > 1 || id > 3) return bad("bad DHT header");
          const uint8_t* bits = seg + off + 1;
          int count = 0;
          for (int i = 0; i < 16; ++i) count += bits[i];
          if (off + 17 + static_cast<size_t>(count) > len)
            return bad("truncated DHT");
          HuffDecodeTable t =
              build_decode_table(bits, seg + off + 17, count);
          if (!t.valid) return bad("inconsistent DHT");
          (cls == 0 ? dc_tables : ac_tables)[static_cast<size_t>(id)] =
              std::move(t);
          off += 17 + static_cast<size_t>(count);
        }
        break;
      }
      case kSOF0: {
        if (len < 6) return bad("truncated SOF0");
        if (seg[0] != 8) return bad("only 8-bit precision supported");
        height = seg[1] << 8 | seg[2];
        width = seg[3] << 8 | seg[4];
        int ncomp = seg[5];
        if (width <= 0 || height <= 0) return bad("bad dimensions");
        if (ncomp != 1 && ncomp != 3)
          return bad("only 1- or 3-component images supported");
        if (len < 6 + 3 * static_cast<size_t>(ncomp))
          return bad("truncated SOF0 components");
        comps.resize(static_cast<size_t>(ncomp));
        for (int i = 0; i < ncomp; ++i) {
          FrameComponent& c = comps[static_cast<size_t>(i)];
          c.id = seg[6 + 3 * i];
          c.h = seg[7 + 3 * i] >> 4;
          c.v = seg[7 + 3 * i] & 0x0f;
          c.quant_id = seg[8 + 3 * i];
          if (c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2 || c.quant_id > 3)
            return bad("unsupported sampling / quant id");
        }
        break;
      }
      case kSOF0 + 1:
      case kSOF0 + 2:
        return bad("only baseline (SOF0) is supported");
      case kDRI:
        if (len < 2) return bad("truncated DRI");
        restart_interval = seg[0] << 8 | seg[1];
        break;
      case kSOS: {
        if (comps.empty()) return bad("SOS before SOF0");
        if (len < 1) return bad("truncated SOS");
        int ns = seg[0];
        if (ns != static_cast<int>(comps.size()))
          return bad("progressive/multi-scan images not supported");
        if (len < 1 + 2 * static_cast<size_t>(ns) + 3)
          return bad("truncated SOS header");
        for (int i = 0; i < ns; ++i) {
          int cid = seg[1 + 2 * i];
          int tables = seg[2 + 2 * i];
          bool found = false;
          for (FrameComponent& c : comps) {
            if (c.id == cid) {
              c.dc_table = tables >> 4;
              c.ac_table = tables & 0x0f;
              found = true;
            }
          }
          if (!found) return bad("SOS references unknown component");
        }
        scan_start = pos + seg_len;
        break;
      }
      default:
        break;  // APPn / COM / others: skip
    }
    pos += seg_len;
    if (scan_start) break;
  }
  if (!scan_start) return bad("no SOS marker found");

  // Validate sampling: all 1x1, or 2x2 luma with 1x1 chroma.
  bool yuv420 = false;
  if (comps.size() == 3) {
    if (comps[0].h == 2 && comps[0].v == 2 && comps[1].h == 1 &&
        comps[1].v == 1 && comps[2].h == 1 && comps[2].v == 1) {
      yuv420 = true;
    } else if (!(comps[0].h == 1 && comps[0].v == 1 && comps[1].h == 1 &&
                 comps[1].v == 1 && comps[2].h == 1 && comps[2].v == 1)) {
      return bad("only 4:2:0 and 4:4:4 sampling supported");
    }
  }

  CoeffImage img;
  img.width = width;
  img.height = height;
  img.format = comps.size() == 1
                   ? PixelFormat::kGray
                   : (yuv420 ? PixelFormat::kYuv420 : PixelFormat::kYuv444);
  img.compressed_bytes = size;

  const int h_max = yuv420 ? 2 : 1;
  const int v_max = yuv420 ? 2 : 1;
  const int mcus_x = (width + 8 * h_max - 1) / (8 * h_max);
  const int mcus_y = (height + 8 * v_max - 1) / (8 * v_max);

  img.comps.resize(comps.size());
  for (size_t i = 0; i < comps.size(); ++i) {
    const FrameComponent& c = comps[i];
    if (!quant_present[static_cast<size_t>(c.quant_id)])
      return bad("missing quantization table");
    CoeffPlane& cp = img.comps[i];
    cp.blocks_w = mcus_x * c.h;
    cp.blocks_h = mcus_y * c.v;
    int pw = 0, ph = 0;
    plane_dims(img.format, width, height, static_cast<int>(i), &pw, &ph);
    cp.width = pw;
    cp.height = ph;
    cp.blocks.assign(
        static_cast<size_t>(cp.blocks_w) * static_cast<size_t>(cp.blocks_h),
        {});
  }

  // --- entropy decode ---
  BitReader br(data, size);
  br.set_pos(scan_start);
  int mcu_count = 0;
  int restart_index = 0;
  for (int my = 0; my < mcus_y; ++my) {
    for (int mx = 0; mx < mcus_x; ++mx) {
      if (restart_interval && mcu_count == restart_interval) {
        if (!br.consume_restart(restart_index)) return bad("missing RSTn");
        restart_index = (restart_index + 1) & 7;
        mcu_count = 0;
        for (FrameComponent& c : comps) c.dc_pred = 0;
      }
      for (size_t ci = 0; ci < comps.size(); ++ci) {
        FrameComponent& c = comps[ci];
        const HuffDecodeTable& dct = dc_tables[static_cast<size_t>(c.dc_table)];
        const HuffDecodeTable& act = ac_tables[static_cast<size_t>(c.ac_table)];
        if (!dct.valid || !act.valid) return bad("missing Huffman table");
        const auto& q = quant_tables[static_cast<size_t>(c.quant_id)];
        CoeffPlane& cp = img.comps[ci];
        for (int sy = 0; sy < c.v; ++sy) {
          for (int sx = 0; sx < c.h; ++sx) {
            int bx = mx * c.h + sx;
            int by = my * c.v + sy;
            auto& block =
                cp.blocks[static_cast<size_t>(by) * cp.blocks_w + bx];

            // DC.
            int s = decode_symbol(br, dct);
            if (s < 0 || s > 11) return bad("bad DC symbol");
            int diff = 0;
            if (s > 0) {
              int32_t bits = br.get_bits(s);
              if (bits < 0) return bad("truncated DC bits");
              diff = extend(bits, s);
            }
            c.dc_pred += diff;
            block[0] = static_cast<int16_t>(c.dc_pred * q[0]);
            if (c.dc_pred != 0) ++img.nonzero_coeffs;

            // AC.
            int k = 1;
            while (k < 64) {
              int rs = decode_symbol(br, act);
              if (rs < 0) return bad("bad AC symbol");
              int run = rs >> 4;
              int sbits = rs & 0x0f;
              if (sbits == 0) {
                if (run == 15) {
                  k += 16;  // ZRL
                  continue;
                }
                break;  // EOB
              }
              k += run;
              if (k > 63) return bad("AC run overflows block");
              int32_t bits = br.get_bits(sbits);
              if (bits < 0) return bad("truncated AC bits");
              int v = extend(bits, sbits);
              block[kZigZag[k]] =
                  static_cast<int16_t>(v * q[kZigZag[k]]);
              ++img.nonzero_coeffs;
              ++k;
            }
          }
        }
      }
      ++mcu_count;
    }
  }
  return img;
}

void idct_component(const CoeffPlane& comp, PlaneView out, int block_row0,
                    int block_row1) {
  SUP_CHECK(out.width == comp.width && out.height == comp.height);
  if (block_row0 < 0) block_row0 = 0;
  if (block_row1 > comp.blocks_h) block_row1 = comp.blocks_h;
  float pixels[64];
  for (int by = block_row0; by < block_row1; ++by) {
    for (int bx = 0; bx < comp.blocks_w; ++bx) {
      idct_block(
          comp.blocks[static_cast<size_t>(by) * comp.blocks_w + bx].data(),
          pixels);
      const int y_end = std::min(8, comp.height - by * 8);
      const int x_end = std::min(8, comp.width - bx * 8);
      for (int y = 0; y < y_end; ++y) {
        uint8_t* row = out.row(by * 8 + y) + bx * 8;
        for (int x = 0; x < x_end; ++x) {
          int v = static_cast<int>(std::lround(pixels[y * 8 + x])) + 128;
          row[x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
        }
      }
    }
  }
}

support::Result<FramePtr> decode(const uint8_t* data, size_t size) {
  SUP_ASSIGN_OR_RETURN(CoeffImage img, decode_to_coefficients(data, size));
  FramePtr frame = make_frame(img.format, img.width, img.height);
  for (int c = 0; c < static_cast<int>(img.comps.size()); ++c) {
    const CoeffPlane& cp = img.comps[static_cast<size_t>(c)];
    idct_component(cp, frame->plane(c), 0, cp.blocks_h);
  }
  return frame;
}

uint64_t entropy_decode_cycles(size_t compressed_bytes, size_t total_blocks) {
  // Bit-serial Huffman decoding: ~12 cycles per compressed byte plus fixed
  // per-block bookkeeping.
  return static_cast<uint64_t>(compressed_bytes) * 12 +
         static_cast<uint64_t>(total_blocks) * 24;
}

uint64_t idct_cycles(uint64_t blocks) {
  // Separable 8-point IDCT: ~480 multiply-accumulates + clamp per block.
  return blocks * 520;
}

}  // namespace media::jpeg
