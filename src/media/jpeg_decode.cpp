#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <thread>

#include "media/jpeg.hpp"
#include "media/jpeg_common.hpp"
#include "media/kernels.hpp"
#include "media/kernels_simd.hpp"
#include "support/strings.hpp"

namespace media::jpeg {
namespace {

support::Status bad(const char* what) {
  return support::invalid_argument(std::string("JPEG decode: ") + what);
}

support::Status bad(const std::string& what) {
  return support::invalid_argument("JPEG decode: " + what);
}

// Why entropy data ran out: a real marker (possibly a legitimate segment
// end) versus plain truncation. Surfaced in decode errors so a chopped
// stream is distinguishable from a corrupt one.
enum class BitEnd { kNone, kMarker, kEof };

support::Status entropy_error(BitEnd end, const char* what) {
  switch (end) {
    case BitEnd::kEof:
      return bad(std::string(what) + " (entropy data truncated: unexpected "
                                     "end of stream)");
    case BitEnd::kMarker:
      return bad(std::string(what) + " (entropy data cut short by a "
                                     "marker)");
    default:
      return bad(what);
  }
}

// ---- reference bit reader: one byte at a time, bit-serial ------------------
//
// The original decoder path, kept as the equivalence baseline for tests
// and as the "before" leg of the decode microbench. Handles 0xFF00
// unstuffing and stops at real markers.

class RefBitReader {
 public:
  RefBitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  void set_pos(size_t pos) { pos_ = pos; }
  size_t pos() const { return pos_; }
  BitEnd end_reason() const { return end_; }

  // Returns -1 on end of data / marker encountered.
  int next_bit() {
    if (nbits_ == 0) {
      if (!fill()) return -1;
    }
    --nbits_;
    return (acc_ >> nbits_) & 1;
  }

  // Read `n` bits MSB-first; -1 on failure.
  int32_t get_bits(int n) {
    int32_t v = 0;
    for (int i = 0; i < n; ++i) {
      int b = next_bit();
      if (b < 0) return -1;
      v = (v << 1) | b;
    }
    return v;
  }

  // Align to a byte boundary and consume an expected RSTn marker.
  bool consume_restart(int expected_index) {
    nbits_ = 0;
    if (pos_ + 1 >= size_) return false;
    if (data_[pos_] != 0xff) return false;
    uint8_t m = data_[pos_ + 1];
    if (m != static_cast<uint8_t>(kRST0 + (expected_index & 7))) return false;
    pos_ += 2;
    end_ = BitEnd::kNone;
    return true;
  }

  // True when only byte-alignment padding remains buffered and the next
  // bytes in the stream are the given marker.
  bool at_trailing_marker(uint8_t marker) const {
    if (nbits_ >= 8) return false;  // whole undecoded entropy bytes remain
    return pos_ + 1 < size_ && data_[pos_] == 0xff &&
           data_[pos_ + 1] == marker;
  }

 private:
  bool fill() {
    while (pos_ < size_) {
      uint8_t byte = data_[pos_];
      if (byte == 0xff) {
        if (pos_ + 1 < size_ && data_[pos_ + 1] == 0x00) {
          pos_ += 2;  // stuffed 0xff
          acc_ = 0xff;
          nbits_ = 8;
          return true;
        }
        // A real marker terminates entropy data; a lone trailing 0xFF is
        // a truncated marker.
        end_ = pos_ + 1 < size_ ? BitEnd::kMarker : BitEnd::kEof;
        return false;
      }
      ++pos_;
      acc_ = byte;
      nbits_ = 8;
      return true;
    }
    end_ = BitEnd::kEof;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t acc_ = 0;
  int nbits_ = 0;
  BitEnd end_ = BitEnd::kNone;
};

// Decode one Huffman symbol bit-serially (T.81 §F.2.2.3). Returns -1 on
// failure.
int decode_symbol(RefBitReader& br, const HuffDecodeTable& t) {
  int32_t code = br.next_bit();
  if (code < 0) return -1;
  for (int len = 1; len <= 16; ++len) {
    if (t.max_code[static_cast<size_t>(len)] >= 0 &&
        code <= t.max_code[static_cast<size_t>(len)]) {
      int idx = t.val_ptr[static_cast<size_t>(len)] +
                (code - t.min_code[static_cast<size_t>(len)]);
      if (idx < 0 || idx >= static_cast<int>(t.values.size())) return -1;
      return t.values[static_cast<size_t>(idx)];
    }
    int b = br.next_bit();
    if (b < 0) return -1;
    code = (code << 1) | b;
  }
  return -1;
}

// ---- fast bit reader: 64-bit accumulator with bulk refill ------------------
//
// Buffers up to 63 bits so a whole (symbol, magnitude-bits) pair is
// usually served without touching memory management. Refill performs the
// 0xFF00 unstuffing byte-by-byte but only runs every ~6 symbols; it never
// buffers past a real marker, so buffered bits always belong to the
// current entropy segment.

class FastBitReader {
 public:
  FastBitReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  void set_pos(size_t pos) { pos_ = pos; }
  size_t pos() const { return pos_; }
  BitEnd end_reason() const { return end_; }
  int bits() const { return nbits_; }

  // Top up the accumulator to >= 57 bits or until the entropy segment
  // ends (marker or EOF).
  void refill() {
    // Bulk path: gulp 4 bytes at a time while none of them is 0xFF (no
    // stuffing, no marker, no EOF possible). The bit trick flags any
    // all-ones byte in the word; anything flagged falls through to the
    // byte loop, which keeps the exact stuffing/marker/EOF semantics.
    while (end_ == BitEnd::kNone && nbits_ <= 32 && pos_ + 4 <= size_) {
      // memcpy + bswap compiles to one load + one byte swap; gcc does
      // not fold the equivalent shift-or idiom on this path.
      uint32_t wle;
      std::memcpy(&wle, data_ + pos_, 4);
      const uint32_t w = __builtin_bswap32(wle);
      uint32_t x = w ^ 0xffffffffu;  // a 0xff byte becomes 0x00
      if (((x - 0x01010101u) & ~x & 0x80808080u) != 0) break;
      acc_ = (acc_ << 32) | w;
      nbits_ += 32;
      pos_ += 4;
    }
    while (nbits_ <= 56) {
      if (end_ != BitEnd::kNone) return;
      if (pos_ >= size_) {
        end_ = BitEnd::kEof;
        return;
      }
      uint8_t byte = data_[pos_];
      if (byte == 0xff) {
        if (pos_ + 1 >= size_) {
          end_ = BitEnd::kEof;  // truncated marker
          return;
        }
        if (data_[pos_ + 1] != 0x00) {
          end_ = BitEnd::kMarker;
          return;
        }
        pos_ += 2;  // stuffed 0xff data byte
      } else {
        ++pos_;
      }
      acc_ = (acc_ << 8) | byte;
      nbits_ += 8;
    }
  }

  // Next `n` buffered bits MSB-first; requires 1 <= n <= bits().
  uint32_t peek(int n) const {
    return static_cast<uint32_t>(acc_ >> (nbits_ - n)) &
           ((1u << n) - 1);
  }
  void consume(int n) { nbits_ -= n; }

  int take_bit() {
    --nbits_;
    return static_cast<int>((acc_ >> nbits_) & 1);
  }

  // Read `n` <= 16 bits MSB-first; -1 on failure.
  int32_t get_bits(int n) {
    if (n == 0) return 0;
    if (nbits_ < n) {
      refill();
      if (nbits_ < n) return -1;
    }
    uint32_t v = peek(n);
    consume(n);
    return static_cast<int32_t>(v);
  }

  // Align to a byte boundary and consume an expected RSTn marker. Any
  // buffered bits are the pad bits of the final entropy byte before the
  // marker (refill never crosses a marker), so dropping them realigns.
  bool consume_restart(int expected_index) {
    acc_ = 0;
    nbits_ = 0;
    if (pos_ + 1 >= size_) return false;
    if (data_[pos_] != 0xff) return false;
    uint8_t m = data_[pos_ + 1];
    if (m != static_cast<uint8_t>(kRST0 + (expected_index & 7))) return false;
    pos_ += 2;
    end_ = BitEnd::kNone;
    return true;
  }

  // True when only byte-alignment padding remains buffered and the next
  // bytes in the stream are the given marker. Refill never crosses a
  // marker, so after the final MCU the accumulator holds at most the pad
  // bits of the last entropy byte.
  bool at_trailing_marker(uint8_t marker) const {
    if (nbits_ >= 8) return false;  // whole undecoded entropy bytes remain
    return pos_ + 1 < size_ && data_[pos_] == 0xff &&
           data_[pos_ + 1] == marker;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;  // low `nbits_` bits valid, stream order MSB-first
  int nbits_ = 0;
  BitEnd end_ = BitEnd::kNone;
};

// Decode one Huffman symbol: single table probe for codes up to
// kLookupBits, the canonical walk for the rest. Returns -1 on failure.
int decode_symbol(FastBitReader& br, const HuffDecodeTable& t) {
  if (br.bits() < 16) br.refill();
  if (br.bits() >= HuffDecodeTable::kLookupBits) {
    uint16_t entry = t.lookup[br.peek(HuffDecodeTable::kLookupBits)];
    if (entry != 0) {
      br.consume(entry >> 8);
      return entry & 0xff;
    }
    if (br.bits() >= 16) {
      // Long codes with a full window buffered: compare the leading
      // `len` window bits against max_code per length, starting past the
      // lookup-covered lengths. State-identical to the bit-serial walk
      // below (same bits consumed on success and on failure, and with
      // >= 16 buffered the walk would never refill mid-code).
      const uint32_t win = br.peek(16);
      for (int len = HuffDecodeTable::kLookupBits + 1; len <= 16; ++len) {
        const int32_t code = static_cast<int32_t>(win >> (16 - len));
        if (t.max_code[static_cast<size_t>(len)] >= 0 &&
            code <= t.max_code[static_cast<size_t>(len)]) {
          br.consume(len);
          int idx = t.val_ptr[static_cast<size_t>(len)] +
                    (code - t.min_code[static_cast<size_t>(len)]);
          if (idx < 0 || idx >= static_cast<int>(t.values.size())) return -1;
          return t.values[static_cast<size_t>(idx)];
        }
      }
      br.consume(16);
      return -1;
    }
  }
  // Long codes in a segment tail (fewer than 16 bits before the segment
  // ends): bit-serial canonical walk.
  int32_t code = 0;
  for (int len = 1; len <= 16; ++len) {
    if (br.bits() == 0) {
      br.refill();
      if (br.bits() == 0) return -1;
    }
    code = (code << 1) | br.take_bit();
    if (t.max_code[static_cast<size_t>(len)] >= 0 &&
        code <= t.max_code[static_cast<size_t>(len)]) {
      int idx = t.val_ptr[static_cast<size_t>(len)] +
                (code - t.min_code[static_cast<size_t>(len)]);
      if (idx < 0 || idx >= static_cast<int>(t.values.size())) return -1;
      return t.values[static_cast<size_t>(idx)];
    }
  }
  return -1;
}

// Sign-extend a `nbits`-wide magnitude value (T.81 EXTEND).
inline int extend(int v, int nbits) {
  return v < (1 << (nbits - 1)) ? v - (1 << nbits) + 1 : v;
}

// Hot-loop refill hoisting: one refill before each (symbol, value) pair
// covers the worst case (16 code bits + 11 magnitude bits), so the
// decode fast path below runs with no buffered-bits checks. The
// bit-serial reference reader keeps its per-bit flow.
inline void ensure_bits(FastBitReader& br) {
  if (br.bits() < 32) br.refill();
}
inline void ensure_bits(RefBitReader&) {}

// Fused (symbol, magnitude) decode: one wide peek covers the table
// probe AND the magnitude bits that follow, so the common case costs a
// single peek/consume round trip. Window width 26 >= kLookupBits code
// bits (10) + the widest magnitude field a symbol can carry through
// `entry & 0x0f` (15). Returns false — consuming nothing — for long
// codes (no table entry) and segment tails (< 26 buffered bits); the
// caller's slow path then reproduces the unfused decode exactly,
// including its error reporting order. A symbol that is invalid for its
// context (DC size > 11) still fully decodes here; the caller aborts on
// it before the over-consumed bits could matter.
inline bool decode_sym_mag(FastBitReader& br, const HuffDecodeTable& t,
                           int* sym, int32_t* mag) {
  constexpr int kWindow = 26;
  if (br.bits() < kWindow) return false;
  const uint32_t win = br.peek(kWindow);
  const uint16_t entry =
      t.lookup[win >> (kWindow - HuffDecodeTable::kLookupBits)];
  if (entry == 0) return false;  // long code: decode_symbol's walk
  const int len = entry >> 8;
  const int s = entry & 0x0f;
  br.consume(len + s);
  *sym = entry & 0xff;
  *mag = static_cast<int32_t>((win >> (kWindow - len - s)) &
                              ((1u << s) - 1));
  return true;
}
inline bool decode_sym_mag(RefBitReader&, const HuffDecodeTable&, int*,
                           int32_t*) {
  return false;  // reference reader always takes the bit-serial path
}

// Magnitude bits without the refill check; only valid right after
// ensure_bits + a successful symbol decode (<= 16 bits consumed leaves
// >= 16 buffered — enough for any magnitude width <= 11).
inline int32_t get_bits_hot(FastBitReader& br, int n) {
  if (br.bits() < n) return br.get_bits(n);  // segment tail
  uint32_t v = br.peek(n);
  br.consume(n);
  return static_cast<int32_t>(v);
}
inline int32_t get_bits_hot(RefBitReader& br, int n) {
  return br.get_bits(n);
}

struct FrameComponent {
  int id = 0;
  int h = 1, v = 1;     // sampling factors
  int quant_id = 0;
  int dc_table = 0, ac_table = 0;
  int dc_pred = 0;
};

// Entropy-decode MCUs [mcu_begin, mcu_end) — one restart segment, or the
// whole scan when there are no restart markers. The reader must be
// positioned at the segment's first entropy byte with an empty
// accumulator, and `comps` carries the DC predictors (reset to 0 at
// every restart boundary by the callers). Nonzero-coefficient counts
// accumulate into *nonzero so parallel segment decodes stay disjoint.
template <class Reader>
support::Status decode_mcu_run(
    Reader& br, std::vector<FrameComponent>& comps,
    const std::array<std::array<uint16_t, 64>, 4>& quant_tables,
    const std::array<HuffDecodeTable, 4>& dc_tables,
    const std::array<HuffDecodeTable, 4>& ac_tables, int mcus_x,
    int mcu_begin, int mcu_end, CoeffImage& img, size_t* nonzero,
    bool zero_blocks) {
  for (int mcu = mcu_begin; mcu < mcu_end; ++mcu) {
    const int mx = mcu % mcus_x;
    const int my = mcu / mcus_x;
    for (size_t ci = 0; ci < comps.size(); ++ci) {
      FrameComponent& c = comps[ci];
      const HuffDecodeTable& dct = dc_tables[static_cast<size_t>(c.dc_table)];
      const HuffDecodeTable& act = ac_tables[static_cast<size_t>(c.ac_table)];
      if (!dct.valid || !act.valid) return bad("missing Huffman table");
      const auto& q = quant_tables[static_cast<size_t>(c.quant_id)];
      CoeffPlane& cp = img.comps[ci];
      for (int sy = 0; sy < c.v; ++sy) {
        for (int sx = 0; sx < c.h; ++sx) {
          int bx = mx * c.h + sx;
          int by = my * c.v + sy;
          auto& block =
              cp.blocks[static_cast<size_t>(by) * cp.blocks_w + bx];
          // Reused coefficient buffers are zeroed here (not with a
          // full-image memset at allocation) so the store stays
          // cache-hot; a freshly resized buffer is already
          // value-initialized and skips the second zeroing pass.
          if (zero_blocks) block.fill(0);

          // DC.
          ensure_bits(br);
          int s = 0;
          int32_t dc_bits = 0;
          const bool dc_fused = decode_sym_mag(br, dct, &s, &dc_bits);
          if (!dc_fused) s = decode_symbol(br, dct);
          if (s < 0 || s > 11)
            return entropy_error(br.end_reason(), "bad DC symbol");
          int diff = 0;
          if (s > 0) {
            if (!dc_fused) {
              dc_bits = get_bits_hot(br, s);
              if (dc_bits < 0)
                return entropy_error(br.end_reason(), "truncated DC bits");
            }
            diff = extend(dc_bits, s);
          }
          c.dc_pred += diff;
          block[0] = static_cast<int16_t>(c.dc_pred * q[0]);
          if (c.dc_pred != 0) ++*nonzero;

          // AC.
          int k = 1;
          while (k < 64) {
            ensure_bits(br);
            int rs = 0;
            int32_t bits = 0;
            const bool fused = decode_sym_mag(br, act, &rs, &bits);
            if (!fused) {
              rs = decode_symbol(br, act);
              if (rs < 0)
                return entropy_error(br.end_reason(), "bad AC symbol");
            }
            int run = rs >> 4;
            int sbits = rs & 0x0f;
            if (sbits == 0) {
              if (run == 15) {
                k += 16;  // ZRL
                continue;
              }
              break;  // EOB
            }
            k += run;
            if (k > 63) return bad("AC run overflows block");
            if (!fused) {
              bits = get_bits_hot(br, sbits);
              if (bits < 0)
                return entropy_error(br.end_reason(), "truncated AC bits");
            }
            int v = extend(bits, sbits);
            block[kZigZag[k]] =
                static_cast<int16_t>(v * q[kZigZag[k]]);
            ++*nonzero;
            ++k;
          }
        }
      }
    }
  }
  return support::Status::ok();
}

// Entropy-decode the single interleaved scan into `img`, serially, as a
// chain of restart-delimited MCU runs (one run covering the whole scan
// when there are no restart markers). Shared between the table-driven
// and bit-serial readers; both must produce identical coefficients
// (asserted by tests).
template <class Reader>
support::Status decode_scan(
    Reader& br, std::vector<FrameComponent>& comps,
    const std::array<std::array<uint16_t, 64>, 4>& quant_tables,
    const std::array<HuffDecodeTable, 4>& dc_tables,
    const std::array<HuffDecodeTable, 4>& ac_tables, int mcus_x, int mcus_y,
    int restart_interval, CoeffImage& img, bool zero_blocks) {
  const int total = mcus_x * mcus_y;
  const int run = restart_interval > 0 ? restart_interval : total;
  int restart_index = 0;
  size_t nonzero = 0;
  for (int begin = 0; begin < total; begin += run) {
    if (begin > 0) {
      if (!br.consume_restart(restart_index)) return bad("missing RSTn");
      restart_index = (restart_index + 1) & 7;
      for (FrameComponent& c : comps) c.dc_pred = 0;
    }
    support::Status st = decode_mcu_run(
        br, comps, quant_tables, dc_tables, ac_tables, mcus_x, begin,
        std::min(total, begin + run), img, &nonzero, zero_blocks);
    if (!st.is_ok()) return st;
  }
  img.nonzero_coeffs += nonzero;
  return support::Status::ok();
}

// ---- restart-marker parallel entropy decode --------------------------------
//
// Restart segments are independent by construction (T.81 §F.2.1.3.1):
// byte-aligned, DC predictors reset, delimited by RST(n mod 8) markers.
// A fresh FastBitReader positioned just past a restart marker is in
// exactly the state the serial reader has after consume_restart (empty
// accumulator, end = kNone), and each segment decodes a disjoint
// [mcu_begin, mcu_end) block range, so segments can run on independent
// threads and remain bit-identical to the serial decode.

// One restart-delimited span of the entropy stream.
struct RestartSegment {
  int mcu_begin = 0;
  int mcu_end = 0;  // exclusive
  size_t pos = 0;   // first entropy byte (just past the preceding RSTn)
};

// Walk the entropy stream once, recording where each restart segment
// starts (0xFF00 is a stuffed data byte, anything else 0xFF-prefixed is
// a marker). Returns false when the layout is not the well-formed one
// the parallel decoder handles — a wrong-index or non-RST marker, or the
// stream ending early — in which case the caller falls back to the
// serial path so malformed streams keep their exact serial error text.
bool prescan_restart_segments(const uint8_t* data, size_t size,
                              size_t scan_start, int total_mcus,
                              int restart_interval,
                              std::vector<RestartSegment>* segs) {
  const int nseg = (total_mcus + restart_interval - 1) / restart_interval;
  segs->clear();
  segs->reserve(static_cast<size_t>(nseg));
  size_t pos = scan_start;
  for (int s = 0; s < nseg; ++s) {
    segs->push_back({s * restart_interval,
                     std::min(total_mcus, (s + 1) * restart_interval), pos});
    if (s == nseg - 1) break;  // last segment ends at EOI, not RSTn
    for (;;) {
      if (pos + 1 >= size) return false;  // ran off the stream
      if (data[pos] != 0xff) {
        ++pos;
        continue;
      }
      uint8_t m = data[pos + 1];
      if (m == 0x00) {
        pos += 2;  // stuffed data byte
        continue;
      }
      if (m != static_cast<uint8_t>(kRST0 + (s & 7))) return false;
      pos += 2;
      break;
    }
  }
  return true;
}

// Decode the prescanned segments on up to `workers` threads. Each
// segment's failure set is identical to the serial decode's (same reader
// state, same deterministic walk), so returning the earliest failing
// segment's status reproduces the serial error exactly; the trailing
// RSTn / EOI checks the serial path does between and after runs are
// folded into each segment here.
support::Status decode_scan_restart_parallel(
    const uint8_t* data, size_t size,
    const std::vector<FrameComponent>& comps,
    const std::array<std::array<uint16_t, 64>, 4>& quant_tables,
    const std::array<HuffDecodeTable, 4>& dc_tables,
    const std::array<HuffDecodeTable, 4>& ac_tables, int mcus_x,
    const std::vector<RestartSegment>& segs, int workers, CoeffImage& img,
    bool zero_blocks) {
  const int nseg = static_cast<int>(segs.size());
  std::vector<support::Status> status(static_cast<size_t>(nseg));
  std::vector<size_t> nonzero(static_cast<size_t>(nseg), 0);
  std::atomic<int> next{0};
  auto work = [&]() {
    for (;;) {
      const int s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= nseg) return;
      const RestartSegment& seg = segs[static_cast<size_t>(s)];
      FastBitReader br(data, size);
      br.set_pos(seg.pos);
      std::vector<FrameComponent> local = comps;
      for (FrameComponent& c : local) c.dc_pred = 0;
      support::Status st = decode_mcu_run(
          br, local, quant_tables, dc_tables, ac_tables, mcus_x,
          seg.mcu_begin, seg.mcu_end, img, &nonzero[static_cast<size_t>(s)],
          zero_blocks);
      if (st.is_ok()) {
        if (s + 1 < nseg) {
          // The segment must end exactly at its own restart marker (the
          // prescan found one, but a short segment can leave undecoded
          // entropy bytes before it — serial fails there too).
          if (!br.consume_restart(s & 7)) st = bad("missing RSTn");
        } else if (!br.at_trailing_marker(kEOI)) {
          st = bad("entropy data not terminated by EOI");
        }
      }
      status[static_cast<size_t>(s)] = st;
    }
  };
  const int nthreads = std::max(1, std::min(workers, nseg));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nthreads - 1));
  for (int i = 1; i < nthreads; ++i) threads.emplace_back(work);
  work();
  for (std::thread& t : threads) t.join();
  for (int s = 0; s < nseg; ++s) {
    if (!status[static_cast<size_t>(s)].is_ok())
      return status[static_cast<size_t>(s)];
    img.nonzero_coeffs += nonzero[static_cast<size_t>(s)];
  }
  return support::Status::ok();
}

// ---- inverse DCT ---------------------------------------------------------------

// Float reference tables: scale(u) * cos[(2x+1) u pi / 16], indexed [x][u].
struct IdctTables {
  float c[8][8];
  IdctTables() {
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        float s = u == 0 ? std::sqrt(0.125f) : 0.5f;
        c[x][u] =
            s * std::cos((2 * x + 1) * u * 3.14159265358979323846f / 16);
      }
    }
  }
};

const IdctTables& idct_tables() {
  static const IdctTables t;
  return t;
}

// ---- fixed-point AAN IDCT ----------------------------------------------------
//
// Arai-Agui-Nakajima separable 8-point IDCT (the jidctfst flowgraph): 5
// multiplies + 29 adds per 1-D pass instead of 64 multiply-accumulates.
// Inputs are pre-scaled by s[u]*s[v] (s[0] = 1, s[k] = sqrt(2) cos(k
// pi/16)) folded into one 3.12 fixed-point multiplier table built once;
// the flowgraph then needs only four irrational constants. 64-bit
// intermediates keep the whole computation exact to well under 1 LSB of
// the float reference (asserted by tests).

// The shift amounts and irrational constants are shared with the vector
// IDCT tiers (media/kernels_simd.hpp) so scalar and SIMD run the same
// fixed-point flowgraph by construction.
using media::detail::kAanPrescaleBits;
using media::detail::kAanConstBits;
using media::detail::kAanPass1Shift;
using media::detail::kAanFinalShift;
using media::detail::kFix1_414213562;
using media::detail::kFix1_847759065;
using media::detail::kFix1_082392200;
using media::detail::kFix2_613125930;

inline int64_t aan_mul(int64_t x, int32_t k) {
  return (x * k + (1 << (kAanConstBits - 1))) >> kAanConstBits;
}

struct AanPrescale {
  int32_t m[64];
  AanPrescale() {
    for (int v = 0; v < 8; ++v) {
      for (int u = 0; u < 8; ++u) {
        double sv = v == 0 ? 1.0 : std::sqrt(2.0) *
                                       std::cos(v * 3.14159265358979323846 / 16);
        double su = u == 0 ? 1.0 : std::sqrt(2.0) *
                                       std::cos(u * 3.14159265358979323846 / 16);
        m[v * 8 + u] = static_cast<int32_t>(
            std::lround(sv * su * (1 << kAanPrescaleBits)));
      }
    }
  }
};

const AanPrescale& aan_prescale() {
  static const AanPrescale t;
  return t;
}

// One AAN 1-D inverse pass on eight int64 inputs (in flowgraph order
// 0..7 = frequencies), producing spatial samples x0..x7.
inline void aan_pass(int64_t i0, int64_t i1, int64_t i2, int64_t i3,
                     int64_t i4, int64_t i5, int64_t i6, int64_t i7,
                     int64_t out[8]) {
  // Even part.
  int64_t tmp10 = i0 + i4;
  int64_t tmp11 = i0 - i4;
  int64_t tmp13 = i2 + i6;
  int64_t tmp12 = aan_mul(i2 - i6, kFix1_414213562) - tmp13;
  int64_t e0 = tmp10 + tmp13;
  int64_t e3 = tmp10 - tmp13;
  int64_t e1 = tmp11 + tmp12;
  int64_t e2 = tmp11 - tmp12;

  // Odd part.
  int64_t z13 = i5 + i3;
  int64_t z10 = i5 - i3;
  int64_t z11 = i1 + i7;
  int64_t z12 = i1 - i7;
  int64_t o7 = z11 + z13;
  int64_t t11 = aan_mul(z11 - z13, kFix1_414213562);
  int64_t z5 = aan_mul(z10 + z12, kFix1_847759065);
  int64_t t10 = aan_mul(z12, kFix1_082392200) - z5;
  int64_t t12 = z5 - aan_mul(z10, kFix2_613125930);
  int64_t o6 = t12 - o7;
  int64_t o5 = t11 - o6;
  int64_t o4 = t10 + o5;

  out[0] = e0 + o7;
  out[7] = e0 - o7;
  out[1] = e1 + o6;
  out[6] = e1 - o6;
  out[2] = e2 + o5;
  out[5] = e2 - o5;
  out[4] = e3 + o4;
  out[3] = e3 - o4;
}

}  // namespace

void idct_block_float(const int16_t in[64], float out[64]) {
  const IdctTables& t = idct_tables();
  float tmp[64];
  // rows: for each row v, inverse over u
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int u = 0; u < 8; ++u)
        acc += static_cast<float>(in[v * 8 + u]) * t.c[x][u];
      tmp[v * 8 + x] = acc;
    }
  }
  // columns
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int v = 0; v < 8; ++v) acc += tmp[v * 8 + x] * t.c[y][v];
      out[y * 8 + x] = acc;
    }
  }
}

void idct_block_fixed(const int16_t in[64], uint8_t out[64]) {
  // Routed through the runtime kernel dispatch table: the scalar
  // reference below, or a bit-exact vector tier (media::KernelDispatch).
  detail::kernel_ops()->idct8x8(in, aan_prescale().m, out, 8);
}

}  // namespace media::jpeg

namespace media::detail {

// The scalar fixed-point AAN IDCT: the bit-exactness reference every
// vector tier must match (and their per-block overflow fallback beyond
// kSimdIdctMaxCoef).
void idct8x8_scalar(const int16_t in[64], const int32_t prescale[64],
                    uint8_t* out, int stride) {
  const int32_t* m = prescale;
  int32_t ws[64];
  int64_t v[8];

  // Pass 1: columns, with the prescale multipliers folded into the load.
  for (int c = 0; c < 8; ++c) {
    if (in[8 + c] == 0 && in[16 + c] == 0 && in[24 + c] == 0 &&
        in[32 + c] == 0 && in[40 + c] == 0 && in[48 + c] == 0 &&
        in[56 + c] == 0) {
      // All-AC-zero column: the flowgraph degenerates to a constant.
      int32_t dc = static_cast<int32_t>(
          (static_cast<int64_t>(in[c]) * m[c] + (1 << (kAanPass1Shift - 1)))
          >> kAanPass1Shift);
      for (int r = 0; r < 8; ++r) ws[r * 8 + c] = dc;
      continue;
    }
    jpeg::aan_pass(static_cast<int64_t>(in[c]) * m[c],
                   static_cast<int64_t>(in[8 + c]) * m[8 + c],
                   static_cast<int64_t>(in[16 + c]) * m[16 + c],
                   static_cast<int64_t>(in[24 + c]) * m[24 + c],
                   static_cast<int64_t>(in[32 + c]) * m[32 + c],
                   static_cast<int64_t>(in[40 + c]) * m[40 + c],
                   static_cast<int64_t>(in[48 + c]) * m[48 + c],
                   static_cast<int64_t>(in[56 + c]) * m[56 + c], v);
    for (int r = 0; r < 8; ++r)
      ws[r * 8 + c] = static_cast<int32_t>(
          (v[r] + (1 << (kAanPass1Shift - 1))) >> kAanPass1Shift);
  }

  // Pass 2: rows, then descale, level-shift, clamp.
  for (int r = 0; r < 8; ++r) {
    const int32_t* w = ws + r * 8;
    jpeg::aan_pass(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], v);
    uint8_t* o = out + r * stride;
    for (int x = 0; x < 8; ++x) {
      int p = static_cast<int>((v[x] + (1 << (kAanFinalShift - 1))) >>
                               kAanFinalShift) +
              128;
      o[x] = static_cast<uint8_t>(p < 0 ? 0 : (p > 255 ? 255 : p));
    }
  }
}

}  // namespace media::detail

namespace media::jpeg {

support::Status decode_to_coefficients_into(const uint8_t* data, size_t size,
                                            CoeffImage* out, HuffmanImpl impl,
                                            int workers) {
  if (size < 4 || data[0] != 0xff || data[1] != kSOI)
    return bad("missing SOI marker");

  std::array<std::array<uint16_t, 64>, 4> quant_tables{};
  std::array<bool, 4> quant_present{};
  std::array<HuffDecodeTable, 4> dc_tables;
  std::array<HuffDecodeTable, 4> ac_tables;
  std::vector<FrameComponent> comps;
  int width = 0, height = 0;
  int restart_interval = 0;
  size_t pos = 2;
  size_t scan_start = 0;

  // --- marker segment parsing ---
  while (pos + 1 < size) {
    if (data[pos] != 0xff) return bad("expected marker");
    uint8_t marker = data[pos + 1];
    pos += 2;
    if (marker == kEOI) return bad("EOI before SOS");
    if (marker >= kRST0 && marker <= kRST0 + 7) continue;
    if (pos + 1 >= size) return bad("truncated segment");
    size_t seg_len = static_cast<size_t>(data[pos]) << 8 | data[pos + 1];
    if (seg_len < 2 || pos + seg_len > size) return bad("bad segment length");
    const uint8_t* seg = data + pos + 2;
    size_t len = seg_len - 2;

    switch (marker) {
      case kDQT: {
        size_t off = 0;
        while (off < len) {
          int precision = seg[off] >> 4;
          int id = seg[off] & 0x0f;
          if (id > 3) return bad("bad DQT id");
          ++off;
          size_t entry = precision ? 2 : 1;
          if (off + 64 * entry > len) return bad("truncated DQT");
          for (int i = 0; i < 64; ++i) {
            uint16_t q = precision
                             ? static_cast<uint16_t>(seg[off] << 8 | seg[off + 1])
                             : seg[off];
            quant_tables[static_cast<size_t>(id)][kZigZag[i]] = q;
            off += entry;
          }
          quant_present[static_cast<size_t>(id)] = true;
        }
        break;
      }
      case kDHT: {
        size_t off = 0;
        while (off + 17 <= len) {
          int cls = seg[off] >> 4;
          int id = seg[off] & 0x0f;
          if (cls > 1 || id > 3) return bad("bad DHT header");
          const uint8_t* bits = seg + off + 1;
          int count = 0;
          for (int i = 0; i < 16; ++i) count += bits[i];
          if (off + 17 + static_cast<size_t>(count) > len)
            return bad("truncated DHT");
          HuffDecodeTable t =
              build_decode_table(bits, seg + off + 17, count);
          if (!t.valid) return bad("inconsistent DHT");
          (cls == 0 ? dc_tables : ac_tables)[static_cast<size_t>(id)] =
              std::move(t);
          off += 17 + static_cast<size_t>(count);
        }
        break;
      }
      case kSOF0: {
        if (len < 6) return bad("truncated SOF0");
        if (seg[0] != 8) return bad("only 8-bit precision supported");
        height = seg[1] << 8 | seg[2];
        width = seg[3] << 8 | seg[4];
        int ncomp = seg[5];
        if (width <= 0 || height <= 0) return bad("bad dimensions");
        if (ncomp != 1 && ncomp != 3)
          return bad("only 1- or 3-component images supported");
        if (len < 6 + 3 * static_cast<size_t>(ncomp))
          return bad("truncated SOF0 components");
        comps.resize(static_cast<size_t>(ncomp));
        for (int i = 0; i < ncomp; ++i) {
          FrameComponent& c = comps[static_cast<size_t>(i)];
          c.id = seg[6 + 3 * i];
          c.h = seg[7 + 3 * i] >> 4;
          c.v = seg[7 + 3 * i] & 0x0f;
          c.quant_id = seg[8 + 3 * i];
          if (c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2 || c.quant_id > 3)
            return bad("unsupported sampling / quant id");
        }
        break;
      }
      case kSOF0 + 1:
      case kSOF0 + 2:
        return bad("only baseline (SOF0) is supported");
      case kDRI:
        if (len < 2) return bad("truncated DRI");
        restart_interval = seg[0] << 8 | seg[1];
        break;
      case kSOS: {
        if (comps.empty()) return bad("SOS before SOF0");
        if (len < 1) return bad("truncated SOS");
        int ns = seg[0];
        if (ns != static_cast<int>(comps.size()))
          return bad("progressive/multi-scan images not supported");
        if (len < 1 + 2 * static_cast<size_t>(ns) + 3)
          return bad("truncated SOS header");
        for (int i = 0; i < ns; ++i) {
          int cid = seg[1 + 2 * i];
          int tables = seg[2 + 2 * i];
          bool found = false;
          for (FrameComponent& c : comps) {
            if (c.id == cid) {
              c.dc_table = tables >> 4;
              c.ac_table = tables & 0x0f;
              found = true;
            }
          }
          if (!found) return bad("SOS references unknown component");
        }
        scan_start = pos + seg_len;
        break;
      }
      default:
        break;  // APPn / COM / others: skip
    }
    pos += seg_len;
    if (scan_start) break;
  }
  if (!scan_start) return bad("no SOS marker found");

  // Validate sampling: all 1x1, or 2x2 luma with 1x1 chroma.
  bool yuv420 = false;
  if (comps.size() == 3) {
    if (comps[0].h == 2 && comps[0].v == 2 && comps[1].h == 1 &&
        comps[1].v == 1 && comps[2].h == 1 && comps[2].v == 1) {
      yuv420 = true;
    } else if (!(comps[0].h == 1 && comps[0].v == 1 && comps[1].h == 1 &&
                 comps[1].v == 1 && comps[2].h == 1 && comps[2].v == 1)) {
      return bad("only 4:2:0 and 4:4:4 sampling supported");
    }
  }

  CoeffImage& img = *out;
  img.width = width;
  img.height = height;
  img.format = comps.size() == 1
                   ? PixelFormat::kGray
                   : (yuv420 ? PixelFormat::kYuv420 : PixelFormat::kYuv444);
  img.compressed_bytes = size;
  img.nonzero_coeffs = 0;

  const int h_max = yuv420 ? 2 : 1;
  const int v_max = yuv420 ? 2 : 1;
  const int mcus_x = (width + 8 * h_max - 1) / (8 * h_max);
  const int mcus_y = (height + 8 * v_max - 1) / (8 * v_max);

  img.comps.resize(comps.size());
  // A buffer growing from empty is value-initialized by the resize, so
  // decode need not zero blocks again; a reused buffer (streaming MJPEG
  // decode) skips the multi-megabyte cold memset + page-fault pass here
  // and is instead zeroed block-by-block as decode reaches it, where the
  // store is cache-hot.
  bool zero_blocks = false;
  for (size_t i = 0; i < comps.size(); ++i) {
    const FrameComponent& c = comps[i];
    if (!quant_present[static_cast<size_t>(c.quant_id)])
      return bad("missing quantization table");
    CoeffPlane& cp = img.comps[i];
    cp.blocks_w = mcus_x * c.h;
    cp.blocks_h = mcus_y * c.v;
    int pw = 0, ph = 0;
    plane_dims(img.format, width, height, static_cast<int>(i), &pw, &ph);
    cp.width = pw;
    cp.height = ph;
    if (!cp.blocks.empty()) zero_blocks = true;
    cp.blocks.resize(
        static_cast<size_t>(cp.blocks_w) * static_cast<size_t>(cp.blocks_h));
  }

  // --- entropy decode ---
  if (impl == HuffmanImpl::kLookupTable) {
    // Restart-parallel path: only for well-formed restart layouts (the
    // prescan proves every delimiter is in place); anything else decodes
    // serially so malformed streams keep their exact serial error text.
    if (workers > 1 && restart_interval > 0 && mcus_x * mcus_y > 1) {
      std::vector<RestartSegment> segs;
      if (prescan_restart_segments(data, size, scan_start, mcus_x * mcus_y,
                                   restart_interval, &segs) &&
          segs.size() > 1) {
        return decode_scan_restart_parallel(data, size, comps, quant_tables,
                                            dc_tables, ac_tables, mcus_x,
                                            segs, workers, img, zero_blocks);
      }
    }
    FastBitReader br(data, size);
    br.set_pos(scan_start);
    support::Status st =
        decode_scan(br, comps, quant_tables, dc_tables, ac_tables, mcus_x,
                    mcus_y, restart_interval, img, zero_blocks);
    if (!st.is_ok()) return st;
    if (!br.at_trailing_marker(kEOI))
      return bad("entropy data not terminated by EOI");
  } else {
    RefBitReader br(data, size);
    br.set_pos(scan_start);
    support::Status st =
        decode_scan(br, comps, quant_tables, dc_tables, ac_tables, mcus_x,
                    mcus_y, restart_interval, img, zero_blocks);
    if (!st.is_ok()) return st;
    if (!br.at_trailing_marker(kEOI))
      return bad("entropy data not terminated by EOI");
  }
  return support::Status::ok();
}

support::Result<CoeffImage> decode_to_coefficients(const uint8_t* data,
                                                   size_t size,
                                                   HuffmanImpl impl,
                                                   int workers) {
  CoeffImage img;
  support::Status st =
      decode_to_coefficients_into(data, size, &img, impl, workers);
  if (!st.is_ok()) return st;
  return img;
}

namespace {

// Shared IDCT body of idct_component and idct_downscale: transform
// block rows [block_row0, block_row1) into `out`, whose row 0 is
// source pixel row `row_base` (always a multiple of 8). `out` must
// cover the clipped pixel rows of those blocks. Identical arithmetic
// regardless of row_base, so the strip-buffered fused path is
// bit-identical to the full-plane path.
void idct_block_rows(const CoeffPlane& comp, PlaneView out, int block_row0,
                     int block_row1, int row_base, IdctImpl impl) {
  if (block_row0 < 0) block_row0 = 0;
  if (block_row1 > comp.blocks_h) block_row1 = comp.blocks_h;
  if (impl == IdctImpl::kFloatReference) {
    float pixels[64];
    for (int by = block_row0; by < block_row1; ++by) {
      for (int bx = 0; bx < comp.blocks_w; ++bx) {
        idct_block_float(
            comp.blocks[static_cast<size_t>(by) * comp.blocks_w + bx].data(),
            pixels);
        const int y_end = std::min(8, comp.height - by * 8);
        const int x_end = std::min(8, comp.width - bx * 8);
        for (int y = 0; y < y_end; ++y) {
          uint8_t* row = out.row(by * 8 + y - row_base) + bx * 8;
          for (int x = 0; x < x_end; ++x) {
            int v = static_cast<int>(std::lround(pixels[y * 8 + x])) + 128;
            row[x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
          }
        }
      }
    }
    return;
  }
  // Hoist the dispatch-table fetch out of the block loop, and let
  // interior blocks write the plane directly (stride = plane stride);
  // only blocks clipped by the right/bottom plane edge stage through a
  // packed 64-byte buffer.
  const detail::KernelOps* ops = detail::kernel_ops();
  const int32_t* prescale = aan_prescale().m;
  uint8_t pixels[64];
  for (int by = block_row0; by < block_row1; ++by) {
    const int y_end = std::min(8, comp.height - by * 8);
    if (y_end <= 0) continue;
    uint8_t* row0 = out.row(by * 8 - row_base);
    for (int bx = 0; bx < comp.blocks_w; ++bx) {
      const int x_end = std::min(8, comp.width - bx * 8);
      if (x_end <= 0) continue;  // padding block right of the plane
      const int16_t* block =
          comp.blocks[static_cast<size_t>(by) * comp.blocks_w + bx].data();
      if (x_end == 8 && y_end == 8) {
        ops->idct8x8(block, prescale, row0 + bx * 8, out.stride);
        continue;
      }
      ops->idct8x8(block, prescale, pixels, 8);
      for (int y = 0; y < y_end; ++y)
        std::memcpy(out.row(by * 8 + y - row_base) + bx * 8, pixels + y * 8,
                    static_cast<size_t>(x_end));
    }
  }
}

}  // namespace

void idct_component(const CoeffPlane& comp, PlaneView out, int block_row0,
                    int block_row1, IdctImpl impl) {
  SUP_CHECK(out.width == comp.width && out.height == comp.height);
  idct_block_rows(comp, out, block_row0, block_row1, /*row_base=*/0, impl);
}

void idct_downscale(const CoeffPlane& comp, PlaneView dst, int factor,
                    int row0, int row1, IdctImpl impl) {
  SUP_CHECK(factor >= 1);
  SUP_CHECK(comp.width >= dst.width * factor);
  SUP_CHECK(comp.height >= dst.height * factor);
  row0 = std::max(row0, 0);
  row1 = std::min(row1, dst.height);
  if (row0 >= row1) return;
  // Strip chunks aligned to the lcm(8, factor) source-row grid: chunk
  // boundaries coincide with block-row boundaries, so consecutive
  // chunks (and adjacent slices) never re-IDCT a block row.
  const int lcm = 8 * factor / std::gcd(8, factor);
  const int chunk_out_rows = lcm / factor;
  std::vector<uint8_t> strip;
  for (int oy = row0; oy < row1;) {
    const int chunk_begin = (oy / chunk_out_rows) * chunk_out_rows;
    const int a = std::max(oy, chunk_begin);
    const int b = std::min(row1, chunk_begin + chunk_out_rows);
    const int src_a = a * factor;          // first source row needed
    const int src_b = b * factor;          // one past the last
    const int block_row0 = src_a / 8;      // floor
    const int block_row1 = (src_b + 7) / 8;
    const int strip_base = block_row0 * 8;
    const int strip_rows =
        std::min(block_row1 * 8, comp.height) - strip_base;
    strip.resize(static_cast<size_t>(strip_rows) *
                 static_cast<size_t>(comp.width));
    PlaneView sv{strip.data(), comp.width, strip_rows, comp.width};
    idct_block_rows(comp, sv, block_row0, block_row1, strip_base, impl);
    // Box-average rows [a, b) of dst straight out of the strip: shifted
    // sub-views line the row indices up so the shared downscale kernel
    // (and its dispatch tiers) runs unchanged.
    ConstPlaneView strip_src{
        strip.data() +
            static_cast<ptrdiff_t>(src_a - strip_base) * comp.width,
        comp.width, src_b - src_a, comp.width};
    PlaneView dst_rows{dst.row(a), dst.width, b - a, dst.stride};
    downscale_box(strip_src, dst_rows, factor, 0, b - a);
    oy = b;
  }
}

support::Result<FramePtr> decode(const uint8_t* data, size_t size) {
  SUP_ASSIGN_OR_RETURN(CoeffImage img, decode_to_coefficients(data, size));
  FramePtr frame = make_frame(img.format, img.width, img.height);
  for (int c = 0; c < static_cast<int>(img.comps.size()); ++c) {
    const CoeffPlane& cp = img.comps[static_cast<size_t>(c)];
    idct_component(cp, frame->plane(c), 0, cp.blocks_h);
  }
  return frame;
}

uint64_t entropy_decode_cycles(size_t compressed_bytes, size_t total_blocks) {
  // Bit-serial Huffman decoding: ~12 cycles per compressed byte plus fixed
  // per-block bookkeeping. This models the simulated TriMedia-like core,
  // NOT the host decoder — host-side optimizations must never change it
  // (see docs/PERF.md).
  return static_cast<uint64_t>(compressed_bytes) * 12 +
         static_cast<uint64_t>(total_blocks) * 24;
}

uint64_t idct_cycles(uint64_t blocks) {
  // Separable 8-point IDCT: ~480 multiply-accumulates + clamp per block.
  // Simulated-core cost; frozen independently of the host implementation.
  return blocks * 520;
}

uint64_t idct_downscale_cycles(uint64_t blocks, int out_width, int out_rows,
                               int factor) {
  // Both stages' arithmetic; the elided full-size intermediate plane is
  // the cache model's to account for (same convention as
  // media::downscale_blend_cycles).
  return idct_cycles(blocks) +
         downscale_cycles(out_width, out_rows, factor);
}

}  // namespace media::jpeg
