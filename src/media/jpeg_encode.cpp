#include <cmath>
#include <cstring>

#include "media/jpeg.hpp"
#include "media/jpeg_common.hpp"
#include "support/strings.hpp"

namespace media::jpeg {
namespace {

// ---- bit writer with 0xFF byte stuffing -------------------------------------

class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>& out) : out_(out) {}

  // Byte-align (1-fill) and emit a restart marker (T.81 §B.2.1.2).
  void restart(int index) {
    flush();
    out_.push_back(0xff);
    out_.push_back(static_cast<uint8_t>(kRST0 + (index & 7)));
  }

  void put_bits(uint32_t bits, int count) {
    SUP_DCHECK(count >= 0 && count <= 24);
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    nbits_ += count;
    while (nbits_ >= 8) {
      uint8_t byte = static_cast<uint8_t>((acc_ >> (nbits_ - 8)) & 0xff);
      out_.push_back(byte);
      if (byte == 0xff) out_.push_back(0x00);  // stuffing
      nbits_ -= 8;
    }
  }

  // Pad with 1-bits to a byte boundary (T.81 §B.1.1.5).
  void flush() {
    if (nbits_ > 0) put_bits(0x7f, 8 - nbits_);
  }

 private:
  std::vector<uint8_t>& out_;
  uint64_t acc_ = 0;
  int nbits_ = 0;
};

// ---- forward DCT -------------------------------------------------------------

struct DctTables {
  // cos[(2x+1) u pi / 16] * scale(u), indexed [u][x]
  float c[8][8];
  DctTables() {
    for (int u = 0; u < 8; ++u) {
      float s = u == 0 ? std::sqrt(0.125f) : 0.5f;
      for (int x = 0; x < 8; ++x)
        c[u][x] = s * std::cos((2 * x + 1) * u * 3.14159265358979323846f / 16);
    }
  }
};

const DctTables& dct_tables() {
  static const DctTables t;
  return t;
}

// 2-D DCT-II of a level-shifted 8x8 block.
void fdct(const float in[64], float out[64]) {
  const DctTables& t = dct_tables();
  float tmp[64];
  // rows
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * t.c[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  // columns
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * t.c[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

// Number of bits needed to represent |v| (JPEG "magnitude category").
int magnitude_bits(int v) {
  int a = v < 0 ? -v : v;
  int n = 0;
  while (a) {
    ++n;
    a >>= 1;
  }
  return n;
}

// ---- per-component encoding state --------------------------------------------

struct ComponentEnc {
  const std::array<uint16_t, 64>* quant;
  const HuffEncodeTable* dc;
  const HuffEncodeTable* ac;
  int prev_dc = 0;
};

// Extract the 8x8 block at (bx, by) from a plane, replicating edge pixels,
// level-shifted by -128.
void extract_block(ConstPlaneView p, int bx, int by, float out[64]) {
  for (int y = 0; y < 8; ++y) {
    int sy = by * 8 + y;
    if (sy >= p.height) sy = p.height - 1;
    const uint8_t* row = p.row(sy);
    for (int x = 0; x < 8; ++x) {
      int sx = bx * 8 + x;
      if (sx >= p.width) sx = p.width - 1;
      out[y * 8 + x] = static_cast<float>(row[sx]) - 128.0f;
    }
  }
}

void encode_block(BitWriter& bw, ComponentEnc& comp, const float pixels[64]) {
  float freq[64];
  fdct(pixels, freq);

  // Quantize into zig-zag order.
  int16_t zz[64];
  for (int i = 0; i < 64; ++i) {
    float q = freq[kZigZag[i]] / static_cast<float>((*comp.quant)[kZigZag[i]]);
    zz[i] = static_cast<int16_t>(std::lround(q));
  }

  // DC coefficient: difference from predictor.
  int diff = zz[0] - comp.prev_dc;
  comp.prev_dc = zz[0];
  int nbits = magnitude_bits(diff);
  SUP_CHECK(comp.dc->size[static_cast<size_t>(nbits)] != 0);
  bw.put_bits(comp.dc->code[static_cast<size_t>(nbits)],
              comp.dc->size[static_cast<size_t>(nbits)]);
  if (nbits > 0) {
    int bits = diff < 0 ? diff + (1 << nbits) - 1 : diff;
    bw.put_bits(static_cast<uint32_t>(bits), nbits);
  }

  // AC coefficients: run-length of zeros + magnitude.
  int run = 0;
  for (int i = 1; i < 64; ++i) {
    if (zz[i] == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      bw.put_bits(comp.ac->code[0xf0], comp.ac->size[0xf0]);  // ZRL
      run -= 16;
    }
    int abits = magnitude_bits(zz[i]);
    uint8_t sym = static_cast<uint8_t>((run << 4) | abits);
    SUP_CHECK(comp.ac->size[sym] != 0);
    bw.put_bits(comp.ac->code[sym], comp.ac->size[sym]);
    int bits = zz[i] < 0 ? zz[i] + (1 << abits) - 1 : zz[i];
    bw.put_bits(static_cast<uint32_t>(bits), abits);
    run = 0;
  }
  if (run > 0) bw.put_bits(comp.ac->code[0x00], comp.ac->size[0x00]);  // EOB
}

// ---- header segments -----------------------------------------------------------

void put_marker(std::vector<uint8_t>& out, uint8_t marker) {
  out.push_back(0xff);
  out.push_back(marker);
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void put_dqt(std::vector<uint8_t>& out, int id,
             const std::array<uint16_t, 64>& table) {
  put_marker(out, kDQT);
  put_u16(out, 2 + 1 + 64);
  out.push_back(static_cast<uint8_t>(id));  // precision 0, table id
  for (int i = 0; i < 64; ++i)
    out.push_back(static_cast<uint8_t>(table[kZigZag[i]]));
}

void put_dht(std::vector<uint8_t>& out, int cls, int id,
             const HuffSpec& spec) {
  put_marker(out, kDHT);
  put_u16(out, static_cast<uint16_t>(2 + 1 + 16 + spec.value_count));
  out.push_back(static_cast<uint8_t>((cls << 4) | id));
  for (int i = 0; i < 16; ++i) out.push_back(spec.bits[i]);
  for (int i = 0; i < spec.value_count; ++i) out.push_back(spec.values[i]);
}

}  // namespace

support::Result<std::vector<uint8_t>> encode(const Frame& frame, int quality,
                                             int restart_interval) {
  if (quality < 1 || quality > 100)
    return support::invalid_argument("JPEG quality must be in [1, 100]");
  if (restart_interval < 0 || restart_interval > 65535)
    return support::invalid_argument(
        "JPEG restart interval must be in [0, 65535]");
  const bool gray = frame.format() == PixelFormat::kGray;
  if (!gray && frame.format() != PixelFormat::kYuv420)
    return support::unimplemented(
        "JPEG encoder supports kGray and kYuv420 input");
  if (frame.width() > 65535 || frame.height() > 65535)
    return support::invalid_argument("frame too large for JPEG");

  const auto luma_q = scale_quant_table(kStdLumaQuant, quality);
  const auto chroma_q = scale_quant_table(kStdChromaQuant, quality);
  const HuffEncodeTable dc_l = build_encode_table(std_dc_luma());
  const HuffEncodeTable ac_l = build_encode_table(std_ac_luma());
  const HuffEncodeTable dc_c = build_encode_table(std_dc_chroma());
  const HuffEncodeTable ac_c = build_encode_table(std_ac_chroma());

  std::vector<uint8_t> out;
  out.reserve(frame.bytes() / 4);

  put_marker(out, kSOI);
  put_dqt(out, 0, luma_q);
  if (!gray) put_dqt(out, 1, chroma_q);

  // SOF0.
  put_marker(out, kSOF0);
  const int ncomp = gray ? 1 : 3;
  put_u16(out, static_cast<uint16_t>(8 + 3 * ncomp));
  out.push_back(8);  // precision
  put_u16(out, static_cast<uint16_t>(frame.height()));
  put_u16(out, static_cast<uint16_t>(frame.width()));
  out.push_back(static_cast<uint8_t>(ncomp));
  if (gray) {
    out.push_back(1);     // component id
    out.push_back(0x11);  // 1x1 sampling
    out.push_back(0);     // quant table 0
  } else {
    out.push_back(1);
    out.push_back(0x22);  // Y: 2x2
    out.push_back(0);
    out.push_back(2);
    out.push_back(0x11);  // Cb
    out.push_back(1);
    out.push_back(3);
    out.push_back(0x11);  // Cr
    out.push_back(1);
  }

  if (restart_interval > 0) {
    put_marker(out, kDRI);
    put_u16(out, 4);
    put_u16(out, static_cast<uint16_t>(restart_interval));
  }

  put_dht(out, 0, 0, std_dc_luma());
  put_dht(out, 1, 0, std_ac_luma());
  if (!gray) {
    put_dht(out, 0, 1, std_dc_chroma());
    put_dht(out, 1, 1, std_ac_chroma());
  }

  // SOS.
  put_marker(out, kSOS);
  put_u16(out, static_cast<uint16_t>(6 + 2 * ncomp));
  out.push_back(static_cast<uint8_t>(ncomp));
  out.push_back(1);
  out.push_back(0x00);  // Y uses DC 0 / AC 0
  if (!gray) {
    out.push_back(2);
    out.push_back(0x11);
    out.push_back(3);
    out.push_back(0x11);
  }
  out.push_back(0);     // spectral start
  out.push_back(63);    // spectral end
  out.push_back(0);     // successive approximation

  // Entropy-coded data.
  BitWriter bw(out);
  float pixels[64];
  int mcu_count = 0;
  int restart_index = 0;
  // Between MCUs: emit RSTn and reset the DC predictors every
  // `restart_interval` MCUs.
  auto maybe_restart = [&](std::initializer_list<ComponentEnc*> comps) {
    if (restart_interval <= 0) return;
    if (mcu_count == restart_interval) {
      bw.restart(restart_index);
      restart_index = (restart_index + 1) & 7;
      mcu_count = 0;
      for (ComponentEnc* c : comps) c->prev_dc = 0;
    }
  };
  if (gray) {
    ComponentEnc y{&luma_q, &dc_l, &ac_l, 0};
    ConstPlaneView p = frame.plane(0);
    const int bw_blocks = (p.width + 7) / 8;
    const int bh_blocks = (p.height + 7) / 8;
    for (int by = 0; by < bh_blocks; ++by) {
      for (int bx = 0; bx < bw_blocks; ++bx) {
        maybe_restart({&y});
        extract_block(p, bx, by, pixels);
        encode_block(bw, y, pixels);
        ++mcu_count;
      }
    }
  } else {
    ComponentEnc yc{&luma_q, &dc_l, &ac_l, 0};
    ComponentEnc uc{&chroma_q, &dc_c, &ac_c, 0};
    ComponentEnc vc{&chroma_q, &dc_c, &ac_c, 0};
    ConstPlaneView yp = frame.plane(0);
    ConstPlaneView up = frame.plane(1);
    ConstPlaneView vp = frame.plane(2);
    const int mcus_x = (frame.width() + 15) / 16;
    const int mcus_y = (frame.height() + 15) / 16;
    for (int my = 0; my < mcus_y; ++my) {
      for (int mx = 0; mx < mcus_x; ++mx) {
        maybe_restart({&yc, &uc, &vc});
        for (int sy = 0; sy < 2; ++sy) {
          for (int sx = 0; sx < 2; ++sx) {
            extract_block(yp, mx * 2 + sx, my * 2 + sy, pixels);
            encode_block(bw, yc, pixels);
          }
        }
        extract_block(up, mx, my, pixels);
        encode_block(bw, uc, pixels);
        extract_block(vp, mx, my, pixels);
        encode_block(bw, vc, pixels);
        ++mcu_count;
      }
    }
  }
  bw.flush();
  put_marker(out, kEOI);
  return out;
}

uint64_t encode_cycles(uint64_t blocks, size_t compressed_bytes) {
  // FDCT (~same arithmetic as the IDCT) + quantization per block, plus
  // bit-serial entropy coding per output byte.
  return blocks * 600 + static_cast<uint64_t>(compressed_bytes) * 10;
}

}  // namespace media::jpeg
