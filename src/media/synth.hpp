// Deterministic synthetic video generation.
//
// The paper's inputs are proprietary uncompressed / MJPEG clips; we
// substitute moving-pattern video that exercises the same code paths and
// is fully reproducible from a seed (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>

#include "media/frame.hpp"

namespace media {

// Parameters for the synthetic clip. A clip is identified by (seed, size);
// frame `t` is a pure function of those, so any frame can be generated
// independently (components generating slices in parallel stay coherent).
struct SynthSpec {
  uint64_t seed = 1;
  int width = 320;
  int height = 240;
  PixelFormat format = PixelFormat::kYuv420;
};

// Render frame index `t` of the clip into `out` (must match the spec's
// format and size). The content mixes a moving diagonal gradient, a
// bouncing rectangle, and a phase-shifting checkerboard so that JPEG
// encoding sees realistic mixed-frequency content.
void render_synth_frame(const SynthSpec& spec, int t, Frame& out);

// Convenience: allocate and render.
FramePtr make_synth_frame(const SynthSpec& spec, int t);

}  // namespace media
