// Image quality metrics used in tests to validate the JPEG codec and the
// equivalence of XSPCL and hand-written application outputs.
#pragma once

#include "media/frame.hpp"

namespace media {

// Mean squared error between two planes of identical size.
double mse(ConstPlaneView a, ConstPlaneView b);

// Peak signal-to-noise ratio over all planes (dB). Returns +inf for
// identical frames. Frames must have identical format and size.
double psnr(const Frame& a, const Frame& b);

// Largest absolute pixel difference over all planes.
int max_abs_diff(const Frame& a, const Frame& b);

// FNV-1a offset basis, the seed for frame_hash chains.
inline constexpr uint64_t kFnvBasis = 14695981039346656037ULL;

// FNV-1a hash of the frame's pixels chained onto `seed`. Used to compare
// whole output videos across executions cheaply.
uint64_t frame_hash(const Frame& f, uint64_t seed = kFnvBasis);

}  // namespace media
