#include "media/jpeg_common.hpp"

#include "support/check.hpp"

namespace media::jpeg {

const uint8_t kZigZag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

const uint8_t kStdLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

const uint8_t kStdChromaQuant[64] = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

std::array<uint16_t, 64> scale_quant_table(const uint8_t base[64],
                                           int quality) {
  SUP_CHECK(quality >= 1 && quality <= 100);
  int scale = quality < 50 ? 5000 / quality : 200 - quality * 2;
  std::array<uint16_t, 64> out{};
  for (int i = 0; i < 64; ++i) {
    int v = (base[i] * scale + 50) / 100;
    if (v < 1) v = 1;
    if (v > 255) v = 255;  // baseline requires 8-bit table entries
    out[static_cast<size_t>(i)] = static_cast<uint16_t>(v);
  }
  return out;
}

namespace {

// Annex K.3.1 / K.3.2 typical Huffman tables.
const uint8_t kDcLumaBits[16] = {0, 1, 5, 1, 1, 1, 1, 1,
                                 1, 0, 0, 0, 0, 0, 0, 0};
const uint8_t kDcLumaVals[12] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};

const uint8_t kDcChromaBits[16] = {0, 3, 1, 1, 1, 1, 1, 1,
                                   1, 1, 1, 0, 0, 0, 0, 0};
const uint8_t kDcChromaVals[12] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};

const uint8_t kAcLumaBits[16] = {0, 2, 1, 3, 3, 2, 4, 3,
                                 5, 5, 4, 4, 0, 0, 1, 0x7d};
const uint8_t kAcLumaVals[162] = {
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
    0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3,
    0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
    0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9,
    0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
    0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

const uint8_t kAcChromaBits[16] = {0, 2, 1, 2, 4, 4, 3, 4,
                                   7, 5, 4, 4, 0, 1, 2, 0x77};
const uint8_t kAcChromaVals[162] = {
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41,
    0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1,
    0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
    0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
    0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
    0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a,
    0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
    0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
    0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
    0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa};

}  // namespace

HuffSpec std_dc_luma() { return {kDcLumaBits, kDcLumaVals, 12}; }
HuffSpec std_ac_luma() { return {kAcLumaBits, kAcLumaVals, 162}; }
HuffSpec std_dc_chroma() { return {kDcChromaBits, kDcChromaVals, 12}; }
HuffSpec std_ac_chroma() { return {kAcChromaBits, kAcChromaVals, 162}; }

HuffEncodeTable build_encode_table(const HuffSpec& spec) {
  HuffEncodeTable table;
  uint16_t code = 0;
  int k = 0;
  for (int len = 1; len <= 16; ++len) {
    for (int i = 0; i < spec.bits[len - 1]; ++i) {
      SUP_CHECK(k < spec.value_count);
      uint8_t sym = spec.values[k++];
      table.code[sym] = code;
      table.size[sym] = static_cast<uint8_t>(len);
      ++code;
    }
    code = static_cast<uint16_t>(code << 1);
  }
  return table;
}

HuffDecodeTable build_decode_table(const uint8_t bits[16],
                                   const uint8_t* values, int value_count) {
  HuffDecodeTable t;
  t.values.assign(values, values + value_count);
  int32_t code = 0;
  int k = 0;
  for (int len = 1; len <= 16; ++len) {
    if (bits[len - 1] == 0) {
      t.min_code[static_cast<size_t>(len)] = 0;
      t.max_code[static_cast<size_t>(len)] = -1;
      t.val_ptr[static_cast<size_t>(len)] = 0;
    } else {
      t.val_ptr[static_cast<size_t>(len)] = k;
      t.min_code[static_cast<size_t>(len)] = code;
      k += bits[len - 1];
      code += bits[len - 1];
      t.max_code[static_cast<size_t>(len)] = code - 1;
    }
    code <<= 1;
  }
  t.valid = k == value_count;

  // Fast-path table: every code of length L <= kLookupBits owns the
  // 2^(kLookupBits - L) indices whose top L bits equal the code. An
  // oversubscribed DHT (codes spilling past the index space) marks the
  // whole table invalid rather than producing a partial fast path.
  if (t.valid) {
    int32_t fill_code = 0;
    int vi = 0;
    for (int len = 1; len <= HuffDecodeTable::kLookupBits && t.valid; ++len) {
      for (int i = 0; i < bits[len - 1]; ++i) {
        int shift = HuffDecodeTable::kLookupBits - len;
        int32_t base = fill_code << shift;
        if (base + (1 << shift) > (1 << HuffDecodeTable::kLookupBits)) {
          t.valid = false;
          break;
        }
        uint16_t entry = static_cast<uint16_t>((len << 8) | values[vi]);
        for (int32_t j = 0; j < (1 << shift); ++j)
          t.lookup[static_cast<size_t>(base + j)] = entry;
        ++vi;
        ++fill_code;
      }
      fill_code <<= 1;
    }
  }
  return t;
}

}  // namespace media::jpeg
