#include "media/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace media {

double mse(ConstPlaneView a, ConstPlaneView b) {
  SUP_CHECK(a.width == b.width && a.height == b.height);
  double sum = 0;
  for (int y = 0; y < a.height; ++y) {
    const uint8_t* ra = a.row(y);
    const uint8_t* rb = b.row(y);
    for (int x = 0; x < a.width; ++x) {
      double d = static_cast<double>(ra[x]) - rb[x];
      sum += d * d;
    }
  }
  return sum / (static_cast<double>(a.width) * a.height);
}

double psnr(const Frame& a, const Frame& b) {
  SUP_CHECK(a.format() == b.format() && a.width() == b.width() &&
            a.height() == b.height());
  double total_se = 0;
  size_t total_px = 0;
  for (int p = 0; p < a.planes(); ++p) {
    ConstPlaneView pa = a.plane(p);
    total_se += mse(pa, b.plane(p)) * static_cast<double>(pa.bytes());
    total_px += pa.bytes();
  }
  double m = total_se / static_cast<double>(total_px);
  if (m <= 0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

uint64_t frame_hash(const Frame& f, uint64_t seed) {
  uint64_t h = seed;
  const uint8_t* data = f.raw();
  for (size_t i = 0; i < f.bytes(); ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

int max_abs_diff(const Frame& a, const Frame& b) {
  SUP_CHECK(a.format() == b.format() && a.width() == b.width() &&
            a.height() == b.height());
  int maxd = 0;
  for (int p = 0; p < a.planes(); ++p) {
    ConstPlaneView pa = a.plane(p);
    ConstPlaneView pb = b.plane(p);
    for (int y = 0; y < pa.height; ++y) {
      const uint8_t* ra = pa.row(y);
      const uint8_t* rb = pb.row(y);
      for (int x = 0; x < pa.width; ++x) {
        int d = std::abs(static_cast<int>(ra[x]) - rb[x]);
        if (d > maxd) maxd = d;
      }
    }
  }
  return maxd;
}

}  // namespace media
