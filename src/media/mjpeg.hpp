// Video containers used by the example applications:
//  - RawVideo: uncompressed planar YUV clip (in memory or on disk).
//  - MjpegClip: a sequence of independently coded baseline JPEG frames
//    (motion-JPEG), the input format of the paper's JPiP application.
//
// On-disk formats are tiny self-describing headers + payload; they stand
// in for the paper's proprietary clips (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/frame.hpp"
#include "media/synth.hpp"
#include "support/status.hpp"

namespace media {

// --- uncompressed clip --------------------------------------------------------

class RawVideo {
 public:
  RawVideo(PixelFormat fmt, int width, int height)
      : fmt_(fmt), width_(width), height_(height) {}

  PixelFormat format() const { return fmt_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int frame_count() const { return static_cast<int>(frames_.size()); }

  void append(FramePtr frame);
  const FramePtr& frame(int i) const;

  // Serialize to / parse from the "RAWV" on-disk format.
  support::Status save(const std::string& path) const;
  static support::Result<RawVideo> load(const std::string& path);

  // Generate `n` synthetic frames from `spec` (must match fmt/size).
  static RawVideo synthesize(const SynthSpec& spec, int n);

 private:
  PixelFormat fmt_;
  int width_;
  int height_;
  std::vector<FramePtr> frames_;
};

// --- motion-JPEG clip ------------------------------------------------------------

class MjpegClip {
 public:
  int frame_count() const { return static_cast<int>(frames_.size()); }
  const std::vector<uint8_t>& frame(int i) const;
  void append(std::vector<uint8_t> jpeg_bytes);

  // Total compressed payload size.
  size_t total_bytes() const;

  support::Status save(const std::string& path) const;
  static support::Result<MjpegClip> load(const std::string& path);

  // Encode every frame of a raw clip at the given quality.
  // restart_interval > 0 emits restart markers every that many MCUs per
  // frame, making the entropy stream splittable for parallel decode.
  static support::Result<MjpegClip> encode(const RawVideo& video,
                                           int quality,
                                           int restart_interval = 0);

 private:
  std::vector<std::vector<uint8_t>> frames_;
};

}  // namespace media
