// Shared constants and table machinery for the baseline JPEG codec:
// markers, zig-zag order, Annex-K quantization and Huffman tables, and
// canonical Huffman code construction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace media::jpeg {

// Marker bytes (second byte after 0xFF).
enum Marker : uint8_t {
  kSOI = 0xD8,
  kEOI = 0xD9,
  kSOS = 0xDA,
  kDQT = 0xDB,
  kDNL = 0xDC,
  kDRI = 0xDD,
  kSOF0 = 0xC0,
  kDHT = 0xC4,
  kAPP0 = 0xE0,
  kCOM = 0xFE,
  kRST0 = 0xD0,  // .. kRST7 = 0xD7
};

// Zig-zag scan order: zigzag index -> natural (row-major) index.
extern const uint8_t kZigZag[64];

// Annex K.1 base quantization tables (natural order).
extern const uint8_t kStdLumaQuant[64];
extern const uint8_t kStdChromaQuant[64];

// Scale a base table by libjpeg-style quality in [1, 100] (50 = base).
std::array<uint16_t, 64> scale_quant_table(const uint8_t base[64],
                                           int quality);

// Annex K.3 Huffman table specifications: bits[i] = number of codes of
// length i+1 (i in 0..15), followed by the symbol values.
struct HuffSpec {
  const uint8_t* bits;    // 16 entries
  const uint8_t* values;  // sum(bits) entries
  int value_count;
};

HuffSpec std_dc_luma();
HuffSpec std_ac_luma();
HuffSpec std_dc_chroma();
HuffSpec std_ac_chroma();

// Encoder-side table: symbol -> (code, length).
struct HuffEncodeTable {
  std::array<uint16_t, 256> code{};
  std::array<uint8_t, 256> size{};  // 0 = symbol not present
};

HuffEncodeTable build_encode_table(const HuffSpec& spec);

// Decoder-side table using the canonical min/max-code algorithm of
// ITU-T T.81 §F.2.2.3, plus a kLookupBits-indexed fast path: one probe
// with the next kLookupBits bits of the stream resolves every code of
// length <= kLookupBits (nearly all symbols in the Annex-K tables);
// longer codes fall back to the canonical bit-serial walk.
struct HuffDecodeTable {
  static constexpr int kLookupBits = 10;

  std::array<int32_t, 17> min_code{};   // per code length 1..16
  std::array<int32_t, 17> max_code{};   // -1 when no codes of that length
  std::array<int32_t, 17> val_ptr{};
  std::vector<uint8_t> values;
  bool valid = false;
  // lookup[next kLookupBits stream bits] = (code length << 8) | symbol,
  // or 0 when
  // the code is longer than kLookupBits (symbol 0 is a real symbol, so
  // the length byte doubles as the "present" flag).
  std::array<uint16_t, 1 << kLookupBits> lookup{};
};

HuffDecodeTable build_decode_table(const uint8_t bits[16],
                                   const uint8_t* values, int value_count);

}  // namespace media::jpeg
