#include "media/mjpeg.hpp"

#include <cstring>
#include <fstream>

#include "media/jpeg.hpp"

namespace media {
namespace {

void put_u32(std::ofstream& f, uint32_t v) {
  uint8_t b[4] = {static_cast<uint8_t>(v >> 24), static_cast<uint8_t>(v >> 16),
                  static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
  f.write(reinterpret_cast<const char*>(b), 4);
}

bool get_u32(std::ifstream& f, uint32_t* v) {
  uint8_t b[4];
  if (!f.read(reinterpret_cast<char*>(b), 4)) return false;
  *v = static_cast<uint32_t>(b[0]) << 24 | static_cast<uint32_t>(b[1]) << 16 |
       static_cast<uint32_t>(b[2]) << 8 | b[3];
  return true;
}

}  // namespace

// --- RawVideo -------------------------------------------------------------------

void RawVideo::append(FramePtr frame) {
  SUP_CHECK(frame && frame->format() == fmt_ && frame->width() == width_ &&
            frame->height() == height_);
  frames_.push_back(std::move(frame));
}

const FramePtr& RawVideo::frame(int i) const {
  SUP_CHECK(i >= 0 && i < frame_count());
  return frames_[static_cast<size_t>(i)];
}

support::Status RawVideo::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open for writing: " + path);
  f.write("RAWV", 4);
  put_u32(f, static_cast<uint32_t>(fmt_));
  put_u32(f, static_cast<uint32_t>(width_));
  put_u32(f, static_cast<uint32_t>(height_));
  put_u32(f, static_cast<uint32_t>(frames_.size()));
  for (const FramePtr& fr : frames_)
    f.write(reinterpret_cast<const char*>(fr->raw()),
            static_cast<std::streamsize>(fr->bytes()));
  if (!f) return support::io_error("write failed: " + path);
  return support::Status::ok();
}

support::Result<RawVideo> RawVideo::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open: " + path);
  char magic[4];
  if (!f.read(magic, 4) || std::memcmp(magic, "RAWV", 4) != 0)
    return support::invalid_argument("not a RAWV file: " + path);
  uint32_t fmt = 0, w = 0, h = 0, n = 0;
  if (!get_u32(f, &fmt) || !get_u32(f, &w) || !get_u32(f, &h) ||
      !get_u32(f, &n))
    return support::invalid_argument("truncated RAWV header");
  if (fmt > static_cast<uint32_t>(PixelFormat::kYuv444) || w == 0 || h == 0 ||
      w > 1u << 16 || h > 1u << 16)
    return support::invalid_argument("bad RAWV header");
  RawVideo video(static_cast<PixelFormat>(fmt), static_cast<int>(w),
                 static_cast<int>(h));
  for (uint32_t i = 0; i < n; ++i) {
    FramePtr fr = make_frame(video.fmt_, video.width_, video.height_);
    if (!f.read(reinterpret_cast<char*>(fr->raw()),
                static_cast<std::streamsize>(fr->bytes())))
      return support::invalid_argument("truncated RAWV payload");
    video.frames_.push_back(std::move(fr));
  }
  return video;
}

RawVideo RawVideo::synthesize(const SynthSpec& spec, int n) {
  RawVideo video(spec.format, spec.width, spec.height);
  for (int t = 0; t < n; ++t) video.append(make_synth_frame(spec, t));
  return video;
}

// --- MjpegClip -------------------------------------------------------------------

const std::vector<uint8_t>& MjpegClip::frame(int i) const {
  SUP_CHECK(i >= 0 && i < frame_count());
  return frames_[static_cast<size_t>(i)];
}

void MjpegClip::append(std::vector<uint8_t> jpeg_bytes) {
  frames_.push_back(std::move(jpeg_bytes));
}

size_t MjpegClip::total_bytes() const {
  size_t total = 0;
  for (const auto& f : frames_) total += f.size();
  return total;
}

support::Status MjpegClip::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open for writing: " + path);
  f.write("MJPG", 4);
  put_u32(f, static_cast<uint32_t>(frames_.size()));
  for (const auto& fr : frames_) {
    put_u32(f, static_cast<uint32_t>(fr.size()));
    f.write(reinterpret_cast<const char*>(fr.data()),
            static_cast<std::streamsize>(fr.size()));
  }
  if (!f) return support::io_error("write failed: " + path);
  return support::Status::ok();
}

support::Result<MjpegClip> MjpegClip::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open: " + path);
  char magic[4];
  if (!f.read(magic, 4) || std::memcmp(magic, "MJPG", 4) != 0)
    return support::invalid_argument("not an MJPG file: " + path);
  uint32_t n = 0;
  if (!get_u32(f, &n)) return support::invalid_argument("truncated header");
  MjpegClip clip;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len = 0;
    if (!get_u32(f, &len) || len > (64u << 20))
      return support::invalid_argument("bad frame length");
    std::vector<uint8_t> bytes(len);
    if (!f.read(reinterpret_cast<char*>(bytes.data()), len))
      return support::invalid_argument("truncated MJPG payload");
    clip.frames_.push_back(std::move(bytes));
  }
  return clip;
}

support::Result<MjpegClip> MjpegClip::encode(const RawVideo& video,
                                             int quality,
                                             int restart_interval) {
  MjpegClip clip;
  for (int i = 0; i < video.frame_count(); ++i) {
    SUP_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        jpeg::encode(*video.frame(i), quality, restart_interval));
    clip.frames_.push_back(std::move(bytes));
  }
  return clip;
}

}  // namespace media
