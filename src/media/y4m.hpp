// YUV4MPEG2 (.y4m) export — the interchange format mpv/ffmpeg play
// directly, so example outputs can be inspected with standard tools.
// Only 4:2:0 and mono are representable in baseline y4m.
#pragma once

#include <string>

#include "media/mjpeg.hpp"
#include "support/status.hpp"

namespace media {

// Write the clip as YUV4MPEG2 at the given frame rate (fps_num/fps_den).
// kYuv420 maps to C420jpeg (centered chroma), kGray to Cmono;
// kYuv444 is rejected.
support::Status save_y4m(const RawVideo& video, const std::string& path,
                         int fps_num = 25, int fps_den = 1);

}  // namespace media
