#include "media/y4m.hpp"

#include <fstream>

#include "support/strings.hpp"

namespace media {

support::Status save_y4m(const RawVideo& video, const std::string& path,
                         int fps_num, int fps_den) {
  if (video.format() == PixelFormat::kYuv444)
    return support::unimplemented("y4m export supports 4:2:0 and mono only");
  if (fps_num < 1 || fps_den < 1)
    return support::invalid_argument("bad y4m frame rate");
  std::ofstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open for writing: " + path);

  const char* colour =
      video.format() == PixelFormat::kGray ? "Cmono" : "C420jpeg";
  f << support::format("YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 %s\n",
                       video.width(), video.height(), fps_num, fps_den,
                       colour);
  for (int i = 0; i < video.frame_count(); ++i) {
    f << "FRAME\n";
    const FramePtr& frame = video.frame(i);
    f.write(reinterpret_cast<const char*>(frame->raw()),
            static_cast<std::streamsize>(frame->bytes()));
  }
  if (!f) return support::io_error("write failed: " + path);
  return support::Status::ok();
}

}  // namespace media
