// Baseline JFIF/JPEG codec, written from scratch (ITU-T T.81 baseline
// sequential DCT, Annex-K tables). Substrate for the paper's JPiP
// application.
//
// The decoder is deliberately split into the two phases the paper's
// JPiP task graph uses (Fig. 7):
//   1. decode_to_coefficients — marker parse + Huffman entropy decode +
//      dequantization ("JPEG decode" component), then
//   2. idct_component          — per-plane IDCT over a block-row range
//      ("IDCT Y/U/V" components, data-parallel over slices).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "media/frame.hpp"
#include "support/status.hpp"

namespace media::jpeg {

// Dequantized DCT coefficients of one colour component.
struct CoeffPlane {
  int blocks_w = 0;  // blocks per row
  int blocks_h = 0;  // block rows
  int width = 0;     // pixel width (may be less than 8*blocks_w)
  int height = 0;
  // blocks_w * blocks_h blocks in raster order, natural (de-zigzagged)
  // coefficient order, already multiplied by the quantization table.
  std::vector<std::array<int16_t, 64>> blocks;
};

// Result of the entropy-decode phase.
struct CoeffImage {
  int width = 0;
  int height = 0;
  PixelFormat format = PixelFormat::kGray;
  std::vector<CoeffPlane> comps;  // 1 (gray) or 3 (YUV)
  size_t compressed_bytes = 0;    // size of the input bitstream
  size_t nonzero_coeffs = 0;      // entropy-decoded non-zero coefficients
};

// --- encoding ---------------------------------------------------------------

// Encode a kGray or kYuv420 frame as baseline JPEG. quality in [1, 100].
// restart_interval > 0 emits a DRI segment and an RSTn marker every that
// many MCUs (resynchronization points; also what would let a parallel
// decoder split the entropy stream).
support::Result<std::vector<uint8_t>> encode(const Frame& frame, int quality,
                                             int restart_interval = 0);

// --- decoding ---------------------------------------------------------------

// Host-side implementation selection for the two decode phases. The
// optimized paths are the defaults; the reference paths are retained for
// equivalence tests and as the "before" leg of the decode microbench.
// Neither choice affects the simulated-cycle helpers below.
enum class HuffmanImpl {
  kLookupTable,  // 8-bit fast-path table + 64-bit buffered bit reader
  kBitSerial,    // original one-bit-at-a-time T.81 §F.2.2.3 walk
};
enum class IdctImpl {
  kFixedPoint,      // fixed-point AAN separable IDCT
  kFloatReference,  // naive O(8) float multiply per output per pass
};

// Phase 1: parse markers, entropy-decode, dequantize. Both Huffman
// implementations produce bit-identical CoeffImages.
//
// workers > 1 entropy-decodes restart-marker-delimited segments of the
// scan on that many host threads (kLookupTable only). Restart segments
// share no decoder state by construction (T.81 §F.2.1.3.1: DC predictors
// reset, byte-aligned), so the result is bit-identical to the serial
// decode; streams without restart markers — and malformed marker layouts
// — silently take the serial path so every error keeps its serial text.
support::Result<CoeffImage> decode_to_coefficients(
    const uint8_t* data, size_t size,
    HuffmanImpl impl = HuffmanImpl::kLookupTable, int workers = 1);

// Streaming variant: decodes into `*out`, reusing its coefficient-block
// storage when the geometry matches the previous frame. For an MJPEG
// stream this skips a multi-megabyte allocation + zero-fill per frame,
// which otherwise rivals the entropy decode itself in wall-clock cost.
// On error `*out` is left in an unspecified (but reusable) state.
support::Status decode_to_coefficients_into(
    const uint8_t* data, size_t size, CoeffImage* out,
    HuffmanImpl impl = HuffmanImpl::kLookupTable, int workers = 1);

// Phase 2: IDCT block rows [block_row0, block_row1) of one component into
// `out` (which must have the component's pixel dimensions). Thread-safe
// for disjoint row ranges. The fixed-point path is within +-1 LSB of the
// float reference.
void idct_component(const CoeffPlane& comp, PlaneView out, int block_row0,
                    int block_row1, IdctImpl impl = IdctImpl::kFixedPoint);

// Fused phase 2 + box downscale: IDCT the blocks covering destination
// rows [row0, row1) of the `factor`-downscaled component into an
// L2-sized strip and box-average straight out of it — the full-size
// plane never materializes. `dst` is the downscaled plane
// (comp dims >= dst dims * factor). Bit-identical to idct_component
// into a full plane followed by media::downscale_box over the same
// rows, for either IdctImpl. Strips are aligned to the lcm(8, factor)
// grid, so slice boundaries share no recomputation.
void idct_downscale(const CoeffPlane& comp, PlaneView dst, int factor,
                    int row0, int row1, IdctImpl impl = IdctImpl::kFixedPoint);

// Single-block transforms, exposed for accuracy tests and microbenches.
// Float reference: raw spatial values (caller level-shifts and clamps).
void idct_block_float(const int16_t in[64], float out[64]);
// Fixed-point AAN: final pixels (level shift + clamp applied).
void idct_block_fixed(const int16_t in[64], uint8_t out[64]);

// Full decode (phase 1 + phase 2 over all rows).
support::Result<FramePtr> decode(const uint8_t* data, size_t size);

// --- simulated-cycle cost helpers -------------------------------------------

// Entropy decode + marker parse cost.
uint64_t entropy_decode_cycles(size_t compressed_bytes, size_t total_blocks);
// IDCT cost for `blocks` 8x8 blocks.
uint64_t idct_cycles(uint64_t blocks);
// Fused IDCT + downscale cost: both stages' arithmetic; the elided
// intermediate store/load is the cache model's to account for (same
// convention as media::downscale_blend_cycles).
uint64_t idct_downscale_cycles(uint64_t blocks, int out_width, int out_rows,
                               int factor);
// FDCT + quantization + entropy coding cost.
uint64_t encode_cycles(uint64_t blocks, size_t compressed_bytes);

}  // namespace media::jpeg
