// NEON (AArch64) tier of the media kernel dispatch table.
//
// Byte kernels only, mirroring the SSE2 scheme: widen u8 -> u16, do the
// exact scalar fixed-point arithmetic in 16-bit lanes (accumulators
// proven <= 65408, so u16 never wraps), narrow back. The IDCT stays on
// the scalar implementation; the AVX2 TU documents what an exact vector
// AAN needs. Internal linkage throughout, same ODR rules as the x86 TUs.
#include "media/kernels_simd.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace media::detail {
namespace {

inline uint8_t mix1(uint8_t fg, uint8_t bg, int alpha256) {
  return static_cast<uint8_t>(
      (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8);
}

// 3-tap accumulate on one widened u16 half.
inline uint16x8_t blur3_half(uint16x8_t a, uint16x8_t b, uint16x8_t c) {
  uint16x8_t acc = vdupq_n_u16(128);
  acc = vmlaq_n_u16(acc, vaddq_u16(a, c),
                    static_cast<uint16_t>(kBlurTaps3[0]));
  return vmlaq_n_u16(acc, b, static_cast<uint16_t>(kBlurTaps3[1]));
}

inline uint16x8_t blur5_half(uint16x8_t a, uint16x8_t b, uint16x8_t c,
                             uint16x8_t d, uint16x8_t e) {
  uint16x8_t acc = vdupq_n_u16(128);
  acc = vmlaq_n_u16(acc, vaddq_u16(a, e),
                    static_cast<uint16_t>(kBlurTaps5[0]));
  acc = vmlaq_n_u16(acc, vaddq_u16(b, d),
                    static_cast<uint16_t>(kBlurTaps5[1]));
  return vmlaq_n_u16(acc, c, static_cast<uint16_t>(kBlurTaps5[2]));
}

void blur_h3_row(const uint8_t* in, uint8_t* out, int w) {
  int x = 1;
  for (; x + 16 <= w - 1; x += 16) {
    uint8x16_t l = vld1q_u8(in + x - 1);
    uint8x16_t c = vld1q_u8(in + x);
    uint8x16_t r = vld1q_u8(in + x + 1);
    uint16x8_t lo = blur3_half(vmovl_u8(vget_low_u8(l)),
                               vmovl_u8(vget_low_u8(c)),
                               vmovl_u8(vget_low_u8(r)));
    uint16x8_t hi = blur3_half(vmovl_u8(vget_high_u8(l)),
                               vmovl_u8(vget_high_u8(c)),
                               vmovl_u8(vget_high_u8(r)));
    vst1q_u8(out + x, vcombine_u8(vshrn_n_u16(lo, 8), vshrn_n_u16(hi, 8)));
  }
  for (; x < w - 1; ++x) {
    int acc = 128 + kBlurTaps3[0] * in[x - 1] + kBlurTaps3[1] * in[x] +
              kBlurTaps3[2] * in[x + 1];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_h5_row(const uint8_t* in, uint8_t* out, int w) {
  int x = 2;
  for (; x + 16 <= w - 2; x += 16) {
    uint8x16_t a = vld1q_u8(in + x - 2);
    uint8x16_t b = vld1q_u8(in + x - 1);
    uint8x16_t c = vld1q_u8(in + x);
    uint8x16_t d = vld1q_u8(in + x + 1);
    uint8x16_t e = vld1q_u8(in + x + 2);
    uint16x8_t lo = blur5_half(
        vmovl_u8(vget_low_u8(a)), vmovl_u8(vget_low_u8(b)),
        vmovl_u8(vget_low_u8(c)), vmovl_u8(vget_low_u8(d)),
        vmovl_u8(vget_low_u8(e)));
    uint16x8_t hi = blur5_half(
        vmovl_u8(vget_high_u8(a)), vmovl_u8(vget_high_u8(b)),
        vmovl_u8(vget_high_u8(c)), vmovl_u8(vget_high_u8(d)),
        vmovl_u8(vget_high_u8(e)));
    vst1q_u8(out + x, vcombine_u8(vshrn_n_u16(lo, 8), vshrn_n_u16(hi, 8)));
  }
  for (; x < w - 2; ++x) {
    int acc = 128 + kBlurTaps5[0] * in[x - 2] + kBlurTaps5[1] * in[x - 1] +
              kBlurTaps5[2] * in[x] + kBlurTaps5[3] * in[x + 1] +
              kBlurTaps5[4] * in[x + 2];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v3_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 uint8_t* out, int w) {
  int x = 0;
  for (; x + 16 <= w; x += 16) {
    uint8x16_t a = vld1q_u8(ra + x);
    uint8x16_t b = vld1q_u8(rb + x);
    uint8x16_t c = vld1q_u8(rc + x);
    uint16x8_t lo = blur3_half(vmovl_u8(vget_low_u8(a)),
                               vmovl_u8(vget_low_u8(b)),
                               vmovl_u8(vget_low_u8(c)));
    uint16x8_t hi = blur3_half(vmovl_u8(vget_high_u8(a)),
                               vmovl_u8(vget_high_u8(b)),
                               vmovl_u8(vget_high_u8(c)));
    vst1q_u8(out + x, vcombine_u8(vshrn_n_u16(lo, 8), vshrn_n_u16(hi, 8)));
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps3[0] * ra[x] + kBlurTaps3[1] * rb[x] +
              kBlurTaps3[2] * rc[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v5_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 const uint8_t* rd, const uint8_t* re, uint8_t* out, int w) {
  int x = 0;
  for (; x + 16 <= w; x += 16) {
    uint8x16_t a = vld1q_u8(ra + x);
    uint8x16_t b = vld1q_u8(rb + x);
    uint8x16_t c = vld1q_u8(rc + x);
    uint8x16_t d = vld1q_u8(rd + x);
    uint8x16_t e = vld1q_u8(re + x);
    uint16x8_t lo = blur5_half(
        vmovl_u8(vget_low_u8(a)), vmovl_u8(vget_low_u8(b)),
        vmovl_u8(vget_low_u8(c)), vmovl_u8(vget_low_u8(d)),
        vmovl_u8(vget_low_u8(e)));
    uint16x8_t hi = blur5_half(
        vmovl_u8(vget_high_u8(a)), vmovl_u8(vget_high_u8(b)),
        vmovl_u8(vget_high_u8(c)), vmovl_u8(vget_high_u8(d)),
        vmovl_u8(vget_high_u8(e)));
    vst1q_u8(out + x, vcombine_u8(vshrn_n_u16(lo, 8), vshrn_n_u16(hi, 8)));
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps5[0] * ra[x] + kBlurTaps5[1] * rb[x] +
              kBlurTaps5[2] * rc[x] + kBlurTaps5[3] * rd[x] +
              kBlurTaps5[4] * re[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

// Factor-2 box results for 8 outputs, left as u16 lanes.
inline uint16x8_t down2_u16(const uint8_t* a, const uint8_t* b) {
  uint16x8_t sa = vpaddlq_u8(vld1q_u8(a));
  uint16x8_t sb = vpaddlq_u8(vld1q_u8(b));
  return vshrq_n_u16(vaddq_u16(vaddq_u16(sa, sb), vdupq_n_u16(2)), 2);
}

void down2_row(const uint8_t* a, const uint8_t* b, uint8_t* out, int n) {
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    uint16x8_t v0 = down2_u16(a + 2 * x, b + 2 * x);
    uint16x8_t v1 = down2_u16(a + 2 * x + 16, b + 2 * x + 16);
    vst1q_u8(out + x, vcombine_u8(vmovn_u16(v0), vmovn_u16(v1)));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    out[x] = static_cast<uint8_t>((sum + 2) >> 2);
  }
}

// Sums of 4 consecutive bytes per u32 lane for one source row.
inline uint32x4_t quad_sums_u32(const uint8_t* r) {
  return vpaddlq_u16(vpaddlq_u8(vld1q_u8(r)));
}

void down4_row(const uint8_t* r0, const uint8_t* r1, const uint8_t* r2,
               const uint8_t* r3, uint8_t* out, int n) {
  int x = 0;
  for (; x + 8 <= n; x += 8) {
    uint32x4_t t0 = vaddq_u32(
        vaddq_u32(quad_sums_u32(r0 + 4 * x), quad_sums_u32(r1 + 4 * x)),
        vaddq_u32(quad_sums_u32(r2 + 4 * x), quad_sums_u32(r3 + 4 * x)));
    uint32x4_t t1 = vaddq_u32(
        vaddq_u32(quad_sums_u32(r0 + 4 * x + 16),
                  quad_sums_u32(r1 + 4 * x + 16)),
        vaddq_u32(quad_sums_u32(r2 + 4 * x + 16),
                  quad_sums_u32(r3 + 4 * x + 16)));
    const uint32x4_t rnd = vdupq_n_u32(8);
    t0 = vshrq_n_u32(vaddq_u32(t0, rnd), 4);
    t1 = vshrq_n_u32(vaddq_u32(t1, rnd), 4);
    uint16x8_t p = vcombine_u16(vmovn_u32(t0), vmovn_u32(t1));
    vst1_u8(out + x, vmovn_u16(p));
  }
  for (; x < n; ++x) {
    unsigned sum = 0;
    for (int i = 0; i < 4; ++i)
      sum += static_cast<unsigned>(r0[4 * x + i]) + r1[4 * x + i] +
             r2[4 * x + i] + r3[4 * x + i];
    out[x] = static_cast<uint8_t>((sum + 8) >> 4);
  }
}

// (v*alpha + d*(256-alpha) + 128) >> 8 on u16 lanes (max 65408, no wrap).
inline uint16x8_t mix_u16(uint16x8_t v, uint16x8_t d, uint16_t va,
                          uint16_t vb) {
  uint16x8_t acc = vdupq_n_u16(128);
  acc = vmlaq_n_u16(acc, v, va);
  acc = vmlaq_n_u16(acc, d, vb);
  return vshrq_n_u16(acc, 8);
}

void blend_row(const uint8_t* src, uint8_t* dst, int n, int alpha256) {
  const uint16_t va = static_cast<uint16_t>(alpha256);
  const uint16_t vb = static_cast<uint16_t>(256 - alpha256);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    uint8x16_t s = vld1q_u8(src + x);
    uint8x16_t d = vld1q_u8(dst + x);
    uint16x8_t lo = mix_u16(vmovl_u8(vget_low_u8(s)),
                            vmovl_u8(vget_low_u8(d)), va, vb);
    uint16x8_t hi = mix_u16(vmovl_u8(vget_high_u8(s)),
                            vmovl_u8(vget_high_u8(d)), va, vb);
    vst1q_u8(dst + x, vcombine_u8(vmovn_u16(lo), vmovn_u16(hi)));
  }
  for (; x < n; ++x) dst[x] = mix1(src[x], dst[x], alpha256);
}

void down2_blend_row(const uint8_t* a, const uint8_t* b, uint8_t* dst, int n,
                     int alpha256) {
  const uint16_t va = static_cast<uint16_t>(alpha256);
  const uint16_t vb = static_cast<uint16_t>(256 - alpha256);
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    uint16x8_t v0 = down2_u16(a + 2 * x, b + 2 * x);
    uint16x8_t v1 = down2_u16(a + 2 * x + 16, b + 2 * x + 16);
    uint8x16_t d = vld1q_u8(dst + x);
    uint16x8_t lo = mix_u16(v0, vmovl_u8(vget_low_u8(d)), va, vb);
    uint16x8_t hi = mix_u16(v1, vmovl_u8(vget_high_u8(d)), va, vb);
    vst1q_u8(dst + x, vcombine_u8(vmovn_u16(lo), vmovn_u16(hi)));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    dst[x] = mix1(static_cast<uint8_t>((sum + 2) >> 2), dst[x], alpha256);
  }
}

const KernelOps kNeonOps = {
    KernelDispatch::kNeon,
    "neon",
    &blur_h3_row,
    &blur_h5_row,
    &blur_v3_row,
    &blur_v5_row,
    &down2_row,
    &down4_row,
    &blend_row,
    &down2_blend_row,
    &idct8x8_scalar,
};

}  // namespace

const KernelOps* neon_ops() { return &kNeonOps; }

}  // namespace media::detail

#else  // !NEON

namespace media::detail {
const KernelOps* neon_ops() { return nullptr; }
}  // namespace media::detail

#endif
