// AVX2 tier of the media kernel dispatch table (kernels_simd.hpp).
//
// Byte kernels: 256-bit versions of the SSE2 scheme — widen u8 -> u16
// with per-lane unpacks, do the exact scalar arithmetic in 16-bit lanes
// (accumulators proven <= 65408), pack back with the mirrored per-lane
// pack so byte order is preserved without cross-lane shuffles.
//
// IDCT: the full fixed-point AAN flowgraph in int32 lanes, one lane per
// column (pass 1) / per row (pass 2, after an 8x8 transpose). aan_mul is
// exact: 64-bit products via even/odd _mm256_mul_epi32, the same
// round-and-arithmetic-shift as the scalar aan_mul, reassembled into
// int32 lanes. Interval analysis over the flowgraph bounds every
// intermediate by 40.3 * maxcoef * 31521, which stays inside int32 up to
// |coef| = kSimdIdctMaxCoef; larger (crafted) blocks fall back to
// idct8x8_scalar, so the tier is bit-exact for every input.
//
// This TU is compiled with -mavx2 (src/media/CMakeLists.txt); everything
// is internal-linkage so no AVX2-encoded symbol can leak to baseline TUs.
#include "media/kernels_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace media::detail {
namespace {

inline uint8_t mix1(uint8_t fg, uint8_t bg, int alpha256) {
  return static_cast<uint8_t>(
      (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8);
}

inline __m256i load256(const uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store256(uint8_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// ---- Gaussian blur ---------------------------------------------------------

// 3-tap accumulate on one u16 half (lo or hi unpack of the three taps).
inline __m256i blur3_half(__m256i a, __m256i b, __m256i c, __m256i t0,
                          __m256i t1) {
  return _mm256_add_epi16(
      _mm256_set1_epi16(128),
      _mm256_add_epi16(_mm256_mullo_epi16(_mm256_add_epi16(a, c), t0),
                       _mm256_mullo_epi16(b, t1)));
}

inline __m256i blur5_half(__m256i a, __m256i b, __m256i c, __m256i d,
                          __m256i e, __m256i t0, __m256i t1, __m256i t2) {
  return _mm256_add_epi16(
      _mm256_set1_epi16(128),
      _mm256_add_epi16(
          _mm256_add_epi16(_mm256_mullo_epi16(_mm256_add_epi16(a, e), t0),
                           _mm256_mullo_epi16(_mm256_add_epi16(b, d), t1)),
          _mm256_mullo_epi16(c, t2)));
}

void blur_h3_row(const uint8_t* in, uint8_t* out, int w) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i t0 = _mm256_set1_epi16(kBlurTaps3[0]);
  const __m256i t1 = _mm256_set1_epi16(kBlurTaps3[1]);
  int x = 1;
  for (; x + 32 <= w - 1; x += 32) {
    __m256i l = load256(in + x - 1);
    __m256i c = load256(in + x);
    __m256i r = load256(in + x + 1);
    __m256i lo = blur3_half(_mm256_unpacklo_epi8(l, zero),
                            _mm256_unpacklo_epi8(c, zero),
                            _mm256_unpacklo_epi8(r, zero), t0, t1);
    __m256i hi = blur3_half(_mm256_unpackhi_epi8(l, zero),
                            _mm256_unpackhi_epi8(c, zero),
                            _mm256_unpackhi_epi8(r, zero), t0, t1);
    store256(out + x, _mm256_packus_epi16(_mm256_srli_epi16(lo, 8),
                                          _mm256_srli_epi16(hi, 8)));
  }
  for (; x < w - 1; ++x) {
    int acc = 128 + kBlurTaps3[0] * in[x - 1] + kBlurTaps3[1] * in[x] +
              kBlurTaps3[2] * in[x + 1];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_h5_row(const uint8_t* in, uint8_t* out, int w) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i t0 = _mm256_set1_epi16(kBlurTaps5[0]);
  const __m256i t1 = _mm256_set1_epi16(kBlurTaps5[1]);
  const __m256i t2 = _mm256_set1_epi16(kBlurTaps5[2]);
  int x = 2;
  for (; x + 32 <= w - 2; x += 32) {
    __m256i a = load256(in + x - 2);
    __m256i b = load256(in + x - 1);
    __m256i c = load256(in + x);
    __m256i d = load256(in + x + 1);
    __m256i e = load256(in + x + 2);
    __m256i lo = blur5_half(
        _mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero),
        _mm256_unpacklo_epi8(c, zero), _mm256_unpacklo_epi8(d, zero),
        _mm256_unpacklo_epi8(e, zero), t0, t1, t2);
    __m256i hi = blur5_half(
        _mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero),
        _mm256_unpackhi_epi8(c, zero), _mm256_unpackhi_epi8(d, zero),
        _mm256_unpackhi_epi8(e, zero), t0, t1, t2);
    store256(out + x, _mm256_packus_epi16(_mm256_srli_epi16(lo, 8),
                                          _mm256_srli_epi16(hi, 8)));
  }
  for (; x < w - 2; ++x) {
    int acc = 128 + kBlurTaps5[0] * in[x - 2] + kBlurTaps5[1] * in[x - 1] +
              kBlurTaps5[2] * in[x] + kBlurTaps5[3] * in[x + 1] +
              kBlurTaps5[4] * in[x + 2];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v3_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 uint8_t* out, int w) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i t0 = _mm256_set1_epi16(kBlurTaps3[0]);
  const __m256i t1 = _mm256_set1_epi16(kBlurTaps3[1]);
  int x = 0;
  for (; x + 32 <= w; x += 32) {
    __m256i a = load256(ra + x);
    __m256i b = load256(rb + x);
    __m256i c = load256(rc + x);
    __m256i lo = blur3_half(_mm256_unpacklo_epi8(a, zero),
                            _mm256_unpacklo_epi8(b, zero),
                            _mm256_unpacklo_epi8(c, zero), t0, t1);
    __m256i hi = blur3_half(_mm256_unpackhi_epi8(a, zero),
                            _mm256_unpackhi_epi8(b, zero),
                            _mm256_unpackhi_epi8(c, zero), t0, t1);
    store256(out + x, _mm256_packus_epi16(_mm256_srli_epi16(lo, 8),
                                          _mm256_srli_epi16(hi, 8)));
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps3[0] * ra[x] + kBlurTaps3[1] * rb[x] +
              kBlurTaps3[2] * rc[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v5_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 const uint8_t* rd, const uint8_t* re, uint8_t* out, int w) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i t0 = _mm256_set1_epi16(kBlurTaps5[0]);
  const __m256i t1 = _mm256_set1_epi16(kBlurTaps5[1]);
  const __m256i t2 = _mm256_set1_epi16(kBlurTaps5[2]);
  int x = 0;
  for (; x + 32 <= w; x += 32) {
    __m256i a = load256(ra + x);
    __m256i b = load256(rb + x);
    __m256i c = load256(rc + x);
    __m256i d = load256(rd + x);
    __m256i e = load256(re + x);
    __m256i lo = blur5_half(
        _mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero),
        _mm256_unpacklo_epi8(c, zero), _mm256_unpacklo_epi8(d, zero),
        _mm256_unpacklo_epi8(e, zero), t0, t1, t2);
    __m256i hi = blur5_half(
        _mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero),
        _mm256_unpackhi_epi8(c, zero), _mm256_unpackhi_epi8(d, zero),
        _mm256_unpackhi_epi8(e, zero), t0, t1, t2);
    store256(out + x, _mm256_packus_epi16(_mm256_srli_epi16(lo, 8),
                                          _mm256_srli_epi16(hi, 8)));
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps5[0] * ra[x] + kBlurTaps5[1] * rb[x] +
              kBlurTaps5[2] * rc[x] + kBlurTaps5[3] * rd[x] +
              kBlurTaps5[4] * re[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

// ---- downscale / blend -----------------------------------------------------

// Horizontal pair sums of 32 bytes as 16 u16 lanes.
inline __m256i pair_sums_u16(__m256i v) {
  const __m256i mask = _mm256_set1_epi16(0x00ff);
  return _mm256_add_epi16(_mm256_and_si256(v, mask), _mm256_srli_epi16(v, 8));
}

// Factor-2 box results for 16 outputs, left as u16 lanes.
inline __m256i down2_u16(const uint8_t* a, const uint8_t* b) {
  __m256i sum = _mm256_add_epi16(
      _mm256_add_epi16(pair_sums_u16(load256(a)), pair_sums_u16(load256(b))),
      _mm256_set1_epi16(2));
  return _mm256_srli_epi16(sum, 2);
}

void down2_row(const uint8_t* a, const uint8_t* b, uint8_t* out, int n) {
  int x = 0;
  for (; x + 32 <= n; x += 32) {
    __m256i v0 = down2_u16(a + 2 * x, b + 2 * x);
    __m256i v1 = down2_u16(a + 2 * x + 32, b + 2 * x + 32);
    // Per-lane pack interleaves the two halves; one cross-lane permute
    // restores byte order.
    __m256i p = _mm256_packus_epi16(v0, v1);
    store256(out + x, _mm256_permute4x64_epi64(p, 0xd8));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    out[x] = static_cast<uint8_t>((sum + 2) >> 2);
  }
}

// Sums of 4 consecutive bytes per int32 lane (8 lanes from 32 bytes).
inline __m256i quad_sums_i32(const uint8_t* r) {
  return _mm256_madd_epi16(pair_sums_u16(load256(r)), _mm256_set1_epi16(1));
}

void down4_row(const uint8_t* r0, const uint8_t* r1, const uint8_t* r2,
               const uint8_t* r3, uint8_t* out, int n) {
  int x = 0;
  for (; x + 8 <= n; x += 8) {
    __m256i t = _mm256_add_epi32(
        _mm256_add_epi32(quad_sums_i32(r0 + 4 * x), quad_sums_i32(r1 + 4 * x)),
        _mm256_add_epi32(quad_sums_i32(r2 + 4 * x),
                         quad_sums_i32(r3 + 4 * x)));
    t = _mm256_srli_epi32(_mm256_add_epi32(t, _mm256_set1_epi32(8)), 4);
    __m128i p = _mm_packs_epi32(_mm256_castsi256_si128(t),
                                _mm256_extracti128_si256(t, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x),
                     _mm_packus_epi16(p, _mm_setzero_si128()));
  }
  for (; x < n; ++x) {
    unsigned sum = 0;
    for (int i = 0; i < 4; ++i)
      sum += static_cast<unsigned>(r0[4 * x + i]) + r1[4 * x + i] +
             r2[4 * x + i] + r3[4 * x + i];
    out[x] = static_cast<uint8_t>((sum + 8) >> 4);
  }
}

// (v*alpha + d*(256-alpha) + 128) >> 8 on u16 lanes (max 65408, no wrap).
inline __m256i mix_u16(__m256i v, __m256i d, __m256i va, __m256i vb) {
  __m256i acc = _mm256_add_epi16(
      _mm256_add_epi16(_mm256_mullo_epi16(v, va), _mm256_mullo_epi16(d, vb)),
      _mm256_set1_epi16(128));
  return _mm256_srli_epi16(acc, 8);
}

void blend_row(const uint8_t* src, uint8_t* dst, int n, int alpha256) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i va = _mm256_set1_epi16(static_cast<short>(alpha256));
  const __m256i vb = _mm256_set1_epi16(static_cast<short>(256 - alpha256));
  int x = 0;
  for (; x + 32 <= n; x += 32) {
    __m256i s = load256(src + x);
    __m256i d = load256(dst + x);
    __m256i lo = mix_u16(_mm256_unpacklo_epi8(s, zero),
                         _mm256_unpacklo_epi8(d, zero), va, vb);
    __m256i hi = mix_u16(_mm256_unpackhi_epi8(s, zero),
                         _mm256_unpackhi_epi8(d, zero), va, vb);
    store256(dst + x, _mm256_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) dst[x] = mix1(src[x], dst[x], alpha256);
}

void down2_blend_row(const uint8_t* a, const uint8_t* b, uint8_t* dst, int n,
                     int alpha256) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i va = _mm256_set1_epi16(static_cast<short>(alpha256));
  const __m256i vb = _mm256_set1_epi16(static_cast<short>(256 - alpha256));
  int x = 0;
  for (; x + 32 <= n; x += 32) {
    __m256i v0 = down2_u16(a + 2 * x, b + 2 * x);          // outputs 0..15
    __m256i v1 = down2_u16(a + 2 * x + 32, b + 2 * x + 32);  // outputs 16..31
    // Match the per-lane unpack layout of dst: lo = outputs [0-7 | 16-23],
    // hi = outputs [8-15 | 24-31].
    __m256i vlo = _mm256_permute2x128_si256(v0, v1, 0x20);
    __m256i vhi = _mm256_permute2x128_si256(v0, v1, 0x31);
    __m256i d = load256(dst + x);
    __m256i lo = mix_u16(vlo, _mm256_unpacklo_epi8(d, zero), va, vb);
    __m256i hi = mix_u16(vhi, _mm256_unpackhi_epi8(d, zero), va, vb);
    store256(dst + x, _mm256_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    dst[x] = mix1(static_cast<uint8_t>((sum + 2) >> 2), dst[x], alpha256);
  }
}

// ---- fixed-point AAN IDCT --------------------------------------------------

// Exact vector counterpart of the scalar aan_mul: per int32 lane,
// (x * k + 2^13) >> 14 with 64-bit products and arithmetic shift.
// AVX2 has no srai_epi64; instead of emulating the sign extension, bias
// each 64-bit sum by 2^48 so it is non-negative (|x*k| < 2^31 * 2^16 =
// 2^47 for every int32 lane) and shift logically. The bias contributes
// 2^48 >> 14 = 2^34 ≡ 0 (mod 2^32), so the low-32-bit reassembly below
// is untouched and the result stays bit-identical to the scalar helper.
inline __m256i aan_mul_v(__m256i x, int32_t k) {
  const __m256i vk = _mm256_set1_epi32(k);
  const __m256i rnd =
      _mm256_set1_epi64x((int64_t{1} << 48) + (1 << (kAanConstBits - 1)));
  __m256i pe = _mm256_srli_epi64(
      _mm256_add_epi64(_mm256_mul_epi32(x, vk), rnd), kAanConstBits);
  __m256i po = _mm256_srli_epi64(
      _mm256_add_epi64(_mm256_mul_epi32(_mm256_srli_epi64(x, 32), vk), rnd),
      kAanConstBits);
  return _mm256_blend_epi32(pe, _mm256_slli_epi64(po, 32), 0xaa);
}

// One AAN 1-D inverse pass on eight int32 vectors, lanewise — the exact
// flowgraph of the scalar aan_pass (jpeg_decode.cpp), in flowgraph order
// r[0..7] = frequencies in, spatial samples out.
inline void aan_pass_v(__m256i r[8]) {
  // Even part.
  __m256i tmp10 = _mm256_add_epi32(r[0], r[4]);
  __m256i tmp11 = _mm256_sub_epi32(r[0], r[4]);
  __m256i tmp13 = _mm256_add_epi32(r[2], r[6]);
  __m256i tmp12 = _mm256_sub_epi32(
      aan_mul_v(_mm256_sub_epi32(r[2], r[6]), kFix1_414213562), tmp13);
  __m256i e0 = _mm256_add_epi32(tmp10, tmp13);
  __m256i e3 = _mm256_sub_epi32(tmp10, tmp13);
  __m256i e1 = _mm256_add_epi32(tmp11, tmp12);
  __m256i e2 = _mm256_sub_epi32(tmp11, tmp12);

  // Odd part.
  __m256i z13 = _mm256_add_epi32(r[5], r[3]);
  __m256i z10 = _mm256_sub_epi32(r[5], r[3]);
  __m256i z11 = _mm256_add_epi32(r[1], r[7]);
  __m256i z12 = _mm256_sub_epi32(r[1], r[7]);
  __m256i o7 = _mm256_add_epi32(z11, z13);
  __m256i t11 = aan_mul_v(_mm256_sub_epi32(z11, z13), kFix1_414213562);
  __m256i z5 = aan_mul_v(_mm256_add_epi32(z10, z12), kFix1_847759065);
  __m256i t10 = _mm256_sub_epi32(aan_mul_v(z12, kFix1_082392200), z5);
  __m256i t12 = _mm256_sub_epi32(z5, aan_mul_v(z10, kFix2_613125930));
  __m256i o6 = _mm256_sub_epi32(t12, o7);
  __m256i o5 = _mm256_sub_epi32(t11, o6);
  __m256i o4 = _mm256_add_epi32(t10, o5);

  r[0] = _mm256_add_epi32(e0, o7);
  r[7] = _mm256_sub_epi32(e0, o7);
  r[1] = _mm256_add_epi32(e1, o6);
  r[6] = _mm256_sub_epi32(e1, o6);
  r[2] = _mm256_add_epi32(e2, o5);
  r[5] = _mm256_sub_epi32(e2, o5);
  r[4] = _mm256_add_epi32(e3, o4);
  r[3] = _mm256_sub_epi32(e3, o4);
}

// Pass-1 shortcut for blocks whose coefficient rows 4-7 are all zero —
// true for every chroma block and roughly half the luma blocks of
// typical streams, since low zigzag indices live in the top-left rows.
// Each elided operation is an addition or subtraction of an exact zero,
// and every aan_mul sees the same operand value as the full flowgraph
// (z11 - z13 and z10 + z12 both collapse to r1 - r3), so the outputs
// are bit-identical to aan_pass_v on the same block. Reads r[0..3]
// only; writes r[0..7].
inline void aan_pass_v_top4(__m256i r[8]) {
  // Even part (r4 = r6 = 0): tmp10 = tmp11 = r0, tmp13 = r2.
  __m256i tmp12 =
      _mm256_sub_epi32(aan_mul_v(r[2], kFix1_414213562), r[2]);
  __m256i e0 = _mm256_add_epi32(r[0], r[2]);
  __m256i e3 = _mm256_sub_epi32(r[0], r[2]);
  __m256i e1 = _mm256_add_epi32(r[0], tmp12);
  __m256i e2 = _mm256_sub_epi32(r[0], tmp12);

  // Odd part (r5 = r7 = 0): z13 = r3, z10 = -r3, z11 = z12 = r1.
  __m256i d = _mm256_sub_epi32(r[1], r[3]);
  __m256i o7 = _mm256_add_epi32(r[1], r[3]);
  __m256i t11 = aan_mul_v(d, kFix1_414213562);
  __m256i z5 = aan_mul_v(d, kFix1_847759065);
  __m256i t10 = _mm256_sub_epi32(aan_mul_v(r[1], kFix1_082392200), z5);
  __m256i t12 = _mm256_sub_epi32(
      z5, aan_mul_v(_mm256_sub_epi32(_mm256_setzero_si256(), r[3]),
                    kFix2_613125930));
  __m256i o6 = _mm256_sub_epi32(t12, o7);
  __m256i o5 = _mm256_sub_epi32(t11, o6);
  __m256i o4 = _mm256_add_epi32(t10, o5);

  r[0] = _mm256_add_epi32(e0, o7);
  r[7] = _mm256_sub_epi32(e0, o7);
  r[1] = _mm256_add_epi32(e1, o6);
  r[6] = _mm256_sub_epi32(e1, o6);
  r[2] = _mm256_add_epi32(e2, o5);
  r[5] = _mm256_sub_epi32(e2, o5);
  r[4] = _mm256_add_epi32(e3, o4);
  r[3] = _mm256_sub_epi32(e3, o4);
}

inline void transpose8x8_i32(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

void idct8x8(const int16_t in[64], const int32_t prescale[64],
             uint8_t* out, int stride) {
  // Overflow guard: blocks with |coef| > kSimdIdctMaxCoef (never reached
  // by real 8-bit baseline streams) take the scalar path, keeping the
  // vector tier bit-exact for arbitrary crafted input.
  const __m256i* cin = reinterpret_cast<const __m256i*>(in);
  const __m256i c0 = _mm256_loadu_si256(cin);      // rows 0-1
  const __m256i c1 = _mm256_loadu_si256(cin + 1);  // rows 2-3
  const __m256i c2 = _mm256_loadu_si256(cin + 2);  // rows 4-5
  const __m256i c3 = _mm256_loadu_si256(cin + 3);  // rows 6-7
  __m256i mx = _mm256_max_epu16(
      _mm256_max_epu16(_mm256_abs_epi16(c0), _mm256_abs_epi16(c1)),
      _mm256_max_epu16(_mm256_abs_epi16(c2), _mm256_abs_epi16(c3)));
  __m128i m = _mm_max_epu16(_mm256_castsi256_si128(mx),
                            _mm256_extracti128_si256(mx, 1));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 2));
  if (_mm_extract_epi16(m, 0) > kSimdIdctMaxCoef) {
    idct8x8_scalar(in, prescale, out, stride);
    return;
  }

  // Pass 1 over columns: vector index = flowgraph input, lane = column.
  // (The scalar all-AC-zero column shortcut is bit-identical to running
  // the full flowgraph — every aan_mul(0) is exactly 0 — so the vector
  // path simply always runs it.) Blocks with zero rows 4-7 skip those
  // dequant loads and take the elided-zero-term pass.
  const __m256i low = _mm256_or_si256(c2, c3);
  const bool top4 = _mm256_testz_si256(low, low) != 0;
  // (The column-sparse counterpart — elide pass-2 terms when coefficient
  // columns 4-7 are zero — measured neutral-to-slower here despite ~74%
  // eligibility: the kernel is bound by the transposes and loads/stores,
  // so the extra predicate only added a branch. Not worth the check.)
  __m256i r[8];
  const int nrows = top4 ? 4 : 8;
  for (int i = 0; i < nrows; ++i) {
    __m256i coef = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 8 * i)));
    __m256i mrow = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(prescale + 8 * i));
    r[i] = _mm256_mullo_epi32(coef, mrow);  // |coef*m| < 2^31: exact
  }
  if (top4) {
    aan_pass_v_top4(r);
  } else {
    aan_pass_v(r);
  }
  const __m256i rnd1 = _mm256_set1_epi32(1 << (kAanPass1Shift - 1));
  for (int i = 0; i < 8; ++i)
    r[i] = _mm256_srai_epi32(_mm256_add_epi32(r[i], rnd1), kAanPass1Shift);

  // Pass 2 over rows: transpose so lane = row, run the same flowgraph,
  // descale, level-shift.
  transpose8x8_i32(r);
  aan_pass_v(r);
  const __m256i rnd2 = _mm256_set1_epi32(1 << (kAanFinalShift - 1));
  const __m256i bias = _mm256_set1_epi32(128);
  for (int i = 0; i < 8; ++i)
    r[i] = _mm256_add_epi32(
        _mm256_srai_epi32(_mm256_add_epi32(r[i], rnd2), kAanFinalShift),
        bias);

  // Back to row-major and clamp: values fit int16, so the
  // packs_epi32 -> packus_epi16 double saturation equals the scalar
  // [0, 255] clamp. Rows go out 8 bytes at a time, `stride` apart.
  transpose8x8_i32(r);
  for (int i = 0; i < 8; i += 2) {
    __m128i a = _mm_packs_epi32(_mm256_castsi256_si128(r[i]),
                                _mm256_extracti128_si256(r[i], 1));
    __m128i b = _mm_packs_epi32(_mm256_castsi256_si128(r[i + 1]),
                                _mm256_extracti128_si256(r[i + 1], 1));
    __m128i px = _mm_packus_epi16(a, b);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i * stride), px);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + (i + 1) * stride),
                     _mm_unpackhi_epi64(px, px));
  }
}

const KernelOps kAvx2Ops = {
    KernelDispatch::kAvx2,
    "avx2",
    &blur_h3_row,
    &blur_h5_row,
    &blur_v3_row,
    &blur_v5_row,
    &down2_row,
    &down4_row,
    &blend_row,
    &down2_blend_row,
    &idct8x8,
};

}  // namespace

const KernelOps* avx2_ops() { return &kAvx2Ops; }

}  // namespace media::detail

#else  // !__AVX2__

namespace media::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace media::detail

#endif
