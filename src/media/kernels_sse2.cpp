// SSE2 tier of the media kernel dispatch table (kernels_simd.hpp).
//
// 128-bit byte kernels only: widen u8 -> u16, do the exact fixed-point
// arithmetic of the scalar reference in 16-bit lanes (every accumulator
// is proven <= 65408, so u16 never wraps), shift and pack back. The
// IDCT stays on the scalar implementation — SSE2 lacks the 32-bit lane
// multiplies the exact AAN flowgraph needs (see kernels_avx2.cpp).
//
// Everything here is internal-linkage so no SSE2-encoded symbol can leak
// into another TU. SSE2 is the x86-64 architectural baseline, so this TU
// needs no special compile flags.
#include "media/kernels_simd.hpp"

#if defined(__SSE2__) || defined(_M_X64)

#include <emmintrin.h>

namespace media::detail {
namespace {

inline uint8_t mix1(uint8_t fg, uint8_t bg, int alpha256) {
  return static_cast<uint8_t>(
      (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8);
}

// 3-tap horizontal blur over columns [1, w-1).
void blur_h3_row(const uint8_t* in, uint8_t* out, int w) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i t0 = _mm_set1_epi16(kBlurTaps3[0]);
  const __m128i t1 = _mm_set1_epi16(kBlurTaps3[1]);
  const __m128i rnd = _mm_set1_epi16(128);
  int x = 1;
  for (; x + 16 <= w - 1; x += 16) {
    __m128i l = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x - 1));
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x));
    __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x + 1));
    __m128i lo = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(l, zero),
                                          _mm_unpacklo_epi8(r, zero)),
                            t0),
            _mm_mullo_epi16(_mm_unpacklo_epi8(c, zero), t1)));
    __m128i hi = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(l, zero),
                                          _mm_unpackhi_epi8(r, zero)),
                            t0),
            _mm_mullo_epi16(_mm_unpackhi_epi8(c, zero), t1)));
    __m128i packed =
        _mm_packus_epi16(_mm_srli_epi16(lo, 8), _mm_srli_epi16(hi, 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), packed);
  }
  for (; x < w - 1; ++x) {
    int acc = 128 + kBlurTaps3[0] * in[x - 1] + kBlurTaps3[1] * in[x] +
              kBlurTaps3[2] * in[x + 1];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

// 5-tap horizontal blur over columns [2, w-2).
void blur_h5_row(const uint8_t* in, uint8_t* out, int w) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i t0 = _mm_set1_epi16(kBlurTaps5[0]);
  const __m128i t1 = _mm_set1_epi16(kBlurTaps5[1]);
  const __m128i t2 = _mm_set1_epi16(kBlurTaps5[2]);
  const __m128i rnd = _mm_set1_epi16(128);
  int x = 2;
  for (; x + 16 <= w - 2; x += 16) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x - 2));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x - 1));
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x + 1));
    __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + x + 2));
    __m128i lo = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_add_epi16(
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                                              _mm_unpacklo_epi8(e, zero)),
                                t0),
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(b, zero),
                                              _mm_unpacklo_epi8(d, zero)),
                                t1)),
            _mm_mullo_epi16(_mm_unpacklo_epi8(c, zero), t2)));
    __m128i hi = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_add_epi16(
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                                              _mm_unpackhi_epi8(e, zero)),
                                t0),
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(b, zero),
                                              _mm_unpackhi_epi8(d, zero)),
                                t1)),
            _mm_mullo_epi16(_mm_unpackhi_epi8(c, zero), t2)));
    __m128i packed =
        _mm_packus_epi16(_mm_srli_epi16(lo, 8), _mm_srli_epi16(hi, 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), packed);
  }
  for (; x < w - 2; ++x) {
    int acc = 128 + kBlurTaps5[0] * in[x - 2] + kBlurTaps5[1] * in[x - 1] +
              kBlurTaps5[2] * in[x] + kBlurTaps5[3] * in[x + 1] +
              kBlurTaps5[4] * in[x + 2];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v3_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 uint8_t* out, int w) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i t0 = _mm_set1_epi16(kBlurTaps3[0]);
  const __m128i t1 = _mm_set1_epi16(kBlurTaps3[1]);
  const __m128i rnd = _mm_set1_epi16(128);
  int x = 0;
  for (; x + 16 <= w; x += 16) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ra + x));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rb + x));
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rc + x));
    __m128i lo = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                                          _mm_unpacklo_epi8(c, zero)),
                            t0),
            _mm_mullo_epi16(_mm_unpacklo_epi8(b, zero), t1)));
    __m128i hi = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                                          _mm_unpackhi_epi8(c, zero)),
                            t0),
            _mm_mullo_epi16(_mm_unpackhi_epi8(b, zero), t1)));
    __m128i packed =
        _mm_packus_epi16(_mm_srli_epi16(lo, 8), _mm_srli_epi16(hi, 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), packed);
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps3[0] * ra[x] + kBlurTaps3[1] * rb[x] +
              kBlurTaps3[2] * rc[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

void blur_v5_row(const uint8_t* ra, const uint8_t* rb, const uint8_t* rc,
                 const uint8_t* rd, const uint8_t* re, uint8_t* out, int w) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i t0 = _mm_set1_epi16(kBlurTaps5[0]);
  const __m128i t1 = _mm_set1_epi16(kBlurTaps5[1]);
  const __m128i t2 = _mm_set1_epi16(kBlurTaps5[2]);
  const __m128i rnd = _mm_set1_epi16(128);
  int x = 0;
  for (; x + 16 <= w; x += 16) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ra + x));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rb + x));
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rc + x));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rd + x));
    __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(re + x));
    __m128i lo = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_add_epi16(
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                                              _mm_unpacklo_epi8(e, zero)),
                                t0),
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpacklo_epi8(b, zero),
                                              _mm_unpacklo_epi8(d, zero)),
                                t1)),
            _mm_mullo_epi16(_mm_unpacklo_epi8(c, zero), t2)));
    __m128i hi = _mm_add_epi16(
        rnd,
        _mm_add_epi16(
            _mm_add_epi16(
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                                              _mm_unpackhi_epi8(e, zero)),
                                t0),
                _mm_mullo_epi16(_mm_add_epi16(_mm_unpackhi_epi8(b, zero),
                                              _mm_unpackhi_epi8(d, zero)),
                                t1)),
            _mm_mullo_epi16(_mm_unpackhi_epi8(c, zero), t2)));
    __m128i packed =
        _mm_packus_epi16(_mm_srli_epi16(lo, 8), _mm_srli_epi16(hi, 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), packed);
  }
  for (; x < w; ++x) {
    int acc = 128 + kBlurTaps5[0] * ra[x] + kBlurTaps5[1] * rb[x] +
              kBlurTaps5[2] * rc[x] + kBlurTaps5[3] * rd[x] +
              kBlurTaps5[4] * re[x];
    out[x] = static_cast<uint8_t>(acc >> 8);
  }
}

// Horizontal pair sums of 16 bytes as 8 u16 lanes (max 510).
inline __m128i pair_sums_u16(__m128i v) {
  const __m128i mask = _mm_set1_epi16(0x00ff);
  return _mm_add_epi16(_mm_and_si128(v, mask), _mm_srli_epi16(v, 8));
}

// Factor-2 box sums (a[2x]+a[2x+1]+b[2x]+b[2x+1]+2)>>2 for 8 outputs,
// left as u16 lanes so the fused blend variant can keep going.
inline __m128i down2_u16(const uint8_t* a, const uint8_t* b) {
  __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  __m128i sum = _mm_add_epi16(_mm_add_epi16(pair_sums_u16(va),
                                            pair_sums_u16(vb)),
                              _mm_set1_epi16(2));
  return _mm_srli_epi16(sum, 2);
}

void down2_row(const uint8_t* a, const uint8_t* b, uint8_t* out, int n) {
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    __m128i v0 = down2_u16(a + 2 * x, b + 2 * x);
    __m128i v1 = down2_u16(a + 2 * x + 16, b + 2 * x + 16);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x),
                     _mm_packus_epi16(v0, v1));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    out[x] = static_cast<uint8_t>((sum + 2) >> 2);
  }
}

// Sums of 4 consecutive bytes per int32 lane for one source row.
inline __m128i quad_sums_i32(const uint8_t* r) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r));
  return _mm_madd_epi16(pair_sums_u16(v), _mm_set1_epi16(1));
}

void down4_row(const uint8_t* r0, const uint8_t* r1, const uint8_t* r2,
               const uint8_t* r3, uint8_t* out, int n) {
  int x = 0;
  for (; x + 8 <= n; x += 8) {
    __m128i t0 = _mm_add_epi32(
        _mm_add_epi32(quad_sums_i32(r0 + 4 * x), quad_sums_i32(r1 + 4 * x)),
        _mm_add_epi32(quad_sums_i32(r2 + 4 * x), quad_sums_i32(r3 + 4 * x)));
    __m128i t1 = _mm_add_epi32(
        _mm_add_epi32(quad_sums_i32(r0 + 4 * x + 16),
                      quad_sums_i32(r1 + 4 * x + 16)),
        _mm_add_epi32(quad_sums_i32(r2 + 4 * x + 16),
                      quad_sums_i32(r3 + 4 * x + 16)));
    const __m128i rnd = _mm_set1_epi32(8);
    t0 = _mm_srli_epi32(_mm_add_epi32(t0, rnd), 4);
    t1 = _mm_srli_epi32(_mm_add_epi32(t1, rnd), 4);
    __m128i packed = _mm_packus_epi16(_mm_packs_epi32(t0, t1),
                                      _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x), packed);
  }
  for (; x < n; ++x) {
    unsigned sum = 0;
    for (int i = 0; i < 4; ++i)
      sum += static_cast<unsigned>(r0[4 * x + i]) + r1[4 * x + i] +
             r2[4 * x + i] + r3[4 * x + i];
    out[x] = static_cast<uint8_t>((sum + 8) >> 4);
  }
}

// (v*alpha + d*(256-alpha) + 128) >> 8 on u16 lanes (max 65408, no wrap).
inline __m128i mix_u16(__m128i v, __m128i d, __m128i va, __m128i vb) {
  __m128i acc = _mm_add_epi16(
      _mm_add_epi16(_mm_mullo_epi16(v, va), _mm_mullo_epi16(d, vb)),
      _mm_set1_epi16(128));
  return _mm_srli_epi16(acc, 8);
}

void blend_row(const uint8_t* src, uint8_t* dst, int n, int alpha256) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i va = _mm_set1_epi16(static_cast<short>(alpha256));
  const __m128i vb = _mm_set1_epi16(static_cast<short>(256 - alpha256));
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + x));
    __m128i lo = mix_u16(_mm_unpacklo_epi8(s, zero),
                         _mm_unpacklo_epi8(d, zero), va, vb);
    __m128i hi = mix_u16(_mm_unpackhi_epi8(s, zero),
                         _mm_unpackhi_epi8(d, zero), va, vb);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) dst[x] = mix1(src[x], dst[x], alpha256);
}

void down2_blend_row(const uint8_t* a, const uint8_t* b, uint8_t* dst, int n,
                     int alpha256) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i va = _mm_set1_epi16(static_cast<short>(alpha256));
  const __m128i vb = _mm_set1_epi16(static_cast<short>(256 - alpha256));
  int x = 0;
  for (; x + 16 <= n; x += 16) {
    __m128i v0 = down2_u16(a + 2 * x, b + 2 * x);
    __m128i v1 = down2_u16(a + 2 * x + 16, b + 2 * x + 16);
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + x));
    __m128i lo = mix_u16(v0, _mm_unpacklo_epi8(d, zero), va, vb);
    __m128i hi = mix_u16(v1, _mm_unpackhi_epi8(d, zero), va, vb);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_packus_epi16(lo, hi));
  }
  for (; x < n; ++x) {
    const uint8_t* pa = a + 2 * x;
    const uint8_t* pb = b + 2 * x;
    unsigned sum = static_cast<unsigned>(pa[0]) + pa[1] + pb[0] + pb[1];
    dst[x] = mix1(static_cast<uint8_t>((sum + 2) >> 2), dst[x], alpha256);
  }
}

const KernelOps kSse2Ops = {
    KernelDispatch::kSse2,
    "sse2",
    &blur_h3_row,
    &blur_h5_row,
    &blur_v3_row,
    &blur_v5_row,
    &down2_row,
    &down4_row,
    &blend_row,
    &down2_blend_row,
    &idct8x8_scalar,  // exact AAN needs 32-bit lane multiplies; see AVX2
};

}  // namespace

const KernelOps* sse2_ops() { return &kSse2Ops; }

}  // namespace media::detail

#else  // !__SSE2__

namespace media::detail {
const KernelOps* sse2_ops() { return nullptr; }
}  // namespace media::detail

#endif
