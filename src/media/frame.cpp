#include "media/frame.hpp"

#include <cstring>

namespace media {

int plane_count(PixelFormat fmt) { return fmt == PixelFormat::kGray ? 1 : 3; }

void plane_dims(PixelFormat fmt, int w, int h, int plane, int* pw, int* ph) {
  SUP_CHECK(plane >= 0 && plane < plane_count(fmt));
  if (plane == 0 || fmt == PixelFormat::kYuv444) {
    *pw = w;
    *ph = h;
  } else {
    *pw = (w + 1) / 2;
    *ph = (h + 1) / 2;
  }
}

Frame::Frame(PixelFormat fmt, int width, int height)
    : fmt_(fmt), width_(width), height_(height) {
  SUP_CHECK(width > 0 && height > 0);
  size_t total = 0;
  const int n = plane_count(fmt);
  offsets_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int pw = 0;
    int ph = 0;
    plane_dims(fmt, width, height, i, &pw, &ph);
    offsets_[static_cast<size_t>(i)] = total;
    total += static_cast<size_t>(pw) * static_cast<size_t>(ph);
  }
  data_.assign(total, 0);
}

PlaneView Frame::plane(int i) {
  int pw = 0;
  int ph = 0;
  plane_dims(fmt_, width_, height_, i, &pw, &ph);
  return PlaneView{data_.data() + offsets_[static_cast<size_t>(i)], pw, ph,
                   pw};
}

ConstPlaneView Frame::plane(int i) const {
  int pw = 0;
  int ph = 0;
  plane_dims(fmt_, width_, height_, i, &pw, &ph);
  return ConstPlaneView{data_.data() + offsets_[static_cast<size_t>(i)], pw,
                        ph, pw};
}

void Frame::fill(uint8_t value) {
  std::memset(data_.data(), value, data_.size());
}

bool Frame::equals(const Frame& other) const {
  return fmt_ == other.fmt_ && width_ == other.width_ &&
         height_ == other.height_ && data_ == other.data_;
}

FramePtr Frame::clone() const {
  auto copy = std::make_shared<Frame>(fmt_, width_, height_);
  copy->data_ = data_;
  return copy;
}

FramePtr make_frame(PixelFormat fmt, int width, int height) {
  return std::make_shared<Frame>(fmt, width, height);
}

}  // namespace media
