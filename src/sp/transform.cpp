#include "sp/transform.hpp"

namespace sp {
namespace {

NodePtr sp_rec(const Node& n) {
  if (n.kind() == NodeKind::kPar && n.shape == ParShape::kCrossDep) {
    // Each parblock becomes its own slice region; the implicit barrier
    // between seq steps is the added synchronization point.
    std::vector<NodePtr> steps;
    steps.reserve(n.children.size());
    for (const NodePtr& block : n.children) {
      std::vector<NodePtr> one;
      one.push_back(sp_rec(*block));
      steps.push_back(make_par(ParShape::kSlice, n.replicas, std::move(one)));
    }
    return make_seq(std::move(steps));
  }
  NodePtr copy = n.clone();
  copy->children.clear();
  for (const NodePtr& c : n.children) copy->children.push_back(sp_rec(*c));
  return copy;
}

// Returns nullptr when the subtree disappears entirely.
NodePtr strip_rec(const Node& n) {
  if (n.kind() == NodeKind::kOption) {
    if (!n.initially_enabled) return nullptr;
    return strip_rec(*n.children[0]);
  }
  NodePtr copy = n.clone();
  copy->children.clear();
  for (const NodePtr& c : n.children) {
    NodePtr child = strip_rec(*c);
    if (child) copy->children.push_back(std::move(child));
  }
  if (copy->kind() != NodeKind::kLeaf && copy->children.empty())
    return nullptr;
  return copy;
}

}  // namespace

NodePtr to_sp_form(const Node& root) { return sp_rec(root); }

NodePtr strip_disabled_options(const Node& root) {
  NodePtr out = strip_rec(root);
  // An entirely empty application degenerates to an empty seq.
  return out ? std::move(out) : make_seq({});
}

}  // namespace sp
