#include "sp/validate.hpp"

#include <map>
#include <set>
#include <string>

#include "support/strings.hpp"

namespace sp {
namespace {

struct Context {
  std::set<std::string> instances;
  std::set<std::string> options;
  std::set<std::string> managers;
  std::set<std::string> streams_written;
  // Stream name -> position of the first reader (for the read-but-
  // never-written diagnostic).
  std::map<std::string, SourceLoc> streams_read;
};

// Source position of the offending node, appended to every message so
// spec authors see where in the XSPCL the problem is.
std::string at(const Node& n) { return loc_suffix(n.loc); }

support::Status check(const Node& n, int manager_depth, Context* ctx) {
  switch (n.kind()) {
    case NodeKind::kLeaf: {
      if (n.leaf.instance.empty())
        return support::invalid_argument("leaf with empty instance name" + at(n));
      if (n.leaf.klass.empty())
        return support::invalid_argument("component '" + n.leaf.instance +
                                         "' has no class" + at(n));
      if (!ctx->instances.insert(n.leaf.instance).second)
        return support::already_exists("duplicate component instance '" +
                                       n.leaf.instance + "'" + at(n));
      if (!n.children.empty())
        return support::invalid_argument("leaf nodes cannot have children" + at(n));
      for (const PortBinding& b : n.leaf.inputs) {
        if (b.stream.empty())
          return support::invalid_argument("empty stream on input port '" +
                                           b.port + "' of '" +
                                           n.leaf.instance + "'" + at(n));
        ctx->streams_read.emplace(b.stream, n.loc);
      }
      for (const PortBinding& b : n.leaf.outputs) {
        if (b.stream.empty())
          return support::invalid_argument("empty stream on output port '" +
                                           b.port + "' of '" +
                                           n.leaf.instance + "'" + at(n));
        ctx->streams_written.insert(b.stream);
      }
      return support::Status::ok();
    }
    case NodeKind::kSeq:
      break;
    case NodeKind::kGroup: {
      if (n.children.empty())
        return support::invalid_argument("group with no components" + at(n));
      for (const NodePtr& c : n.children) {
        if (c->kind() != NodeKind::kLeaf)
          return support::invalid_argument(
              "groups may only contain components (they are scheduled as "
              "one entity)" + at(n));
      }
      break;
    }
    case NodeKind::kPar: {
      if (n.children.empty())
        return support::invalid_argument("parallel node with no parblocks" + at(n));
      if (n.replicas < 1)
        return support::invalid_argument("parallel replicas must be >= 1" + at(n));
      if (n.shape == ParShape::kTask && n.replicas != 1)
        return support::invalid_argument(
            "task-shaped parallel nodes have no replica count" + at(n));
      if (n.shape == ParShape::kSlice && n.children.size() != 1)
        return support::invalid_argument(
            "slice-shaped parallel nodes take exactly one parblock (§3.3)" +
            at(n));
      break;
    }
    case NodeKind::kOption: {
      if (n.option_name.empty())
        return support::invalid_argument("option with empty name" + at(n));
      if (manager_depth == 0)
        return support::failed_precondition(
            "option '" + n.option_name +
            "' is not contained inside a manager (§3.4)" + at(n));
      if (!ctx->options.insert(n.option_name).second)
        return support::already_exists("duplicate option '" + n.option_name +
                                       "'" + at(n));
      if (n.children.size() != 1)
        return support::invalid_argument("option must have exactly one child" + at(n));
      break;
    }
    case NodeKind::kManager: {
      if (n.manager_name.empty())
        return support::invalid_argument("manager with empty name" + at(n));
      if (!ctx->managers.insert(n.manager_name).second)
        return support::already_exists("duplicate manager '" +
                                       n.manager_name + "'" + at(n));
      if (n.children.size() != 1)
        return support::invalid_argument(
            "manager must have exactly one child" + at(n));
      if (n.event_queue.empty())
        return support::invalid_argument("manager '" + n.manager_name +
                                         "' has no event queue" + at(n));
      // Rules that flip options must reference an option inside this
      // manager's subgraph.
      std::set<std::string> local_options;
      visit(*n.children[0], [&](const Node& c) {
        if (c.kind() == NodeKind::kOption) local_options.insert(c.option_name);
      });
      for (const EventRule& r : n.rules) {
        if (r.event.empty())
          return support::invalid_argument("manager '" + n.manager_name +
                                           "' has a rule with no event" +
                                           at(n));
        switch (r.action) {
          case EventAction::kEnable:
          case EventAction::kDisable:
          case EventAction::kToggle:
            if (!local_options.count(r.target))
              return support::not_found(
                  "manager '" + n.manager_name + "' rule for event '" +
                  r.event + "' references option '" + r.target +
                  "' outside its subgraph" + at(n));
            break;
          case EventAction::kForward:
            if (r.target.empty())
              return support::invalid_argument(
                  "forward rule with no destination queue" + at(n));
            break;
          case EventAction::kReconfigure:
            break;
        }
      }
      break;
    }
  }
  int next_depth = manager_depth + (n.kind() == NodeKind::kManager ? 1 : 0);
  for (const NodePtr& c : n.children) {
    SUP_RETURN_IF_ERROR(check(*c, next_depth, ctx));
  }
  return support::Status::ok();
}

}  // namespace

support::Status validate(const Node& root) {
  Context ctx;
  SUP_RETURN_IF_ERROR(check(root, 0, &ctx));
  for (const auto& [s, loc] : ctx.streams_read) {
    if (!ctx.streams_written.count(s))
      return support::failed_precondition("stream '" + s +
                                          "' is read but never written" +
                                          loc_suffix(loc));
  }
  return support::Status::ok();
}

bool is_sp_form(const Node& root) {
  bool sp = true;
  visit(root, [&](const Node& n) {
    if (n.kind() == NodeKind::kPar && n.shape == ParShape::kCrossDep)
      sp = false;
  });
  return sp;
}

}  // namespace sp
