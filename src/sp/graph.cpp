#include "sp/graph.hpp"

#include <algorithm>

namespace sp {

const char* kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::kLeaf: return "leaf";
    case NodeKind::kSeq: return "seq";
    case NodeKind::kPar: return "par";
    case NodeKind::kOption: return "option";
    case NodeKind::kManager: return "manager";
    case NodeKind::kGroup: return "group";
  }
  return "?";
}

const char* shape_name(ParShape s) {
  switch (s) {
    case ParShape::kTask: return "task";
    case ParShape::kSlice: return "slice";
    case ParShape::kCrossDep: return "crossdep";
  }
  return "?";
}

const char* action_name(EventAction a) {
  switch (a) {
    case EventAction::kEnable: return "enable";
    case EventAction::kDisable: return "disable";
    case EventAction::kToggle: return "toggle";
    case EventAction::kForward: return "forward";
    case EventAction::kReconfigure: return "reconfigure";
  }
  return "?";
}

std::string loc_suffix(const SourceLoc& loc) {
  if (!loc.valid()) return "";
  return " (at " + std::to_string(loc.line) + ":" +
         std::to_string(loc.column) + ")";
}

NodePtr Node::clone() const {
  auto copy = std::make_unique<Node>(kind_);
  copy->loc = loc;
  copy->leaf = leaf;
  copy->shape = shape;
  copy->replicas = replicas;
  copy->option_name = option_name;
  copy->initially_enabled = initially_enabled;
  copy->manager_name = manager_name;
  copy->event_queue = event_queue;
  copy->rules = rules;
  copy->children.reserve(children.size());
  for (const NodePtr& c : children) copy->children.push_back(c->clone());
  return copy;
}

NodePtr make_leaf(LeafSpec spec) {
  auto n = std::make_unique<Node>(NodeKind::kLeaf);
  n->leaf = std::move(spec);
  return n;
}

NodePtr make_seq(std::vector<NodePtr> children) {
  auto n = std::make_unique<Node>(NodeKind::kSeq);
  n->children = std::move(children);
  return n;
}

NodePtr make_par(ParShape shape, int replicas,
                 std::vector<NodePtr> parblocks) {
  auto n = std::make_unique<Node>(NodeKind::kPar);
  n->shape = shape;
  n->replicas = replicas;
  n->children = std::move(parblocks);
  return n;
}

NodePtr make_option(std::string name, bool enabled, NodePtr body) {
  auto n = std::make_unique<Node>(NodeKind::kOption);
  n->option_name = std::move(name);
  n->initially_enabled = enabled;
  n->children.push_back(std::move(body));
  return n;
}

NodePtr make_group(std::vector<NodePtr> components) {
  auto n = std::make_unique<Node>(NodeKind::kGroup);
  n->children = std::move(components);
  return n;
}

NodePtr make_manager(std::string name, std::string queue,
                     std::vector<EventRule> rules, NodePtr body) {
  auto n = std::make_unique<Node>(NodeKind::kManager);
  n->manager_name = std::move(name);
  n->event_queue = std::move(queue);
  n->rules = std::move(rules);
  n->children.push_back(std::move(body));
  return n;
}

void visit(const Node& root, const std::function<void(const Node&)>& fn) {
  fn(root);
  for (const NodePtr& c : root.children) visit(*c, fn);
}

std::vector<const Node*> collect_leaves(const Node& root) {
  std::vector<const Node*> out;
  visit(root, [&](const Node& n) {
    if (n.kind() == NodeKind::kLeaf) out.push_back(&n);
  });
  return out;
}

namespace {

void stats_rec(const Node& n, int depth, int mult, GraphStats* s) {
  s->max_depth = std::max(s->max_depth, depth);
  switch (n.kind()) {
    case NodeKind::kLeaf:
      ++s->leaves;
      s->expanded_leaves += mult;
      return;
    case NodeKind::kSeq: ++s->seq_nodes; break;
    case NodeKind::kPar:
      ++s->par_nodes;
      if (n.shape != ParShape::kTask) mult *= n.replicas;
      break;
    case NodeKind::kOption: ++s->options; break;
    case NodeKind::kManager: ++s->managers; break;
    case NodeKind::kGroup: break;
  }
  for (const NodePtr& c : n.children) stats_rec(*c, depth + 1, mult, s);
}

}  // namespace

GraphStats stats(const Node& root) {
  GraphStats s;
  stats_rec(root, 0, 1, &s);
  return s;
}

}  // namespace sp
