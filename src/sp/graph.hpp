// The SPC (Series-Parallel Contention) task-graph IR of §2/§3 of the
// paper. An application is a tree: leaves are component instances;
// interior nodes combine subgraphs sequentially or in parallel
// (task / slice / crossdep shapes), declare subgraphs optional, or wrap
// them in a reconfiguration manager.
//
// The XSPCL front end elaborates XML into this IR; the Hinch runtime
// compiles it into a per-iteration dependency DAG; the perf module
// evaluates it analytically.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace sp {

// kGroup (an XSPCL extension implementing the paper's §4.1 suggestion):
// a sequence of components scheduled as ONE entity — consumers run
// immediately after their producers on the same core, trading pipeline
// parallelism for cache locality.
enum class NodeKind { kLeaf, kSeq, kPar, kOption, kManager, kGroup };

// The three parallel shapes of §3.3.
enum class ParShape { kTask, kSlice, kCrossDep };

const char* kind_name(NodeKind k);
const char* shape_name(ParShape s);

// Source position of the XML element a node was elaborated from (0 =
// unknown, e.g. hand-built graphs). Lives here rather than reusing
// xml::Position so the sp layer stays front-end-agnostic; diagnostics
// append it via loc_suffix().
struct SourceLoc {
  int line = 0;
  int column = 0;
  bool valid() const { return line > 0; }
};

// " (at line:col)" when the location is known, "" otherwise.
std::string loc_suffix(const SourceLoc& loc);

// A name=value initialization parameter (§3.1).
struct Param {
  std::string name;
  std::string value;
};

// Binding of a component port to a named stream.
struct PortBinding {
  std::string port;
  std::string stream;
};

// Manager event rules (§3.4): what to do when `event` is polled.
enum class EventAction { kEnable, kDisable, kToggle, kForward, kReconfigure };

const char* action_name(EventAction a);

struct EventRule {
  std::string event;
  EventAction action = EventAction::kToggle;
  // kEnable/kDisable/kToggle: option name. kForward: destination queue.
  std::string target;
  // kReconfigure: request payload sent to all components in the subgraph.
  std::string payload;
};

// Description of one component instance (a leaf).
struct LeafSpec {
  std::string instance;  // unique hierarchical instance name
  std::string klass;     // component class, resolved via the registry
  std::vector<Param> params;
  std::vector<PortBinding> inputs;
  std::vector<PortBinding> outputs;
  // Initial reconfiguration request delivered on creation (§3.1), empty
  // when absent.
  std::string initial_reconfig;
  // Loop-level fusion annotation (the fuse-kernels pass): the registered
  // pattern this leaf was synthesized from and the instances it
  // replaced, in chain order. Empty for ordinary leaves. Carried on the
  // leaf (and into dot dumps) so a fused graph stays auditable.
  std::string fused_pattern;
  std::vector<std::string> fused_from;
};

class Node;
using NodePtr = std::unique_ptr<Node>;

class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind() const { return kind_; }

  // Where in the XSPCL source this node came from (unset for hand-built
  // or synthesized nodes).
  SourceLoc loc;

  // --- leaf ---
  LeafSpec leaf;  // valid when kind == kLeaf

  // --- par ---
  ParShape shape = ParShape::kTask;
  // Data-parallel copy count `n` for slice/crossdep (§3.3); 1 for task.
  int replicas = 1;

  // --- option ---
  std::string option_name;
  bool initially_enabled = true;

  // --- manager ---
  std::string manager_name;
  std::string event_queue;  // the queue this manager polls
  std::vector<EventRule> rules;

  // Children: kSeq = steps in order; kPar = parblocks; kOption/kManager =
  // the single contained subgraph (by convention a kSeq).
  std::vector<NodePtr> children;

  Node& add_child(NodeKind kind) {
    children.push_back(std::make_unique<Node>(kind));
    return *children.back();
  }

  NodePtr clone() const;

 private:
  NodeKind kind_;
};

// --- construction helpers (used by tests and hand-built graphs) ---------------

NodePtr make_leaf(LeafSpec spec);
NodePtr make_seq(std::vector<NodePtr> children);
NodePtr make_par(ParShape shape, int replicas, std::vector<NodePtr> parblocks);
NodePtr make_option(std::string name, bool enabled, NodePtr body);
NodePtr make_manager(std::string name, std::string queue,
                     std::vector<EventRule> rules, NodePtr body);
// children must all be leaves (validated).
NodePtr make_group(std::vector<NodePtr> components);

// --- traversal -----------------------------------------------------------------

// Pre-order visit of every node.
void visit(const Node& root, const std::function<void(const Node&)>& fn);

// All leaves in schedule order.
std::vector<const Node*> collect_leaves(const Node& root);

// Structure statistics.
struct GraphStats {
  int leaves = 0;
  int seq_nodes = 0;
  int par_nodes = 0;
  int options = 0;
  int managers = 0;
  int max_depth = 0;
  // Leaf count after expanding slice/crossdep replication.
  int expanded_leaves = 0;
};

GraphStats stats(const Node& root);

}  // namespace sp
