// The SP-IR pass pipeline: named, ordered graph-to-graph rewrites with
// sp::validate run between passes (debug builds) and per-pass dump
// hooks. Every consumer of the IR — xspcl::build_program, the generated
// codegen path, hinch::Program::build and perf::predict — drives the
// same canonical pipeline instead of hand-calling individual transforms
// (the pre-pass state of affairs: sp::to_sp_form invoked ad-hoc from
// two places in perf/predict.cpp and nowhere else).
//
// Canonical order (see docs/COMPILER.md):
//   normalize -> strip-dead-options -> [to-sp-form] -> [auto-group]
//     -> [fuse-kernels]
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sp/graph.hpp"
#include "support/status.hpp"

namespace sp {

// One named rewrite. `run` consumes the graph and returns the rewritten
// one (possibly the same object); it must leave a graph that is valid
// whenever its input was.
struct Pass {
  std::string name;
  std::string description;
  std::function<support::Result<NodePtr>(NodePtr)> run;
};

// Invoked after each pass with the pass name and the resulting graph
// (used by xspclc --dump-after to emit intermediate dot files).
using DumpHook =
    std::function<void(const std::string& pass, const Node& graph)>;

struct FusionCandidate;       // sp/fuse.hpp
class KernelFusionRegistry;   // sp/fuse_kernels.hpp

// Decides whether a fusion candidate is worth taking. The sp layer only
// defines the contract; the cost-model-backed implementation lives in
// perf::make_fusion_advisor (it sees the simulated cache hierarchy).
using FusionAdvisor = std::function<bool(const FusionCandidate&)>;

// Verification between passes defaults to on in debug builds (§ the
// acceptance contract: a buggy pass is caught at the pass boundary, not
// three layers later in the executor).
#ifdef NDEBUG
inline constexpr bool kVerifyPassesDefault = false;
#else
inline constexpr bool kVerifyPassesDefault = true;
#endif

// Which passes the canonical pipeline runs, and how. This is the knob
// hinch::BuildConfig carries (`config.passes`) and tools/xspclc exposes
// as --passes= / --dump-after=.
struct PassOptions {
  // Flatten nested seq nodes (task DAG unchanged; gives later passes a
  // canonical step list to walk).
  bool normalize = true;
  // Remove options no manager rule references: disabled ones vanish,
  // enabled ones lose their guard (generalizes the old
  // sp::strip_disabled_options, which removed every disabled option and
  // so could not run on reconfigurable graphs).
  bool strip_dead_options = true;
  // Rewrite crossdep regions into SP form (§3.3). Off for building —
  // the executors schedule crossdep natively; perf::predict turns it on.
  bool to_sp_form = false;
  // Fuse stream-connected producer->consumer chains into kGroup nodes
  // (§4.1). Off by default; when on, `advisor` arbitrates each fusion
  // (empty advisor = fuse every candidate).
  bool auto_group = false;
  FusionAdvisor advisor;
  // Rewrite registered component chains into single fused-loop
  // components (loop-level fusion; runs after auto-group so it sees the
  // groups that pass formed). `kernel_patterns` names the chains and
  // their rewrites — typically components::standard_fusions(); it must
  // outlive the pipeline run, and null makes the pass a no-op.
  // `kernel_advisor` arbitrates each rewrite (empty = take every
  // structurally-safe candidate); the cost-model-backed one is
  // perf::make_kernel_fusion_advisor.
  bool fuse_kernels = false;
  const KernelFusionRegistry* kernel_patterns = nullptr;
  FusionAdvisor kernel_advisor;
  // Run sp::validate after every pass (error names the failing pass).
  bool verify = kVerifyPassesDefault;

  // All passes off — for callers that already ran the pipeline and only
  // need Program::build to compile the graph as-is.
  static PassOptions none();
};

class PassManager {
 public:
  PassManager() = default;

  void add(Pass pass);
  const std::vector<Pass>& passes() const { return passes_; }
  bool empty() const { return passes_.empty(); }

  void set_verify(bool on) { verify_ = on; }
  void set_dump_hook(DumpHook hook) { dump_ = std::move(hook); }

  // Run every pass in order. When verification is on and the input graph
  // validates, sp::validate runs after each pass and a failure is
  // reported as an internal error naming the pass. (An input that does
  // not validate — e.g. a hand-built test fragment — skips the checks:
  // the pipeline is not the validator.)
  support::Result<NodePtr> run(NodePtr graph) const;

 private:
  std::vector<Pass> passes_;
  bool verify_ = kVerifyPassesDefault;
  DumpHook dump_;
};

// --- the registered passes ----------------------------------------------------

Pass normalize_pass();
Pass strip_dead_options_pass();
Pass to_sp_form_pass();
// Defined in sp/fuse.cpp; an empty advisor fuses every candidate.
Pass auto_group_pass(FusionAdvisor advisor);
// Defined in sp/fuse_kernels.cpp (see that header for the contract).
Pass fuse_kernels_pass(const KernelFusionRegistry* patterns,
                       FusionAdvisor advisor);

// Descriptor for `xspclc passes` and --dump-after=all.
struct PassInfo {
  std::string name;
  std::string description;
  bool default_on = false;  // part of the default build pipeline
};

// Every pass the pipeline knows, in canonical order.
const std::vector<PassInfo>& registered_passes();

// Look up a single pass by registered name, drawing its configuration
// (advisors, kernel patterns) from `options`. Not-found lists the
// valid names.
support::Result<Pass> pass_by_name(const std::string& name,
                                   const PassOptions& options);

// Back-compat convenience: `advisor` configures "auto-group";
// "fuse-kernels" resolves with no patterns (a no-op pass).
support::Result<Pass> pass_by_name(const std::string& name,
                                   const FusionAdvisor& advisor);

// The canonical pipeline for `options` (passes in registered order,
// skipping the ones switched off), with verification per
// options.verify.
PassManager make_pipeline(const PassOptions& options);

// A short stable string identifying *which rewrites* a PassOptions runs:
// the enabled pass names in canonical order, plus markers for attached
// advisors/patterns ("+advisor", "+kernel-advisor", "+patterns") since
// an advisor changes what the same flags produce. The verify flag is
// excluded — it never changes the output graph. Two option sets with
// equal fingerprints produce the same graph from the same input *unless*
// their advisor callables differ behind the marker; callers caching on
// the fingerprint (xspcl::SpecCache) must add their own salt in that
// case.
std::string pass_fingerprint(const PassOptions& options);

}  // namespace sp
