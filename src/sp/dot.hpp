// Graphviz export of SP graphs, for debugging and documentation.
#pragma once

#include <string>

#include "sp/graph.hpp"

namespace sp {

// Render the tree as a Graphviz digraph (cluster per structural node).
std::string to_dot(const Node& root, const std::string& title = "xspcl");

}  // namespace sp
