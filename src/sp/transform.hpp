// Graph transformations:
//  - to_sp_form: rewrite crossdep regions into SP form by inserting a
//    synchronization point between consecutive parblocks (§3.3: "If
//    performance prediction is required on this structure, it has to be
//    transformed into SP form by adding a synchronization point between
//    the parblocks").
//  - strip_disabled_options: remove option subgraphs that are initially
//    disabled (the static graph a non-reconfigurable run would use).
#pragma once

#include "sp/graph.hpp"

namespace sp {

// Returns a deep copy where every crossdep par node is replaced by a seq
// of slice-shaped par nodes (one per parblock, same replica count).
NodePtr to_sp_form(const Node& root);

// Returns a deep copy with initially-disabled option subtrees removed.
// An enabled option is replaced by its body.
NodePtr strip_disabled_options(const Node& root);

}  // namespace sp
