// The auto-group pass (§4.1): fuse stream-connected producer->consumer
// step chains inside seq regions into kGroup nodes, so consumers run
// immediately after their producers on the same core and the linking
// stream's packets never park in the L2. This is the paper's own
// proposed remedy for the coordination overhead its profiling blames on
// cache misses — automated, where the repo previously only offered the
// manual <group> XSPCL element.
//
// Fusing is always semantically safe: a group executes its components
// in the order they already had under the seq, and all stream I/O still
// goes through the same Stream objects, so output is bit-identical.
// What fusion costs is parallelism — the fused task is unsliced and
// unpipelined — so each fusion is arbitrated by a FusionAdvisor; the
// cost-model-backed one lives in perf::make_fusion_advisor.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sp/graph.hpp"
#include "sp/pass.hpp"

namespace sp {

// Structural scan shared by auto-group and fuse-kernels: a subtree's
// leaves in depth-first (schedule) order, its stream read/write sets,
// and the maximum slice replication multiplying any leaf.
struct StepIo {
  std::vector<const Node*> leaves;
  std::set<std::string> reads;
  std::set<std::string> writes;
  int max_replicas = 1;
};

StepIo step_io(const Node& n);

// Whether scheduling the whole subtree as one sequential unit is legal:
// options and managers need their own tasks (they gate / reconfigure at
// run time), and crossdep regions carry cross-replica dependencies a
// flattened order would hide.
bool fusible_subtree(const Node& n);

// One proposed fusion step: append `step_leaves` (the leaves of the next
// seq step) to the run already collected in `run_leaves`. The advisor
// sees which streams would stop parking between tasks and how much
// replication the fused task gives up.
struct FusionCandidate {
  // Leaves already fused into the run, in schedule order.
  std::vector<const Node*> run_leaves;
  // Leaves of the step proposed for fusion, in schedule order.
  std::vector<const Node*> step_leaves;
  // Streams written by the run and read by the step — the links whose
  // packets stop traversing the cache hierarchy if this fusion is taken.
  std::vector<std::string> link_streams;
  // Maximum slice replication across run and step; fused, it becomes 1.
  int lost_replicas = 1;
};

// The pass. Walks every seq region greedily left-to-right: a run starts
// at a fusible step (no options, managers or crossdep regions inside)
// and extends across each stream-connected neighbour the advisor
// approves; runs of two or more steps are replaced by a group of their
// leaves in depth-first order. An empty advisor approves everything.
Pass auto_group_pass(FusionAdvisor advisor);

}  // namespace sp
