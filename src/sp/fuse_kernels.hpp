// The fuse-kernels pass: loop-level fusion, one level below auto-group.
//
// auto-group (sp/fuse.hpp) fuses stream-connected steps into a kGroup so
// they share a core and the linking packets stay cache-warm — but each
// member still runs its own full-frame loop and the intermediate frame
// still materializes in the linking stream's slot. This pass goes
// further: when the leaves of a fused run (or of adjacent seq steps)
// match a *registered fusible pattern* — a chain of component classes
// for which a single fused kernel exists — the chain is rewritten into
// ONE synthesized leaf whose component executes one fused loop over a
// strip-sized scratch. The linking streams disappear from the graph
// entirely; their packets never materialize at all.
//
// Unlike auto-group, a kernel rewrite is only semantically safe under
// structural conditions this pass checks per candidate:
//   - every matched subtree is fusible (no options/managers/crossdep);
//   - the chain is stream-connected (each member after the first reads
//     something an earlier member wrote);
//   - every internal link stream has ALL of its readers and writers
//     inside the match — if any other consumer reads the link, the
//     packet must still park for it and the rewrite is declined (see
//     the multiple-readers test in tests/test_passes.cpp).
// What a rewrite costs is the chain's parallelism (the fused leaf is
// one task), so each candidate is additionally arbitrated by a
// FusionAdvisor; the cost-model-backed one is
// perf::make_kernel_fusion_advisor. Patterns marked slice_preserving
// keep par-slice replication when the matched steps are equally-sliced
// single-leaf parblocks (downscale->blend: blend band i reads exactly
// foreground band i, so per-band fusion is exact).
//
// The registry of patterns lives with the fused components
// (components::standard_fusions()); the sp layer only defines the
// contract, mirroring the FusionAdvisor split.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sp/graph.hpp"
#include "sp/pass.hpp"
#include "support/status.hpp"

namespace sp {

// One fusible chain: an ordered list of component classes plus the
// rewrite that synthesizes the fused leaf from the matched specs.
struct KernelFusionPattern {
  std::string name;  // annotation tag, e.g. "downscale_blend"
  // Component classes in chain (schedule) order, e.g.
  // {"downscale", "blend"}. A candidate matches when the depth-first
  // leaf classes of a contiguous group-member or seq-step range equal
  // this list exactly.
  std::vector<std::string> klasses;
  // Synthesize the fused LeafSpec from the matched leaves (chain
  // order). Returning an error declines this candidate — use it for
  // parameter combinations the fused kernel does not support (the
  // decode-chain pattern declines IDCT planes other than {0,1,2}).
  // The result must not bind the internal link streams.
  std::function<support::Result<LeafSpec>(
      const std::vector<const LeafSpec*>&)>
      rewrite;
  // When true and every matched seq step is a par-slice with the same
  // replica count and a single leaf, the rewrite keeps the slicing:
  // the fused leaf is wrapped in par-slice(n) and no parallelism is
  // lost. Only set for kernels whose slice bands are independent.
  bool slice_preserving = false;
};

class KernelFusionRegistry {
 public:
  void add(KernelFusionPattern pattern);
  const std::vector<KernelFusionPattern>& patterns() const {
    return patterns_;
  }

 private:
  std::vector<KernelFusionPattern> patterns_;
};

// The pass. `patterns` may be null (the pass is then a no-op — the
// pipeline stays well-formed even when no fused components are linked
// in); when non-null it must outlive every run of the returned pass.
// An empty advisor approves every structurally-safe candidate. The
// FusionCandidate handed to the advisor maps the chain as run =
// producers, step = final consumer, link_streams = every internalized
// stream, lost_replicas = the slice replication the fused task gives up
// (1 for a slice-preserving rewrite).
Pass fuse_kernels_pass(const KernelFusionRegistry* patterns,
                       FusionAdvisor advisor);

}  // namespace sp
