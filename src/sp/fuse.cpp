#include "sp/fuse.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace sp {

bool fusible_subtree(const Node& n) {
  switch (n.kind()) {
    case NodeKind::kLeaf:
    case NodeKind::kGroup:
      return true;
    case NodeKind::kOption:
    case NodeKind::kManager:
      return false;
    case NodeKind::kPar:
      if (n.shape == ParShape::kCrossDep) return false;
      break;
    case NodeKind::kSeq:
      break;
  }
  for (const NodePtr& c : n.children)
    if (!fusible_subtree(*c)) return false;
  return true;
}

namespace {

void scan_step(const Node& n, int mult, StepIo* io) {
  if (n.kind() == NodeKind::kLeaf) {
    io->leaves.push_back(&n);
    io->max_replicas = std::max(io->max_replicas, mult);
    for (const PortBinding& b : n.leaf.inputs) io->reads.insert(b.stream);
    for (const PortBinding& b : n.leaf.outputs) io->writes.insert(b.stream);
    return;
  }
  if (n.kind() == NodeKind::kPar && n.shape != ParShape::kTask)
    mult *= n.replicas;
  for (const NodePtr& c : n.children) scan_step(*c, mult, io);
}

}  // namespace

StepIo step_io(const Node& n) {
  StepIo io;
  scan_step(n, 1, &io);
  return io;
}

namespace {

// Fuses runs inside `n` when it is a seq; recurses first so nested seq
// regions (e.g. parblock bodies) get their own fusion opportunities.
void fuse_rec(Node* n, const FusionAdvisor& advisor) {
  for (NodePtr& c : n->children) fuse_rec(c.get(), advisor);
  if (n->kind() != NodeKind::kSeq || n->children.size() < 2) return;

  std::vector<NodePtr> out;
  out.reserve(n->children.size());
  size_t i = 0;
  while (i < n->children.size()) {
    if (!fusible_subtree(*n->children[i])) {
      out.push_back(std::move(n->children[i]));
      ++i;
      continue;
    }
    // Grow a run from step i across stream-connected fusible steps.
    StepIo run = step_io(*n->children[i]);
    size_t j = i + 1;
    while (j < n->children.size() && fusible_subtree(*n->children[j])) {
      StepIo step = step_io(*n->children[j]);
      FusionCandidate cand;
      cand.run_leaves = run.leaves;
      cand.step_leaves = step.leaves;
      for (const std::string& s : step.reads)
        if (run.writes.count(s)) cand.link_streams.push_back(s);
      if (cand.link_streams.empty()) break;  // not producer->consumer
      cand.lost_replicas = std::max(run.max_replicas, step.max_replicas);
      if (advisor && !advisor(cand)) break;
      run.leaves.insert(run.leaves.end(), step.leaves.begin(),
                        step.leaves.end());
      run.writes.insert(step.writes.begin(), step.writes.end());
      run.max_replicas = cand.lost_replicas;
      ++j;
    }
    if (j - i >= 2) {
      std::vector<NodePtr> members;
      members.reserve(run.leaves.size());
      for (const Node* leaf : run.leaves) members.push_back(leaf->clone());
      out.push_back(make_group(std::move(members)));
    } else {
      out.push_back(std::move(n->children[i]));
    }
    i = j;
  }
  n->children = std::move(out);
}

}  // namespace

Pass auto_group_pass(FusionAdvisor advisor) {
  Pass p;
  p.name = "auto-group";
  p.description =
      "fuse stream-connected producer->consumer chains into groups when "
      "the cost model predicts a win (section 4.1)";
  p.run = [advisor = std::move(advisor)](
              NodePtr g) -> support::Result<NodePtr> {
    fuse_rec(g.get(), advisor);
    return g;
  };
  return p;
}

}  // namespace sp
