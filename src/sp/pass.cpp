#include "sp/pass.hpp"

#include <set>
#include <utility>

#include "sp/fuse.hpp"
#include "sp/fuse_kernels.hpp"
#include "sp/transform.hpp"
#include "sp/validate.hpp"

namespace sp {
namespace {

// --- normalize ----------------------------------------------------------------

// Flattens seq-in-seq nesting bottom-up. Splicing a nested seq's steps
// into its parent preserves the task DAG exactly: the nested seq's entry
// and exit edges are the same edges the spliced steps contribute, and
// leaves keep their depth-first order (task ids and labels are assigned
// in that order). Empty seq steps vanish with their (zero) children.
void normalize_rec(Node* n) {
  for (NodePtr& c : n->children) normalize_rec(c.get());
  if (n->kind() != NodeKind::kSeq) return;
  bool nested = false;
  for (const NodePtr& c : n->children)
    if (c->kind() == NodeKind::kSeq) nested = true;
  if (!nested) return;
  std::vector<NodePtr> flat;
  flat.reserve(n->children.size());
  for (NodePtr& c : n->children) {
    if (c->kind() == NodeKind::kSeq) {
      for (NodePtr& step : c->children) flat.push_back(std::move(step));
    } else {
      flat.push_back(std::move(c));
    }
  }
  n->children = std::move(flat);
}

// --- strip-dead-options -------------------------------------------------------

// An option is dead when no manager rule can ever flip it: it stays in
// its initial state forever. Disabled dead options are removed with
// their subtree; enabled ones lose the guard (the body is spliced in
// place). Options any enable/disable/toggle rule references are left
// alone — this is what lets the pass run on reconfigurable graphs,
// unlike the old sp::strip_disabled_options which removed every
// disabled option unconditionally.
std::set<std::string> referenced_options(const Node& root) {
  std::set<std::string> out;
  visit(root, [&](const Node& n) {
    if (n.kind() != NodeKind::kManager) return;
    for (const EventRule& r : n.rules) {
      switch (r.action) {
        case EventAction::kEnable:
        case EventAction::kDisable:
        case EventAction::kToggle:
          out.insert(r.target);
          break;
        case EventAction::kForward:
        case EventAction::kReconfigure:
          break;
      }
    }
  });
  return out;
}

// Returns nullptr when the subtree disappears entirely (a non-leaf left
// with no children is deleted too — an empty par/manager would not
// validate, and an empty seq step is a no-op).
NodePtr strip_dead_rec(NodePtr n, const std::set<std::string>& referenced) {
  if (n->kind() == NodeKind::kOption &&
      !referenced.count(n->option_name)) {
    if (!n->initially_enabled) return nullptr;
    return strip_dead_rec(std::move(n->children[0]), referenced);
  }
  std::vector<NodePtr> kept;
  kept.reserve(n->children.size());
  for (NodePtr& c : n->children) {
    NodePtr child = strip_dead_rec(std::move(c), referenced);
    if (child) kept.push_back(std::move(child));
  }
  n->children = std::move(kept);
  if (n->kind() != NodeKind::kLeaf && n->children.empty()) return nullptr;
  return n;
}

}  // namespace

PassOptions PassOptions::none() {
  PassOptions o;
  o.normalize = false;
  o.strip_dead_options = false;
  o.to_sp_form = false;
  o.auto_group = false;
  o.fuse_kernels = false;
  o.verify = false;
  return o;
}

void PassManager::add(Pass pass) {
  SUP_CHECK_MSG(pass.run != nullptr, "pass with no run function");
  passes_.push_back(std::move(pass));
}

support::Result<NodePtr> PassManager::run(NodePtr graph) const {
  SUP_CHECK(graph != nullptr);
  const bool check = verify_ && validate(*graph).is_ok();
  for (const Pass& p : passes_) {
    support::Result<NodePtr> res = p.run(std::move(graph));
    if (!res.is_ok())
      return support::Status(res.status().code(),
                             "pass '" + p.name + "': " +
                                 res.status().message());
    graph = std::move(res).take();
    SUP_CHECK_MSG(graph != nullptr, "pass returned a null graph");
    if (check) {
      support::Status st = validate(*graph);
      if (!st.is_ok())
        return support::internal_error("pass '" + p.name +
                                       "' produced an invalid graph: " +
                                       st.message());
    }
    if (dump_) dump_(p.name, *graph);
  }
  return graph;
}

Pass normalize_pass() {
  Pass p;
  p.name = "normalize";
  p.description = "flatten nested seq nodes (task DAG unchanged)";
  p.run = [](NodePtr g) -> support::Result<NodePtr> {
    normalize_rec(g.get());
    return g;
  };
  return p;
}

Pass strip_dead_options_pass() {
  Pass p;
  p.name = "strip-dead-options";
  p.description =
      "remove options no manager rule references (disabled: drop subtree; "
      "enabled: drop the guard)";
  p.run = [](NodePtr g) -> support::Result<NodePtr> {
    std::set<std::string> referenced = referenced_options(*g);
    NodePtr out = strip_dead_rec(std::move(g), referenced);
    // An entirely dead application degenerates to an empty seq.
    return out ? std::move(out) : make_seq({});
  };
  return p;
}

Pass to_sp_form_pass() {
  Pass p;
  p.name = "to-sp-form";
  p.description =
      "rewrite crossdep regions into SP form by inserting sync points "
      "between parblocks (section 3.3)";
  p.run = [](NodePtr g) -> support::Result<NodePtr> {
    if (is_sp_form(*g)) return g;
    return to_sp_form(*g);
  };
  return p;
}

const std::vector<PassInfo>& registered_passes() {
  static const std::vector<PassInfo> kPasses = {
      {"normalize", normalize_pass().description, true},
      {"strip-dead-options", strip_dead_options_pass().description, true},
      {"to-sp-form", to_sp_form_pass().description, false},
      {"auto-group",
       "fuse stream-connected producer->consumer chains into groups when "
       "the cost model predicts a win (section 4.1)",
       false},
      {"fuse-kernels", fuse_kernels_pass(nullptr, {}).description, false},
  };
  return kPasses;
}

support::Result<Pass> pass_by_name(const std::string& name,
                                   const PassOptions& options) {
  if (name == "normalize") return normalize_pass();
  if (name == "strip-dead-options") return strip_dead_options_pass();
  if (name == "to-sp-form") return to_sp_form_pass();
  if (name == "auto-group") return auto_group_pass(options.advisor);
  if (name == "fuse-kernels")
    return fuse_kernels_pass(options.kernel_patterns,
                             options.kernel_advisor);
  std::string known;
  for (const PassInfo& p : registered_passes()) {
    if (!known.empty()) known += ", ";
    known += p.name;
  }
  return support::not_found("no pass named '" + name + "' (registered: " +
                            known + ")");
}

support::Result<Pass> pass_by_name(const std::string& name,
                                   const FusionAdvisor& advisor) {
  PassOptions options;
  options.advisor = advisor;
  return pass_by_name(name, options);
}

PassManager make_pipeline(const PassOptions& options) {
  PassManager pm;
  pm.set_verify(options.verify);
  if (options.normalize) pm.add(normalize_pass());
  if (options.strip_dead_options) pm.add(strip_dead_options_pass());
  if (options.to_sp_form) pm.add(to_sp_form_pass());
  if (options.auto_group) pm.add(auto_group_pass(options.advisor));
  if (options.fuse_kernels)
    pm.add(fuse_kernels_pass(options.kernel_patterns,
                             options.kernel_advisor));
  return pm;
}

std::string pass_fingerprint(const PassOptions& options) {
  std::string out;
  auto mark = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (options.normalize) mark("normalize");
  if (options.strip_dead_options) mark("strip-dead-options");
  if (options.to_sp_form) mark("to-sp-form");
  if (options.auto_group) {
    mark("auto-group");
    if (options.advisor) out += "+advisor";
  }
  if (options.fuse_kernels) {
    mark("fuse-kernels");
    if (options.kernel_patterns != nullptr) out += "+patterns";
    if (options.kernel_advisor) out += "+kernel-advisor";
  }
  return out.empty() ? "none" : out;
}

}  // namespace sp
