// Structural validation of an SP graph before instantiation (§2, §3).
#pragma once

#include "sp/graph.hpp"
#include "support/status.hpp"

namespace sp {

// Checks, in order:
//  - every leaf has a non-empty, globally unique instance name and class;
//  - par nodes have >= 1 parblocks; slice has exactly one parblock;
//    replicas >= 1; task shape has replicas == 1;
//  - every option node lives inside some manager (§3.4: "the option must
//    be contained inside a special manager structure");
//  - option and manager names are unique; manager rules that
//    enable/disable/toggle reference an option inside that manager;
//  - every stream read by some component is written by some component;
//  - seq/option/manager nodes have the expected child counts.
support::Status validate(const Node& root);

// True when the graph is in Series-Parallel form, i.e. contains no
// crossdep regions (§3.3: crossdep "does not adhere to the
// Series-Parallel paradigm").
bool is_sp_form(const Node& root);

}  // namespace sp
