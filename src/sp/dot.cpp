#include "sp/dot.hpp"

#include "support/strings.hpp"

namespace sp {
namespace {

struct DotState {
  std::string out;
  int next_id = 0;
};

// Emits nodes/edges for the subtree; returns (first, last) node ids so the
// parent can chain sequential steps.
struct Span {
  int first;
  int last;
};

Span emit(const Node& n, DotState* s) {
  switch (n.kind()) {
    case NodeKind::kLeaf: {
      int id = s->next_id++;
      if (n.leaf.fused_pattern.empty()) {
        s->out += support::format(
            "  n%d [shape=box,label=\"%s\\n(%s)\"];\n", id,
            n.leaf.instance.c_str(), n.leaf.klass.c_str());
      } else {
        // A fuse-kernels synthesized leaf: show the pattern tag and mark
        // the node so fused loops are visible in --dump-after output.
        s->out += support::format(
            "  n%d [shape=box,peripheries=2,label=\"%s\\n(%s)\\n[fused: "
            "%s]\"];\n",
            id, n.leaf.instance.c_str(), n.leaf.klass.c_str(),
            n.leaf.fused_pattern.c_str());
      }
      return {id, id};
    }
    case NodeKind::kSeq: {
      Span whole{-1, -1};
      for (const NodePtr& c : n.children) {
        Span child = emit(*c, s);
        if (whole.first < 0) {
          whole = child;
        } else {
          s->out += support::format("  n%d -> n%d;\n", whole.last,
                                    child.first);
          whole.last = child.last;
        }
      }
      if (whole.first < 0) {
        int id = s->next_id++;
        s->out += support::format("  n%d [shape=point];\n", id);
        whole = {id, id};
      }
      return whole;
    }
    case NodeKind::kPar: {
      int fork = s->next_id++;
      int join = s->next_id++;
      const std::string extra = n.shape == ParShape::kTask
                                    ? std::string()
                                    : support::format(" n=%d", n.replicas);
      s->out += support::format(
          "  n%d [shape=diamond,label=\"par %s%s\"];\n", fork,
          shape_name(n.shape), extra.c_str());
      s->out += support::format("  n%d [shape=diamond,label=\"join\"];\n",
                                join);
      for (const NodePtr& c : n.children) {
        Span child = emit(*c, s);
        s->out += support::format("  n%d -> n%d;\n", fork, child.first);
        s->out += support::format("  n%d -> n%d;\n", child.last, join);
      }
      return {fork, join};
    }
    case NodeKind::kOption: {
      int head = s->next_id++;
      s->out += support::format(
          "  n%d [shape=octagon,label=\"option %s%s\"];\n", head,
          n.option_name.c_str(), n.initially_enabled ? "" : " (off)");
      Span body = emit(*n.children[0], s);
      s->out += support::format("  n%d -> n%d [style=dashed];\n", head,
                                body.first);
      return {head, body.last};
    }
    case NodeKind::kGroup: {
      // Rendered like a seq, with dotted chain edges to mark the fusion.
      Span whole{-1, -1};
      for (const NodePtr& c : n.children) {
        Span child = emit(*c, s);
        if (whole.first < 0) {
          whole = child;
        } else {
          s->out += support::format("  n%d -> n%d [style=dotted];\n",
                                    whole.last, child.first);
          whole.last = child.last;
        }
      }
      return whole;
    }
    case NodeKind::kManager: {
      int enter = s->next_id++;
      int exit = s->next_id++;
      s->out += support::format(
          "  n%d [shape=house,label=\"manager %s enter\"];\n", enter,
          n.manager_name.c_str());
      s->out += support::format(
          "  n%d [shape=invhouse,label=\"manager %s exit\"];\n", exit,
          n.manager_name.c_str());
      Span body = emit(*n.children[0], s);
      s->out += support::format("  n%d -> n%d;\n", enter, body.first);
      s->out += support::format("  n%d -> n%d;\n", body.last, exit);
      return {enter, exit};
    }
  }
  SUP_CHECK(false);
  return {0, 0};
}

}  // namespace

std::string to_dot(const Node& root, const std::string& title) {
  DotState s;
  s.out = "digraph \"" + title + "\" {\n  rankdir=TB;\n";
  emit(root, &s);
  s.out += "}\n";
  return s.out;
}

}  // namespace sp
