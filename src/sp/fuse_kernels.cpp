#include "sp/fuse_kernels.hpp"

#include <map>
#include <set>
#include <utility>

#include "sp/fuse.hpp"

namespace sp {

void KernelFusionRegistry::add(KernelFusionPattern pattern) {
  SUP_CHECK_MSG(!pattern.name.empty(), "fusion pattern with no name");
  SUP_CHECK_MSG(pattern.klasses.size() >= 2,
                "fusion pattern needs a chain of at least two classes");
  SUP_CHECK_MSG(pattern.rewrite != nullptr,
                "fusion pattern with no rewrite function");
  patterns_.push_back(std::move(pattern));
}

namespace {

// Global stream fan-in/fan-out, counted over leaf port bindings. Used
// to decline rewrites whose link streams have consumers or producers
// outside the match.
struct StreamUse {
  int readers = 0;
  int writers = 0;
};

std::map<std::string, StreamUse> scan_stream_uses(const Node& root) {
  std::map<std::string, StreamUse> uses;
  visit(root, [&](const Node& n) {
    if (n.kind() != NodeKind::kLeaf) return;
    for (const PortBinding& b : n.leaf.inputs) ++uses[b.stream].readers;
    for (const PortBinding& b : n.leaf.outputs) ++uses[b.stream].writers;
  });
  return uses;
}

// A klass-matched chain that also passed the structural safety checks.
struct Match {
  std::vector<const Node*> leaves;  // chain order
  std::vector<std::string> links;   // streams internal to the match
};

// Structural safety: the chain must be stream-connected (each member
// after the first reads something an earlier member wrote), and every
// internal link must have all of its readers and writers inside the
// match — otherwise the link packet still parks for the external
// consumer and eliding it would starve that consumer.
bool chain_ok(const std::vector<const Node*>& leaves, const Node& root,
              Match* out) {
  std::set<std::string> written;
  std::map<std::string, int> match_readers;
  std::map<std::string, int> match_writers;
  for (size_t i = 0; i < leaves.size(); ++i) {
    const LeafSpec& leaf = leaves[i]->leaf;
    if (i > 0) {
      bool connected = false;
      for (const PortBinding& b : leaf.inputs)
        if (written.count(b.stream)) connected = true;
      if (!connected) return false;
    }
    for (const PortBinding& b : leaf.inputs) ++match_readers[b.stream];
    for (const PortBinding& b : leaf.outputs) {
      written.insert(b.stream);
      ++match_writers[b.stream];
    }
  }
  std::map<std::string, StreamUse> uses = scan_stream_uses(root);
  std::vector<std::string> links;
  for (const auto& [stream, writers] : match_writers) {
    auto readers = match_readers.find(stream);
    if (readers == match_readers.end()) continue;  // external output
    const StreamUse& use = uses[stream];
    if (use.readers != readers->second || use.writers != writers)
      return false;  // the link has users outside the match
    links.push_back(stream);
  }
  if (links.empty()) return false;
  out->leaves = leaves;
  out->links = std::move(links);
  return true;
}

FusionCandidate make_candidate(const Match& match, int lost_replicas) {
  FusionCandidate cand;
  cand.run_leaves.assign(match.leaves.begin(), match.leaves.end() - 1);
  cand.step_leaves.push_back(match.leaves.back());
  cand.link_streams = match.links;
  cand.lost_replicas = lost_replicas;
  return cand;
}

// Runs the pattern's rewrite and annotates the result. A rewrite error
// declines the candidate (nullptr) — it is the pattern's way of saying
// "this parameter combination has no fused kernel".
NodePtr build_fused_leaf(const KernelFusionPattern& pattern,
                         const Match& match) {
  std::vector<const LeafSpec*> specs;
  specs.reserve(match.leaves.size());
  for (const Node* leaf : match.leaves) specs.push_back(&leaf->leaf);
  support::Result<LeafSpec> fused = pattern.rewrite(specs);
  if (!fused.is_ok()) return nullptr;
  LeafSpec spec = std::move(fused).take();
  spec.fused_pattern = pattern.name;
  spec.fused_from.clear();
  for (const Node* leaf : match.leaves)
    spec.fused_from.push_back(leaf->leaf.instance);
  NodePtr node = make_leaf(std::move(spec));
  node->loc = match.leaves.front()->loc;
  return node;
}

class Rewriter {
 public:
  Rewriter(const KernelFusionRegistry& registry, const FusionAdvisor& advisor)
      : registry_(registry), advisor_(advisor) {}

  void run(NodePtr& root) {
    root_ = root.get();
    recurse(root);
  }

 private:
  void recurse(NodePtr& n) {
    for (NodePtr& c : n->children) recurse(c);
    if (n->kind() == NodeKind::kSeq) rewrite_seq(n.get());
    if (n->kind() == NodeKind::kGroup) rewrite_group(n);
  }

  bool approved(const Match& match, int lost_replicas) const {
    return !advisor_ || advisor_(make_candidate(match, lost_replicas));
  }

  // --- inside a group: members are leaves in schedule order ---
  //
  // A contiguous member subsequence whose classes equal a pattern chain
  // collapses into one synthesized member. The group is already one
  // task, so the rewrite loses no parallelism (lost_replicas = 1); what
  // it removes is the intermediate packet round-trip.
  void rewrite_group(NodePtr& group) {
    Node* g = group.get();
    size_t i = 0;
    while (i < g->children.size()) {
      NodePtr fused = match_members(*g, i);
      if (fused) {
        // match_members already erased the matched range.
        g->children.insert(
            g->children.begin() + static_cast<ptrdiff_t>(i),
            std::move(fused));
      }
      ++i;
    }
    // A group reduced to one member is just that component.
    if (g->children.size() == 1) {
      NodePtr only = std::move(g->children[0]);
      group = std::move(only);
    }
  }

  NodePtr match_members(Node& g, size_t start) {
    for (const KernelFusionPattern& pattern : registry_.patterns()) {
      const size_t len = pattern.klasses.size();
      if (start + len > g.children.size()) continue;
      bool klasses_match = true;
      for (size_t k = 0; k < len && klasses_match; ++k)
        klasses_match =
            g.children[start + k]->leaf.klass == pattern.klasses[k];
      if (!klasses_match) continue;
      std::vector<const Node*> leaves;
      leaves.reserve(len);
      for (size_t k = 0; k < len; ++k)
        leaves.push_back(g.children[start + k].get());
      Match match;
      if (!chain_ok(leaves, *root_, &match)) continue;
      if (!approved(match, /*lost_replicas=*/1)) continue;
      NodePtr fused = build_fused_leaf(pattern, match);
      if (!fused) continue;
      g.children.erase(
          g.children.begin() + static_cast<ptrdiff_t>(start),
          g.children.begin() + static_cast<ptrdiff_t>(start + len));
      return fused;
    }
    return nullptr;
  }

  // --- across seq steps ---
  //
  // A run of consecutive fusible steps whose concatenated depth-first
  // leaf classes equal a pattern chain collapses into one step. The
  // general rewrite is a single leaf (the chain's slice replication is
  // forfeit — priced by the advisor); a slice_preserving pattern whose
  // matched steps are equally-sliced single-leaf par-slice blocks keeps
  // the par-slice wrapper and loses nothing.
  void rewrite_seq(Node* seq) {
    size_t i = 0;
    while (i < seq->children.size()) {
      if (!match_steps(seq, i)) ++i;
    }
  }

  bool match_steps(Node* seq, size_t start) {
    for (const KernelFusionPattern& pattern : registry_.patterns()) {
      std::vector<const Node*> leaves;
      std::vector<StepIo> ios;
      size_t consumed = 0;
      size_t end = start;
      bool viable = true;
      while (viable && end < seq->children.size() &&
             consumed < pattern.klasses.size()) {
        const Node& step = *seq->children[end];
        if (!fusible_subtree(step)) break;
        StepIo io = step_io(step);
        if (io.leaves.empty()) break;
        for (const Node* leaf : io.leaves) {
          if (consumed >= pattern.klasses.size() ||
              leaf->leaf.klass != pattern.klasses[consumed]) {
            viable = false;
            break;
          }
          ++consumed;
          leaves.push_back(leaf);
        }
        if (!viable) break;
        ios.push_back(std::move(io));
        ++end;
      }
      if (!viable || consumed != pattern.klasses.size()) continue;

      Match match;
      if (!chain_ok(leaves, *root_, &match)) continue;

      const bool sliced = pattern.slice_preserving &&
                          slice_preserving_steps(*seq, start, end);
      int lost = 1;
      if (!sliced)
        for (const StepIo& io : ios)
          lost = std::max(lost, io.max_replicas);
      if (!approved(match, lost)) continue;
      NodePtr fused = build_fused_leaf(pattern, match);
      if (!fused) continue;
      if (sliced) {
        const int replicas = seq->children[start]->replicas;
        std::vector<NodePtr> body;
        body.push_back(std::move(fused));
        fused = make_par(ParShape::kSlice, replicas, std::move(body));
      }
      seq->children.erase(
          seq->children.begin() + static_cast<ptrdiff_t>(start),
          seq->children.begin() + static_cast<ptrdiff_t>(end));
      seq->children.insert(
          seq->children.begin() + static_cast<ptrdiff_t>(start),
          std::move(fused));
      return true;
    }
    return false;
  }

  // Every step in [start, end) is a par-slice with the same replica
  // count and a single leaf parblock — the shape under which a
  // slice_preserving pattern may keep the slicing (band i of each stage
  // depends only on band i of the previous one).
  static bool slice_preserving_steps(const Node& seq, size_t start,
                                     size_t end) {
    int replicas = 0;
    for (size_t i = start; i < end; ++i) {
      const Node& step = *seq.children[i];
      if (step.kind() != NodeKind::kPar || step.shape != ParShape::kSlice)
        return false;
      if (step.children.size() != 1 ||
          step.children[0]->kind() != NodeKind::kLeaf)
        return false;
      if (replicas == 0) replicas = step.replicas;
      if (step.replicas != replicas) return false;
    }
    return replicas > 0;
  }

  const KernelFusionRegistry& registry_;
  const FusionAdvisor& advisor_;
  const Node* root_ = nullptr;
};

}  // namespace

Pass fuse_kernels_pass(const KernelFusionRegistry* patterns,
                       FusionAdvisor advisor) {
  Pass p;
  p.name = "fuse-kernels";
  p.description =
      "rewrite registered component chains into single fused-loop "
      "components; the linking streams' packets never materialize";
  p.run = [patterns, advisor = std::move(advisor)](
              NodePtr g) -> support::Result<NodePtr> {
    if (patterns == nullptr || patterns->patterns().empty()) return g;
    Rewriter rewriter(*patterns, advisor);
    rewriter.run(g);
    return g;
  };
  return p;
}

}  // namespace sp
