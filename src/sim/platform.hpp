// Platform description for the simulator — the MGSim-direction "make
// the simulated platform data, not code" surface (ROADMAP).
//
// The paper evaluates one SpaceCAKE tile of homogeneous TriMedia cores
// (§4); a PlatformConfig generalizes that to
//
//   core classes   cycle-cost multipliers (a DVFS-style frequency
//                  model: multiplier 2.0 = the core needs twice the
//                  cycles for the same compute charge),
//   tiles          N cores of one class sharing one L2 (capacity per
//                  tile, defaulting to CacheConfig::l2_bytes), and
//   interconnect   a hop-count topology (crossbar / ring / mesh) with a
//                  per-chunk-per-hop transfer cost charged when a fetch
//                  is served from another tile's L2.
//
// An empty PlatformConfig ("tiles" unset) is the exact legacy model:
// the executor builds a single tile of SimParams.cores baseline cores,
// so every existing figure stays byte-identical. Specs are usually
// loaded from XML (xspcl/platform_xml.hpp, `xspclc run --platform=`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace sim {

// Inter-tile hop-count model. Hops between a tile and itself are 0.
enum class Topology {
  kCrossbar,  // any two distinct tiles are 1 hop apart
  kRing,      // min(|a-b|, n-|a-b|) hops
  kMesh,      // Manhattan distance on a grid of `mesh_width` columns
};

// Hop count between tiles `a` and `b` of a `tiles`-tile platform (the
// cache model uses this directly; PlatformConfig::hops delegates).
int topology_hops(Topology topology, int mesh_width, int tiles, int a, int b);

// How the simulated central job queue picks an idle core (tile-aware
// dispatch lives here because the hetero-placement ablation sweeps it
// together with the platform shape; the default reproduces the legacy
// lowest-index-first executor exactly).
enum class DispatchPolicy {
  kLowestCore,   // lowest idle core id first (legacy behaviour)
  kFastestFirst, // lowest cycle multiplier first, index breaks ties
  kTileAffinity, // prefer an idle core on the tile this task last ran on
};

struct CoreClass {
  std::string name = "core";
  // Compute-cycle scaling: charged compute cycles are multiplied by
  // this before being spent on the core (1.0 = the TriMedia baseline,
  // 2.0 = a half-frequency core). Memory stall cycles are platform
  // latencies and are not scaled.
  double cycle_multiplier = 1.0;
};

struct TileSpec {
  int cores = 0;        // cores on this tile (all of one class)
  int core_class = 0;   // index into PlatformConfig::classes
  uint64_t l2_bytes = 0;  // per-tile shared L2; 0 = CacheConfig::l2_bytes
};

struct PlatformConfig {
  std::string name = "spacecake";
  // Empty `classes` means one implicit baseline class (multiplier 1.0).
  std::vector<CoreClass> classes;
  // Empty `tiles` means "unset": the executor substitutes a single tile
  // of SimParams.cores baseline cores (the legacy model).
  std::vector<TileSpec> tiles;
  Topology topology = Topology::kCrossbar;
  int mesh_width = 0;  // columns for kMesh; ignored otherwise
  // Interconnect transfer cost per chunk per hop, charged on top of
  // l2_cycles_per_chunk when a fetch is served by a remote tile's L2.
  Cycles hop_cycles_per_chunk = 64;
  DispatchPolicy dispatch = DispatchPolicy::kLowestCore;

  bool empty() const { return tiles.empty(); }
  int tile_count() const { return static_cast<int>(tiles.size()); }
  int total_cores() const;

  // Structural validation (aborts via SUP_CHECK on an invalid config;
  // the XML loader reports the same conditions as positioned errors).
  void check() const;

  // Flattened per-core views, in tile order (tile 0's cores first).
  std::vector<int> tile_map() const;            // core -> tile index
  std::vector<double> core_multipliers() const; // core -> cycle multiplier

  // Hop count between two tiles under the configured topology.
  int hops(int tile_a, int tile_b) const;

  // Convenience factory: `tiles` tiles of `cores_per_tile` baseline
  // cores each (the tile-count-scaling bench axis).
  static PlatformConfig homogeneous(int tiles, int cores_per_tile);
};

}  // namespace sim
