#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace sim {

void apply_platform(const PlatformConfig& platform, CacheConfig* cache) {
  platform.check();
  cache->cores = platform.total_cores();
  cache->tile_of_core = platform.tile_map();
  cache->tile_l2_bytes.clear();
  cache->tile_l2_bytes.reserve(platform.tiles.size());
  for (const TileSpec& t : platform.tiles)
    cache->tile_l2_bytes.push_back(t.l2_bytes);
  cache->hop_cycles_per_chunk = platform.hop_cycles_per_chunk;
  cache->topology = platform.topology;
  cache->mesh_width = platform.mesh_width;
}

// ---- list-reference engine --------------------------------------------------

void MemorySystem::Lru::touch(ChunkKey k) {
  auto it = index.find(k);
  if (it != index.end()) {
    order.splice(order.begin(), order, it->second);
    return;
  }
  order.push_front(k);
  index[k] = order.begin();
  while (order.size() > capacity_chunks) {
    index.erase(order.back());
    order.pop_back();
  }
}

void MemorySystem::Lru::erase(ChunkKey k) {
  auto it = index.find(k);
  if (it == index.end()) return;
  order.erase(it->second);
  index.erase(it);
}

Cycles MemorySystem::access_list(int core, Region& region_info,
                                 RegionId region, uint64_t first,
                                 uint64_t last, bool write) {
  RegionStats& rs = region_info.stats;
  Lru& mine = l1_[static_cast<size_t>(core)];
  const int my_tile = tile_of_core_[static_cast<size_t>(core)];
  Lru& home = l2_[static_cast<size_t>(my_tile)];
  Cycles stall = 0;
  for (uint64_t c = first; c <= last; ++c) {
    ChunkKey k = key(region, c);
    ++stats_.accesses;
    ++rs.accesses;
    if (mine.contains(k)) {
      ++stats_.l1_hits;
      ++rs.l1_hits;
      mine.touch(k);
    } else if (home.contains(k)) {
      ++stats_.l2_hits;
      ++rs.l2_hits;
      stall += config_.l2_cycles_per_chunk;
      home.touch(k);
      mine.touch(k);
    } else {
      // Not local: probe the other tiles' L2s nearest-first. A remote
      // hit transfers the chunk over the interconnect into the home L2
      // (the remote copy and its recency stay untouched).
      int src = -1;
      for (int t : remote_order_[static_cast<size_t>(my_tile)]) {
        if (l2_[static_cast<size_t>(t)].contains(k)) {
          src = t;
          break;
        }
      }
      if (src >= 0) {
        ++stats_.l2_hits;
        ++rs.l2_hits;
        ++stats_.remote_hits;
        ++rs.remote_hits;
        stall += config_.l2_cycles_per_chunk +
                 static_cast<Cycles>(
                     hops_[static_cast<size_t>(my_tile) *
                               static_cast<size_t>(num_tiles_) +
                           static_cast<size_t>(src)]) *
                     config_.hop_cycles_per_chunk;
      } else {
        ++stats_.mem_fetches;
        ++rs.mem_fetches;
        stall += config_.mem_cycles_per_chunk;
      }
      home.touch(k);
      mine.touch(k);
    }
    if (write) {
      for (size_t i = 0; i < l1_.size(); ++i) {
        if (static_cast<int>(i) == core) continue;
        if (l1_[i].contains(k)) {
          l1_[i].erase(k);
          ++stats_.invalidations;
          ++rs.invalidations;
        }
      }
      if (num_tiles_ > 1) {
        for (int t = 0; t < num_tiles_; ++t) {
          if (t == my_tile) continue;
          if (l2_[static_cast<size_t>(t)].contains(k)) {
            l2_[static_cast<size_t>(t)].erase(k);
            ++stats_.l2_invalidations;
            ++rs.l2_invalidations;
          }
        }
      }
    }
  }
  return stall;
}

void MemorySystem::release_region_list(RegionId id, Region& region_info) {
  uint64_t chunks =
      (region_info.bytes + config_.chunk_bytes - 1) / config_.chunk_bytes;
  for (uint64_t c = 0; c < chunks; ++c) {
    ChunkKey k = key(id, c);
    for (Lru& l : l1_) l.erase(k);
    for (Lru& l : l2_) l.erase(k);
  }
}

// ---- flat engine ------------------------------------------------------------

void MemorySystem::list_push_front(size_t cache, int32_t n) {
  LruList& l = lists_[cache];
  Links& ln = link(cache, n);
  ln.prev = -1;
  ln.next = l.head;
  if (l.head >= 0) link(cache, l.head).prev = n;
  l.head = n;
  if (l.tail < 0) l.tail = n;
  ++l.size;
}

void MemorySystem::list_unlink(size_t cache, int32_t n) {
  LruList& l = lists_[cache];
  Links& ln = link(cache, n);
  if (ln.prev >= 0)
    link(cache, ln.prev).next = ln.next;
  else
    l.head = ln.next;
  if (ln.next >= 0)
    link(cache, ln.next).prev = ln.prev;
  else
    l.tail = ln.prev;
  --l.size;
}

void MemorySystem::list_move_front(size_t cache, int32_t n) {
  if (lists_[cache].head == n) return;
  list_unlink(cache, n);
  list_push_front(cache, n);
}

template <bool kWide>
void MemorySystem::mask_clear(int32_t n, size_t bit) {
  if constexpr (kWide)
    mask_span<kWide>(n)[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
  else
    nodes_[static_cast<size_t>(n)].mask &= ~(uint64_t{1} << bit);
}

template <bool kWide>
bool MemorySystem::mask_empty(int32_t n) {
  if constexpr (kWide) {
    const uint64_t* m = mask_span<kWide>(n);
    for (size_t w = 0; w < mask_words_; ++w)
      if (m[w] != 0) return false;
    return true;
  } else {
    return nodes_[static_cast<size_t>(n)].mask == 0;
  }
}

void MemorySystem::mask_zero(int32_t n) {
  nodes_[static_cast<size_t>(n)].mask = 0;
  if (mask_words_ > 1) {
    uint64_t* m = &mask_pool_[static_cast<size_t>(n) * mask_words_];
    std::fill(m, m + mask_words_, uint64_t{0});
  }
}

size_t MemorySystem::hash_find(ChunkKey k) const {
  size_t i = mix(k) & hash_mask_;
  while (true) {
    const HashSlot& s = hash_[i];
    if (s.node < 0 || s.chunk_key == k) return i;
    i = (i + 1) & hash_mask_;
  }
}

void MemorySystem::hash_erase_slot(size_t slot) {
  // Backward-shift deletion for linear probing: pull later entries of
  // the same probe chain into the hole so lookups never need tombstones.
  size_t hole = slot;
  size_t j = slot;
  while (true) {
    j = (j + 1) & hash_mask_;
    if (hash_[j].node < 0) break;
    size_t home = mix(hash_[j].chunk_key) & hash_mask_;
    if (((j - home) & hash_mask_) >= ((j - hole) & hash_mask_)) {
      hash_[hole] = hash_[j];
      hole = j;
    }
  }
  hash_[hole].node = -1;
}

int32_t MemorySystem::alloc_node(ChunkKey k, size_t slot, RegionId region) {
  SUP_CHECK_MSG(!free_nodes_.empty(), "chunk directory pool exhausted");
  int32_t n = free_nodes_.back();
  free_nodes_.pop_back();
  DirNode& nd = nodes_[static_cast<size_t>(n)];
  nd.chunk_key = k;
  nd.region = region;
  mask_zero(n);
  Region& r = regions_[region];
  nd.region_prev = -1;
  nd.region_next = r.chunk_head;
  if (r.chunk_head >= 0)
    nodes_[static_cast<size_t>(r.chunk_head)].region_prev = n;
  r.chunk_head = n;
  hash_[slot] = HashSlot{k, n};
  return n;
}

void MemorySystem::free_node(int32_t n) {
  DirNode& nd = nodes_[static_cast<size_t>(n)];
  size_t slot = hash_find(nd.chunk_key);
  SUP_DCHECK(hash_[slot].node == n);
  hash_erase_slot(slot);
  if (nd.region_prev >= 0)
    nodes_[static_cast<size_t>(nd.region_prev)].region_next = nd.region_next;
  else
    regions_[nd.region].chunk_head = nd.region_next;
  if (nd.region_next >= 0)
    nodes_[static_cast<size_t>(nd.region_next)].region_prev = nd.region_prev;
  free_nodes_.push_back(n);
}

template <bool kWide>
void MemorySystem::evict_tail(size_t cache) {
  int32_t t = lists_[cache].tail;
  SUP_DCHECK(t >= 0);
  list_unlink(cache, t);
  mask_clear<kWide>(t, cache);
  if (mask_empty<kWide>(t)) free_node(t);
}

template <bool kWide>
Cycles MemorySystem::access_flat(int core, Region& region_info,
                                 RegionId region, uint64_t first,
                                 uint64_t last, bool write) {
  RegionStats& rs = region_info.stats;
  const size_t ncores = static_cast<size_t>(config_.cores);
  const size_t my = static_cast<size_t>(core);
  const int my_tile = tile_of_core_[my];
  const size_t home = ncores + static_cast<size_t>(my_tile);
  // All L1 presence bits except this core's (write-invalidation
  // targets); only meaningful on the narrow path.
  const uint64_t other_l1_bits =
      kWide ? 0 : l1_bits_[0] & ~(uint64_t{1} << my);
  Cycles stall = 0;
  for (uint64_t c = first; c <= last; ++c) {
    ChunkKey k = key(region, c);
    ++stats_.accesses;
    ++rs.accesses;
    size_t slot = hash_find(k);
    int32_t n = hash_[slot].node;
    if (n >= 0 && mask_test<kWide>(n, my)) {
      ++stats_.l1_hits;
      ++rs.l1_hits;
      list_move_front(my, n);
    } else {
      if (n >= 0 && mask_test<kWide>(n, home)) {
        ++stats_.l2_hits;
        ++rs.l2_hits;
        stall += config_.l2_cycles_per_chunk;
        list_move_front(home, n);
      } else {
        // Not in the home tile's L2: probe remote tiles nearest-first
        // before falling back to memory (same policy as the list
        // engine; remote recency is left untouched).
        int src = -1;
        if (n >= 0 && num_tiles_ > 1) {
          for (int t : remote_order_[static_cast<size_t>(my_tile)]) {
            if (mask_test<kWide>(n, ncores + static_cast<size_t>(t))) {
              src = t;
              break;
            }
          }
        }
        if (src >= 0) {
          ++stats_.l2_hits;
          ++rs.l2_hits;
          ++stats_.remote_hits;
          ++rs.remote_hits;
          stall += config_.l2_cycles_per_chunk +
                   static_cast<Cycles>(
                       hops_[static_cast<size_t>(my_tile) *
                                 static_cast<size_t>(num_tiles_) +
                             static_cast<size_t>(src)]) *
                       config_.hop_cycles_per_chunk;
        } else {
          ++stats_.mem_fetches;
          ++rs.mem_fetches;
          stall += config_.mem_cycles_per_chunk;
          if (n < 0) n = alloc_node(k, slot, region);
        }
        mask_set<kWide>(n, home);
        list_push_front(home, n);
        if (lists_[home].size > lists_[home].capacity) evict_tail<kWide>(home);
      }
      mask_set<kWide>(n, my);
      list_push_front(my, n);
      if (lists_[my].size > lists_[my].capacity) evict_tail<kWide>(my);
    }
    if (write) {
      if constexpr (kWide) {
        uint64_t* m = mask_span<kWide>(n);
        uint64_t count = 0;
        for (size_t w = 0; w < mask_words_; ++w) {
          uint64_t others = m[w] & l1_bits_[w];
          if (w == (my >> 6)) others &= ~(uint64_t{1} << (my & 63));
          if (!others) continue;
          count += static_cast<uint64_t>(std::popcount(others));
          m[w] &= ~others;
          do {
            size_t i = static_cast<size_t>(std::countr_zero(others));
            others &= others - 1;
            list_unlink(w * 64 + i, n);
          } while (others);
        }
        stats_.invalidations += count;
        rs.invalidations += count;
      } else {
        DirNode& nd = nodes_[static_cast<size_t>(n)];
        uint64_t others = nd.mask & other_l1_bits;
        if (others) {
          uint64_t count = static_cast<uint64_t>(std::popcount(others));
          stats_.invalidations += count;
          rs.invalidations += count;
          nd.mask &= ~others;
          do {
            size_t i = static_cast<size_t>(std::countr_zero(others));
            others &= others - 1;
            list_unlink(i, n);
          } while (others);
        }
      }
      if (num_tiles_ > 1) {
        for (int t = 0; t < num_tiles_; ++t) {
          if (t == my_tile) continue;
          size_t bit = ncores + static_cast<size_t>(t);
          if (mask_test<kWide>(n, bit)) {
            mask_clear<kWide>(n, bit);
            list_unlink(bit, n);
            ++stats_.l2_invalidations;
            ++rs.l2_invalidations;
          }
        }
      }
    }
  }
  return stall;
}

void MemorySystem::release_region_flat(RegionId /*id*/, Region& region_info) {
  int32_t n = region_info.chunk_head;
  while (n >= 0) {
    int32_t next = nodes_[static_cast<size_t>(n)].region_next;
    if (mask_words_ == 1) {
      uint64_t mask = nodes_[static_cast<size_t>(n)].mask;
      while (mask) {
        size_t i = static_cast<size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        list_unlink(i, n);
      }
      nodes_[static_cast<size_t>(n)].mask = 0;
    } else {
      uint64_t* m = &mask_pool_[static_cast<size_t>(n) * mask_words_];
      for (size_t w = 0; w < mask_words_; ++w) {
        uint64_t mask = m[w];
        while (mask) {
          size_t i = static_cast<size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          list_unlink(w * 64 + i, n);
        }
        m[w] = 0;
      }
      nodes_[static_cast<size_t>(n)].mask = 0;
    }
    free_node(n);  // also pops it off the region chunk list
    n = next;
  }
  SUP_DCHECK(region_info.chunk_head == -1);
}

// ---- shared surface ---------------------------------------------------------

MemorySystem::MemorySystem(const CacheConfig& config) : config_(config) {
  SUP_CHECK(config.cores >= 0);
  if (config_.cores == 0) config_.cores = 1;  // 0 = unset
  SUP_CHECK(config.chunk_bytes > 0);
  const size_t ncores = static_cast<size_t>(config_.cores);
  const uint64_t l1_cap = config_.l1_bytes / config_.chunk_bytes;
  SUP_CHECK(l1_cap >= 1);

  // Resolve the platform shape: core -> tile map (default: one tile)
  // and per-tile L2 capacities (default / 0-entry: l2_bytes).
  if (config_.tile_of_core.empty()) {
    tile_of_core_.assign(ncores, 0);
  } else {
    SUP_CHECK_MSG(config_.tile_of_core.size() == ncores,
                  "tile_of_core size does not match cores");
    tile_of_core_ = config_.tile_of_core;
  }
  num_tiles_ = 1;
  for (int t : tile_of_core_) {
    SUP_CHECK_MSG(t >= 0, "negative tile index");
    num_tiles_ = std::max(num_tiles_, t + 1);
  }
  std::vector<uint64_t> tile_l2_cap(static_cast<size_t>(num_tiles_));
  uint64_t total_l2_cap = 0;
  for (int t = 0; t < num_tiles_; ++t) {
    uint64_t bytes = config_.l2_bytes;
    if (static_cast<size_t>(t) < config_.tile_l2_bytes.size() &&
        config_.tile_l2_bytes[static_cast<size_t>(t)] != 0)
      bytes = config_.tile_l2_bytes[static_cast<size_t>(t)];
    tile_l2_cap[static_cast<size_t>(t)] = bytes / config_.chunk_bytes;
    SUP_CHECK_MSG(tile_l2_cap[static_cast<size_t>(t)] >= 1,
                  "tile L2 smaller than one chunk");
    total_l2_cap += tile_l2_cap[static_cast<size_t>(t)];
  }

  // Inter-tile hop matrix + nearest-first remote search order.
  hops_.assign(static_cast<size_t>(num_tiles_) *
                   static_cast<size_t>(num_tiles_),
               0);
  for (int a = 0; a < num_tiles_; ++a)
    for (int b = 0; b < num_tiles_; ++b)
      hops_[static_cast<size_t>(a) * static_cast<size_t>(num_tiles_) +
            static_cast<size_t>(b)] =
          topology_hops(config_.topology, config_.mesh_width, num_tiles_, a, b);
  remote_order_.resize(static_cast<size_t>(num_tiles_));
  for (int a = 0; a < num_tiles_; ++a) {
    std::vector<int>& order = remote_order_[static_cast<size_t>(a)];
    for (int b = 0; b < num_tiles_; ++b)
      if (b != a) order.push_back(b);
    std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
      return hops_[static_cast<size_t>(a) * static_cast<size_t>(num_tiles_) +
                   static_cast<size_t>(x)] <
             hops_[static_cast<size_t>(a) * static_cast<size_t>(num_tiles_) +
                   static_cast<size_t>(y)];
    });
  }

  regions_.resize(1);  // RegionId 0 stays unused
  flat_ = config_.lru_impl == LruImpl::kFlat;
  if (flat_) {
    num_caches_ = ncores + static_cast<size_t>(num_tiles_);
    mask_words_ = (num_caches_ + 63) / 64;
    // Every resident chunk occupies at least one cache, so peak directory
    // occupancy is bounded by the summed capacities (+1 transient node
    // while an insertion precedes its eviction).
    node_capacity_ =
        static_cast<size_t>(total_l2_cap + ncores * l1_cap + 2);
    nodes_.resize(node_capacity_);
    if (mask_words_ > 1)
      mask_pool_.assign(node_capacity_ * mask_words_, 0);
    l1_bits_.assign(mask_words_, 0);
    for (size_t c = 0; c < ncores; ++c)
      l1_bits_[c >> 6] |= uint64_t{1} << (c & 63);
    links_.assign(num_caches_ * node_capacity_, Links{});
    lists_.assign(num_caches_, LruList{});
    for (size_t i = 0; i < ncores; ++i) lists_[i].capacity = l1_cap;
    for (int t = 0; t < num_tiles_; ++t)
      lists_[ncores + static_cast<size_t>(t)].capacity =
          tile_l2_cap[static_cast<size_t>(t)];
    free_nodes_.reserve(node_capacity_);
    for (size_t n = node_capacity_; n > 0; --n)
      free_nodes_.push_back(static_cast<int32_t>(n - 1));
    size_t hash_size = 1;
    while (hash_size < 2 * node_capacity_) hash_size <<= 1;
    hash_.assign(hash_size, HashSlot{});
    hash_mask_ = hash_size - 1;
  } else {
    l1_.resize(ncores);
    for (Lru& l : l1_) l.capacity_chunks = l1_cap;
    l2_.resize(static_cast<size_t>(num_tiles_));
    for (int t = 0; t < num_tiles_; ++t)
      l2_[static_cast<size_t>(t)].capacity_chunks =
          tile_l2_cap[static_cast<size_t>(t)];
  }
}

RegionId MemorySystem::register_region(uint64_t bytes, std::string label) {
  RegionId id = next_region_++;
  SUP_DCHECK(regions_.size() == id);
  Region region;
  region.bytes = bytes;
  region.active = true;
  region.label = std::move(label);
  regions_.push_back(std::move(region));
  return id;
}

void MemorySystem::release_region(RegionId id) {
  if (id >= regions_.size() || !regions_[id].active) return;
  Region& region = regions_[id];
  if (flat_)
    release_region_flat(id, region);
  else
    release_region_list(id, region);
  region.active = false;
}

Cycles MemorySystem::access(int core, RegionId region, uint64_t offset,
                            uint64_t len, bool write) {
  SUP_DCHECK(core >= 0 && core < config_.cores);
  if (len == 0) return 0;
  SUP_CHECK_MSG(region < regions_.size() && regions_[region].active,
                "access to unregistered region");
  Region& info = regions_[region];
  // Overflow-safe bounds check: `offset + len` can wrap for hostile
  // offsets, so compare against the region size without adding.
  SUP_DCHECK(len <= info.bytes && offset <= info.bytes - len);

  const uint64_t first = offset / config_.chunk_bytes;
  const uint64_t last = (offset + len - 1) / config_.chunk_bytes;
  Cycles stall;
  if (flat_) {
    stall = mask_words_ == 1
                ? access_flat<false>(core, info, region, first, last, write)
                : access_flat<true>(core, info, region, first, last, write);
  } else {
    stall = access_list(core, info, region, first, last, write);
  }
  stats_.stall_cycles += stall;
  info.stats.stall_cycles += stall;
  return stall;
}

std::vector<RegionStats> MemorySystem::region_stats() const {
  std::vector<RegionStats> out;
  out.reserve(regions_.size() - 1);
  for (size_t i = 1; i < regions_.size(); ++i) {
    RegionStats s = regions_[i].stats;
    s.id = static_cast<RegionId>(i);
    s.label = regions_[i].label;
    s.bytes = regions_[i].bytes;
    s.active = regions_[i].active;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace sim
