#include "sim/cache.hpp"

#include "support/check.hpp"

namespace sim {

void MemorySystem::Lru::touch(ChunkKey k) {
  auto it = index.find(k);
  if (it != index.end()) {
    order.splice(order.begin(), order, it->second);
    return;
  }
  order.push_front(k);
  index[k] = order.begin();
  while (order.size() > capacity_chunks) {
    index.erase(order.back());
    order.pop_back();
  }
}

void MemorySystem::Lru::erase(ChunkKey k) {
  auto it = index.find(k);
  if (it == index.end()) return;
  order.erase(it->second);
  index.erase(it);
}

MemorySystem::MemorySystem(const CacheConfig& config) : config_(config) {
  SUP_CHECK(config.cores >= 1);
  SUP_CHECK(config.chunk_bytes > 0);
  l1_.resize(static_cast<size_t>(config.cores));
  for (Lru& l : l1_)
    l.capacity_chunks = config.l1_bytes / config.chunk_bytes;
  l2_.capacity_chunks = config.l2_bytes / config.chunk_bytes;
  SUP_CHECK(l1_[0].capacity_chunks >= 1 && l2_.capacity_chunks >= 1);
}

RegionId MemorySystem::register_region(uint64_t bytes, std::string label) {
  (void)label;
  RegionId id = next_region_++;
  region_bytes_[id] = bytes;
  return id;
}

void MemorySystem::release_region(RegionId id) {
  auto it = region_bytes_.find(id);
  if (it == region_bytes_.end()) return;
  uint64_t chunks =
      (it->second + config_.chunk_bytes - 1) / config_.chunk_bytes;
  for (uint64_t c = 0; c < chunks; ++c) {
    ChunkKey k = key(id, c);
    for (Lru& l : l1_) l.erase(k);
    l2_.erase(k);
  }
  region_bytes_.erase(it);
}

Cycles MemorySystem::access(int core, RegionId region, uint64_t offset,
                            uint64_t len, bool write) {
  SUP_DCHECK(core >= 0 && core < static_cast<int>(l1_.size()));
  if (len == 0) return 0;
  auto it = region_bytes_.find(region);
  SUP_CHECK_MSG(it != region_bytes_.end(), "access to unregistered region");
  SUP_DCHECK(offset + len <= it->second);

  const uint64_t first = offset / config_.chunk_bytes;
  const uint64_t last = (offset + len - 1) / config_.chunk_bytes;
  Lru& mine = l1_[static_cast<size_t>(core)];
  Cycles stall = 0;
  for (uint64_t c = first; c <= last; ++c) {
    ChunkKey k = key(region, c);
    ++stats_.accesses;
    if (mine.contains(k)) {
      ++stats_.l1_hits;
      mine.touch(k);
    } else if (l2_.contains(k)) {
      ++stats_.l2_hits;
      stall += config_.l2_cycles_per_chunk;
      l2_.touch(k);
      mine.touch(k);
    } else {
      ++stats_.mem_fetches;
      stall += config_.mem_cycles_per_chunk;
      l2_.touch(k);
      mine.touch(k);
    }
    if (write) {
      for (size_t i = 0; i < l1_.size(); ++i) {
        if (static_cast<int>(i) == core) continue;
        if (l1_[i].contains(k)) {
          l1_[i].erase(k);
          ++stats_.invalidations;
        }
      }
    }
  }
  stats_.stall_cycles += stall;
  return stall;
}

}  // namespace sim
