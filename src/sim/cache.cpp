#include "sim/cache.hpp"

#include <bit>

#include "support/check.hpp"

namespace sim {

// ---- list-reference engine --------------------------------------------------

void MemorySystem::Lru::touch(ChunkKey k) {
  auto it = index.find(k);
  if (it != index.end()) {
    order.splice(order.begin(), order, it->second);
    return;
  }
  order.push_front(k);
  index[k] = order.begin();
  while (order.size() > capacity_chunks) {
    index.erase(order.back());
    order.pop_back();
  }
}

void MemorySystem::Lru::erase(ChunkKey k) {
  auto it = index.find(k);
  if (it == index.end()) return;
  order.erase(it->second);
  index.erase(it);
}

Cycles MemorySystem::access_list(int core, Region& region_info,
                                 RegionId region, uint64_t first,
                                 uint64_t last, bool write) {
  RegionStats& rs = region_info.stats;
  Lru& mine = l1_[static_cast<size_t>(core)];
  Cycles stall = 0;
  for (uint64_t c = first; c <= last; ++c) {
    ChunkKey k = key(region, c);
    ++stats_.accesses;
    ++rs.accesses;
    if (mine.contains(k)) {
      ++stats_.l1_hits;
      ++rs.l1_hits;
      mine.touch(k);
    } else if (l2_.contains(k)) {
      ++stats_.l2_hits;
      ++rs.l2_hits;
      stall += config_.l2_cycles_per_chunk;
      l2_.touch(k);
      mine.touch(k);
    } else {
      ++stats_.mem_fetches;
      ++rs.mem_fetches;
      stall += config_.mem_cycles_per_chunk;
      l2_.touch(k);
      mine.touch(k);
    }
    if (write) {
      for (size_t i = 0; i < l1_.size(); ++i) {
        if (static_cast<int>(i) == core) continue;
        if (l1_[i].contains(k)) {
          l1_[i].erase(k);
          ++stats_.invalidations;
          ++rs.invalidations;
        }
      }
    }
  }
  return stall;
}

void MemorySystem::release_region_list(RegionId id, Region& region_info) {
  uint64_t chunks =
      (region_info.bytes + config_.chunk_bytes - 1) / config_.chunk_bytes;
  for (uint64_t c = 0; c < chunks; ++c) {
    ChunkKey k = key(id, c);
    for (Lru& l : l1_) l.erase(k);
    l2_.erase(k);
  }
}

// ---- flat engine ------------------------------------------------------------

void MemorySystem::list_push_front(size_t cache, int32_t n) {
  LruList& l = lists_[cache];
  Links& ln = link(cache, n);
  ln.prev = -1;
  ln.next = l.head;
  if (l.head >= 0) link(cache, l.head).prev = n;
  l.head = n;
  if (l.tail < 0) l.tail = n;
  ++l.size;
}

void MemorySystem::list_unlink(size_t cache, int32_t n) {
  LruList& l = lists_[cache];
  Links& ln = link(cache, n);
  if (ln.prev >= 0)
    link(cache, ln.prev).next = ln.next;
  else
    l.head = ln.next;
  if (ln.next >= 0)
    link(cache, ln.next).prev = ln.prev;
  else
    l.tail = ln.prev;
  --l.size;
}

void MemorySystem::list_move_front(size_t cache, int32_t n) {
  if (lists_[cache].head == n) return;
  list_unlink(cache, n);
  list_push_front(cache, n);
}

size_t MemorySystem::hash_find(ChunkKey k) const {
  size_t i = mix(k) & hash_mask_;
  while (true) {
    const HashSlot& s = hash_[i];
    if (s.node < 0 || s.chunk_key == k) return i;
    i = (i + 1) & hash_mask_;
  }
}

void MemorySystem::hash_erase_slot(size_t slot) {
  // Backward-shift deletion for linear probing: pull later entries of
  // the same probe chain into the hole so lookups never need tombstones.
  size_t hole = slot;
  size_t j = slot;
  while (true) {
    j = (j + 1) & hash_mask_;
    if (hash_[j].node < 0) break;
    size_t home = mix(hash_[j].chunk_key) & hash_mask_;
    if (((j - home) & hash_mask_) >= ((j - hole) & hash_mask_)) {
      hash_[hole] = hash_[j];
      hole = j;
    }
  }
  hash_[hole].node = -1;
}

int32_t MemorySystem::alloc_node(ChunkKey k, size_t slot, RegionId region) {
  SUP_CHECK_MSG(!free_nodes_.empty(), "chunk directory pool exhausted");
  int32_t n = free_nodes_.back();
  free_nodes_.pop_back();
  DirNode& nd = nodes_[static_cast<size_t>(n)];
  nd.chunk_key = k;
  nd.mask = 0;
  nd.region = region;
  Region& r = regions_[region];
  nd.region_prev = -1;
  nd.region_next = r.chunk_head;
  if (r.chunk_head >= 0)
    nodes_[static_cast<size_t>(r.chunk_head)].region_prev = n;
  r.chunk_head = n;
  hash_[slot] = HashSlot{k, n};
  return n;
}

void MemorySystem::free_node(int32_t n) {
  DirNode& nd = nodes_[static_cast<size_t>(n)];
  size_t slot = hash_find(nd.chunk_key);
  SUP_DCHECK(hash_[slot].node == n);
  hash_erase_slot(slot);
  if (nd.region_prev >= 0)
    nodes_[static_cast<size_t>(nd.region_prev)].region_next = nd.region_next;
  else
    regions_[nd.region].chunk_head = nd.region_next;
  if (nd.region_next >= 0)
    nodes_[static_cast<size_t>(nd.region_next)].region_prev = nd.region_prev;
  free_nodes_.push_back(n);
}

void MemorySystem::evict_tail(size_t cache) {
  int32_t t = lists_[cache].tail;
  SUP_DCHECK(t >= 0);
  list_unlink(cache, t);
  DirNode& nd = nodes_[static_cast<size_t>(t)];
  nd.mask &= ~(uint64_t{1} << cache);
  if (nd.mask == 0) free_node(t);
}

Cycles MemorySystem::access_flat(int core, Region& region_info,
                                 RegionId region, uint64_t first,
                                 uint64_t last, bool write) {
  RegionStats& rs = region_info.stats;
  const size_t my = static_cast<size_t>(core);
  const size_t l2 = num_caches_ - 1;
  const uint64_t core_bit = uint64_t{1} << my;
  const uint64_t l2_bit = uint64_t{1} << l2;
  // All L1 presence bits except this core's (write-invalidation targets).
  const uint64_t other_l1_bits = (l2_bit - 1) & ~core_bit;
  Cycles stall = 0;
  for (uint64_t c = first; c <= last; ++c) {
    ChunkKey k = key(region, c);
    ++stats_.accesses;
    ++rs.accesses;
    size_t slot = hash_find(k);
    int32_t n = hash_[slot].node;
    uint64_t mask = n >= 0 ? nodes_[static_cast<size_t>(n)].mask : 0;
    if (mask & core_bit) {
      ++stats_.l1_hits;
      ++rs.l1_hits;
      list_move_front(my, n);
    } else {
      if (mask & l2_bit) {
        ++stats_.l2_hits;
        ++rs.l2_hits;
        stall += config_.l2_cycles_per_chunk;
        list_move_front(l2, n);
      } else {
        ++stats_.mem_fetches;
        ++rs.mem_fetches;
        stall += config_.mem_cycles_per_chunk;
        if (n < 0) n = alloc_node(k, slot, region);
        nodes_[static_cast<size_t>(n)].mask |= l2_bit;
        list_push_front(l2, n);
        if (lists_[l2].size > lists_[l2].capacity) evict_tail(l2);
      }
      nodes_[static_cast<size_t>(n)].mask |= core_bit;
      list_push_front(my, n);
      if (lists_[my].size > lists_[my].capacity) evict_tail(my);
    }
    if (write) {
      DirNode& nd = nodes_[static_cast<size_t>(n)];
      uint64_t others = nd.mask & other_l1_bits;
      if (others) {
        uint64_t count = static_cast<uint64_t>(std::popcount(others));
        stats_.invalidations += count;
        rs.invalidations += count;
        nd.mask &= ~others;
        do {
          size_t i = static_cast<size_t>(std::countr_zero(others));
          others &= others - 1;
          list_unlink(i, n);
        } while (others);
      }
    }
  }
  return stall;
}

void MemorySystem::release_region_flat(RegionId /*id*/, Region& region_info) {
  int32_t n = region_info.chunk_head;
  while (n >= 0) {
    int32_t next = nodes_[static_cast<size_t>(n)].region_next;
    uint64_t mask = nodes_[static_cast<size_t>(n)].mask;
    while (mask) {
      size_t i = static_cast<size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      list_unlink(i, n);
    }
    nodes_[static_cast<size_t>(n)].mask = 0;
    free_node(n);  // also pops it off the region chunk list
    n = next;
  }
  SUP_DCHECK(region_info.chunk_head == -1);
}

// ---- shared surface ---------------------------------------------------------

MemorySystem::MemorySystem(const CacheConfig& config) : config_(config) {
  SUP_CHECK(config.cores >= 1);
  SUP_CHECK(config.chunk_bytes > 0);
  const uint64_t l1_cap = config.l1_bytes / config.chunk_bytes;
  const uint64_t l2_cap = config.l2_bytes / config.chunk_bytes;
  SUP_CHECK(l1_cap >= 1 && l2_cap >= 1);
  regions_.resize(1);  // RegionId 0 stays unused
  flat_ = config.lru_impl == LruImpl::kFlat;
  if (flat_) {
    SUP_CHECK_MSG(config.cores < 64,
                  "flat cache engine models at most 63 cores "
                  "(presence mask width)");
    num_caches_ = static_cast<size_t>(config.cores) + 1;
    // Every resident chunk occupies at least one cache, so peak directory
    // occupancy is bounded by the summed capacities (+1 transient node
    // while an insertion precedes its eviction).
    node_capacity_ = static_cast<size_t>(
        l2_cap + static_cast<uint64_t>(config.cores) * l1_cap + 2);
    nodes_.resize(node_capacity_);
    links_.assign(num_caches_ * node_capacity_, Links{});
    lists_.assign(num_caches_, LruList{});
    for (size_t i = 0; i + 1 < num_caches_; ++i) lists_[i].capacity = l1_cap;
    lists_[num_caches_ - 1].capacity = l2_cap;
    free_nodes_.reserve(node_capacity_);
    for (size_t n = node_capacity_; n > 0; --n)
      free_nodes_.push_back(static_cast<int32_t>(n - 1));
    size_t hash_size = 1;
    while (hash_size < 2 * node_capacity_) hash_size <<= 1;
    hash_.assign(hash_size, HashSlot{});
    hash_mask_ = hash_size - 1;
  } else {
    l1_.resize(static_cast<size_t>(config.cores));
    for (Lru& l : l1_) l.capacity_chunks = l1_cap;
    l2_.capacity_chunks = l2_cap;
  }
}

RegionId MemorySystem::register_region(uint64_t bytes, std::string label) {
  RegionId id = next_region_++;
  SUP_DCHECK(regions_.size() == id);
  Region region;
  region.bytes = bytes;
  region.active = true;
  region.label = std::move(label);
  regions_.push_back(std::move(region));
  return id;
}

void MemorySystem::release_region(RegionId id) {
  if (id >= regions_.size() || !regions_[id].active) return;
  Region& region = regions_[id];
  if (flat_)
    release_region_flat(id, region);
  else
    release_region_list(id, region);
  region.active = false;
}

Cycles MemorySystem::access(int core, RegionId region, uint64_t offset,
                            uint64_t len, bool write) {
  SUP_DCHECK(core >= 0 && core < config_.cores);
  if (len == 0) return 0;
  SUP_CHECK_MSG(region < regions_.size() && regions_[region].active,
                "access to unregistered region");
  Region& info = regions_[region];
  // Overflow-safe bounds check: `offset + len` can wrap for hostile
  // offsets, so compare against the region size without adding.
  SUP_DCHECK(len <= info.bytes && offset <= info.bytes - len);

  const uint64_t first = offset / config_.chunk_bytes;
  const uint64_t last = (offset + len - 1) / config_.chunk_bytes;
  Cycles stall = flat_ ? access_flat(core, info, region, first, last, write)
                       : access_list(core, info, region, first, last, write);
  stats_.stall_cycles += stall;
  info.stats.stall_cycles += stall;
  return stall;
}

std::vector<RegionStats> MemorySystem::region_stats() const {
  std::vector<RegionStats> out;
  out.reserve(regions_.size() - 1);
  for (size_t i = 1; i < regions_.size(); ++i) {
    RegionStats s = regions_[i].stats;
    s.id = static_cast<RegionId>(i);
    s.label = regions_[i].label;
    s.bytes = regions_[i].bytes;
    s.active = regions_[i].active;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace sim
