// Deterministic discrete-event simulation core.
//
// This is the time base of the SpaceCAKE-substitute MPSoC model (see
// DESIGN.md): the Hinch SimExecutor schedules job start/completion events
// here, and the cache model (sim/cache.hpp) converts memory traffic into
// cycles. Events at equal timestamps fire in scheduling order, so every
// run is reproducible bit-for-bit.
//
// Hot-path layout: the (time, seq) keys live in a plain binary heap of
// 24-byte PODs, and the callables live in a slot pool of small-buffer
// EventFn objects, so scheduling and dispatching an event performs no
// heap allocation (the SimExecutor's closures fit the inline storage;
// std::function events used to allocate one node per event). Because
// (time, seq) is a strict total order — seq is unique — any correct
// heap pops events in exactly one order, so the pooled engine is
// cycle-for-cycle identical to the old priority_queue one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sim {

// Simulated clock cycles.
using Cycles = uint64_t;

// Move-only callable with inline storage sized for the executors'
// closures. Larger callables transparently fall back to one heap
// allocation (std::function-sized captures still fit inline).
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
          new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**reinterpret_cast<D**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* p) { delete *reinterpret_cast<D**>(p); }};

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Engine {
 public:
  // Schedule `fn` to run at absolute time `t` (must be >= now()).
  void schedule_at(Cycles t, EventFn fn);
  // Schedule `fn` `delta` cycles from now.
  void schedule_after(Cycles delta, EventFn fn) {
    schedule_at(now_ + delta, std::move(fn));
  }

  Cycles now() const { return now_; }

  // Process events until the queue is empty. Returns the final time.
  Cycles run();

  // Number of events processed so far.
  uint64_t events_processed() const { return processed_; }

 private:
  // Heap keys are kept apart from the callables so sift operations move
  // trivially-copyable 24-byte entries, not 56-byte EventFn objects.
  struct HeapEntry {
    Cycles time;
    uint64_t seq;   // stable tie-break: earlier-scheduled first
    uint32_t slot;  // index into pool_
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  void sift_up(size_t i);
  void sift_down(size_t i);

  std::vector<HeapEntry> heap_;
  std::vector<EventFn> pool_;
  std::vector<uint32_t> free_slots_;
  Cycles now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace sim
