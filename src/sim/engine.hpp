// Deterministic discrete-event simulation core.
//
// This is the time base of the SpaceCAKE-substitute MPSoC model (see
// DESIGN.md): the Hinch SimExecutor schedules job start/completion events
// here, and the cache model (sim/cache.hpp) converts memory traffic into
// cycles. Events at equal timestamps fire in scheduling order, so every
// run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sim {

// Simulated clock cycles.
using Cycles = uint64_t;

class Engine {
 public:
  // Schedule `fn` to run at absolute time `t` (must be >= now()).
  void schedule_at(Cycles t, std::function<void()> fn);
  // Schedule `fn` `delta` cycles from now.
  void schedule_after(Cycles delta, std::function<void()> fn) {
    schedule_at(now_ + delta, std::move(fn));
  }

  Cycles now() const { return now_; }

  // Process events until the queue is empty. Returns the final time.
  Cycles run();

  // Number of events processed so far.
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Cycles time;
    uint64_t seq;  // stable tie-break: earlier-scheduled first
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycles now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace sim
