#include "sim/platform.hpp"

#include <cmath>
#include <cstdlib>

#include "support/check.hpp"

namespace sim {

int PlatformConfig::total_cores() const {
  int total = 0;
  for (const TileSpec& t : tiles) total += t.cores;
  return total;
}

void PlatformConfig::check() const {
  SUP_CHECK_MSG(!tiles.empty(), "platform has no tiles");
  const int nclasses =
      classes.empty() ? 1 : static_cast<int>(classes.size());
  for (const CoreClass& c : classes) {
    SUP_CHECK_MSG(c.cycle_multiplier > 0.0 &&
                      std::isfinite(c.cycle_multiplier),
                  "core-class cycle multiplier must be positive and finite");
  }
  for (const TileSpec& t : tiles) {
    SUP_CHECK_MSG(t.cores >= 1, "tile must have at least one core");
    SUP_CHECK_MSG(t.core_class >= 0 && t.core_class < nclasses,
                  "tile references an unknown core class");
  }
  if (topology == Topology::kMesh)
    SUP_CHECK_MSG(mesh_width >= 1, "mesh topology needs mesh_width >= 1");
}

std::vector<int> PlatformConfig::tile_map() const {
  std::vector<int> map;
  map.reserve(static_cast<size_t>(total_cores()));
  for (size_t t = 0; t < tiles.size(); ++t)
    for (int c = 0; c < tiles[t].cores; ++c)
      map.push_back(static_cast<int>(t));
  return map;
}

std::vector<double> PlatformConfig::core_multipliers() const {
  std::vector<double> mult;
  mult.reserve(static_cast<size_t>(total_cores()));
  for (const TileSpec& t : tiles) {
    double m = classes.empty()
                   ? 1.0
                   : classes[static_cast<size_t>(t.core_class)]
                         .cycle_multiplier;
    for (int c = 0; c < t.cores; ++c) mult.push_back(m);
  }
  return mult;
}

int topology_hops(Topology topology, int mesh_width, int tiles, int a,
                  int b) {
  if (a == b) return 0;
  switch (topology) {
    case Topology::kCrossbar:
      return 1;
    case Topology::kRing: {
      int d = std::abs(a - b);
      return d < tiles - d ? d : tiles - d;
    }
    case Topology::kMesh: {
      SUP_DCHECK(mesh_width >= 1);
      int ax = a % mesh_width, ay = a / mesh_width;
      int bx = b % mesh_width, by = b / mesh_width;
      return std::abs(ax - bx) + std::abs(ay - by);
    }
  }
  return 1;
}

int PlatformConfig::hops(int tile_a, int tile_b) const {
  return topology_hops(topology, mesh_width, tile_count(), tile_a, tile_b);
}

PlatformConfig PlatformConfig::homogeneous(int tiles, int cores_per_tile) {
  SUP_CHECK(tiles >= 1 && cores_per_tile >= 1);
  PlatformConfig p;
  p.tiles.assign(static_cast<size_t>(tiles),
                 TileSpec{cores_per_tile, 0, 0});
  return p;
}

}  // namespace sim
