#include "sim/engine.hpp"

#include "support/check.hpp"

namespace sim {

void Engine::sift_up(size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::sift_down(size_t i) {
  const size_t n = heap_.size();
  HeapEntry e = heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void Engine::schedule_at(Cycles t, EventFn fn) {
  SUP_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(pool_.size());
    pool_.push_back(std::move(fn));
  }
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

Cycles Engine::run() {
  while (!heap_.empty()) {
    HeapEntry top = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    now_ = top.time;
    ++processed_;
    // Move the callable out before invoking: fn may schedule new events,
    // which can grow pool_ and must be able to reuse this slot.
    EventFn fn = std::move(pool_[top.slot]);
    free_slots_.push_back(top.slot);
    fn();
  }
  return now_;
}

}  // namespace sim
