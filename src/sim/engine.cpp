#include "sim/engine.hpp"

#include "support/check.hpp"

namespace sim {

void Engine::schedule_at(Cycles t, std::function<void()> fn) {
  SUP_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

Cycles Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the event must be moved out
    // before pop, and fn may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

}  // namespace sim
