// Memory-hierarchy model of the SpaceCAKE platform (§4 of the paper:
// each TriMedia core has a private L1, an L2 is shared per tile).
//
// Granularity is a "chunk" (default 1 KiB) rather than a cache line: the
// workloads stream whole image rows, so chunk-level LRU reproduces the
// relevant behaviour — the paper's finding that splitting fused kernels
// into stream-connected components increases misses (§4.1) — at a small
// fraction of the bookkeeping cost.
//
// Charging policy per touched chunk (core on tile T):
//   in own L1            -> 0 extra cycles (L1 hit cost is folded into
//                           the kernels' compute-cycle constants)
//   in tile T's L2       -> l2_cycles_per_chunk
//   in another tile's L2 -> l2_cycles_per_chunk
//                           + hops * hop_cycles_per_chunk (interconnect
//                           transfer; the chunk is installed in tile T's
//                           L2 and the core's L1, the remote copy and
//                           its recency are left untouched); nearest
//                           tile first, lowest index breaking ties
//   in no cache          -> mem_cycles_per_chunk
// Writes invalidate other cores' L1 copies and other tiles' L2 copies
// (MSI-style coherence). The classic single-tile configuration never
// takes the remote path, so its statistics and cycle charges are
// identical to the pre-multi-tile model.
//
// Two interchangeable cache-structure engines implement the identical
// LRU/coherence semantics (every access classifies and evicts the same
// way, so all simulated-cycle outputs are byte-identical):
//
//   LruImpl::kFlat (default) — a shared chunk *directory*: one pooled
//   node per resident chunk (index-linked, no per-touch allocation)
//   found through one open-addressing hash probe; per-cache intrusive
//   LRU lists thread through per-cache prev/next arrays indexed by the
//   node id; a per-chunk presence bitmask (one bit per L1 plus one per
//   tile L2) makes a write invalidation mask reads plus targeted erases
//   (instead of probing every core's map); and a per-region
//   resident-chunk list makes release_region O(chunks actually cached),
//   not O(region chunks x caches). The mask scales with the platform:
//   an inline 64-bit word covers up to 64 caches (63 cores + one L2, or
//   e.g. 60 cores across 4 tiles); wider platforms switch to pooled
//   multi-word mask spans, so the 64–256-core regime simulates on the
//   fast engine (an earlier version aborted at cores >= 64).
//
//   LruImpl::kListReference — the original std::list +
//   std::unordered_map structures, retained as the equivalence baseline
//   for tests and the "before" leg of bench_sim (the same pattern as
//   media's HuffmanImpl::kBitSerial).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/platform.hpp"

namespace sim {

using RegionId = uint32_t;

enum class LruImpl {
  kFlat,           // pooled nodes + open-addressing directory (fast path)
  kListReference,  // std::list + unordered_map (equivalence baseline)
};

struct CacheConfig {
  // 0 = unset: MemorySystem resolves it to 1 (a single core). The sim
  // executor derives it from SimParams.cores / the platform spec and
  // fails loudly on a conflicting nonzero value (it used to overwrite
  // silently).
  int cores = 0;
  uint64_t l1_bytes = 16 * 1024;  // per core (TriMedia-like)
  // SpaceCAKE tiles carry a large shared embedded-DRAM L2. 16 MiB holds
  // every sequential application's working set and the pipelined PiP
  // ones, but not the 5-deep pipelined JPiP working set (5 slots of
  // 2.7 MiB coefficient images plus the decoded planes) — the regime
  // behind the paper's Fig. 8, where JPiP alone pays heavily.
  uint64_t l2_bytes = 16 * 1024 * 1024;
  uint32_t chunk_bytes = 1024;
  Cycles l2_cycles_per_chunk = 192;   // ~12 cycles per 64 B line
  Cycles mem_cycles_per_chunk = 640;  // ~40 cycles per 64 B line
  LruImpl lru_impl = LruImpl::kFlat;

  // --- multi-tile extension (defaults reproduce the single-tile model;
  // apply_platform() fills these from a sim::PlatformConfig) ---
  // Core -> tile index; empty = every core on tile 0 (one shared L2).
  std::vector<int> tile_of_core;
  // Per-tile L2 capacity; empty (or a 0 entry) falls back to l2_bytes.
  std::vector<uint64_t> tile_l2_bytes;
  Cycles hop_cycles_per_chunk = 0;  // interconnect cost per chunk per hop
  Topology topology = Topology::kCrossbar;
  int mesh_width = 0;  // columns for Topology::kMesh
};

// Resolve a platform description into the cache model's low-level form:
// cores, the core->tile map, per-tile L2 capacities and the
// interconnect parameters. Leaves l1/l2 sizing defaults untouched.
void apply_platform(const PlatformConfig& platform, CacheConfig* cache);

struct MemStats {
  uint64_t accesses = 0;   // chunk touches
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;    // includes remote_hits
  uint64_t mem_fetches = 0;
  uint64_t invalidations = 0;  // L1 copies invalidated by writes
  Cycles stall_cycles = 0;
  // Multi-tile sub-counters (always 0 on a single-tile platform).
  uint64_t remote_hits = 0;        // L2 hits served by another tile
  uint64_t l2_invalidations = 0;   // remote-tile L2 copies invalidated

  double l1_hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses)
                    : 0.0;
  }

  bool operator==(const MemStats&) const = default;
};

// Per-region slice of the access statistics (the §4.1 JPiP miss
// analysis: which buffer pays the misses). Retained after release.
struct RegionStats {
  RegionId id = 0;
  std::string label;
  uint64_t bytes = 0;
  bool active = false;
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t mem_fetches = 0;
  uint64_t invalidations = 0;
  Cycles stall_cycles = 0;
  uint64_t remote_hits = 0;
  uint64_t l2_invalidations = 0;
};

class MemorySystem {
 public:
  explicit MemorySystem(const CacheConfig& config);

  // Register a buffer the simulated application will touch. `label` is
  // kept for the per-region statistics dump.
  RegionId register_region(uint64_t bytes, std::string label);
  void release_region(RegionId id);

  // Charge the stall cycles for core `core` touching bytes
  // [offset, offset+len) of `region`. `write` additionally invalidates
  // other cores' L1 copies (and other tiles' L2 copies). Returns the
  // stall cycles (also accumulated in stats()).
  Cycles access(int core, RegionId region, uint64_t offset, uint64_t len,
                bool write);

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

  int tiles() const { return num_tiles_; }

  // Per-region access/miss/stall breakdown in registration order,
  // including released regions (their counters stop but are kept).
  std::vector<RegionStats> region_stats() const;

 private:
  // Chunk identity: region id in the upper bits, chunk index below.
  using ChunkKey = uint64_t;
  static ChunkKey key(RegionId region, uint64_t chunk) {
    return (static_cast<uint64_t>(region) << 32) | chunk;
  }

  // Region bookkeeping + accumulated statistics, indexed by RegionId
  // (ids are dense: 1, 2, ...). Shared by both engines.
  struct Region {
    uint64_t bytes = 0;
    bool active = false;
    int32_t chunk_head = -1;  // flat engine: list of resident chunks
    std::string label;
    RegionStats stats;  // id/label/bytes mirrored into the dump lazily
  };

  // ---- list-reference engine --------------------------------------------
  struct Lru {
    uint64_t capacity_chunks = 0;
    std::list<ChunkKey> order;  // front = most recent
    std::unordered_map<ChunkKey, std::list<ChunkKey>::iterator> index;

    bool contains(ChunkKey k) const { return index.count(k) != 0; }
    void touch(ChunkKey k);   // insert or move to front; evicts beyond capacity
    void erase(ChunkKey k);
  };

  Cycles access_list(int core, Region& region_info, RegionId region,
                     uint64_t first, uint64_t last, bool write);
  void release_region_list(RegionId id, Region& region_info);

  // ---- flat engine -------------------------------------------------------
  //
  // Directory node: one per chunk resident in at least one cache.
  // Cache index space: [0, cores) are the per-core L1s, [cores,
  // cores + tiles) are the per-tile L2s. The presence mask has bit i
  // set when cache i holds the chunk; it is the inline `mask` word
  // while every cache index fits 64 bits, and a pooled span of
  // `mask_words_` words in mask_pool_ on wider platforms. LRU
  // prev/next links live in per-cache stripes of links_ (stride =
  // node-pool capacity), so membership and recency updates are index
  // arithmetic on flat arrays.
  struct DirNode {
    ChunkKey chunk_key = 0;
    uint64_t mask = 0;  // presence bits when mask_words_ == 1
    RegionId region = 0;
    int32_t region_prev = -1;
    int32_t region_next = -1;
  };
  struct HashSlot {
    ChunkKey chunk_key = 0;
    int32_t node = -1;  // -1 = empty
  };
  struct Links {
    int32_t prev = -1;
    int32_t next = -1;
  };
  struct LruList {
    int32_t head = -1;  // most recent
    int32_t tail = -1;  // least recent
    uint64_t size = 0;
    uint64_t capacity = 0;
  };

  static uint64_t mix(ChunkKey k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
  }

  Links& link(size_t cache, int32_t node) {
    return links_[cache * node_capacity_ + static_cast<size_t>(node)];
  }
  void list_push_front(size_t cache, int32_t n);
  void list_unlink(size_t cache, int32_t n);
  void list_move_front(size_t cache, int32_t n);

  // Presence-mask span of node `n` (kWide: pooled multi-word span;
  // !kWide: the inline DirNode word).
  template <bool kWide>
  uint64_t* mask_span(int32_t n) {
    if constexpr (kWide)
      return &mask_pool_[static_cast<size_t>(n) * mask_words_];
    else
      return &nodes_[static_cast<size_t>(n)].mask;
  }
  template <bool kWide>
  bool mask_test(int32_t n, size_t bit) {
    if constexpr (kWide)
      return (mask_span<kWide>(n)[bit >> 6] >> (bit & 63)) & 1;
    else
      return (nodes_[static_cast<size_t>(n)].mask >> bit) & 1;
  }
  template <bool kWide>
  void mask_set(int32_t n, size_t bit) {
    mask_span<kWide>(n)[kWide ? bit >> 6 : 0] |= uint64_t{1}
                                                 << (kWide ? (bit & 63) : bit);
  }
  template <bool kWide>
  void mask_clear(int32_t n, size_t bit);
  template <bool kWide>
  bool mask_empty(int32_t n);
  void mask_zero(int32_t n);

  // Returns the hash slot holding `k`, or the slot to insert it at.
  size_t hash_find(ChunkKey k) const;
  void hash_erase_slot(size_t slot);  // backward-shift deletion

  int32_t alloc_node(ChunkKey k, size_t slot, RegionId region);
  void free_node(int32_t n);  // unlinks from hash + region list
  template <bool kWide>
  void evict_tail(size_t cache);

  template <bool kWide>
  Cycles access_flat(int core, Region& region_info, RegionId region,
                     uint64_t first, uint64_t last, bool write);
  void release_region_flat(RegionId id, Region& region_info);

  CacheConfig config_;
  bool flat_ = true;
  MemStats stats_;
  RegionId next_region_ = 1;
  std::vector<Region> regions_;  // index 0 unused

  // Platform shape (resolved in the constructor; single tile default).
  int num_tiles_ = 1;
  std::vector<int> tile_of_core_;  // size cores
  // Remote-L2 search order per tile: other tiles sorted by (hops, index).
  std::vector<std::vector<int>> remote_order_;
  std::vector<int> hops_;  // tile x tile hop counts (row-major)

  // list-reference engine state
  std::vector<Lru> l1_;  // one per core
  std::vector<Lru> l2_;  // one per tile

  // flat engine state
  size_t num_caches_ = 0;     // cores + tiles; cache cores+t is tile t's L2
  size_t mask_words_ = 1;     // presence-mask width in 64-bit words
  size_t node_capacity_ = 0;  // fixed pool size (max residency + margin)
  std::vector<DirNode> nodes_;
  std::vector<uint64_t> mask_pool_;  // mask spans when mask_words_ > 1
  std::vector<uint64_t> l1_bits_;    // per word: bits of L1 cache indices
  std::vector<Links> links_;  // num_caches_ stripes of node_capacity_
  std::vector<LruList> lists_;
  std::vector<int32_t> free_nodes_;
  std::vector<HashSlot> hash_;  // power-of-two open addressing, linear probe
  size_t hash_mask_ = 0;
};

}  // namespace sim
