// Memory-hierarchy model of the SpaceCAKE tile (§4 of the paper: each
// TriMedia core has a private L1, the L2 is shared by the tile).
//
// Granularity is a "chunk" (default 1 KiB) rather than a cache line: the
// workloads stream whole image rows, so chunk-level LRU reproduces the
// relevant behaviour — the paper's finding that splitting fused kernels
// into stream-connected components increases misses (§4.1) — at a small
// fraction of the bookkeeping cost.
//
// Charging policy per touched chunk:
//   in own L1           -> 0 extra cycles (L1 hit cost is folded into the
//                          kernels' compute-cycle constants)
//   in shared L2 only   -> l2_cycles_per_chunk
//   in neither          -> mem_cycles_per_chunk
// Writes invalidate other cores' L1 copies (MSI-style coherence).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace sim {

using RegionId = uint32_t;

struct CacheConfig {
  int cores = 1;
  uint64_t l1_bytes = 16 * 1024;  // per core (TriMedia-like)
  // SpaceCAKE tiles carry a large shared embedded-DRAM L2. 16 MiB holds
  // every sequential application's working set and the pipelined PiP
  // ones, but not the 5-deep pipelined JPiP working set (5 slots of
  // 2.7 MiB coefficient images plus the decoded planes) — the regime
  // behind the paper's Fig. 8, where JPiP alone pays heavily.
  uint64_t l2_bytes = 16 * 1024 * 1024;
  uint32_t chunk_bytes = 1024;
  Cycles l2_cycles_per_chunk = 192;   // ~12 cycles per 64 B line
  Cycles mem_cycles_per_chunk = 640;  // ~40 cycles per 64 B line
};

struct MemStats {
  uint64_t accesses = 0;   // chunk touches
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t mem_fetches = 0;
  uint64_t invalidations = 0;
  Cycles stall_cycles = 0;

  double l1_hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const CacheConfig& config);

  // Register a buffer the simulated application will touch. `label` is
  // for diagnostics only.
  RegionId register_region(uint64_t bytes, std::string label);
  void release_region(RegionId id);

  // Charge the stall cycles for core `core` touching bytes
  // [offset, offset+len) of `region`. `write` additionally invalidates
  // other cores' L1 copies. Returns the stall cycles (also accumulated in
  // stats()).
  Cycles access(int core, RegionId region, uint64_t offset, uint64_t len,
                bool write);

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

 private:
  // Chunk identity: region id in the upper bits, chunk index below.
  using ChunkKey = uint64_t;
  static ChunkKey key(RegionId region, uint64_t chunk) {
    return (static_cast<uint64_t>(region) << 32) | chunk;
  }

  // One LRU cache over chunks.
  struct Lru {
    uint64_t capacity_chunks = 0;
    std::list<ChunkKey> order;  // front = most recent
    std::unordered_map<ChunkKey, std::list<ChunkKey>::iterator> index;

    bool contains(ChunkKey k) const { return index.count(k) != 0; }
    void touch(ChunkKey k);   // insert or move to front; evicts beyond capacity
    void erase(ChunkKey k);
  };

  CacheConfig config_;
  std::vector<Lru> l1_;  // one per core
  Lru l2_;
  MemStats stats_;
  RegionId next_region_ = 1;
  std::unordered_map<RegionId, uint64_t> region_bytes_;
};

}  // namespace sim
