// Memory-hierarchy model of the SpaceCAKE tile (§4 of the paper: each
// TriMedia core has a private L1, the L2 is shared by the tile).
//
// Granularity is a "chunk" (default 1 KiB) rather than a cache line: the
// workloads stream whole image rows, so chunk-level LRU reproduces the
// relevant behaviour — the paper's finding that splitting fused kernels
// into stream-connected components increases misses (§4.1) — at a small
// fraction of the bookkeeping cost.
//
// Charging policy per touched chunk:
//   in own L1           -> 0 extra cycles (L1 hit cost is folded into the
//                          kernels' compute-cycle constants)
//   in shared L2 only   -> l2_cycles_per_chunk
//   in neither          -> mem_cycles_per_chunk
// Writes invalidate other cores' L1 copies (MSI-style coherence).
//
// Two interchangeable cache-structure engines implement the identical
// LRU/coherence semantics (every access classifies and evicts the same
// way, so all simulated-cycle outputs are byte-identical):
//
//   LruImpl::kFlat (default) — a shared chunk *directory*: one pooled
//   node per resident chunk (index-linked, no per-touch allocation)
//   found through one open-addressing hash probe; per-cache intrusive
//   LRU lists thread through per-cache prev/next arrays indexed by the
//   node id; a per-chunk core-presence bitmask makes a write
//   invalidation one mask read plus targeted erases (instead of probing
//   every core's map); and a per-region resident-chunk list makes
//   release_region O(chunks actually cached), not
//   O(region chunks x caches).
//
//   LruImpl::kListReference — the original std::list +
//   std::unordered_map structures, retained as the equivalence baseline
//   for tests and the "before" leg of bench_sim (the same pattern as
//   media's HuffmanImpl::kBitSerial).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace sim {

using RegionId = uint32_t;

enum class LruImpl {
  kFlat,           // pooled nodes + open-addressing directory (fast path)
  kListReference,  // std::list + unordered_map (equivalence baseline)
};

struct CacheConfig {
  int cores = 1;
  uint64_t l1_bytes = 16 * 1024;  // per core (TriMedia-like)
  // SpaceCAKE tiles carry a large shared embedded-DRAM L2. 16 MiB holds
  // every sequential application's working set and the pipelined PiP
  // ones, but not the 5-deep pipelined JPiP working set (5 slots of
  // 2.7 MiB coefficient images plus the decoded planes) — the regime
  // behind the paper's Fig. 8, where JPiP alone pays heavily.
  uint64_t l2_bytes = 16 * 1024 * 1024;
  uint32_t chunk_bytes = 1024;
  Cycles l2_cycles_per_chunk = 192;   // ~12 cycles per 64 B line
  Cycles mem_cycles_per_chunk = 640;  // ~40 cycles per 64 B line
  LruImpl lru_impl = LruImpl::kFlat;
};

struct MemStats {
  uint64_t accesses = 0;   // chunk touches
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t mem_fetches = 0;
  uint64_t invalidations = 0;
  Cycles stall_cycles = 0;

  double l1_hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses)
                    : 0.0;
  }

  bool operator==(const MemStats&) const = default;
};

// Per-region slice of the access statistics (the §4.1 JPiP miss
// analysis: which buffer pays the misses). Retained after release.
struct RegionStats {
  RegionId id = 0;
  std::string label;
  uint64_t bytes = 0;
  bool active = false;
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t mem_fetches = 0;
  uint64_t invalidations = 0;
  Cycles stall_cycles = 0;
};

class MemorySystem {
 public:
  explicit MemorySystem(const CacheConfig& config);

  // Register a buffer the simulated application will touch. `label` is
  // kept for the per-region statistics dump.
  RegionId register_region(uint64_t bytes, std::string label);
  void release_region(RegionId id);

  // Charge the stall cycles for core `core` touching bytes
  // [offset, offset+len) of `region`. `write` additionally invalidates
  // other cores' L1 copies. Returns the stall cycles (also accumulated in
  // stats()).
  Cycles access(int core, RegionId region, uint64_t offset, uint64_t len,
                bool write);

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

  // Per-region access/miss/stall breakdown in registration order,
  // including released regions (their counters stop but are kept).
  std::vector<RegionStats> region_stats() const;

 private:
  // Chunk identity: region id in the upper bits, chunk index below.
  using ChunkKey = uint64_t;
  static ChunkKey key(RegionId region, uint64_t chunk) {
    return (static_cast<uint64_t>(region) << 32) | chunk;
  }

  // Region bookkeeping + accumulated statistics, indexed by RegionId
  // (ids are dense: 1, 2, ...). Shared by both engines.
  struct Region {
    uint64_t bytes = 0;
    bool active = false;
    int32_t chunk_head = -1;  // flat engine: list of resident chunks
    std::string label;
    RegionStats stats;  // id/label/bytes mirrored into the dump lazily
  };

  // ---- list-reference engine --------------------------------------------
  struct Lru {
    uint64_t capacity_chunks = 0;
    std::list<ChunkKey> order;  // front = most recent
    std::unordered_map<ChunkKey, std::list<ChunkKey>::iterator> index;

    bool contains(ChunkKey k) const { return index.count(k) != 0; }
    void touch(ChunkKey k);   // insert or move to front; evicts beyond capacity
    void erase(ChunkKey k);
  };

  Cycles access_list(int core, Region& region_info, RegionId region,
                     uint64_t first, uint64_t last, bool write);
  void release_region_list(RegionId id, Region& region_info);

  // ---- flat engine -------------------------------------------------------
  //
  // Directory node: one per chunk resident in at least one cache. The
  // presence mask has bit c set when core c's L1 holds the chunk and bit
  // `cores` when the L2 does. LRU prev/next links live in per-cache
  // stripes of links_ (stride = node-pool capacity), so membership and
  // recency updates are index arithmetic on flat arrays.
  struct DirNode {
    ChunkKey chunk_key = 0;
    uint64_t mask = 0;
    RegionId region = 0;
    int32_t region_prev = -1;
    int32_t region_next = -1;
  };
  struct HashSlot {
    ChunkKey chunk_key = 0;
    int32_t node = -1;  // -1 = empty
  };
  struct Links {
    int32_t prev = -1;
    int32_t next = -1;
  };
  struct LruList {
    int32_t head = -1;  // most recent
    int32_t tail = -1;  // least recent
    uint64_t size = 0;
    uint64_t capacity = 0;
  };

  static uint64_t mix(ChunkKey k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
  }

  Links& link(size_t cache, int32_t node) {
    return links_[cache * node_capacity_ + static_cast<size_t>(node)];
  }
  void list_push_front(size_t cache, int32_t n);
  void list_unlink(size_t cache, int32_t n);
  void list_move_front(size_t cache, int32_t n);

  // Returns the hash slot holding `k`, or the slot to insert it at.
  size_t hash_find(ChunkKey k) const;
  void hash_erase_slot(size_t slot);  // backward-shift deletion

  int32_t alloc_node(ChunkKey k, size_t slot, RegionId region);
  void free_node(int32_t n);  // unlinks from hash + region list
  void evict_tail(size_t cache);

  Cycles access_flat(int core, Region& region_info, RegionId region,
                     uint64_t first, uint64_t last, bool write);
  void release_region_flat(RegionId id, Region& region_info);

  CacheConfig config_;
  bool flat_ = true;
  MemStats stats_;
  RegionId next_region_ = 1;
  std::vector<Region> regions_;  // index 0 unused

  // list-reference engine state
  std::vector<Lru> l1_;  // one per core
  Lru l2_;

  // flat engine state
  size_t num_caches_ = 0;     // cores + 1; cache index `cores` is the L2
  size_t node_capacity_ = 0;  // fixed pool size (max residency + margin)
  std::vector<DirNode> nodes_;
  std::vector<Links> links_;  // num_caches_ stripes of node_capacity_
  std::vector<LruList> lists_;
  std::vector<int32_t> free_nodes_;
  std::vector<HashSlot> hash_;  // power-of-two open addressing, linear probe
  size_t hash_mask_ = 0;
};

}  // namespace sim
