#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <clocale>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace support {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> parse_int(std::string_view s) {
  std::string t(trim(s));
  if (t.empty()) return invalid_argument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) return out_of_range("integer out of range: " + t);
  if (end != t.c_str() + t.size())
    return invalid_argument("not an integer: '" + t + "'");
  return static_cast<int64_t>(v);
}

Result<double> parse_double(std::string_view s) {
  std::string t(trim(s));
  if (t.empty()) return invalid_argument("empty number");
  // std::from_chars always expects '.' as the decimal separator, unlike
  // strtod which honours LC_NUMERIC (a German locale would stop at the
  // '.' of "0.25" and yield 0).
  double v = 0;
  auto [end, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec == std::errc::result_out_of_range)
    return out_of_range("number out of range: " + t);
  if (ec != std::errc() || end != t.data() + t.size())
    return invalid_argument("not a number: '" + t + "'");
  return v;
}

void append_double(std::string* out, double value, int precision) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, precision);
  if (ec != std::errc()) {
    // Cannot happen for finite doubles at sane precisions; fall back to
    // snprintf with the locale's separator patched to '.'.
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    for (char* p = buf; *p != '\0'; ++p)
      if (*p == ',') *p = '.';
    out->append(buf);
    return;
  }
  out->append(buf, static_cast<size_t>(end - buf));
}

std::string format_double(double value, int precision) {
  std::string out;
  append_double(&out, value, precision);
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '.' && c != '-') return false;
  }
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace support
