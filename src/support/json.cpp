#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace support::json {

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->str() : fallback;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}
Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}
Value Value::make_object(std::vector<std::pair<std::string, Value>> m) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(m);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  support::Result<Value> run() {
    skip_ws();
    Value v;
    SUP_RETURN_IF_ERROR(parse_value(&v));
    skip_ws();
    if (pos_ != text_.size())
      return error("trailing content after JSON document");
    return v;
  }

 private:
  support::Status error(const std::string& what) const {
    return support::invalid_argument("json: " + what + " at byte " +
                                     std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  // Containers nest by recursion; the cap bounds stack usage while
  // accepting the deeply nested arrays real trace corpora contain (the
  // old cap of 200 rejected valid documents well within stack limits).
  static constexpr int kMaxDepth = 1000;

  support::Status parse_value(Value* out) {
    if (depth_ > kMaxDepth) return error("nesting too deep");
    if (pos_ >= text_.size()) return error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        SUP_RETURN_IF_ERROR(parse_string(&s));
        *out = Value::make_string(std::move(s));
        return support::Status::ok();
      }
      case 't':
        if (consume_word("true")) {
          *out = Value::make_bool(true);
          return support::Status::ok();
        }
        return error("invalid literal");
      case 'f':
        if (consume_word("false")) {
          *out = Value::make_bool(false);
          return support::Status::ok();
        }
        return error("invalid literal");
      case 'n':
        if (consume_word("null")) {
          *out = Value::make_null();
          return support::Status::ok();
        }
        return error("invalid literal");
      default:
        return parse_number(out);
    }
  }

  support::Status parse_object(Value* out) {
    ++depth_;
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (consume('}')) {
      --depth_;
      *out = Value::make_object(std::move(members));
      return support::Status::ok();
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return error("expected object key string");
      std::string key;
      SUP_RETURN_IF_ERROR(parse_string(&key));
      skip_ws();
      if (!consume(':')) return error("expected ':' after object key");
      skip_ws();
      Value v;
      SUP_RETURN_IF_ERROR(parse_value(&v));
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return error("expected ',' or '}' in object");
    }
    --depth_;
    *out = Value::make_object(std::move(members));
    return support::Status::ok();
  }

  support::Status parse_array(Value* out) {
    ++depth_;
    ++pos_;  // '['
    std::vector<Value> items;
    skip_ws();
    if (consume(']')) {
      --depth_;
      *out = Value::make_array(std::move(items));
      return support::Status::ok();
    }
    for (;;) {
      skip_ws();
      Value v;
      SUP_RETURN_IF_ERROR(parse_value(&v));
      items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return error("expected ',' or ']' in array");
    }
    --depth_;
    *out = Value::make_array(std::move(items));
    return support::Status::ok();
  }

  support::Status parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return support::Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return error("unescaped control character in string");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          *out += e;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          SUP_RETURN_IF_ERROR(parse_u_hex(&code));
          // A high surrogate followed by "\uDC00".."\uDFFF" is one
          // supplementary-plane code point; emitting each half as a
          // 3-byte sequence (as the old code did) produced CESU-8 that
          // strict UTF-8 consumers reject. Unpaired surrogates still
          // pass through as-is — lenient, like the rest of the parser.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            size_t rewind = pos_;
            pos_ += 2;
            unsigned low = 0;
            SUP_RETURN_IF_ERROR(parse_u_hex(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = rewind;  // not a pair; re-parse `low` as its own escape
            }
          }
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xF0 | (code >> 18));
            *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return error("invalid escape character");
      }
    }
    return error("unterminated string");
  }

  // Four hex digits of a \u escape (pos_ just past the 'u').
  support::Status parse_u_hex(unsigned* out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9')
        code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code += static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code += static_cast<unsigned>(h - 'A' + 10);
      else
        return error("invalid \\u escape");
    }
    *out = code;
    return support::Status::ok();
  }

  support::Status parse_number(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      bool exp_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return error("invalid number exponent");
    }
    if (!digits) return error("invalid number");
    // from_chars, not strtod: strtod honours LC_NUMERIC, so under a
    // decimal-comma locale it would stop at the '.' of "0.25" (and at
    // the '.' inside "6.02e23") and silently return the truncated
    // integer part — a misparse, not a reject.
    double v = 0;
    const char* first = text_.data() + start;
    auto [end, ec] = std::from_chars(first, text_.data() + pos_, v);
    if (ec == std::errc::result_out_of_range) {
      // JSON places no range limit; saturate like strtod does.
      v = (*first == '-') ? -HUGE_VAL : HUGE_VAL;
    } else if (ec != std::errc() || end != text_.data() + pos_) {
      return error("invalid number");
    }
    *out = Value::make_number(v);
    return support::Status::ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

support::Result<Value> parse(std::string_view text) {
  return Parser(text).run();
}

support::Result<Value> parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return support::io_error("json: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

}  // namespace support::json
