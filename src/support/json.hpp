// Minimal JSON parser for tooling: hinchtrace loads Chrome trace-event
// files with it, and the trace tests use it as an independent
// well-formedness check of the exporter's output. It parses the full
// JSON grammar (objects, arrays, strings with escapes, numbers, bools,
// null) into a simple tagged value tree; it is not a streaming parser
// and is not meant for multi-gigabyte inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace support::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  int64_t number_int() const { return static_cast<int64_t>(number_); }
  const std::string& str() const { return string_; }
  const std::vector<Value>& array() const { return array_; }
  // Insertion-ordered key/value pairs.
  const std::vector<std::pair<std::string, Value>>& object() const {
    return object_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Typed member conveniences (fallbacks when absent / wrong type).
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> m);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Parse a complete JSON document (leading/trailing whitespace allowed;
// anything after the document is an error). Errors carry a byte offset.
support::Result<Value> parse(std::string_view text);

// Read `path` and parse it.
support::Result<Value> parse_file(const std::string& path);

}  // namespace support::json
