// Deterministic PRNG (SplitMix64). Used for synthetic video generation
// and randomized property tests; never std::rand, so every run of the
// simulator and every test is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace support {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace support
