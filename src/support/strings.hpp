// Small string utilities shared by the XML parser, XSPCL front end, and
// command-line tools.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace support {

// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Split on a separator character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Strict integer / double parsing of the full string (after trimming).
// Locale-independent: the decimal separator is always '.' no matter
// what LC_NUMERIC the host process runs under.
Result<int64_t> parse_int(std::string_view s);
Result<double> parse_double(std::string_view s);

// Locale-independent shortest-faithful double formatting with %.6g
// semantics (precision significant digits, fixed/scientific picked
// automatically). snprintf("%g") writes the LC_NUMERIC decimal
// separator — a comma under e.g. de_DE — which corrupts JSON output;
// every JSON/metrics emitter routes doubles through here instead.
void append_double(std::string* out, double value, int precision = 6);
std::string format_double(double value, int precision = 6);

// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_.-]*
bool is_identifier(std::string_view s);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace support
