#include "support/cpu.hpp"

#include <cstdlib>
#include <cstring>

namespace support {

CpuFeatures probe_cpu_features() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  f.sse2 = true;  // architectural baseline on x86-64
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#elif defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#elif defined(__aarch64__)
  f.neon = true;  // architectural baseline on AArch64
#elif defined(__ARM_NEON)
  f.neon = true;  // the compiler was told NEON is available
#endif
  return f;
}

bool force_scalar_env() {
  const char* v = std::getenv("HINCH_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = [] {
    CpuFeatures probed = probe_cpu_features();
    if (force_scalar_env()) probed = CpuFeatures{};
    return probed;
  }();
  return f;
}

}  // namespace support
