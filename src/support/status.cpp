#include "support/status.hpp"

namespace support {

const char* code_name(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Code::kOutOfRange: return "OUT_OF_RANGE";
    case Code::kUnimplemented: return "UNIMPLEMENTED";
    case Code::kInternal: return "INTERNAL";
    case Code::kIo: return "IO";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = code_name(code_);
  s += ": ";
  s += message_;
  return s;
}

Status invalid_argument(std::string msg) {
  return Status(Code::kInvalidArgument, std::move(msg));
}
Status not_found(std::string msg) {
  return Status(Code::kNotFound, std::move(msg));
}
Status already_exists(std::string msg) {
  return Status(Code::kAlreadyExists, std::move(msg));
}
Status failed_precondition(std::string msg) {
  return Status(Code::kFailedPrecondition, std::move(msg));
}
Status out_of_range(std::string msg) {
  return Status(Code::kOutOfRange, std::move(msg));
}
Status unimplemented(std::string msg) {
  return Status(Code::kUnimplemented, std::move(msg));
}
Status internal_error(std::string msg) {
  return Status(Code::kInternal, std::move(msg));
}
Status io_error(std::string msg) { return Status(Code::kIo, std::move(msg)); }

}  // namespace support
