// Tiny leveled logger. Thread-safe (single global mutex); intended for
// tool diagnostics and test debugging, not hot paths.
#pragma once

#include <sstream>
#include <string>

namespace support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emit one log line (adds level prefix and newline).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace support

#define SUP_LOG(level) ::support::detail::LogLine(level)
#define SUP_DEBUG SUP_LOG(::support::LogLevel::kDebug)
#define SUP_INFO SUP_LOG(::support::LogLevel::kInfo)
#define SUP_WARN SUP_LOG(::support::LogLevel::kWarn)
#define SUP_ERROR SUP_LOG(::support::LogLevel::kError)
