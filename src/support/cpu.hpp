// Host CPU capability probe for the runtime-dispatched media kernels.
//
// The probe answers one question: which vector instruction sets may the
// process safely execute? media::set_kernel_dispatch() consults it to
// pick a kernel table at load time (the staged-specialization idea: best
// implementation variant chosen once, not per call).
//
// Setting HINCH_FORCE_SCALAR in the environment (to anything but "0" or
// the empty string) reports every vector feature as absent, pinning the
// bit-exactness reference path — the kernel analogue of
// HuffmanImpl::kBitSerial. See docs/PERF.md.
#pragma once

namespace support {

struct CpuFeatures {
  bool sse2 = false;  // x86-64 baseline
  bool avx2 = false;
  bool neon = false;  // aarch64 baseline
};

// Raw hardware probe, ignoring HINCH_FORCE_SCALAR (for tests and
// diagnostics).
CpuFeatures probe_cpu_features();

// True when HINCH_FORCE_SCALAR is set and not "0"/"".
bool force_scalar_env();

// Cached probe with the HINCH_FORCE_SCALAR override applied; this is
// what dispatch decisions must use.
const CpuFeatures& cpu_features();

}  // namespace support
