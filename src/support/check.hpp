// Runtime assertion macros used across the project.
//
// SUP_CHECK is always on (release included): invariants whose violation
// means memory corruption or a logic bug we must not silently ride over.
// SUP_DCHECK compiles out in NDEBUG builds and may sit on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace support::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace support::detail

#define SUP_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::support::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SUP_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr))                                                        \
      ::support::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SUP_DCHECK(expr) ((void)0)
#else
#define SUP_DCHECK(expr) SUP_CHECK(expr)
#endif
