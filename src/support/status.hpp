// Minimal Status / Result<T> types for recoverable errors (parsing,
// validation, I/O). Programming errors use SUP_CHECK instead.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/check.hpp"

namespace support {

enum class Code {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIo,
};

const char* code_name(Code c);

// A Status is cheap to copy when OK (empty message).
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string.
  std::string to_string() const;

 private:
  Code code_;
  std::string message_;
};

Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status already_exists(std::string msg);
Status failed_precondition(std::string msg);
Status out_of_range(std::string msg);
Status unimplemented(std::string msg);
Status internal_error(std::string msg);
Status io_error(std::string msg);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    SUP_CHECK_MSG(!std::get<Status>(v_).is_ok(),
                  "Result constructed from OK status without a value");
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    SUP_CHECK_MSG(is_ok(), status_unchecked().to_string().c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    SUP_CHECK_MSG(is_ok(), status_unchecked().to_string().c_str());
    return std::get<T>(v_);
  }
  T&& take() && {
    SUP_CHECK_MSG(is_ok(), status_unchecked().to_string().c_str());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }

 private:
  const Status& status_unchecked() const { return std::get<Status>(v_); }
  std::variant<T, Status> v_;
};

}  // namespace support

// Propagate a non-OK status out of the current function.
#define SUP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::support::Status sup_st_ = (expr);            \
    if (!sup_st_.is_ok()) return sup_st_;          \
  } while (0)

// Assign the value of a Result to `lhs`, or return its status.
#define SUP_CONCAT_INNER(a, b) a##b
#define SUP_CONCAT(a, b) SUP_CONCAT_INNER(a, b)
#define SUP_ASSIGN_OR_RETURN(lhs, expr)                            \
  SUP_ASSIGN_OR_RETURN_IMPL(SUP_CONCAT(sup_res_, __LINE__), lhs, expr)
#define SUP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.is_ok()) return tmp.status();          \
  lhs = std::move(tmp).take()
