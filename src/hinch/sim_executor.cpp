#include "hinch/sim_executor.hpp"

#include <algorithm>
#include <deque>

#include "hinch/region_table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hinch {
namespace {

// Trace key for a (task, iteration) job. Manager-less programs only use
// phase 0, so the phase needs no bits.
uint64_t trace_key(const JobRef& job) {
  SUP_DCHECK(job.phase == 0);
  SUP_DCHECK(job.iter >= 0 && job.iter < (int64_t{1} << 40));
  return (static_cast<uint64_t>(static_cast<uint32_t>(job.task)) << 40) |
         static_cast<uint64_t>(job.iter);
}

class SimRun {
 public:
  SimRun(Program& prog, const RunConfig& config, const SimParams& params)
      : prog_(prog),
        scheduler_(prog, config),
        params_(params),
        cache_config_(params.cache),
        regions_(nullptr, prog.stream_depth()) {
    SUP_CHECK(params.cores >= 1);
    SUP_CHECK_MSG(params.record_trace == nullptr ||
                      params.replay_trace == nullptr,
                  "at most one of record_trace/replay_trace may be set");
    SUP_CHECK_MSG((params.record_trace == nullptr &&
                   params.replay_trace == nullptr) ||
                      prog.managers().empty(),
                  "charge tracing requires a program without "
                  "reconfiguration managers");
    // Resolve the core count: the platform defines it when set; the
    // plain `cores` knob otherwise.
    int cores = params.cores;
    if (!params_.platform.empty()) {
      params_.platform.check();
      int platform_cores = params_.platform.total_cores();
      SUP_CHECK_MSG(params.cores == 1 || params.cores == platform_cores,
                    "SimParams.cores conflicts with the platform's total "
                    "core count (leave cores at 1 when a platform is set)");
      cores = platform_cores;
      num_tiles_ = params_.platform.tile_count();
      tile_of_core_ = params_.platform.tile_map();
      multipliers_ = params_.platform.core_multipliers();
      for (double m : multipliers_)
        if (m != 1.0) hetero_ = true;
      dispatch_ = params_.platform.dispatch;
      tile_cores_.resize(static_cast<size_t>(num_tiles_));
      for (int c = 0; c < cores; ++c)
        tile_cores_[static_cast<size_t>(tile_of_core_[static_cast<size_t>(c)])]
            .push_back(c);
      task_last_tile_.assign(prog.tasks().size(), -1);
      if (dispatch_ == sim::DispatchPolicy::kFastestFirst) {
        dispatch_order_.resize(static_cast<size_t>(cores));
        for (int c = 0; c < cores; ++c)
          dispatch_order_[static_cast<size_t>(c)] = c;
        std::stable_sort(dispatch_order_.begin(), dispatch_order_.end(),
                         [&](int a, int b) {
                           return multipliers_[static_cast<size_t>(a)] <
                                  multipliers_[static_cast<size_t>(b)];
                         });
      }
    }
    cores_ = cores;
    // cache.cores used to be overwritten silently from `cores`; a caller
    // that sets both to different values now fails loudly instead of
    // getting a simulation of the wrong machine.
    SUP_CHECK_MSG(params.cache.cores == 0 || params.cache.cores == cores,
                  "SimParams.cache.cores conflicts with the core count "
                  "derived from SimParams.cores/platform (leave "
                  "cache.cores at 0 to derive it)");
    cache_config_.cores = cores;
    if (!params_.platform.empty())
      sim::apply_platform(params_.platform, &cache_config_);
    mem_ = std::make_unique<sim::MemorySystem>(cache_config_);
    regions_ = RegionTable(mem_.get(), prog.stream_depth());
    core_busy_.assign(static_cast<size_t>(cores), 0);
    core_jobs_.assign(static_cast<size_t>(cores), 0);
    core_idle_.assign(static_cast<size_t>(cores), true);
    task_cycles_.assign(prog.tasks().size(), 0);
    task_runs_.assign(prog.tasks().size(), 0);
    if (!params_.sync_costs) {
      params_.queue_lock_cycles = 0;
      params_.dequeue_cycles = 0;
      params_.enqueue_cycles = 0;
    }
    if (obs::kTraceCompiledIn && params.trace != nullptr) {
      trace_ = params.trace;
      trace_->begin_run(cores, obs::ClockDomain::kCycles);
      if (num_tiles_ > 1) {
        for (int c = 0; c < cores; ++c)
          trace_->set_lane_name(
              c, "tile" +
                     std::to_string(tile_of_core_[static_cast<size_t>(c)]) +
                     ".core" + std::to_string(c));
      }
      task_names_.reserve(prog.tasks().size());
      for (const Task& t : prog.tasks()) {
        std::string label =
            t.label.empty() ? "task" + std::to_string(t.id) : t.label;
        task_names_.push_back(trace_->intern(label));
      }
      stream_names_.reserve(prog.streams().size());
      for (const auto& s : prog.streams())
        stream_names_.push_back(trace_->intern("stream " + s->name()));
      admit_name_ = trace_->intern("admit");
      reconfig_name_ = trace_->intern("reconfiguration");
      queue_depth_name_ = trace_->intern("queue depth");
      l1_miss_name_ = trace_->intern("cache L1 misses");
      mem_fetch_name_ = trace_->intern("cache mem fetches");
    }
    if (params.metrics != nullptr) {
      metrics_ = params.metrics;
      // Pre-build the dotted names once so in-run publication is a map
      // lookup plus an uncontended mutex, not per-job string assembly.
      live_stream_keys_.reserve(prog.streams().size());
      for (const auto& s : prog.streams())
        live_stream_keys_.push_back("live.stream." + s->name() +
                                    ".occupancy");
    }
  }

  SimResult run() {
    for (const JobRef& job : scheduler_.start()) queue_.push_back(job);
    dispatch();
    engine_.run();
    SUP_CHECK_MSG(scheduler_.finished(),
                  "simulation drained with unfinished iterations");
    SimResult result;
    result.total_cycles = engine_.now();
    result.mem = mem_->stats();
    result.sched = scheduler_.stats();
    result.core_busy = core_busy_;
    result.queue_wait_cycles = queue_wait_;
    result.jobs = jobs_;
    result.task_cycles = task_cycles_;
    result.task_runs = task_runs_;
    result.regions = mem_->region_stats();
    result.tiles = num_tiles_;
    if (!params_.platform.empty()) {
      result.core_tile = tile_of_core_;
      result.core_multiplier = multipliers_;
      result.tile_busy.assign(static_cast<size_t>(num_tiles_), 0);
      result.tile_jobs.assign(static_cast<size_t>(num_tiles_), 0);
      for (size_t i = 0; i < core_busy_.size(); ++i) {
        size_t t = static_cast<size_t>(tile_of_core_[i]);
        result.tile_busy[t] += core_busy_[i];
        result.tile_jobs[t] += core_jobs_[i];
      }
    }
    return result;
  }

 private:
  // Pick an idle core for `job` under the configured dispatch policy
  // (-1 = none idle). The default scans lowest core id first — the
  // legacy behaviour and the fallback of the other policies.
  int pick_core(const JobRef& job) const {
    switch (dispatch_) {
      case sim::DispatchPolicy::kLowestCore:
        break;
      case sim::DispatchPolicy::kFastestFirst:
        for (int c : dispatch_order_)
          if (core_idle_[static_cast<size_t>(c)]) return c;
        return -1;
      case sim::DispatchPolicy::kTileAffinity: {
        int last = task_last_tile_.empty()
                       ? -1
                       : task_last_tile_[static_cast<size_t>(job.task)];
        if (last >= 0) {
          for (int c : tile_cores_[static_cast<size_t>(last)])
            if (core_idle_[static_cast<size_t>(c)]) return c;
        }
        break;
      }
    }
    for (size_t i = 0; i < core_idle_.size(); ++i)
      if (core_idle_[i]) return static_cast<int>(i);
    return -1;
  }

  // Assign queued jobs to idle cores (policy-picked core, FIFO jobs).
  void dispatch() {
    while (!queue_.empty()) {
      int core = pick_core(queue_.front());
      if (core < 0) return;
      JobRef job = queue_.front();
      queue_.pop_front();
      core_idle_[static_cast<size_t>(core)] = false;
      if (!task_last_tile_.empty())
        task_last_tile_[static_cast<size_t>(job.task)] =
            tile_of_core_[static_cast<size_t>(core)];

      // Take the central queue's lock (a serial resource).
      sim::Cycles acquire = std::max(engine_.now(), queue_free_at_);
      queue_wait_ += acquire - engine_.now();
      queue_free_at_ =
          acquire + params_.queue_lock_cycles + params_.dequeue_cycles;
      sim::Cycles start = queue_free_at_;
      engine_.schedule_at(start, [this, job, core] { start_job(job, core); });
    }
  }

  void start_job(JobRef job, int core) {
    ExecContext ctx(scheduler_.job_component(job), job.iter, core,
                    &prog_.queues(), metrics_);
    const ExecContext::Charges* charged = &ctx.charges();
    if (params_.replay_trace != nullptr) {
      auto it = params_.replay_trace->jobs.find(trace_key(job));
      SUP_CHECK_MSG(it != params_.replay_trace->jobs.end(),
                    "charge-trace replay: no record for this job (trace "
                    "from a different program or RunConfig?)");
      charged = &it->second;
    } else {
      scheduler_.execute(job, ctx);
      if (params_.record_trace != nullptr)
        params_.record_trace->jobs.emplace(trace_key(job), ctx.charges());
    }
    ++jobs_;
    ++core_jobs_[static_cast<size_t>(core)];

    const ExecContext::Charges& charges = *charged;
    // A core class's cycle multiplier scales compute (a half-frequency
    // core needs twice the cycles for the same charge); memory stalls
    // are platform latencies and stay unscaled. Exact for 1.0.
    sim::Cycles cost = charges.compute_cycles;
    if (hetero_)
      cost = static_cast<sim::Cycles>(
          static_cast<double>(charges.compute_cycles) *
              multipliers_[static_cast<size_t>(core)] +
          0.5);
    for (const ExecContext::Touch& t : charges.touches) {
      sim::RegionId region = regions_.stream_region(
          t.stream_index, job.iter, t.offset + t.len);
      cost += mem_->access(core, region, t.offset, t.len, t.write);
    }
    if (!charges.scratch.empty()) {
      uint64_t scratch_bytes = 0;
      for (const ExecContext::ScratchTouch& s : charges.scratch)
        scratch_bytes = std::max(scratch_bytes, s.bytes);
      sim::RegionId region = regions_.scratch_region(job.task, scratch_bytes);
      for (const ExecContext::ScratchTouch& s : charges.scratch)
        cost += mem_->access(core, region, 0, s.bytes, s.write);
    }
    core_busy_[static_cast<size_t>(core)] += cost;
    task_cycles_[static_cast<size_t>(job.task)] += cost;
    ++task_runs_[static_cast<size_t>(job.task)];
    if (trace_ != nullptr) {
      obs::TraceRecorder* rec = trace_->recorder(core);
      rec->span(task_names_[static_cast<size_t>(job.task)],
                obs::Category::kTask, engine_.now(), cost, job.iter,
                job.task);
      // phase 1 = a reconfiguration splice executing on this core: the
      // explicit marker fig10's trace validation looks for.
      if (job.phase == 1)
        rec->instant(reconfig_name_, obs::Category::kReconfig, engine_.now(),
                     job.iter, job.task);
      const sim::MemStats ms = mem_->stats();
      rec->counter(l1_miss_name_, obs::Category::kCache, engine_.now(),
                   static_cast<int64_t>(ms.accesses - ms.l1_hits));
      rec->counter(mem_fetch_name_, obs::Category::kCache, engine_.now(),
                   static_cast<int64_t>(ms.mem_fetches));
      // Per-stream occupancy: slots of this stream holding data of
      // iterations admitted but not yet retired.
      int64_t inflight = job.iter + 1 - scheduler_.iterations_done();
      for (const ExecContext::Touch& t : charges.touches) {
        if (!t.write) continue;
        rec->counter(stream_names_[static_cast<size_t>(t.stream_index)],
                     obs::Category::kStream, engine_.now(), inflight);
      }
    }
    if (metrics_ != nullptr) {
      int64_t inflight = job.iter + 1 - scheduler_.iterations_done();
      for (const ExecContext::Touch& t : charges.touches) {
        if (!t.write) continue;
        metrics_->set(live_stream_keys_[static_cast<size_t>(t.stream_index)],
                      inflight);
      }
    }
    engine_.schedule_after(cost, [this, job, core] { end_job(job, core); });
  }

  void end_job(JobRef job, int core) {
    std::vector<JobRef> newly = scheduler_.complete(job);
    for (const JobRef& j : newly) queue_.push_back(j);
    if (trace_ != nullptr) {
      obs::TraceRecorder* rec = trace_->recorder(core);
      for (const JobRef& j : newly)
        rec->instant(admit_name_, obs::Category::kSched, engine_.now(),
                     j.iter, j.task);
      rec->counter(queue_depth_name_, obs::Category::kSched, engine_.now(),
                   static_cast<int64_t>(queue_.size()));
    }
    if (metrics_ != nullptr) publish_live();
    // The completing core enqueues its successors before going idle.
    sim::Cycles enqueue_cost =
        params_.enqueue_cycles * static_cast<sim::Cycles>(newly.size());
    core_busy_[static_cast<size_t>(core)] += enqueue_cost;
    engine_.schedule_after(enqueue_cost, [this, core] {
      core_idle_[static_cast<size_t>(core)] = true;
      dispatch();
    });
    // Jobs may be dispatchable on other idle cores right away.
    dispatch();
  }

  // Refresh the "live.*" gauges after a job retires. Pure observation:
  // publication touches only the registry, never the cost model, so
  // cycle counts are identical with and without a registry attached.
  void publish_live() {
    metrics_->set("live.cycles", static_cast<int64_t>(engine_.now()));
    metrics_->set("live.jobs", static_cast<int64_t>(jobs_));
    metrics_->set("live.queue_depth", static_cast<int64_t>(queue_.size()));
    int64_t iters = scheduler_.iterations_done();
    metrics_->set("live.iterations_done", iters);
    if (iters > live_last_iters_) {
      // Throughput over the iterations retired since the last boundary —
      // the signal the policy component watches for load steps.
      double per_iter =
          static_cast<double>(engine_.now() - live_last_boundary_) /
          static_cast<double>(iters - live_last_iters_);
      metrics_->set("live.cycles_per_iter", per_iter);
      live_last_iters_ = iters;
      live_last_boundary_ = engine_.now();
    }
    const sim::MemStats ms = mem_->stats();
    metrics_->set("live.mem_fetches", static_cast<int64_t>(ms.mem_fetches));
    if (ms.accesses > 0) {
      metrics_->set("live.l1_miss_rate",
                    static_cast<double>(ms.accesses - ms.l1_hits) /
                        static_cast<double>(ms.accesses));
    }
  }

  Program& prog_;
  Scheduler scheduler_;
  SimParams params_;
  sim::CacheConfig cache_config_;
  sim::Engine engine_;
  std::unique_ptr<sim::MemorySystem> mem_;
  RegionTable regions_;

  // Platform shape (legacy single-tile defaults when no platform set).
  int cores_ = 1;
  int num_tiles_ = 1;
  bool hetero_ = false;  // any cycle multiplier != 1.0
  std::vector<int> tile_of_core_;
  std::vector<double> multipliers_;
  sim::DispatchPolicy dispatch_ = sim::DispatchPolicy::kLowestCore;
  std::vector<int> dispatch_order_;           // kFastestFirst scan order
  std::vector<std::vector<int>> tile_cores_;  // tile -> core ids
  std::vector<int> task_last_tile_;           // kTileAffinity state

  std::deque<JobRef> queue_;
  std::vector<bool> core_idle_;
  std::vector<sim::Cycles> core_busy_;
  std::vector<uint64_t> core_jobs_;
  sim::Cycles queue_free_at_ = 0;
  sim::Cycles queue_wait_ = 0;
  uint64_t jobs_ = 0;
  std::vector<sim::Cycles> task_cycles_;
  std::vector<uint64_t> task_runs_;

  obs::MetricsRegistry* metrics_ = nullptr;  // nullptr: no live publication
  std::vector<std::string> live_stream_keys_;
  int64_t live_last_iters_ = 0;
  sim::Cycles live_last_boundary_ = 0;

  obs::TraceSession* trace_ = nullptr;  // nullptr when tracing is off
  std::vector<uint16_t> task_names_;
  std::vector<uint16_t> stream_names_;
  uint16_t admit_name_ = 0;
  uint16_t reconfig_name_ = 0;
  uint16_t queue_depth_name_ = 0;
  uint16_t l1_miss_name_ = 0;
  uint16_t mem_fetch_name_ = 0;
};

}  // namespace

SimResult run_on_sim(Program& prog, const RunConfig& config,
                     const SimParams& params) {
  SimRun run(prog, config, params);
  return run.run();
}

}  // namespace hinch
