// Lazily-registered memory regions for stream slots and component
// scratch space, used by the simulator backend. A (stream, slot) pair
// keeps one region across slot reuse, modelling the frame-pool
// behaviour of the runtime.
//
// Region keys pack (stream index, ring slot) into one 64-bit value with
// the stream index in the upper 32 bits. An earlier version shifted by
// only 8 bits, so any stream deeper than 256 slots aliased its high
// slots onto the next stream's regions — the simulator then accounted
// two different buffers as one, silently skewing cache statistics.
// Depths, stream counts and stream indices are bounds-checked so a
// regression aborts instead of aliasing.
//
// Multi-tenancy: the table itself is a per-owner namespace. A bare key
// would alias across concurrent sessions (two sessions' stream 0 would
// share a region), so each hinch::Session gets its own RegionTable over
// the shared sim::MemorySystem, optionally labelled with the session id
// ("session.<id>.stream:0:slot1") so per-region statistics stay
// attributable. Single-session runs pass session_id = -1 and get the
// unprefixed labels the figure benches snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/cache.hpp"
#include "support/check.hpp"

namespace hinch {

class RegionTable {
 public:
  RegionTable(sim::MemorySystem* mem, int depth, int session_id = -1)
      : mem_(mem), depth_(depth), session_id_(session_id) {
    SUP_CHECK(depth >= 1);
  }

  sim::RegionId stream_region(int64_t stream_index, int64_t iter,
                              uint64_t min_bytes) {
    // The label factory only runs on a table miss (first touch or a
    // size upgrade), so the per-access hot path stays allocation-free.
    return lookup(stream_regions_, stream_key(stream_index, iter), min_bytes,
                  [&] {
                    return label_prefix() + "stream:" +
                           std::to_string(stream_index) + ":slot" +
                           std::to_string(iter % depth_);
                  });
  }

  sim::RegionId scratch_region(int task, uint64_t min_bytes) {
    SUP_CHECK(task >= 0);
    return lookup(scratch_regions_, static_cast<uint64_t>(task), min_bytes,
                  [&] {
                    return label_prefix() + "scratch:task" +
                           std::to_string(task);
                  });
  }

  // Exposed for tests: the packed key must be injective over
  // (stream_index, iter % depth). Both halves are range-checked — the
  // slot against its 32-bit field, and the stream index against 2^32
  // (an index at or above it would shift into oblivion and alias
  // stream index mod 2^32). The index parameter is deliberately 64-bit
  // so the guard is a real check, not vacuous on a 32-bit int.
  uint64_t stream_key(int64_t stream_index, int64_t iter) const {
    SUP_CHECK_MSG(stream_index >= 0, "negative stream index");
    SUP_CHECK_MSG(static_cast<uint64_t>(stream_index) < (1ULL << 32),
                  "stream index exceeds the key's 32-bit field");
    SUP_CHECK_MSG(iter >= 0, "negative iteration");
    uint64_t slot = static_cast<uint64_t>(iter % depth_);
    SUP_CHECK_MSG(slot < (1ULL << 32), "stream depth exceeds 2^32 slots");
    return (static_cast<uint64_t>(stream_index) << 32) | slot;
  }

  int session_id() const { return session_id_; }

 private:
  struct Entry {
    sim::RegionId id;
    uint64_t bytes;
  };

  std::string label_prefix() const {
    return session_id_ < 0
               ? std::string()
               : "session." + std::to_string(session_id_) + ".";
  }

  template <typename LabelFn>
  sim::RegionId lookup(std::unordered_map<uint64_t, Entry>& table,
                       uint64_t key, uint64_t min_bytes, LabelFn&& label) {
    auto it = table.find(key);
    if (it != table.end()) {
      if (it->second.bytes >= min_bytes) return it->second.id;
      mem_->release_region(it->second.id);
      table.erase(it);
    }
    sim::RegionId id = mem_->register_region(min_bytes, label());
    table.emplace(key, Entry{id, min_bytes});
    return id;
  }

  sim::MemorySystem* mem_;
  int depth_;
  int session_id_;
  std::unordered_map<uint64_t, Entry> stream_regions_;
  std::unordered_map<uint64_t, Entry> scratch_regions_;
};

}  // namespace hinch
