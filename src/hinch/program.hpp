// A Program is the compiled, executable form of an SP graph: component
// instances created through the registry, streams bound to ports, and a
// per-iteration task DAG that both executors schedule from.
//
// This is the layer the paper's XSPCL-to-C conversion tool targets: the
// generated glue code builds exactly this structure, and it only runs at
// initialization / reconfiguration time (§1: "the generated glue code is
// only run at initialization time").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hinch/component.hpp"
#include "hinch/event.hpp"
#include "hinch/registry.hpp"
#include "hinch/stream.hpp"
#include "sp/graph.hpp"
#include "sp/pass.hpp"
#include "support/status.hpp"

namespace hinch {

enum class TaskKind { kComponent, kManagerEnter, kManagerExit };

// One node of the per-iteration dependency DAG.
struct Task {
  int id = -1;
  TaskKind kind = TaskKind::kComponent;
  // Component indices this task runs, in order. Usually one; grouped
  // components (sp::NodeKind::kGroup) share a task so consumers execute
  // immediately after producers on the same core (§4.1's fusion idea).
  std::vector<int> components;
  int manager = -1;    // index into Program::managers, or -1
  // Options (innermost last) this task is guarded by; the task is skipped
  // in iterations where any of them is disabled.
  std::vector<int> options;
  std::vector<int> preds;
  std::vector<int> succs;
  std::string label;
};

// Static description of an option (§3.4). Runtime on/off state lives in
// the scheduler so a Program can be executed many times.
struct OptionInfo {
  std::string name;  // unique, includes replica suffix
  std::string base;  // name as written in the spec (manager rules use this)
  bool initially_enabled = true;
  int manager = -1;
  // Component indices inside the option: their (re)creation cost is
  // charged when an enable event is detected.
  std::vector<int> components;
};

// Static description of a manager (§3.4).
struct ManagerInfo {
  std::string name;
  std::string queue;
  std::vector<sp::EventRule> rules;
  int enter_task = -1;
  int exit_task = -1;
  std::vector<int> options;     // option indices it manages
  std::vector<int> components;  // all components in its subgraph
};

struct BuildConfig {
  // Stream slots / maximum iterations in flight (the paper pipelines 5).
  int stream_depth = 5;
  // SP-IR passes run on (a clone of) the graph before compiling. The
  // default pipeline (normalize + strip-dead-options) changes no task
  // DAG for graphs without dead options; callers that already ran the
  // pipeline themselves pass sp::PassOptions::none().
  sp::PassOptions passes;
};

class Program {
 public:
  using BuildConfig = hinch::BuildConfig;

  // Compile a validated SP graph. Creates components via the registry,
  // wires streams, and flattens slice/crossdep replication into tasks.
  static support::Result<std::unique_ptr<Program>> build(
      const sp::Node& root, const ComponentRegistry& registry,
      const BuildConfig& config = BuildConfig());

  // --- structure ---
  const std::vector<Task>& tasks() const { return tasks_; }
  const Task& task(int id) const { return tasks_[static_cast<size_t>(id)]; }
  const std::vector<OptionInfo>& options() const { return options_; }
  const std::vector<ManagerInfo>& managers() const { return managers_; }
  int stream_depth() const { return config_.stream_depth; }

  Component& component(int idx) { return *components_[static_cast<size_t>(idx)]; }
  int component_count() const { return static_cast<int>(components_.size()); }

  const std::vector<std::unique_ptr<Stream>>& streams() const {
    return streams_;
  }
  Stream* find_stream(const std::string& name);

  EventQueueRegistry& queues() { return queues_; }

  // Tasks with no predecessors (iteration entry points).
  const std::vector<int>& entry_tasks() const { return entry_tasks_; }

  // Sum over options of its components (used by reconfiguration cost
  // accounting); exposed for tests.
  int option_index(const std::string& name) const;

  // Graphviz rendering of the per-iteration task DAG (after slice /
  // crossdep expansion and group fusion) — the structure the executors
  // actually schedule, as opposed to sp::to_dot's source-level tree.
  std::string task_graph_dot(const std::string& title = "tasks") const;

 private:
  friend class ProgramBuilder;
  Program() = default;

  BuildConfig config_;
  std::vector<Task> tasks_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::unordered_map<std::string, int> stream_index_;
  std::vector<OptionInfo> options_;
  std::vector<ManagerInfo> managers_;
  EventQueueRegistry queues_;
  std::vector<int> entry_tasks_;
};

}  // namespace hinch
