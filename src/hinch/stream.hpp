// Streaming communication (§2 item 3a): the synchronous primitive that
// carries large data between components.
//
// A Stream is a FIFO with `depth` slots, one per in-flight pipeline
// iteration: the producer of iteration k writes slot k mod depth, the
// consumers of iteration k read the same slot. The scheduler guarantees
// the producer of iteration k completes before its consumers start and
// that at most `depth` iterations are in flight, so slot reuse is safe —
// this mirrors the bounded FIFO the paper describes, with the capacity
// check folded into the iteration window.
//
// For data-parallel `slice` regions all copies share one slot and operate
// on disjoint row ranges of the same payload.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <vector>

#include "media/frame.hpp"
#include "support/check.hpp"

namespace hinch {

// The unit of stream communication: a shared payload plus its size for
// memory-traffic accounting. Payloads are usually media::Frame, but any
// shared_ptr'd type works (the JPiP graph streams JPEG coefficient
// images between the decode and IDCT components).
class Packet {
 public:
  Packet() = default;

  static Packet of_frame(media::FramePtr frame);

  template <typename T>
  static Packet of(std::shared_ptr<T> value, uint64_t size_bytes) {
    Packet p;
    p.data_ = std::static_pointer_cast<void>(std::move(value));
    p.type_ = &typeid(T);
    p.size_bytes_ = size_bytes;
    return p;
  }

  // Convenience for immutable payloads (e.g. compressed frames shared
  // with a clip). Consumers receive them through get<T>() and must treat
  // them as read-only.
  template <typename T>
  static Packet of_const(std::shared_ptr<const T> value,
                         uint64_t size_bytes) {
    return of(std::const_pointer_cast<T>(std::move(value)), size_bytes);
  }

  bool empty() const { return data_ == nullptr; }
  uint64_t size_bytes() const { return size_bytes_; }

  // Typed access; aborts on type mismatch (a wiring bug, not user error).
  template <typename T>
  std::shared_ptr<T> get() const {
    SUP_CHECK_MSG(data_ != nullptr, "reading an empty stream slot");
    SUP_CHECK_MSG(type_ && *type_ == typeid(T), "stream payload type mismatch");
    return std::static_pointer_cast<T>(data_);
  }

  media::FramePtr frame() const { return get<media::Frame>(); }

 private:
  std::shared_ptr<void> data_;
  const std::type_info* type_ = nullptr;
  uint64_t size_bytes_ = 0;
};

class Stream {
 public:
  Stream(std::string name, int depth);

  const std::string& name() const { return name_; }
  int depth() const { return depth_; }

  // Producer side: publish the packet for iteration `iter`.
  void write(int64_t iter, Packet packet);

  // Consumer side: the packet of iteration `iter`. The slot must have
  // been written by a component scheduled earlier in the iteration.
  const Packet& read(int64_t iter) const;

  // In-place access for read-modify-write chains (e.g. blending into a
  // shared canvas): returns the mutable packet of iteration `iter`. The
  // slot must already have been written for `iter` — in-place consumers
  // are readers first, and marking an unwritten slot as written here
  // would defeat the read-before-write guardrail for every later reader.
  // Producers that want to fill a slot in place use acquire_slot() +
  // commit_slot() instead.
  Packet& slot(int64_t iter);

  // Two-phase in-place production: acquire_slot() hands out the slot's
  // packet WITHOUT marking it written (readers still fault), the
  // producer fills it, then commit_slot() publishes it for `iter`.
  Packet& acquire_slot(int64_t iter);
  void commit_slot(int64_t iter);

  // True when iteration `iter`'s slot holds data written for that
  // iteration (used by tests and defensive checks).
  bool has(int64_t iter) const;

  // For data-parallel producers that share one frame per iteration: under
  // the stream lock, return the frame already published for `iter`, or —
  // when the slot holds a matching frame from a retired iteration — reuse
  // it as this iteration's payload (frame-pool behaviour), or allocate a
  // fresh one. All slice copies of a producer call this and then write
  // their disjoint row bands.
  media::FramePtr get_or_alloc_frame(int64_t iter, media::PixelFormat fmt,
                                     int width, int height);

  // Forget which iterations the slots belong to (start of a new run).
  // Slot payloads are kept as a warm frame pool.
  void reset();

  // Stable small index for cost accounting (set by the Program).
  int index() const { return index_; }
  void set_index(int idx) { index_ = idx; }

  // High-water packet size ever published on this stream (bytes).
  // perf::measure_stream_slot_bytes profiles this to size the footprint
  // a link parks in the cache hierarchy.
  uint64_t max_packet_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_packet_bytes_;
  }

 private:
  size_t slot_of(int64_t iter) const {
    SUP_DCHECK(iter >= 0);
    return static_cast<size_t>(iter % depth_);
  }

  std::string name_;
  int depth_;
  int index_ = -1;
  mutable std::mutex mutex_;
  std::vector<Packet> slots_;
  std::vector<int64_t> written_iter_;  // -1 = never written
  uint64_t max_packet_bytes_ = 0;
};

}  // namespace hinch
