#include "hinch/event.hpp"

namespace hinch {

void EventQueue::push(Event ev) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::optional<Event> EventQueue::poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return std::nullopt;
  Event ev = std::move(events_.front());
  events_.pop_front();
  return ev;
}

bool EventQueue::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

EventQueue& EventQueueRegistry::get_or_create(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(name);
  if (it == queues_.end())
    it = queues_.emplace(name, std::make_unique<EventQueue>(name)).first;
  return *it->second;
}

EventQueue* EventQueueRegistry::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(name);
  return it == queues_.end() ? nullptr : it->second.get();
}

std::vector<std::string> EventQueueRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(queues_.size());
  for (const auto& [name, q] : queues_) out.push_back(name);
  return out;
}

}  // namespace hinch
