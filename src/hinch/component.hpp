// The component model (§3.1): components implement the application's
// basic functionality, communicate through streams bound to named i/o
// ports, send/receive events, and expose a reconfiguration interface.
//
// Components are written against ExecContext, which abstracts over the
// two executors (SpaceCAKE-sim virtual time / native threads): stream
// i/o, event sending, and simulated-cost charging (a no-op under the
// thread executor).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "hinch/event.hpp"
#include "hinch/stream.hpp"
#include "support/status.hpp"

namespace obs {
class MetricsRegistry;
}

namespace hinch {

class ExecContext;

// Sorted so iteration order (and thus generated code, hashing, etc.) is
// deterministic.
using ParamMap = std::map<std::string, std::string>;

// Construction-time configuration of a component instance.
struct ComponentConfig {
  std::string instance;
  ParamMap params;
};

// Typed parameter lookup helpers.
support::Result<std::string> param_string(const ParamMap& params,
                                          const std::string& name);
support::Result<int64_t> param_int(const ParamMap& params,
                                   const std::string& name);
std::string param_string_or(const ParamMap& params, const std::string& name,
                            std::string_view fallback);
int64_t param_int_or(const ParamMap& params, const std::string& name,
                     int64_t fallback);

class Component {
 public:
  virtual ~Component() = default;

  // Execute one iteration: read input ports, write output ports. Runs to
  // completion; must not block (§3.1).
  virtual void run(ExecContext& ctx) = 0;

  // Reconfiguration interface (§3.1): components may adjust parameters in
  // response to a request string. Default: ignore.
  virtual void reconfigure(std::string_view request) { (void)request; }

  // Reset per-run state (frame counters etc.) so a Program can be
  // executed repeatedly. Called by the scheduler before each run.
  virtual void reset() {}

  // --- identity / slicing (set by the runtime) ---
  const std::string& instance() const { return instance_; }
  void set_instance(std::string name) { instance_ = std::move(name); }

  // Data-parallel position (§3.3): this copy handles slice
  // `slice_index` of `slice_count`. Delivered through the
  // reconfiguration interface as the paper describes.
  int slice_index() const { return slice_index_; }
  int slice_count() const { return slice_count_; }
  void assign_slice(int index, int count);

  // --- ports ---
  int input_count() const { return static_cast<int>(inputs_.size()); }
  int output_count() const { return static_cast<int>(outputs_.size()); }
  const std::string& input_name(int i) const { return inputs_[static_cast<size_t>(i)].name; }
  const std::string& output_name(int i) const { return outputs_[static_cast<size_t>(i)].name; }

  // Port-index lookup by name; -1 when absent.
  int find_input(std::string_view name) const;
  int find_output(std::string_view name) const;

  Stream* input_stream(int i) const { return inputs_[static_cast<size_t>(i)].stream; }
  Stream* output_stream(int i) const { return outputs_[static_cast<size_t>(i)].stream; }
  void bind_input(int i, Stream* s) { inputs_[static_cast<size_t>(i)].stream = s; }
  void bind_output(int i, Stream* s) { outputs_[static_cast<size_t>(i)].stream = s; }

 protected:
  // Subclass constructors declare their fixed set of ports (§2 item 3a:
  // "each component has a fixed number of i/o ports").
  int declare_input(std::string name);
  int declare_output(std::string name);

 private:
  struct Port {
    std::string name;
    Stream* stream = nullptr;
  };

  std::string instance_;
  int slice_index_ = 0;
  int slice_count_ = 1;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
};

// Helper: the [row0, row1) band of `rows` total rows that slice
// (index, count) is responsible for. Distributes remainders evenly.
void slice_rows(int rows, int index, int count, int* row0, int* row1);

// Execution context handed to Component::run.
class ExecContext {
 public:
  ExecContext(Component* comp, int64_t iteration, int core,
              EventQueueRegistry* queues,
              obs::MetricsRegistry* metrics = nullptr)
      : comp_(comp),
        iteration_(iteration),
        core_(core),
        queues_(queues),
        metrics_(metrics) {}

  int64_t iteration() const { return iteration_; }
  int core() const { return core_; }
  Component& component() { return *comp_; }

  // Live metrics registry of the run, when the executor was handed one
  // (SimParams::metrics / run_on_threads); nullptr otherwise. Components
  // that adapt on runtime state (the policy component) poll it through
  // MetricsRegistry::snapshot() — reads never block the run.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Switch the context to the next component of a grouped task; stream
  // i/o resolves against the new component's ports, charges keep
  // accumulating into the same job.
  void rebind(Component* comp) { comp_ = comp; }

  // --- stream i/o ---
  const Packet& read(int in_port) const;
  void write(int out_port, Packet packet);
  // In-place access to the output stream's slot (read-modify-write
  // chains, e.g. blending into a shared canvas). The slot must already
  // have been written this iteration.
  Packet& inout(int out_port);
  // Two-phase in-place production: acquire() returns the slot without
  // publishing it (readers still fault until commit() marks it written).
  Packet& acquire(int out_port);
  void commit(int out_port);
  // True when the input stream already carries this iteration's data
  // (used with in-place chains).
  bool input_ready(int in_port) const;

  // --- events ---
  void send_event(const std::string& queue, Event ev);

  // --- simulated cost charging (no-ops under the thread executor) ---
  struct Touch {
    int stream_index;
    uint64_t offset;
    uint64_t len;
    bool write;
  };
  // One linear pass over the component's private scratch region. The
  // region is sized to the largest pass; several passes model a
  // produce-then-consume intermediate that never leaves the task (the
  // fused decode chain writes coefficients, then reads them back).
  struct ScratchTouch {
    uint64_t bytes;
    bool write;
  };
  struct Charges {
    uint64_t compute_cycles = 0;
    std::vector<ScratchTouch> scratch;
    std::vector<Touch> touches;
  };

  void charge_compute(uint64_t cycles) { charges_.compute_cycles += cycles; }
  // Memory traffic on the packet currently in the port's slot.
  void touch_read(int in_port, uint64_t offset, uint64_t len);
  void touch_write(int out_port, uint64_t offset, uint64_t len);
  // Private working memory of the component (decode state etc.). Each
  // call is one write pass over [0, bytes) of the task's scratch region;
  // touch_scratch_read models reading an intermediate back.
  void touch_scratch(uint64_t bytes) {
    charges_.scratch.push_back({bytes, /*write=*/true});
  }
  void touch_scratch_read(uint64_t bytes) {
    charges_.scratch.push_back({bytes, /*write=*/false});
  }

  const Charges& charges() const { return charges_; }

 private:
  Component* comp_;
  int64_t iteration_;
  int core_;
  EventQueueRegistry* queues_;
  obs::MetricsRegistry* metrics_;
  Charges charges_;
};

}  // namespace hinch
