#include "hinch/registry.hpp"

#include <algorithm>

namespace hinch {

void ComponentRegistry::register_class(const std::string& name,
                                       Factory factory) {
  SUP_CHECK_MSG(!factories_.count(name), "component class already registered");
  factories_[name] = std::move(factory);
}

bool ComponentRegistry::has_class(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> ComponentRegistry::class_names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, f] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

support::Result<std::unique_ptr<Component>> ComponentRegistry::create(
    const std::string& klass, const ComponentConfig& config) const {
  auto it = factories_.find(klass);
  if (it == factories_.end())
    return support::not_found("unknown component class '" + klass +
                              "' (instance '" + config.instance + "')");
  auto result = it->second(config);
  if (result.is_ok()) result.value()->set_instance(config.instance);
  return result;
}

ComponentRegistry& ComponentRegistry::global() {
  static ComponentRegistry registry;
  return registry;
}

}  // namespace hinch
