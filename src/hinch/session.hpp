// Session-scoped runtime: many concurrent application instances on one
// shared work-stealing pool.
//
// The original runtime was process-lifetime — one spec, one graph, one
// executor, exit — and every run owned its worker threads. A Session is
// the unit of tenancy that replaces that singleton shape: it owns a
// Program (and thus that program's streams and components), a Scheduler
// tracking its iteration window, a session-prefixed metrics namespace
// ("session.<id>.live.*" in the executor's registry), and optionally a
// per-session TraceSession. The SessionExecutor runs any number of
// sessions at once on one work-stealing pool; every job is tagged with
// its session (jobs carry a shared_ptr, so a Program can never die under
// an in-flight job), teardown cancels and drains exactly one session's
// jobs without stopping the pool, and admission is fair: at most
// `max_active_sessions` run concurrently (FIFO beyond the cap) while
// each session's iteration window — clamped to its stream depth — gives
// per-stream backpressure, so one heavy session cannot flood the deques
// and starve the others.
//
// The single-tenant path is the degenerate case: run_on_threads() now
// builds a one-session executor, so there is exactly one thread-backend
// code path (see thread_executor.cpp).
//
// Lifecycle (see docs/RUNTIME.md "Session lifecycle"):
//   submit -> [queued] -> running -> done        (all iterations retired)
//                            \-> cancelled       (cancel() / shutdown())
// Teardown ordering: cancel marks the session; workers drop its queued
// jobs (each drop retires one pending unit) and in-flight jobs finish
// their current component; when the pending count hits zero the session
// finalizes (result computed, waiters notified, admission slot freed,
// next queued session started). The Program is destroyed only when the
// last shared_ptr — possibly held by a worker mid-drop — releases.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hinch/scheduler.hpp"

namespace obs {
class MetricsRegistry;
class TraceSession;
}

namespace hinch {

class SessionExecutor;

enum class SessionStatus { kQueued, kRunning, kDone, kCancelled };

const char* session_status_name(SessionStatus s);

struct SessionConfig {
  RunConfig run;
  // Label used in diagnostics ("pip", "jpip-4k", ...); not required to
  // be unique — the numeric session id is the namespace key.
  std::string name;
  // Per-session trace (caller-owned, must outlive the session). Worker
  // w emits into lane w of this session's recorders; timestamps are
  // wall nanoseconds since *this session's* start.
  obs::TraceSession* trace = nullptr;
  // Metrics destination. Null: publish into the executor's registry
  // under "session.<id>." (the multi-tenant default). Non-null: publish
  // unprefixed into this registry — the single-session compatibility
  // path run_on_threads uses.
  obs::MetricsRegistry* metrics = nullptr;
  // Record a wall-clock timestamp (ns since session start) as each
  // iteration completes — the frame-latency probe bench_server reads.
  bool record_frame_times = false;
};

struct SessionResult {
  SessionStatus status = SessionStatus::kDone;
  double wall_seconds = 0;  // session start -> last job retired
  SchedulerStats sched;
  uint64_t jobs = 0;  // jobs this session executed (not pool-wide)
  int64_t iterations_done = 0;
  // Per-iteration completion stamps (ns since session start), when
  // SessionConfig::record_frame_times was set. Iterations detected
  // complete in one batch share a stamp.
  std::vector<uint64_t> frame_done_ns;
};

// One tenant. Created by SessionExecutor::submit; all methods are
// thread-safe. Held by shared_ptr — the executor's jobs keep it (and
// the Program underneath) alive until the last one retires.
class Session {
 public:
  int id() const { return id_; }
  const std::string& name() const { return config_.name; }
  SessionStatus status() const;
  bool finished() const {
    SessionStatus s = status();
    return s == SessionStatus::kDone || s == SessionStatus::kCancelled;
  }

  Program& program() { return *prog_; }

  // The session's metrics surface: a "session.<id>."-prefixed view of
  // the executor registry (or the caller's registry when one was passed
  // in the config). Components inside the session see this through
  // ExecContext::metrics(), so their "live.*" gauges land in the
  // session's namespace without knowing about tenancy.
  obs::MetricsRegistry* metrics() { return metrics_; }

  // Block until done or cancelled; returns the final result. May be
  // called from any thread, repeatedly.
  SessionResult wait();

 private:
  friend class SessionExecutor;
  Session() = default;

  int id_ = -1;
  SessionConfig config_;
  Program* prog_ = nullptr;               // owned_ or caller-owned
  std::unique_ptr<Program> owned_prog_;
  std::unique_ptr<Scheduler> scheduler_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> metrics_view_;

  // --- execution state (owned by the executor's workers) ---
  std::atomic<int64_t> pending_{0};  // queued or running chain units
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> jobs_executed_{0};
  std::chrono::steady_clock::time_point t0_{};

  // Interned trace names (ids into config_.trace), set at start.
  std::vector<uint16_t> trace_task_names_;
  uint16_t trace_steal_name_ = 0;
  uint16_t trace_reconfig_name_ = 0;
  uint16_t trace_pending_name_ = 0;

  // Frame-completion probe (record_frame_times).
  std::mutex frame_mu_;
  std::vector<uint64_t> frame_done_ns_;
  std::atomic<int64_t> frames_noted_{0};

  // Status + result, guarded by mu_; cv_ signals finalization.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  SessionStatus status_ = SessionStatus::kQueued;
  SessionResult result_;
};

using SessionPtr = std::shared_ptr<Session>;

// A persistent work-stealing pool executing any number of sessions.
// Workers are started in the constructor and joined in shutdown() (or
// the destructor); submitting, cancelling and waiting are all
// thread-safe.
class SessionExecutor {
 public:
  struct Config {
    int workers = 1;
    // Admission cap: sessions beyond this many queue FIFO (0 = no cap).
    // Adjustable at runtime via set_active_cap (server rebalancing).
    int max_active_sessions = 0;
  };

  // Pool-lifetime statistics (monotonic; survive individual sessions).
  struct PoolStats {
    uint64_t jobs = 0;
    uint64_t steals = 0;
    uint64_t idle_parks = 0;
    std::vector<uint64_t> worker_jobs;
  };

  explicit SessionExecutor(const Config& config);
  ~SessionExecutor();

  SessionExecutor(const SessionExecutor&) = delete;
  SessionExecutor& operator=(const SessionExecutor&) = delete;

  // Admit a session for `prog`. The owning overload transfers the
  // program to the session; the borrowing overload requires `prog` to
  // outlive the session (single-tenant embedding). One Program must
  // back at most one live session at a time — streams and component
  // state are per-Program.
  SessionPtr submit(std::unique_ptr<Program> prog, const SessionConfig& cfg);
  SessionPtr submit(Program& prog, const SessionConfig& cfg);

  // Request teardown. Queued sessions finalize immediately; running
  // ones stop executing new jobs, drain, and finalize as kCancelled
  // (or kDone if the last iteration won the race). Returns without
  // blocking; use wait() to observe the drain completing.
  void cancel(const SessionPtr& session);

  // Dynamic admission control (components::server_rebalance drives
  // this): raising the cap starts queued sessions immediately.
  void set_active_cap(int cap);
  int active_cap() const;

  int workers() const { return static_cast<int>(slots_.size()); }
  int active_sessions() const;
  int queued_sessions() const;
  int peak_active_sessions() const;
  uint64_t sessions_completed() const;

  // The shared registry per-session views prefix into; also carries
  // pool gauges ("server.active_sessions", "server.queued_sessions",
  // "server.sessions_completed").
  obs::MetricsRegistry& metrics() { return *metrics_; }

  PoolStats pool_stats() const;

  // Cancel every session, drain, join the workers. Idempotent; the
  // destructor calls it.
  void shutdown();

 private:
  struct Job {
    SessionPtr session;
    JobRef ref;
  };
  struct Worker;

  void worker_loop(int id);
  bool pop_own(Worker& self, Job* out);
  bool steal(int id, Job* out);
  void park(Worker& self);
  void wake_sleepers(size_t new_jobs);

  void start_session(const SessionPtr& s);
  void run_chain(int worker_id, Job job);
  // One pending unit of `s` retired (job executed or dropped); if it
  // was the last, finalize.
  void retire_unit(const SessionPtr& s);
  void finalize(const SessionPtr& s);
  void publish_server_gauges();
  void note_frames(Session& s);
  static uint64_t session_now_ns(const Session& s);

  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Worker>> slots_;
  std::vector<std::thread> pool_;

  // Admission state.
  mutable std::mutex admission_mu_;
  int active_cap_ = 0;
  int active_ = 0;
  int peak_active_ = 0;
  uint64_t completed_ = 0;
  int next_id_ = 0;
  bool accepting_ = true;
  std::vector<SessionPtr> queue_;  // FIFO
  std::vector<SessionPtr> live_;   // running sessions (for shutdown)
  std::condition_variable drained_cv_;  // active_ == 0 && queue empty

  // Idle/termination protocol (same shape as the single-run executor;
  // see docs/RUNTIME.md "Executor architecture").
  std::atomic<bool> stop_{false};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  uint64_t wake_epoch_ = 0;       // guarded by idle_mu_
  std::atomic<int> sleepers_{0};  // relaxed hint for producers
};

}  // namespace hinch
