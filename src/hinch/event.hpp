// Asynchronous event communication (§2 item 3b, §3.4).
//
// Events are small messages sent between components and polled by
// reconfiguration managers. Queues are named; a component is handed the
// queue of its manager through an initialization parameter, exactly as
// the paper's prototype does (§3.4).
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hinch {

struct Event {
  std::string name;
  std::string payload;  // optional small data
};

// MPSC-ish FIFO. Thread-safe: the thread executor runs components
// concurrently; the sim executor is single-threaded but shares the code.
class EventQueue {
 public:
  explicit EventQueue(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void push(Event ev);
  std::optional<Event> poll();
  bool empty() const;
  size_t size() const;

 private:
  std::string name_;
  mutable std::mutex mutex_;
  std::deque<Event> events_;
};

// Name -> queue map owned by a Program. Thread-safe: components running
// under the thread executor may create queues concurrently.
class EventQueueRegistry {
 public:
  // Creates the queue if it does not exist yet.
  EventQueue& get_or_create(const std::string& name);
  // nullptr when absent.
  EventQueue* find(const std::string& name);

  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<EventQueue>> queues_;
};

}  // namespace hinch
