#include "hinch/stream.hpp"

namespace hinch {

Packet Packet::of_frame(media::FramePtr frame) {
  SUP_CHECK(frame != nullptr);
  uint64_t bytes = frame->bytes();
  Packet p;
  p.size_bytes_ = bytes;
  p.type_ = &typeid(media::Frame);
  p.data_ = std::static_pointer_cast<void>(std::move(frame));
  return p;
}

Stream::Stream(std::string name, int depth)
    : name_(std::move(name)), depth_(depth) {
  SUP_CHECK(depth >= 1);
  slots_.resize(static_cast<size_t>(depth));
  written_iter_.assign(static_cast<size_t>(depth), -1);
}

void Stream::write(int64_t iter, Packet packet) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  max_packet_bytes_ =
      std::max(max_packet_bytes_, packet.size_bytes());
  slots_[s] = std::move(packet);
  written_iter_[s] = iter;
}

const Packet& Stream::read(int64_t iter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  SUP_CHECK_MSG(written_iter_[s] == iter,
                ("stream '" + name_ + "' read before write").c_str());
  return slots_[s];
}

Packet& Stream::slot(int64_t iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  // In-place consumers are readers first: the slot must already hold this
  // iteration's data. Marking it written here (as an earlier version did)
  // would let a mis-scheduled consumer silently bless a stale or empty
  // slot for every later reader.
  SUP_CHECK_MSG(written_iter_[s] == iter,
                ("stream '" + name_ + "' in-place access before write").c_str());
  return slots_[s];
}

Packet& Stream::acquire_slot(int64_t iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  SUP_CHECK_MSG(written_iter_[s] != iter,
                ("stream '" + name_ + "' slot acquired twice").c_str());
  return slots_[s];
}

void Stream::commit_slot(int64_t iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  max_packet_bytes_ =
      std::max(max_packet_bytes_, slots_[s].size_bytes());
  written_iter_[s] = iter;
}

media::FramePtr Stream::get_or_alloc_frame(int64_t iter,
                                           media::PixelFormat fmt, int width,
                                           int height) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t s = slot_of(iter);
  Packet& p = slots_[s];
  if (!p.empty()) {
    media::FramePtr f = p.frame();
    if (f->format() == fmt && f->width() == width && f->height() == height) {
      written_iter_[s] = iter;
      max_packet_bytes_ = std::max(max_packet_bytes_, p.size_bytes());
      return f;
    }
  }
  media::FramePtr f = media::make_frame(fmt, width, height);
  p = Packet::of_frame(f);
  written_iter_[s] = iter;
  max_packet_bytes_ = std::max(max_packet_bytes_, p.size_bytes());
  return f;
}

bool Stream::has(int64_t iter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_iter_[slot_of(iter)] == iter;
}

void Stream::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  written_iter_.assign(static_cast<size_t>(depth_), -1);
}

}  // namespace hinch
