#include "hinch/program.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace hinch {
namespace {

// (entries, exits) of a compiled subtree, as task ids.
struct Span {
  std::vector<int> entries;
  std::vector<int> exits;
  bool empty() const { return entries.empty() && exits.empty(); }
};

}  // namespace

class ProgramBuilder {
 public:
  ProgramBuilder(Program* prog, const ComponentRegistry& registry)
      : prog_(prog), registry_(registry) {}

  support::Status build(const sp::Node& root) {
    Span span;
    Ctx ctx;
    SUP_RETURN_IF_ERROR(compile(root, ctx, &span));
    for (const Task& t : prog_->tasks_)
      if (t.preds.empty()) prog_->entry_tasks_.push_back(t.id);
    return support::Status::ok();
  }

 private:
  struct Ctx {
    std::vector<int> options;   // enclosing option indices, outermost first
    int manager = -1;           // innermost enclosing manager
    bool sliced = false;        // inside a slice/crossdep copy
    int slice_index = 0;
    int slice_count = 1;
    std::string suffix;         // instance-name suffix for replicas
  };

  int add_task(TaskKind kind, const Ctx& ctx, std::string label) {
    Task t;
    t.id = static_cast<int>(prog_->tasks_.size());
    t.kind = kind;
    t.options = ctx.options;
    t.label = std::move(label);
    prog_->tasks_.push_back(std::move(t));
    return prog_->tasks_.back().id;
  }

  void connect(const std::vector<int>& exits,
               const std::vector<int>& entries) {
    for (int x : exits) {
      for (int e : entries) {
        prog_->tasks_[static_cast<size_t>(x)].succs.push_back(e);
        prog_->tasks_[static_cast<size_t>(e)].preds.push_back(x);
      }
    }
  }

  Stream* stream(const std::string& name) {
    auto it = prog_->stream_index_.find(name);
    if (it != prog_->stream_index_.end())
      return prog_->streams_[static_cast<size_t>(it->second)].get();
    int idx = static_cast<int>(prog_->streams_.size());
    prog_->streams_.push_back(
        std::make_unique<Stream>(name, prog_->config_.stream_depth));
    prog_->streams_.back()->set_index(idx);
    prog_->stream_index_[name] = idx;
    return prog_->streams_.back().get();
  }

  // Create and wire one component instance; returns its index.
  support::Result<int> instantiate(const sp::Node& n, const Ctx& ctx) {
    ComponentConfig config;
    config.instance = n.leaf.instance + ctx.suffix;
    for (const sp::Param& p : n.leaf.params) {
      if (config.params.count(p.name))
        return support::already_exists("duplicate parameter '" + p.name +
                                       "' on '" + config.instance + "'");
      config.params[p.name] = p.value;
    }
    SUP_ASSIGN_OR_RETURN(std::unique_ptr<Component> comp,
                         registry_.create(n.leaf.klass, config));
    if (!n.leaf.initial_reconfig.empty())
      comp->reconfigure(n.leaf.initial_reconfig);
    if (ctx.sliced) comp->assign_slice(ctx.slice_index, ctx.slice_count);

    // Bind ports. Every binding must name a declared port and every
    // declared port must end up bound.
    for (const sp::PortBinding& b : n.leaf.inputs) {
      int port = comp->find_input(b.port);
      if (port < 0)
        return support::not_found("component '" + config.instance +
                                  "' (class " + n.leaf.klass +
                                  ") has no input port '" + b.port + "'");
      comp->bind_input(port, stream(b.stream));
    }
    for (const sp::PortBinding& b : n.leaf.outputs) {
      int port = comp->find_output(b.port);
      if (port < 0)
        return support::not_found("component '" + config.instance +
                                  "' (class " + n.leaf.klass +
                                  ") has no output port '" + b.port + "'");
      comp->bind_output(port, stream(b.stream));
    }
    for (int i = 0; i < comp->input_count(); ++i) {
      if (!comp->input_stream(i))
        return support::failed_precondition(
            "input port '" + comp->input_name(i) + "' of '" +
            config.instance + "' is not connected to a stream");
    }
    for (int i = 0; i < comp->output_count(); ++i) {
      if (!comp->output_stream(i))
        return support::failed_precondition(
            "output port '" + comp->output_name(i) + "' of '" +
            config.instance + "' is not connected to a stream");
    }

    int comp_idx = static_cast<int>(prog_->components_.size());
    prog_->components_.push_back(std::move(comp));
    if (ctx.manager >= 0)
      prog_->managers_[static_cast<size_t>(ctx.manager)]
          .components.push_back(comp_idx);
    if (!ctx.options.empty())
      prog_->options_[static_cast<size_t>(ctx.options.back())]
          .components.push_back(comp_idx);
    return comp_idx;
  }

  support::Status compile_leaf(const sp::Node& n, const Ctx& ctx,
                               Span* out) {
    SUP_ASSIGN_OR_RETURN(int comp_idx, instantiate(n, ctx));
    int task =
        add_task(TaskKind::kComponent, ctx, n.leaf.instance + ctx.suffix);
    prog_->tasks_[static_cast<size_t>(task)].components.push_back(comp_idx);
    out->entries = {task};
    out->exits = {task};
    return support::Status::ok();
  }

  // A group becomes ONE task running its components back to back.
  support::Status compile_group(const sp::Node& n, const Ctx& ctx,
                                Span* out) {
    std::string label = "group(";
    std::vector<int> comps;
    for (const sp::NodePtr& c : n.children) {
      if (c->kind() != sp::NodeKind::kLeaf)
        return support::invalid_argument(
            "groups may only contain components");
      SUP_ASSIGN_OR_RETURN(int comp_idx, instantiate(*c, ctx));
      comps.push_back(comp_idx);
      if (comps.size() > 1) label += "+";
      label += c->leaf.instance + ctx.suffix;
    }
    label += ")";
    int task = add_task(TaskKind::kComponent, ctx, label);
    prog_->tasks_[static_cast<size_t>(task)].components = std::move(comps);
    out->entries = {task};
    out->exits = {task};
    return support::Status::ok();
  }

  support::Status compile_par(const sp::Node& n, const Ctx& ctx, Span* out) {
    if (n.shape == sp::ParShape::kTask) {
      for (const sp::NodePtr& block : n.children) {
        Span child;
        SUP_RETURN_IF_ERROR(compile(*block, ctx, &child));
        out->entries.insert(out->entries.end(), child.entries.begin(),
                            child.entries.end());
        out->exits.insert(out->exits.end(), child.exits.begin(),
                          child.exits.end());
      }
      return support::Status::ok();
    }

    const int n_copies = n.replicas;
    if (n.shape == sp::ParShape::kSlice) {
      const sp::Node& body = *n.children[0];
      for (int i = 0; i < n_copies; ++i) {
        Ctx copy_ctx = ctx;
        copy_ctx.sliced = true;
        copy_ctx.slice_index = i;
        copy_ctx.slice_count = n_copies;
        copy_ctx.suffix = ctx.suffix + support::format("#%d", i);
        Span child;
        SUP_RETURN_IF_ERROR(compile(body, copy_ctx, &child));
        out->entries.insert(out->entries.end(), child.entries.begin(),
                            child.entries.end());
        out->exits.insert(out->exits.end(), child.exits.begin(),
                          child.exits.end());
      }
      return support::Status::ok();
    }

    // Crossdep (§3.3, Fig. 5): copies of parblock j depend on slices
    // i-1, i, i+1 of parblock j-1.
    std::vector<std::vector<Span>> blocks;
    blocks.reserve(n.children.size());
    for (size_t j = 0; j < n.children.size(); ++j) {
      blocks.emplace_back();
      for (int i = 0; i < n_copies; ++i) {
        Ctx copy_ctx = ctx;
        copy_ctx.sliced = true;
        copy_ctx.slice_index = i;
        copy_ctx.slice_count = n_copies;
        copy_ctx.suffix =
            ctx.suffix + support::format("#%zu.%d", j, i);
        Span child;
        SUP_RETURN_IF_ERROR(compile(*n.children[j], copy_ctx, &child));
        blocks.back().push_back(std::move(child));
      }
    }
    for (size_t j = 1; j < blocks.size(); ++j) {
      for (int i = 0; i < n_copies; ++i) {
        for (int d = -1; d <= 1; ++d) {
          int src = i + d;
          if (src < 0 || src >= n_copies) continue;
          connect(blocks[j - 1][static_cast<size_t>(src)].exits,
                  blocks[j][static_cast<size_t>(i)].entries);
        }
      }
    }
    for (const Span& s : blocks.front()) {
      out->entries.insert(out->entries.end(), s.entries.begin(),
                          s.entries.end());
    }
    for (const Span& s : blocks.back()) {
      out->exits.insert(out->exits.end(), s.exits.begin(), s.exits.end());
    }
    return support::Status::ok();
  }

  support::Status compile(const sp::Node& n, const Ctx& ctx, Span* out) {
    switch (n.kind()) {
      case sp::NodeKind::kLeaf:
        return compile_leaf(n, ctx, out);
      case sp::NodeKind::kGroup:
        return compile_group(n, ctx, out);
      case sp::NodeKind::kSeq: {
        Span whole;
        for (const sp::NodePtr& c : n.children) {
          Span child;
          SUP_RETURN_IF_ERROR(compile(*c, ctx, &child));
          if (child.empty()) continue;
          if (whole.empty()) {
            whole = std::move(child);
          } else {
            connect(whole.exits, child.entries);
            whole.exits = std::move(child.exits);
          }
        }
        *out = std::move(whole);
        return support::Status::ok();
      }
      case sp::NodeKind::kPar:
        return compile_par(n, ctx, out);
      case sp::NodeKind::kOption: {
        int opt_idx = static_cast<int>(prog_->options_.size());
        OptionInfo info;
        info.name = n.option_name + ctx.suffix;
        info.base = n.option_name;
        info.initially_enabled = n.initially_enabled;
        info.manager = ctx.manager;
        prog_->options_.push_back(std::move(info));
        if (ctx.manager >= 0)
          prog_->managers_[static_cast<size_t>(ctx.manager)]
              .options.push_back(opt_idx);
        Ctx inner = ctx;
        inner.options.push_back(opt_idx);
        return compile(*n.children[0], inner, out);
      }
      case sp::NodeKind::kManager: {
        int mgr_idx = static_cast<int>(prog_->managers_.size());
        ManagerInfo info;
        info.name = n.manager_name + ctx.suffix;
        info.queue = n.event_queue;
        info.rules = n.rules;
        const std::string mgr_name = info.name;
        prog_->managers_.push_back(std::move(info));
        prog_->queues_.get_or_create(n.event_queue);

        int enter =
            add_task(TaskKind::kManagerEnter, ctx, mgr_name + ".enter");
        prog_->tasks_[static_cast<size_t>(enter)].manager = mgr_idx;
        Ctx inner = ctx;
        inner.manager = mgr_idx;
        Span body;
        SUP_RETURN_IF_ERROR(compile(*n.children[0], inner, &body));
        int exit =
            add_task(TaskKind::kManagerExit, ctx, mgr_name + ".exit");
        prog_->tasks_[static_cast<size_t>(exit)].manager = mgr_idx;

        if (body.empty()) {
          connect({enter}, {exit});
        } else {
          connect({enter}, body.entries);
          connect(body.exits, {exit});
        }
        prog_->managers_[static_cast<size_t>(mgr_idx)].enter_task = enter;
        prog_->managers_[static_cast<size_t>(mgr_idx)].exit_task = exit;
        out->entries = {enter};
        out->exits = {exit};
        return support::Status::ok();
      }
    }
    return support::internal_error("unreachable node kind");
  }

  Program* prog_;
  const ComponentRegistry& registry_;
};

support::Result<std::unique_ptr<Program>> Program::build(
    const sp::Node& root, const ComponentRegistry& registry,
    const BuildConfig& config) {
  auto prog = std::unique_ptr<Program>(new Program());
  prog->config_ = config;
  if (config.stream_depth < 1)
    return support::invalid_argument("stream_depth must be >= 1");
  // Run the configured SP-IR pipeline on a clone; compile whatever
  // comes out. With the default options this is the same normalized IR
  // the loader and the generated-codegen path see.
  sp::PassManager pipeline = sp::make_pipeline(config.passes);
  const sp::Node* effective = &root;
  sp::NodePtr transformed;
  if (!pipeline.empty()) {
    SUP_ASSIGN_OR_RETURN(transformed, pipeline.run(root.clone()));
    effective = transformed.get();
  }
  ProgramBuilder builder(prog.get(), registry);
  SUP_RETURN_IF_ERROR(builder.build(*effective));
  return prog;
}

Stream* Program::find_stream(const std::string& name) {
  auto it = stream_index_.find(name);
  return it == stream_index_.end()
             ? nullptr
             : streams_[static_cast<size_t>(it->second)].get();
}

std::string Program::task_graph_dot(const std::string& title) const {
  std::string out = "digraph \"" + title + "\" {\n  rankdir=LR;\n";
  for (const Task& t : tasks_) {
    const char* shape = t.kind == TaskKind::kComponent
                            ? (t.components.size() > 1 ? "box3d" : "box")
                            : "house";
    std::string label = t.label;
    if (!t.options.empty()) label += "\\n[optional]";
    out += support::format("  t%d [shape=%s,label=\"%s\"];\n", t.id, shape,
                           label.c_str());
  }
  for (const Task& t : tasks_) {
    for (int s : t.succs)
      out += support::format("  t%d -> t%d;\n", t.id, s);
  }
  out += "}\n";
  return out;
}

int Program::option_index(const std::string& name) const {
  for (size_t i = 0; i < options_.size(); ++i)
    if (options_[i].name == name) return static_cast<int>(i);
  return -1;
}

}  // namespace hinch
