#include "hinch/runtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hinch {
namespace {

void collect_sched(const SchedulerStats& s, obs::MetricsRegistry* out) {
  out->set("sched.jobs_executed", static_cast<int64_t>(s.jobs_executed));
  out->set("sched.jobs_skipped", static_cast<int64_t>(s.jobs_skipped));
  out->set("sched.reconfigurations",
           static_cast<int64_t>(s.reconfigurations));
  out->set("sched.events_handled", static_cast<int64_t>(s.events_handled));
  out->set("sched.components_created",
           static_cast<int64_t>(s.components_created));
}

void collect_mem(const sim::MemStats& m, obs::MetricsRegistry* out) {
  out->set("mem.accesses", static_cast<int64_t>(m.accesses));
  out->set("mem.l1_hits", static_cast<int64_t>(m.l1_hits));
  out->set("mem.l2_hits", static_cast<int64_t>(m.l2_hits));
  out->set("mem.fetches", static_cast<int64_t>(m.mem_fetches));
  out->set("mem.invalidations", static_cast<int64_t>(m.invalidations));
  out->set("mem.stall_cycles", static_cast<int64_t>(m.stall_cycles));
  out->set("mem.l1_hit_rate", m.l1_hit_rate());
}

std::string task_label(const Program& prog, size_t id) {
  const std::string& label = prog.tasks()[id].label;
  return label.empty() ? "task" + std::to_string(id) : label;
}

}  // namespace

RunResult run(Program& prog, const RunOptions& options) {
  RunResult result;
  result.backend = options.backend;
  switch (options.backend) {
    case Backend::kSim: {
      SimParams sim_params = options.sim;
      if (options.trace != nullptr) sim_params.trace = options.trace;
      if (options.metrics != nullptr) sim_params.metrics = options.metrics;
      SimResult r = run_on_sim(prog, options.run, sim_params);
      result.cycles = r.total_cycles;
      result.sched = r.sched;
      result.mem = r.mem;
      break;
    }
    case Backend::kThreads: {
      ThreadResult r = run_on_threads(prog, options.run, options.workers,
                                      options.trace, options.metrics);
      result.wall_seconds = r.wall_seconds;
      result.sched = r.sched;
      break;
    }
  }
  return result;
}

void collect_metrics(const Program& prog, const SimResult& result,
                     obs::MetricsRegistry* out) {
  out->set("sim.total_cycles", static_cast<int64_t>(result.total_cycles));
  out->set("sim.jobs", static_cast<int64_t>(result.jobs));
  out->set("sim.queue_wait_cycles",
           static_cast<int64_t>(result.queue_wait_cycles));
  out->set("sim.cores", static_cast<int64_t>(result.core_busy.size()));
  out->set("sim.utilization", result.utilization());
  for (size_t i = 0; i < result.core_busy.size(); ++i)
    out->set("sim.core" + std::to_string(i) + ".busy_cycles",
             static_cast<int64_t>(result.core_busy[i]));
  // Multi-tile platforms additionally publish per-tile rollups and the
  // interconnect counters; single-tile dumps are unchanged.
  if (result.tiles > 1) {
    out->set("sim.tiles", static_cast<int64_t>(result.tiles));
    for (size_t t = 0; t < result.tile_busy.size(); ++t) {
      std::string base = "sim.tile" + std::to_string(t) + ".";
      out->set(base + "busy_cycles",
               static_cast<int64_t>(result.tile_busy[t]));
      out->set(base + "jobs", static_cast<int64_t>(result.tile_jobs[t]));
    }
    out->set("sim.mem.remote_hits",
             static_cast<int64_t>(result.mem.remote_hits));
    out->set("sim.mem.l2_invalidations",
             static_cast<int64_t>(result.mem.l2_invalidations));
  }
  collect_sched(result.sched, out);
  collect_mem(result.mem, out);
  for (const sim::RegionStats& r : result.regions) {
    std::string base = "region." + r.label + ".";
    out->set(base + "bytes", static_cast<int64_t>(r.bytes));
    out->set(base + "accesses", static_cast<int64_t>(r.accesses));
    out->set(base + "l1_hits", static_cast<int64_t>(r.l1_hits));
    out->set(base + "mem_fetches", static_cast<int64_t>(r.mem_fetches));
    out->set(base + "stall_cycles", static_cast<int64_t>(r.stall_cycles));
  }
  size_t ntasks =
      std::min(result.task_cycles.size(), prog.tasks().size());
  for (size_t i = 0; i < ntasks; ++i) {
    if (result.task_runs[i] == 0) continue;
    std::string base = "task." + task_label(prog, i) + ".";
    out->set(base + "cycles", static_cast<int64_t>(result.task_cycles[i]));
    out->set(base + "runs", static_cast<int64_t>(result.task_runs[i]));
  }
}

void collect_metrics(const Program& prog, const ThreadResult& result,
                     obs::MetricsRegistry* out) {
  (void)prog;
  out->set("threads.wall_seconds", result.wall_seconds);
  out->set("threads.jobs", static_cast<int64_t>(result.jobs));
  out->set("threads.steals", static_cast<int64_t>(result.steals));
  out->set("threads.idle_parks", static_cast<int64_t>(result.idle_parks));
  out->set("threads.workers",
           static_cast<int64_t>(result.worker_jobs.size()));
  for (size_t i = 0; i < result.worker_jobs.size(); ++i)
    out->set("threads.worker" + std::to_string(i) + ".jobs",
             static_cast<int64_t>(result.worker_jobs[i]));
  collect_sched(result.sched, out);
}

}  // namespace hinch
