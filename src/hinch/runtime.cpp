#include "hinch/runtime.hpp"

namespace hinch {

RunResult run(Program& prog, const RunOptions& options) {
  RunResult result;
  result.backend = options.backend;
  switch (options.backend) {
    case Backend::kSim: {
      SimResult r = run_on_sim(prog, options.run, options.sim);
      result.cycles = r.total_cycles;
      result.sched = r.sched;
      result.mem = r.mem;
      break;
    }
    case Backend::kThreads: {
      ThreadResult r = run_on_threads(prog, options.run, options.workers);
      result.wall_seconds = r.wall_seconds;
      result.sched = r.sched;
      break;
    }
  }
  return result;
}

}  // namespace hinch
