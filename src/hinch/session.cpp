#include "hinch/session.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hinch {
namespace {

// splitmix64: deterministic per-pool worker RNG for victim selection.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* session_status_name(SessionStatus s) {
  switch (s) {
    case SessionStatus::kQueued:
      return "queued";
    case SessionStatus::kRunning:
      return "running";
    case SessionStatus::kDone:
      return "done";
    case SessionStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

SessionStatus Session::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

SessionResult Session::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return status_ == SessionStatus::kDone ||
           status_ == SessionStatus::kCancelled;
  });
  return result_;
}

// One per worker, cache-line padded so deque locks and counters of
// neighbouring workers do not false-share. The statistics counters are
// owner-written relaxed atomics: only the owning worker increments
// them, but pool_stats() may read them while jobs are in flight.
struct alignas(64) SessionExecutor::Worker {
  std::mutex mu;
  std::deque<Job> jobs;  // owner: push/pop back (LIFO); thief: front
  uint64_t rng = 0;
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> parks{0};
};

SessionExecutor::SessionExecutor(const Config& config)
    : metrics_(std::make_unique<obs::MetricsRegistry>()) {
  SUP_CHECK(config.workers >= 1);
  active_cap_ = std::max(0, config.max_active_sessions);
  slots_.reserve(static_cast<size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    // Deterministic per-pool seed: same worker count -> same victim
    // sequences (no wall-clock or address entropy).
    worker->rng =
        0x853C49E6748FEA9BULL ^ (static_cast<uint64_t>(w + 1) * 0x9E37ULL);
    slots_.push_back(std::move(worker));
  }
  pool_.reserve(static_cast<size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w)
    pool_.emplace_back([this, w] { worker_loop(w); });
}

SessionExecutor::~SessionExecutor() { shutdown(); }

SessionPtr SessionExecutor::submit(std::unique_ptr<Program> prog,
                                   const SessionConfig& cfg) {
  SUP_CHECK_MSG(prog != nullptr, "submit: null program");
  Program* raw = prog.get();
  SessionPtr s(new Session());
  s->owned_prog_ = std::move(prog);
  s->prog_ = raw;
  s->config_ = cfg;
  SessionPtr to_start;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    SUP_CHECK_MSG(accepting_, "submit on a shut-down SessionExecutor");
    s->id_ = next_id_++;
    if (cfg.metrics != nullptr) {
      s->metrics_ = cfg.metrics;
    } else {
      s->metrics_view_ = std::make_unique<obs::MetricsRegistry>(
          metrics_.get(), "session." + std::to_string(s->id_) + ".");
      s->metrics_ = s->metrics_view_.get();
    }
    // The scheduler is built at admission: it resets the program's
    // components and streams, sizes the iteration ring, and clamps the
    // window to the stream depth (per-stream backpressure).
    s->scheduler_ = std::make_unique<Scheduler>(*s->prog_, cfg.run);
    if (active_cap_ > 0 && active_ >= active_cap_) {
      queue_.push_back(s);
      publish_server_gauges();
      return s;
    }
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    live_.push_back(s);
    to_start = s;
    publish_server_gauges();
  }
  start_session(to_start);
  return s;
}

SessionPtr SessionExecutor::submit(Program& prog, const SessionConfig& cfg) {
  // Borrowing variant: wrap without ownership. Mirrors the owning
  // overload otherwise.
  SessionPtr s(new Session());
  s->prog_ = &prog;
  s->config_ = cfg;
  SessionPtr to_start;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    SUP_CHECK_MSG(accepting_, "submit on a shut-down SessionExecutor");
    s->id_ = next_id_++;
    if (cfg.metrics != nullptr) {
      s->metrics_ = cfg.metrics;
    } else {
      s->metrics_view_ = std::make_unique<obs::MetricsRegistry>(
          metrics_.get(), "session." + std::to_string(s->id_) + ".");
      s->metrics_ = s->metrics_view_.get();
    }
    s->scheduler_ = std::make_unique<Scheduler>(*s->prog_, cfg.run);
    if (active_cap_ > 0 && active_ >= active_cap_) {
      queue_.push_back(s);
      publish_server_gauges();
      return s;
    }
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    live_.push_back(s);
    to_start = s;
    publish_server_gauges();
  }
  start_session(to_start);
  return s;
}

void SessionExecutor::start_session(const SessionPtr& s) {
  s->t0_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(s->mu_);
    s->status_ = SessionStatus::kRunning;
  }
  obs::TraceSession* trace =
      obs::kTraceCompiledIn ? s->config_.trace : nullptr;
  if (trace != nullptr) {
    trace->begin_run(workers(), obs::ClockDomain::kWallNanos);
    s->trace_task_names_.clear();
    s->trace_task_names_.reserve(s->prog_->tasks().size());
    for (const Task& t : s->prog_->tasks()) {
      std::string label =
          t.label.empty() ? "task" + std::to_string(t.id) : t.label;
      s->trace_task_names_.push_back(trace->intern(label));
    }
    s->trace_steal_name_ = trace->intern("steal");
    s->trace_reconfig_name_ = trace->intern("reconfiguration");
    s->trace_pending_name_ = trace->intern("pending jobs");
  }

  std::vector<JobRef> initial = s->scheduler_->start();
  s->pending_.store(static_cast<int64_t>(initial.size()),
                    std::memory_order_relaxed);
  if (initial.empty()) {
    // Zero iterations: the session is born finished.
    finalize(s);
    return;
  }
  // Spread the initial wavefront round-robin so workers start busy; the
  // session id offsets the start so concurrent admissions do not all
  // land on worker 0.
  int n = workers();
  for (size_t i = 0; i < initial.size(); ++i) {
    Worker& w = *slots_[(i + static_cast<size_t>(s->id_)) %
                        static_cast<size_t>(n)];
    std::lock_guard<std::mutex> lock(w.mu);
    w.jobs.push_back(Job{s, initial[i]});
  }
  wake_sleepers(initial.size());
}

void SessionExecutor::cancel(const SessionPtr& session) {
  SUP_CHECK_MSG(session != nullptr, "cancel: null session");
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    // Still queued? Pull it out and finalize below (no jobs exist).
    auto it = std::find(queue_.begin(), queue_.end(), session);
    if (it != queue_.end()) {
      queue_.erase(it);
      session->cancelled_.store(true, std::memory_order_release);
      publish_server_gauges();
    } else {
      // Running (or already finalized): flag it; workers drop its jobs
      // and the last retired unit finalizes it.
      session->cancelled_.store(true, std::memory_order_release);
      return;
    }
  }
  finalize(session);
}

void SessionExecutor::set_active_cap(int cap) {
  std::vector<SessionPtr> to_start;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    active_cap_ = std::max(0, cap);
    while (!queue_.empty() &&
           (active_cap_ == 0 || active_ < active_cap_)) {
      to_start.push_back(queue_.front());
      queue_.erase(queue_.begin());
      ++active_;
      peak_active_ = std::max(peak_active_, active_);
      live_.push_back(to_start.back());
    }
    publish_server_gauges();
  }
  for (const SessionPtr& s : to_start) start_session(s);
}

int SessionExecutor::active_cap() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return active_cap_;
}

int SessionExecutor::active_sessions() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return active_;
}

int SessionExecutor::queued_sessions() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return static_cast<int>(queue_.size());
}

int SessionExecutor::peak_active_sessions() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return peak_active_;
}

uint64_t SessionExecutor::sessions_completed() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return completed_;
}

SessionExecutor::PoolStats SessionExecutor::pool_stats() const {
  PoolStats stats;
  stats.worker_jobs.reserve(slots_.size());
  for (const auto& w : slots_) {
    uint64_t executed = w->executed.load(std::memory_order_relaxed);
    stats.jobs += executed;
    stats.steals += w->steals.load(std::memory_order_relaxed);
    stats.idle_parks += w->parks.load(std::memory_order_relaxed);
    stats.worker_jobs.push_back(executed);
  }
  return stats;
}

void SessionExecutor::shutdown() {
  std::vector<SessionPtr> queued;
  {
    std::unique_lock<std::mutex> lock(admission_mu_);
    if (!accepting_ && pool_.empty()) return;  // already shut down
    accepting_ = false;
    queued.swap(queue_);
    for (const SessionPtr& s : live_)
      s->cancelled_.store(true, std::memory_order_release);
  }
  // Queued sessions have no jobs in flight; finalize them directly.
  for (const SessionPtr& s : queued) {
    s->cancelled_.store(true, std::memory_order_release);
    finalize(s);
  }
  // Wait for every live session to drain (workers drop cancelled jobs
  // fast; in-flight components finish their current iteration step).
  {
    std::unique_lock<std::mutex> lock(admission_mu_);
    drained_cv_.wait(lock, [&] { return active_ == 0 && queue_.empty(); });
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void SessionExecutor::worker_loop(int id) {
  Worker& self = *slots_[static_cast<size_t>(id)];
  Job job;
  int failed_sweeps = 0;
  for (;;) {
    if (pop_own(self, &job) || steal(id, &job)) {
      failed_sweeps = 0;
      if (job.session->cancelled_.load(std::memory_order_acquire)) {
        // Teardown drain: drop without executing. The shared_ptr in
        // `job` still pins the Program until this scope ends.
        retire_unit(job.session);
        job.session.reset();
        continue;
      }
      run_chain(id, std::move(job));
      job.session.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Spin through a few sweeps before parking: job supply is bursty
    // (a completion fans out a whole wavefront at once).
    if (++failed_sweeps < 4) {
      std::this_thread::yield();
      continue;
    }
    failed_sweeps = 0;
    park(self);
  }
}

uint64_t SessionExecutor::session_now_ns(const Session& s) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - s.t0_)
          .count());
}

void SessionExecutor::run_chain(int worker_id, Job job) {
  Worker& self = *slots_[static_cast<size_t>(worker_id)];
  Session& s = *job.session;
  Scheduler& sched = *s.scheduler_;
  obs::TraceSession* trace = obs::kTraceCompiledIn ? s.config_.trace : nullptr;
  obs::TraceRecorder* rec =
      trace != nullptr ? trace->recorder(worker_id) : nullptr;
  // Chain loop: run the job, then directly continue with its first
  // child — for the dominant one-successor case (the self-dependency
  // chain of a task across iterations) this touches neither the deque
  // nor the pending counter: the parent's "1 pending" simply transfers
  // to the child. Extra children are published for thieves.
  for (;;) {
    if (s.cancelled_.load(std::memory_order_acquire)) break;
    uint64_t t_start = rec != nullptr ? session_now_ns(s) : 0;
    ExecContext ctx(sched.job_component(job.ref), job.ref.iter, worker_id,
                    &s.prog_->queues(), s.metrics_);
    sched.execute(job.ref, ctx);
    std::vector<JobRef> newly = sched.complete(job.ref);
    self.executed.fetch_add(1, std::memory_order_relaxed);
    s.jobs_executed_.fetch_add(1, std::memory_order_relaxed);
    if (rec != nullptr) {
      uint64_t t_end = session_now_ns(s);
      rec->span(s.trace_task_names_[static_cast<size_t>(job.ref.task)],
                obs::Category::kTask, t_start, t_end - t_start, job.ref.iter,
                job.ref.task);
      if (job.ref.phase == 1)
        rec->instant(s.trace_reconfig_name_, obs::Category::kReconfig, t_end,
                     job.ref.iter, job.ref.task);
    }
    if (s.config_.record_frame_times) note_frames(s);
    if (newly.empty()) break;
    if (newly.size() > 1) {
      // Count the extra children before continuing so the session's
      // pending count can never dip to zero while work still exists.
      int64_t now_pending =
          s.pending_.fetch_add(static_cast<int64_t>(newly.size()) - 1,
                               std::memory_order_relaxed) +
          static_cast<int64_t>(newly.size()) - 1;
      if (rec != nullptr)
        rec->counter(s.trace_pending_name_, obs::Category::kSched,
                     session_now_ns(s), now_pending);
      if (s.metrics_ != nullptr) {
        s.metrics_->set("live.pending_jobs", now_pending);
        s.metrics_->set("live.iterations_done", sched.iterations_done());
      }
      {
        std::lock_guard<std::mutex> lock(self.mu);
        for (size_t i = 1; i < newly.size(); ++i)
          self.jobs.push_back(Job{job.session, newly[i]});
      }
      wake_sleepers(newly.size() - 1);
    }
    job.ref = newly[0];
  }
  // The chain retires (or was cancelled mid-chain): drop its pending
  // unit.
  if (rec != nullptr)
    rec->counter(s.trace_pending_name_, obs::Category::kSched,
                 session_now_ns(s),
                 s.pending_.load(std::memory_order_relaxed) - 1);
  if (s.metrics_ != nullptr) {
    s.metrics_->set("live.pending_jobs",
                    s.pending_.load(std::memory_order_relaxed) - 1);
    s.metrics_->set("live.iterations_done", sched.iterations_done());
  }
  retire_unit(job.session);
}

void SessionExecutor::retire_unit(const SessionPtr& s) {
  if (s->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    finalize(s);
}

void SessionExecutor::finalize(const SessionPtr& s) {
  bool cancelled = s->cancelled_.load(std::memory_order_acquire);
  if (!cancelled)
    SUP_CHECK_MSG(s->scheduler_->finished(),
                  "session drained with unfinished iterations");
  SessionResult result;
  result.status =
      !cancelled || s->scheduler_->finished() ? SessionStatus::kDone
                                              : SessionStatus::kCancelled;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - s->t0_)
          .count();
  result.sched = s->scheduler_->stats();
  result.jobs = s->jobs_executed_.load(std::memory_order_relaxed);
  result.iterations_done = s->scheduler_->iterations_done();
  {
    std::lock_guard<std::mutex> lock(s->frame_mu_);
    result.frame_done_ns = s->frame_done_ns_;
  }
  {
    std::lock_guard<std::mutex> lock(s->mu_);
    // A queued session cancelled before start has t0_ == epoch; its
    // wall time is meaningless, zero it.
    if (s->status_ == SessionStatus::kQueued) result.wall_seconds = 0;
    s->status_ = result.status;
    s->result_ = std::move(result);
  }

  // Free the admission slot and start the next queued session (if any)
  // BEFORE waking waiters: a thread returning from wait() must observe
  // the server gauges already updated (active down, completed up).
  std::vector<SessionPtr> to_start;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto it = std::find(live_.begin(), live_.end(), s);
    if (it != live_.end()) {
      live_.erase(it);
      --active_;
    }
    ++completed_;
    while (accepting_ && !queue_.empty() &&
           (active_cap_ == 0 || active_ < active_cap_)) {
      to_start.push_back(queue_.front());
      queue_.erase(queue_.begin());
      ++active_;
      peak_active_ = std::max(peak_active_, active_);
      live_.push_back(to_start.back());
    }
    publish_server_gauges();
    if (active_ == 0 && queue_.empty()) drained_cv_.notify_all();
  }
  s->cv_.notify_all();
  for (const SessionPtr& next : to_start) start_session(next);
}

void SessionExecutor::publish_server_gauges() {
  // Called with admission_mu_ held; the registry has its own lock, the
  // admission lock only makes the three gauges mutually consistent.
  metrics_->set("server.active_sessions", static_cast<int64_t>(active_));
  metrics_->set("server.queued_sessions",
                static_cast<int64_t>(queue_.size()));
  metrics_->set("server.sessions_completed",
                static_cast<int64_t>(completed_));
}

void SessionExecutor::note_frames(Session& s) {
  int64_t done = s.scheduler_->iterations_done();
  if (done <= s.frames_noted_.load(std::memory_order_relaxed)) return;
  uint64_t now = session_now_ns(s);
  std::lock_guard<std::mutex> lock(s.frame_mu_);
  while (static_cast<int64_t>(s.frame_done_ns_.size()) < done)
    s.frame_done_ns_.push_back(now);
  s.frames_noted_.store(static_cast<int64_t>(s.frame_done_ns_.size()),
                        std::memory_order_relaxed);
}

bool SessionExecutor::pop_own(Worker& self, Job* out) {
  std::lock_guard<std::mutex> lock(self.mu);
  if (self.jobs.empty()) return false;
  *out = self.jobs.back();
  self.jobs.pop_back();
  return true;
}

bool SessionExecutor::steal(int id, Job* out) {
  int n = workers();
  if (n <= 1) return false;
  Worker& self = *slots_[static_cast<size_t>(id)];
  // Randomized victim order (deterministic seed): scan all other
  // workers starting at a random offset. try_lock keeps thieves from
  // convoying on a busy victim; a missed deque is retried on the next
  // sweep (draining never depends on sweep completeness — the
  // per-session pending counters govern completion).
  int start =
      static_cast<int>(splitmix64(self.rng) % static_cast<uint64_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    int victim = (start + i) % (n - 1);
    if (victim >= id) ++victim;  // skip self
    Worker& v = *slots_[static_cast<size_t>(victim)];
    std::unique_lock<std::mutex> lock(v.mu, std::try_to_lock);
    if (!lock.owns_lock() || v.jobs.empty()) continue;
    *out = v.jobs.front();  // FIFO end: oldest, largest-grain work
    v.jobs.pop_front();
    self.steals.fetch_add(1, std::memory_order_relaxed);
    // The steal marker lands in the *stolen job's* session trace — the
    // session is the trace namespace, the pool is anonymous. No park
    // markers: parking is pool-level and attributable to no session.
    if (obs::kTraceCompiledIn && out->session->config_.trace != nullptr &&
        !out->session->cancelled_.load(std::memory_order_acquire)) {
      Session& s = *out->session;
      s.config_.trace->recorder(id)->instant(s.trace_steal_name_,
                                             obs::Category::kSched,
                                             session_now_ns(s), victim,
                                             out->ref.task);
    }
    return true;
  }
  return false;
}

void SessionExecutor::park(Worker& self) {
  std::unique_lock<std::mutex> lock(idle_mu_);
  if (stop_.load(std::memory_order_relaxed)) return;
  uint64_t epoch = wake_epoch_;
  ++sleepers_;
  self.parks.fetch_add(1, std::memory_order_relaxed);
  // Bounded wait: a producer that observed sleepers_ == 0 an instant
  // before we got here may skip its wakeup; the timeout turns that
  // lost-wakeup window into a short stall instead of a hang.
  idle_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
    return wake_epoch_ != epoch || stop_.load(std::memory_order_relaxed);
  });
  --sleepers_;
}

void SessionExecutor::wake_sleepers(size_t new_jobs) {
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++wake_epoch_;
  }
  if (new_jobs > 1)
    idle_cv_.notify_all();
  else
    idle_cv_.notify_one();
}

}  // namespace hinch
