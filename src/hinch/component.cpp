#include "hinch/component.hpp"

#include "support/strings.hpp"

namespace hinch {

support::Result<std::string> param_string(const ParamMap& params,
                                          const std::string& name) {
  auto it = params.find(name);
  if (it == params.end())
    return support::not_found("missing parameter '" + name + "'");
  return it->second;
}

support::Result<int64_t> param_int(const ParamMap& params,
                                   const std::string& name) {
  SUP_ASSIGN_OR_RETURN(std::string s, param_string(params, name));
  return support::parse_int(s);
}

std::string param_string_or(const ParamMap& params, const std::string& name,
                            std::string_view fallback) {
  auto it = params.find(name);
  return it == params.end() ? std::string(fallback) : it->second;
}

int64_t param_int_or(const ParamMap& params, const std::string& name,
                     int64_t fallback) {
  auto it = params.find(name);
  if (it == params.end()) return fallback;
  auto r = support::parse_int(it->second);
  SUP_CHECK_MSG(r.is_ok(), ("parameter '" + name + "' is not an integer").c_str());
  return r.value();
}

void Component::assign_slice(int index, int count) {
  SUP_CHECK(count >= 1 && index >= 0 && index < count);
  slice_index_ = index;
  slice_count_ = count;
  // The paper delivers the data-parallel position through the component's
  // reconfiguration interface (§3.1); do the same so components that
  // override reconfigure() can react.
  reconfigure(support::format("slice=%d/%d", index, count));
}

int Component::find_input(std::string_view name) const {
  for (size_t i = 0; i < inputs_.size(); ++i)
    if (inputs_[i].name == name) return static_cast<int>(i);
  return -1;
}

int Component::find_output(std::string_view name) const {
  for (size_t i = 0; i < outputs_.size(); ++i)
    if (outputs_[i].name == name) return static_cast<int>(i);
  return -1;
}

int Component::declare_input(std::string name) {
  inputs_.push_back({std::move(name), nullptr});
  return static_cast<int>(inputs_.size()) - 1;
}

int Component::declare_output(std::string name) {
  outputs_.push_back({std::move(name), nullptr});
  return static_cast<int>(outputs_.size()) - 1;
}

void slice_rows(int rows, int index, int count, int* row0, int* row1) {
  SUP_CHECK(count >= 1 && index >= 0 && index < count);
  int base = rows / count;
  int extra = rows % count;
  *row0 = index * base + std::min(index, extra);
  *row1 = *row0 + base + (index < extra ? 1 : 0);
}

const Packet& ExecContext::read(int in_port) const {
  Stream* s = comp_->input_stream(in_port);
  SUP_CHECK_MSG(s != nullptr, "reading an unbound input port");
  return s->read(iteration_);
}

void ExecContext::write(int out_port, Packet packet) {
  Stream* s = comp_->output_stream(out_port);
  SUP_CHECK_MSG(s != nullptr, "writing an unbound output port");
  s->write(iteration_, std::move(packet));
}

Packet& ExecContext::inout(int out_port) {
  Stream* s = comp_->output_stream(out_port);
  SUP_CHECK_MSG(s != nullptr, "accessing an unbound output port");
  return s->slot(iteration_);
}

Packet& ExecContext::acquire(int out_port) {
  Stream* s = comp_->output_stream(out_port);
  SUP_CHECK_MSG(s != nullptr, "accessing an unbound output port");
  return s->acquire_slot(iteration_);
}

void ExecContext::commit(int out_port) {
  Stream* s = comp_->output_stream(out_port);
  SUP_CHECK_MSG(s != nullptr, "accessing an unbound output port");
  s->commit_slot(iteration_);
}

bool ExecContext::input_ready(int in_port) const {
  Stream* s = comp_->input_stream(in_port);
  SUP_CHECK_MSG(s != nullptr, "querying an unbound input port");
  return s->has(iteration_);
}

void ExecContext::send_event(const std::string& queue, Event ev) {
  SUP_CHECK(queues_ != nullptr);
  queues_->get_or_create(queue).push(std::move(ev));
}

void ExecContext::touch_read(int in_port, uint64_t offset, uint64_t len) {
  Stream* s = comp_->input_stream(in_port);
  SUP_CHECK(s != nullptr);
  charges_.touches.push_back({s->index(), offset, len, /*write=*/false});
}

void ExecContext::touch_write(int out_port, uint64_t offset, uint64_t len) {
  Stream* s = comp_->output_stream(out_port);
  SUP_CHECK(s != nullptr);
  charges_.touches.push_back({s->index(), offset, len, /*write=*/true});
}

}  // namespace hinch
