// Executes a Program on the SpaceCAKE-substitute simulator: N cores pull
// jobs from a central job queue (Hinch's automatic load balancing, §1)
// in virtual time; job costs are the kernels' charged compute cycles plus
// memory-hierarchy stalls from the cache model; the queue's lock is a
// serial resource, so queue contention grows with core count.
//
// Everything is deterministic: same program + config => identical cycle
// counts, which the paper-figure benches and the tests rely on.
#pragma once

#include "hinch/scheduler.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"

namespace hinch {

struct SimParams {
  int cores = 1;
  sim::CacheConfig cache;  // `cores` is overwritten from the field above
  // Central job queue costs (§4.2: parallel runs at 1 node disable all
  // synchronization operations — set sync_costs=false to model that).
  sim::Cycles queue_lock_cycles = 60;
  sim::Cycles dequeue_cycles = 80;
  sim::Cycles enqueue_cycles = 80;
  bool sync_costs = true;
};

struct SimResult {
  sim::Cycles total_cycles = 0;
  sim::MemStats mem;
  SchedulerStats sched;
  std::vector<sim::Cycles> core_busy;  // per-core execution cycles
  sim::Cycles queue_wait_cycles = 0;   // time cores spent on the queue lock
  uint64_t jobs = 0;
  // Per-task profile (indexed by task id): total charged cycles and
  // execution count — input for the perf prediction module.
  std::vector<sim::Cycles> task_cycles;
  std::vector<uint64_t> task_runs;

  double utilization() const {
    if (total_cycles == 0 || core_busy.empty()) return 0.0;
    sim::Cycles busy = 0;
    for (sim::Cycles c : core_busy) busy += c;
    return static_cast<double>(busy) /
           (static_cast<double>(total_cycles) *
            static_cast<double>(core_busy.size()));
  }
};

// Run to completion (all iterations of `config`). Aborts on deadlock
// (events drained but iterations remain), which cannot happen for valid
// SP programs (§3.1's no-deadlock guarantee).
SimResult run_on_sim(Program& prog, const RunConfig& config,
                     const SimParams& params);

}  // namespace hinch
