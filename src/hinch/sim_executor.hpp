// Executes a Program on the SpaceCAKE-substitute simulator: N cores pull
// jobs from a central job queue (Hinch's automatic load balancing, §1)
// in virtual time; job costs are the kernels' charged compute cycles plus
// memory-hierarchy stalls from the cache model; the queue's lock is a
// serial resource, so queue contention grows with core count.
//
// Everything is deterministic: same program + config => identical cycle
// counts, which the paper-figure benches and the tests rely on.
#pragma once

#include <unordered_map>

#include "hinch/scheduler.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/platform.hpp"

namespace obs {
class MetricsRegistry;
class TraceSession;
}

namespace hinch {

// Per-job simulated-cost charges of one run, keyed by (task, iteration).
// A recording run fills it while executing normally; a replaying run
// skips component execution and feeds the recorded charges straight into
// the cost model, producing identical cycle/memory/queue results while
// spending host time only on the simulator itself (scheduler, cache
// model, event engine) — the fast path for parameter sweeps and for
// bench_sim's end-to-end measurement. Replay requires the same program
// structure and RunConfig as the recording, and is restricted to
// programs without reconfiguration managers (manager polls have
// scheduling side effects that cannot be skipped). In a replayed result
// SchedulerStats reflects the jobs the scheduler actually executed
// (i.e. stays zero); all cycle-derived fields match the recording.
struct ChargeTrace {
  std::unordered_map<uint64_t, ExecContext::Charges> jobs;
};

struct SimParams {
  int cores = 1;
  // Platform description (tiles, core classes, interconnect). Empty
  // (the default) means a single tile of `cores` baseline cores — the
  // exact legacy model, byte-identical results. When set, it defines
  // the core count: `cores` must then be left at its default (1) or
  // match platform.total_cores().
  sim::PlatformConfig platform;
  // Cache geometry. Leave cache.cores at 0 (unset): the executor
  // derives it from `cores` / `platform` and aborts on a conflicting
  // nonzero value (it used to be overwritten silently).
  sim::CacheConfig cache;
  // Central job queue costs (§4.2: parallel runs at 1 node disable all
  // synchronization operations — set sync_costs=false to model that).
  sim::Cycles queue_lock_cycles = 60;
  sim::Cycles dequeue_cycles = 80;
  sim::Cycles enqueue_cycles = 80;
  bool sync_costs = true;
  // Charge-trace capture/replay (see ChargeTrace). At most one may be
  // set; both must outlive the run.
  ChargeTrace* record_trace = nullptr;
  const ChargeTrace* replay_trace = nullptr;
  // Optional cycle-accurate event tracing (obs/trace.hpp): per-core task
  // spans, admit/reconfig markers, queue/cache/stream counters, all
  // stamped in simulated cycles. Emission never alters the simulation;
  // cycle counts are identical with or without a session attached.
  obs::TraceSession* trace = nullptr;
  // Optional live metrics publication (obs/metrics.hpp): the executor
  // refreshes "live.*" gauges (queue depth, cycles per iteration, L1
  // miss rate, per-stream occupancy, ...) as jobs retire, without
  // stopping the run. Policy components poll these through
  // ExecContext::metrics() to drive reconfiguration; publication is
  // pure observation and never alters cycle counts.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SimResult {
  sim::Cycles total_cycles = 0;
  sim::MemStats mem;
  SchedulerStats sched;
  std::vector<sim::Cycles> core_busy;  // per-core execution cycles
  sim::Cycles queue_wait_cycles = 0;   // time cores spent on the queue lock
  uint64_t jobs = 0;
  // Per-task profile (indexed by task id): total charged cycles and
  // execution count — input for the perf prediction module.
  std::vector<sim::Cycles> task_cycles;
  std::vector<uint64_t> task_runs;
  // Per-region memory statistics (streams and scratch), for the unified
  // metrics dump (obs::MetricsRegistry via collect_metrics).
  std::vector<sim::RegionStats> regions;
  // Platform shape of the run. Legacy single-tile runs report tiles=1
  // with core_tile/core_multiplier/tile_* left empty.
  int tiles = 1;
  std::vector<int> core_tile;            // core -> tile index
  std::vector<double> core_multiplier;   // core -> cycle multiplier
  std::vector<sim::Cycles> tile_busy;    // per-tile summed busy cycles
  std::vector<uint64_t> tile_jobs;       // per-tile executed jobs

  double utilization() const {
    if (total_cycles == 0 || core_busy.empty()) return 0.0;
    // Heterogeneous frequencies: busy cycles on a slow core represent
    // less work than the same cycles on a fast one, so dividing summed
    // busy time by cores * total overstates utilization. Normalize each
    // core's busy time — and its share of the capacity — by its cycle
    // multiplier instead (work actually done / work the platform could
    // have done).
    bool hetero = false;
    for (double m : core_multiplier)
      if (m != 1.0) hetero = true;
    if (!hetero) {
      sim::Cycles busy = 0;
      for (sim::Cycles c : core_busy) busy += c;
      return static_cast<double>(busy) /
             (static_cast<double>(total_cycles) *
              static_cast<double>(core_busy.size()));
    }
    double work = 0.0, capacity = 0.0;
    for (size_t i = 0; i < core_busy.size(); ++i) {
      double m = core_multiplier[i];
      work += static_cast<double>(core_busy[i]) / m;
      capacity += static_cast<double>(total_cycles) / m;
    }
    return work / capacity;
  }
};

// Run to completion (all iterations of `config`). Aborts on deadlock
// (events drained but iterations remain), which cannot happen for valid
// SP programs (§3.1's no-deadlock guarantee).
SimResult run_on_sim(Program& prog, const RunConfig& config,
                     const SimParams& params);

}  // namespace hinch
