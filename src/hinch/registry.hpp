// Component class registry: maps the `class` attribute of an XSPCL
// component tag (§3.1) to a factory. The standard component library
// (src/components) registers itself into the global registry; embedders
// can register their own classes or use private registries in tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hinch/component.hpp"
#include "support/status.hpp"

namespace hinch {

class ComponentRegistry {
 public:
  using Factory = std::function<support::Result<std::unique_ptr<Component>>(
      const ComponentConfig&)>;

  // Registering the same class twice is a programming error.
  void register_class(const std::string& name, Factory factory);
  bool has_class(const std::string& name) const;
  std::vector<std::string> class_names() const;

  support::Result<std::unique_ptr<Component>> create(
      const std::string& klass, const ComponentConfig& config) const;

  // Process-wide registry used by the standard library and tools.
  static ComponentRegistry& global();

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace hinch

// Note: registration is explicit (components::register_standard) rather
// than via static initializers, which a static library would silently
// drop at link time.
