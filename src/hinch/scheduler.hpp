// The Hinch data-flow scheduler (executor-agnostic half).
//
// The application is run as a series of iterations of the task graph
// (§2). This class tracks, for a bounded window of in-flight iterations
// (pipeline parallelism, §3.3), which (task, iteration) instances are
// ready, and implements the reconfiguration-manager protocol of §3.4:
// managers poll their event queue when invoked (at subgraph entry and
// exit), pre-create components for options being enabled as soon as the
// event is detected, quiesce the subgraph (wait for earlier iterations to
// drain), and splice the new configuration between iterations.
//
// Executors (sim / threads) drive it through three calls:
//   start()            -> initial ready jobs
//   execute(job, ctx)  -> run the job's side effects, collecting charges
//   complete(job)      -> newly-ready jobs
// The scheduler itself is not thread-safe; the thread executor serializes
// calls with a mutex (the paper's central job queue is a single lock too).
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "hinch/program.hpp"

namespace hinch {

// Simulated-cost constants for runtime-internal jobs (manager polls,
// reconfiguration splices). Kernel costs live with the kernels.
struct RuntimeCosts {
  uint64_t manager_poll_cycles = 200;
  // Creating + initializing one component of an option being enabled
  // (charged at event detection, i.e. overlapped with execution — §3.4).
  uint64_t component_create_cycles = 4000;
  // Splicing one component in/out of the quiesced subgraph.
  uint64_t splice_per_component_cycles = 600;
  uint64_t splice_base_cycles = 400;
};

struct JobRef {
  int task = -1;
  int64_t iter = -1;
  // 0 = normal execution; 1 = reconfiguration splice of a manager-enter.
  int phase = 0;

  bool operator==(const JobRef&) const = default;
};

struct RunConfig {
  int64_t iterations = 1;
  // Max concurrently active iterations; clamped to the program's stream
  // depth (slot reuse would otherwise corrupt in-flight data).
  int window = 5;
  RuntimeCosts costs;
};

struct SchedulerStats {
  uint64_t jobs_executed = 0;
  uint64_t jobs_skipped = 0;       // option-disabled instances
  uint64_t reconfigurations = 0;   // splices performed
  uint64_t events_handled = 0;
  uint64_t components_created = 0; // pre-creations for enabled options
};

class Scheduler {
 public:
  Scheduler(Program& prog, const RunConfig& config);

  // Ready jobs at time zero.
  std::vector<JobRef> start();

  // Run the job's side effects (component run / manager poll / splice).
  // `ctx` must be constructed for this job (see make_context).
  void execute(const JobRef& job, ExecContext& ctx);

  // Mark the job complete; returns jobs that became ready.
  std::vector<JobRef> complete(const JobRef& job);

  bool finished() const {
    return iterations_done_ == config_.iterations;
  }
  int64_t iterations_done() const { return iterations_done_; }

  const SchedulerStats& stats() const { return stats_; }

  // The component a job runs, or nullptr for manager jobs.
  Component* job_component(const JobRef& job);

  Program& program() { return prog_; }
  const RunConfig& config() const { return config_; }

 private:
  enum class InstState : uint8_t { kUnborn, kWaiting, kReady, kDone };

  struct Instance {
    InstState state = InstState::kUnborn;
    int remaining = 0;
  };

  struct ManagerRun {
    // Guards this manager's state: its enter(k) and exit(k-1) jobs may
    // poll concurrently under the thread executor.
    std::mutex mutex;
    // (option index, desired state) flips awaiting the next splice.
    std::vector<std::pair<int, bool>> pending_flips;
    int64_t waiting_iter = -1;  // enter iteration blocked on quiesce
    int64_t last_exit_done = -1;
    // Poll-side counters, folded into SchedulerStats under the scheduler
    // lock at completion time.
    uint64_t events_handled = 0;
    uint64_t components_created = 0;
  };

  size_t slot(int task, int64_t iter) const {
    return static_cast<size_t>(iter % config_.window) * ntasks_ +
           static_cast<size_t>(task);
  }
  Instance& inst(int task, int64_t iter) {
    return instances_[slot(task, iter)];
  }

  bool task_skipped(const Task& t) const;
  void admit_iteration(int64_t iter, std::vector<JobRef>* ready);
  // Instance became runnable: either emit a ready job or (for skipped
  // tasks) finish it immediately and propagate.
  void fire(int task, int64_t iter, std::vector<JobRef>* ready);
  void finish(int task, int64_t iter, std::vector<JobRef>* ready);
  void poll_manager(int mgr_idx, ExecContext& ctx);

  Program& prog_;
  RunConfig config_;
  size_t ntasks_;
  std::vector<Instance> instances_;     // ring: window x ntasks
  std::vector<int64_t> done_counts_;    // per in-window iteration (ring)
  std::vector<char> option_active_;  // not vector<bool>: avoids bit-packing races
  std::vector<ManagerRun> manager_run_;
  int64_t admitted_ = 0;        // iterations [0, admitted_) are born
  int64_t iterations_done_ = 0; // fully completed iterations (prefix)
  SchedulerStats stats_;
};

}  // namespace hinch
