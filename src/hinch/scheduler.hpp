// The Hinch data-flow scheduler (executor-agnostic half).
//
// The application is run as a series of iterations of the task graph
// (§2). This class tracks, for a bounded window of in-flight iterations
// (pipeline parallelism, §3.3), which (task, iteration) instances are
// ready, and implements the reconfiguration-manager protocol of §3.4:
// managers poll their event queue when invoked (at subgraph entry and
// exit), pre-create components for options being enabled as soon as the
// event is detected, quiesce the subgraph (wait for earlier iterations to
// drain), and splice the new configuration between iterations.
//
// Executors (sim / threads) drive it through three calls:
//   start()            -> initial ready jobs
//   execute(job, ctx)  -> run the job's side effects, collecting charges
//   complete(job)      -> newly-ready jobs
//
// Concurrency: execute() and complete() may be called concurrently from
// many worker threads (the work-stealing thread executor does exactly
// that). The hot path — dependency release in complete()/finish() — is
// lock-free: per-instance atomic `remaining` counters released with
// fetch-sub, a CAS on the instance state to make the fire decision
// unique, and a per-(task, slot) rendezvous cell for the cross-iteration
// self-dependency edge (admission and the previous iteration's finish
// race for it; exactly one side releases the edge). Only two locks
// remain, both cold:
//   - admit_mutex_ serializes iteration admission (once per iteration);
//     it is recursive because an admission can cascade through skipped
//     tasks and complete further iterations inline.
//   - ManagerRun::mutex guards each manager's reconfiguration state
//     (pending flips, quiesce bookkeeping, poll-side counters).
// Locking rules (see docs/RUNTIME.md "Executor architecture"): never
// call finish() while holding a ManagerRun mutex; admit_mutex_ may be
// held while taking a ManagerRun mutex, never the reverse.
//
// Under the single-threaded sim executor every atomic degenerates to a
// plain access in program order, so the ready-job sequence — and with it
// every simulated cycle count — is bit-for-bit the pre-lock-free one.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "hinch/program.hpp"

namespace hinch {

// Simulated-cost constants for runtime-internal jobs (manager polls,
// reconfiguration splices). Kernel costs live with the kernels.
struct RuntimeCosts {
  uint64_t manager_poll_cycles = 200;
  // Creating + initializing one component of an option being enabled
  // (charged at event detection, i.e. overlapped with execution — §3.4).
  uint64_t component_create_cycles = 4000;
  // Splicing one component in/out of the quiesced subgraph.
  uint64_t splice_per_component_cycles = 600;
  uint64_t splice_base_cycles = 400;
};

struct JobRef {
  int task = -1;
  int64_t iter = -1;
  // 0 = normal execution; 1 = reconfiguration splice of a manager-enter.
  int phase = 0;

  bool operator==(const JobRef&) const = default;
};

struct RunConfig {
  int64_t iterations = 1;
  // Max concurrently active iterations; clamped to the program's stream
  // depth (slot reuse would otherwise corrupt in-flight data).
  int window = 5;
  RuntimeCosts costs;
};

struct SchedulerStats {
  uint64_t jobs_executed = 0;
  uint64_t jobs_skipped = 0;       // option-disabled instances
  uint64_t reconfigurations = 0;   // splices performed
  uint64_t events_handled = 0;
  uint64_t components_created = 0; // pre-creations for enabled options
};

class Scheduler {
 public:
  Scheduler(Program& prog, const RunConfig& config);

  // Ready jobs at time zero.
  std::vector<JobRef> start();

  // Run the job's side effects (component run / manager poll / splice).
  // `ctx` must be constructed for this job (see make_context).
  void execute(const JobRef& job, ExecContext& ctx);

  // Mark the job complete; returns jobs that became ready. Thread-safe.
  std::vector<JobRef> complete(const JobRef& job);

  bool finished() const {
    return iterations_done_.load(std::memory_order_acquire) ==
           config_.iterations;
  }
  int64_t iterations_done() const {
    return iterations_done_.load(std::memory_order_acquire);
  }

  // Snapshot of the (atomic) counters. Totals are schedule-independent:
  // the thread executor produces the same numbers as the sim executor.
  SchedulerStats stats() const;

  // The component a job runs, or nullptr for manager jobs.
  Component* job_component(const JobRef& job);

  Program& program() { return prog_; }
  const RunConfig& config() const { return config_; }

 private:
  enum : uint8_t { kUnborn, kWaiting, kReady, kDone };

  // One task instance per ring slot, padded to a cache line: neighbouring
  // tasks are usually being retired by different workers, and the
  // per-instance counters (and the self-dependency rendezvous cell,
  // which lives here for the same reason) are the hottest atomics in the
  // system.
  struct alignas(64) Instance {
    std::atomic<uint8_t> state{kUnborn};
    std::atomic<int> remaining{0};
    std::atomic<int64_t> self_cell{-1};
  };

  struct alignas(64) DoneCount {
    std::atomic<int64_t> count{0};
  };

  // The per-job counters (executed/skipped) are sharded so workers do
  // not serialize on one cache line; the per-reconfiguration counters
  // are cold and stay single. stats() sums the shards — totals are
  // exact, and under the single-threaded sim executor everything lands
  // in one shard in program order.
  struct alignas(64) StatShard {
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> skipped{0};
  };
  static constexpr unsigned kStatShards = 16;
  static unsigned stat_shard_index();

  struct AtomicStats {
    std::atomic<uint64_t> reconfigurations{0};
    std::atomic<uint64_t> events_handled{0};
    std::atomic<uint64_t> components_created{0};
  };

  struct ManagerRun {
    // Guards ALL mutable fields below. Taken by poll_manager (enter and
    // exit jobs of different iterations may poll concurrently), by
    // complete() for the quiesce/splice decision, and by finish() when a
    // manager exit retires. Never held across finish()/fire() cascades.
    std::mutex mutex;
    // (option index, desired state) flips awaiting the next splice.
    std::vector<std::pair<int, bool>> pending_flips;
    int64_t waiting_iter = -1;  // enter iteration blocked on quiesce
    int64_t last_exit_done = -1;
    // Poll-side counters, folded into the scheduler stats when a splice
    // applies or an enter completes with nothing pending.
    uint64_t events_handled = 0;
    uint64_t components_created = 0;
  };

  size_t slot(int task, int64_t iter) const {
    return static_cast<size_t>(iter % config_.window) * ntasks_ +
           static_cast<size_t>(task);
  }
  Instance& inst(int task, int64_t iter) {
    return instances_[slot(task, iter)];
  }

  // Self-dependency rendezvous tokens. The edge (t, k-1) -> (t, k) is
  // released by whichever of {admit_iteration(k), finish(t, k-1)} runs
  // second; the two sides agree via an atomic exchange on the cell of
  // (t, k mod window). Token values are unique per edge, so a stale
  // token from the slot's previous tenant (iteration k - window) can
  // never be mistaken for the current edge's counterpart.
  static int64_t admit_token(int64_t iter) { return 2 * iter; }
  static int64_t finish_token(int64_t iter) { return 2 * iter - 1; }
  std::atomic<int64_t>& self_cell(int task, int64_t iter) {
    return inst(task, iter).self_cell;
  }

  bool task_skipped(const Task& t) const;
  void admit_iteration(int64_t iter, std::vector<JobRef>* ready);
  // Instance became runnable: claim it (CAS, unique across racing
  // releasers) and either emit a ready job or (for skipped tasks) finish
  // it immediately and propagate.
  void fire(int task, int64_t iter, std::vector<JobRef>* ready);
  void finish(int task, int64_t iter, std::vector<JobRef>* ready);
  // All tasks of `iter` retired: advance the completed prefix and admit
  // successor iterations. Completion *detections* are ordered by a
  // happens-before chain, but detecting threads may reach the admission
  // lock out of order, hence the small reorder ring.
  void on_iteration_complete(int64_t iter, std::vector<JobRef>* ready);
  void poll_manager(int mgr_idx, ExecContext& ctx);

  Program& prog_;
  RunConfig config_;
  size_t ntasks_;
  std::vector<Instance> instances_;    // ring: window x ntasks
  std::vector<DoneCount> done_counts_; // per in-window iteration
  // Option on/off state. Flipped only under the owning ManagerRun's
  // mutex while its subgraph is quiesced; read lock-free on the fire
  // path (the dependency-release chain orders the reads after the flip).
  std::vector<std::atomic<char>> option_active_;
  std::vector<ManagerRun> manager_run_;

  // Admission state, guarded by admit_mutex_ (recursive: admitting an
  // iteration of fully-skipped tasks completes it inline, which admits
  // the next one).
  std::recursive_mutex admit_mutex_;
  int64_t admitted_ = 0;            // iterations [0, admitted_) are born
  std::vector<char> complete_ring_; // out-of-order completion buffer

  std::atomic<int64_t> iterations_done_{0};  // completed prefix
  std::vector<StatShard> stat_shards_;
  AtomicStats stats_;
};

}  // namespace hinch
