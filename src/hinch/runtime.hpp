// Umbrella header and convenience entry points for the Hinch run-time
// system. Typical embedding:
//
//   sp::NodePtr graph = ...;                     // or xspcl::load_file()
//   auto prog = hinch::Program::build(*graph, hinch::ComponentRegistry::global());
//   hinch::RunConfig run{.iterations = 96, .window = 5};
//   hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, {.cores = 4});
#pragma once

#include "hinch/component.hpp"
#include "hinch/event.hpp"
#include "hinch/program.hpp"
#include "hinch/registry.hpp"
#include "hinch/scheduler.hpp"
#include "hinch/sim_executor.hpp"
#include "hinch/stream.hpp"
#include "hinch/thread_executor.hpp"

namespace obs {
class MetricsRegistry;
class TraceSession;
}

namespace hinch {

// Which executor carries out the run.
enum class Backend { kSim, kThreads };

struct RunOptions {
  RunConfig run;
  Backend backend = Backend::kSim;
  SimParams sim;    // used when backend == kSim
  int workers = 1;  // used when backend == kThreads
  // Optional tracing session, honoured by both backends (overrides
  // sim.trace for the sim backend). See docs/OBSERVABILITY.md.
  obs::TraceSession* trace = nullptr;
  // Optional live metrics registry, honoured by both backends (overrides
  // sim.metrics for the sim backend): the executor refreshes "live.*"
  // gauges as jobs retire, and components may poll them mid-run via
  // ExecContext::metrics(). See docs/OBSERVABILITY.md.
  obs::MetricsRegistry* metrics = nullptr;
};

// Unified result: virtual cycles for the sim backend, wall seconds for
// the thread backend.
struct RunResult {
  Backend backend = Backend::kSim;
  sim::Cycles cycles = 0;
  double wall_seconds = 0;
  SchedulerStats sched;
  sim::MemStats mem;
};

RunResult run(Program& prog, const RunOptions& options);

// Unified metrics collection: flatten an executor result into `out`
// under dotted names — "sched.*" (scheduler counters), "sim.*" /
// "threads.*" (executor-level), "mem.*" (cache model), "region.<label>.*"
// (per-region memory stats), "task.<label>.*" (per-task profile, sim
// only). One dump surface replaces the ad-hoc per-struct printing; see
// docs/OBSERVABILITY.md. `prog` supplies task labels; it must be the
// program that produced the result.
void collect_metrics(const Program& prog, const SimResult& result,
                     obs::MetricsRegistry* out);
void collect_metrics(const Program& prog, const ThreadResult& result,
                     obs::MetricsRegistry* out);

}  // namespace hinch
