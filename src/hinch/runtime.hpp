// Umbrella header and convenience entry points for the Hinch run-time
// system. Typical embedding:
//
//   sp::NodePtr graph = ...;                     // or xspcl::load_file()
//   auto prog = hinch::Program::build(*graph, hinch::ComponentRegistry::global());
//   hinch::RunConfig run{.iterations = 96, .window = 5};
//   hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, {.cores = 4});
#pragma once

#include "hinch/component.hpp"
#include "hinch/event.hpp"
#include "hinch/program.hpp"
#include "hinch/registry.hpp"
#include "hinch/scheduler.hpp"
#include "hinch/sim_executor.hpp"
#include "hinch/stream.hpp"
#include "hinch/thread_executor.hpp"

namespace hinch {

// Which executor carries out the run.
enum class Backend { kSim, kThreads };

struct RunOptions {
  RunConfig run;
  Backend backend = Backend::kSim;
  SimParams sim;    // used when backend == kSim
  int workers = 1;  // used when backend == kThreads
};

// Unified result: virtual cycles for the sim backend, wall seconds for
// the thread backend.
struct RunResult {
  Backend backend = Backend::kSim;
  sim::Cycles cycles = 0;
  double wall_seconds = 0;
  SchedulerStats sched;
  sim::MemStats mem;
};

RunResult run(Program& prog, const RunOptions& options);

}  // namespace hinch
