#include "hinch/scheduler.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace hinch {

Scheduler::Scheduler(Program& prog, const RunConfig& config)
    : prog_(prog), config_(config), ntasks_(prog.tasks().size()) {
  SUP_CHECK(config_.iterations >= 0);
  config_.window = std::max(1, std::min(config_.window, prog.stream_depth()));
  size_t ring = static_cast<size_t>(config_.window) * ntasks_;
  instances_ = std::vector<Instance>(ring);
  done_counts_ = std::vector<DoneCount>(static_cast<size_t>(config_.window));
  complete_ring_.assign(static_cast<size_t>(config_.window), 0);
  stat_shards_ = std::vector<StatShard>(kStatShards);
  option_active_ = std::vector<std::atomic<char>>(prog.options().size());
  for (size_t i = 0; i < option_active_.size(); ++i)
    option_active_[i].store(prog.options()[i].initially_enabled,
                            std::memory_order_relaxed);
  manager_run_ = std::vector<ManagerRun>(prog.managers().size());
  for (int c = 0; c < prog.component_count(); ++c) prog.component(c).reset();
  for (const auto& s : prog.streams()) s->reset();
}

unsigned Scheduler::stat_shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % kStatShards;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const StatShard& shard : stat_shards_) {
    s.jobs_executed += shard.executed.load(std::memory_order_relaxed);
    s.jobs_skipped += shard.skipped.load(std::memory_order_relaxed);
  }
  s.reconfigurations =
      stats_.reconfigurations.load(std::memory_order_relaxed);
  s.events_handled = stats_.events_handled.load(std::memory_order_relaxed);
  s.components_created =
      stats_.components_created.load(std::memory_order_relaxed);
  return s;
}

bool Scheduler::task_skipped(const Task& t) const {
  for (int opt : t.options)
    if (!option_active_[static_cast<size_t>(opt)].load(
            std::memory_order_relaxed))
      return true;
  return false;
}

std::vector<JobRef> Scheduler::start() {
  std::vector<JobRef> ready;
  std::lock_guard<std::recursive_mutex> lock(admit_mutex_);
  int64_t first_batch = std::min<int64_t>(config_.window, config_.iterations);
  for (int64_t k = 0; k < first_batch && k == admitted_; ++k)
    admit_iteration(k, &ready);
  return ready;
}

void Scheduler::admit_iteration(int64_t iter, std::vector<JobRef>* ready) {
  SUP_CHECK(iter == admitted_);
  ++admitted_;
  done_counts_[static_cast<size_t>(iter % config_.window)].count.store(
      0, std::memory_order_relaxed);
  // Pass 1: initialize every instance with its unmet-dependency count
  // before any rendezvous token is published. A racing finish(·, iter-1)
  // that wins a rendezvous below may fire a source task and — for
  // skipped tasks — cascade finish() inline through arbitrary successors
  // of this iteration; publishing any token before the whole iteration
  // is initialized would let that cascade reach a stale ring slot
  // (remaining == 0, state == kDone from iteration iter - window).
  const bool self_edges = iter > 0 && config_.window > 1;
  for (const Task& t : prog_.tasks()) {
    Instance& in = inst(t.id, iter);
    in.state.store(kWaiting, std::memory_order_relaxed);
    int remaining = static_cast<int>(t.preds.size());
    // Self-dependency: a component is sequential with itself across
    // iterations. With window == 1 the previous iteration is fully
    // complete by construction — admission happens when iteration
    // iter-window finishes — and its slot aliases this one, so no
    // self edge is recorded.
    in.remaining.store(self_edges ? remaining + 1 : remaining,
                       std::memory_order_relaxed);
  }
  // Pass 2: publish the rendezvous tokens. The previous instance's slot
  // is still live (distinct ring slot) and its finish may be racing with
  // this admission — exchange on the cell so exactly one side releases
  // the self edge. The acq_rel exchange also release-publishes all the
  // pass-1 stores to any finisher that reads our token.
  if (self_edges) {
    for (const Task& t : prog_.tasks()) {
      int64_t prev = self_cell(t.id, iter).exchange(
          admit_token(iter), std::memory_order_acq_rel);
      if (prev == finish_token(iter)) {
        // The previous iteration already finished (and, having lost the
        // rendezvous, left the release to us).
        Instance& in = inst(t.id, iter);
        int left =
            in.remaining.fetch_sub(1, std::memory_order_acq_rel) - 1;
        SUP_CHECK(left >= 0);
      }
    }
  }
  // Fire everything that is already unblocked. Concurrent finishers of
  // iter-1 may be releasing edges right now; fire()'s CAS keeps the
  // decision unique.
  for (const Task& t : prog_.tasks()) {
    Instance& in = inst(t.id, iter);
    if (in.state.load(std::memory_order_relaxed) == kWaiting &&
        in.remaining.load(std::memory_order_acquire) == 0) {
      fire(t.id, iter, ready);
    }
  }
}

void Scheduler::fire(int task, int64_t iter, std::vector<JobRef>* ready) {
  Instance& in = inst(task, iter);
  // Claim the instance: the admission scan and a racing dependency
  // release may both observe remaining == 0; only the CAS winner fires.
  uint8_t expected = kWaiting;
  if (!in.state.compare_exchange_strong(expected, kReady,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return;
  }
  SUP_CHECK(in.remaining.load(std::memory_order_relaxed) == 0);
  const Task& t = prog_.task(task);
  if (task_skipped(t)) {
    stat_shards_[stat_shard_index()].skipped.fetch_add(
        1, std::memory_order_relaxed);
    finish(task, iter, ready);
    return;
  }
  ready->push_back(JobRef{task, iter, 0});
}

void Scheduler::finish(int task, int64_t iter, std::vector<JobRef>* ready) {
  Instance& in = inst(task, iter);
  // Only the fire() CAS winner reaches finish(), so a plain store is
  // enough; the ordering successors rely on flows through the
  // remaining/done-count fetch-ops below.
  SUP_DCHECK(in.state.load(std::memory_order_relaxed) == kReady);
  in.state.store(kDone, std::memory_order_relaxed);
  const Task& t = prog_.task(task);

  // Count toward iteration completion BEFORE releasing any successor:
  // every next-iteration instance is then downstream of this increment,
  // which makes completion detections happen-before-ordered across
  // iterations (on_iteration_complete relies on that being near-ordered;
  // its ring absorbs the residual lock-acquisition races).
  bool iteration_complete =
      done_counts_[static_cast<size_t>(iter % config_.window)]
              .count.fetch_add(1, std::memory_order_acq_rel) +
          1 ==
      static_cast<int64_t>(ntasks_);

  // Manager quiesce bookkeeping: an exit completing may unblock a
  // pending reconfiguration of the next iteration's enter. The mutex is
  // released before the splice job is emitted — finish() never holds a
  // ManagerRun lock while cascading.
  if (t.kind == TaskKind::kManagerExit) {
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    bool unblock_splice;
    {
      std::lock_guard<std::mutex> lock(run.mutex);
      run.last_exit_done = iter;
      unblock_splice = (run.waiting_iter == iter + 1);
    }
    if (unblock_splice) {
      ready->push_back(
          JobRef{prog_.managers()[static_cast<size_t>(t.manager)].enter_task,
                 iter + 1, 1});
    }
  }

  // Successors within the iteration: the releaser that takes the count
  // to zero fires.
  for (int s : t.succs) {
    Instance& succ = inst(s, iter);
    int left = succ.remaining.fetch_sub(1, std::memory_order_acq_rel) - 1;
    SUP_CHECK(left >= 0);
    if (left == 0) fire(s, iter, ready);
  }
  // Self-dependency of the next iteration: rendezvous with its admission
  // (see admit_iteration). If that iteration will never exist, the token
  // is simply never consumed.
  if (config_.window > 1 && iter + 1 < config_.iterations) {
    int64_t prev = self_cell(task, iter + 1)
                       .exchange(finish_token(iter + 1),
                                 std::memory_order_acq_rel);
    if (prev == admit_token(iter + 1)) {
      Instance& next = inst(task, iter + 1);
      int left = next.remaining.fetch_sub(1, std::memory_order_acq_rel) - 1;
      SUP_CHECK(left >= 0);
      if (left == 0) fire(task, iter + 1, ready);
    }
  }

  if (iteration_complete) on_iteration_complete(iter, ready);
}

void Scheduler::on_iteration_complete(int64_t iter,
                                      std::vector<JobRef>* ready) {
  std::lock_guard<std::recursive_mutex> lock(admit_mutex_);
  complete_ring_[static_cast<size_t>(iter % config_.window)] = 1;
  // Iterations always complete in (happens-before) order thanks to the
  // per-task self-dependencies, but two detecting threads can reach this
  // lock inverted; advance only the contiguous prefix. Each retired
  // iteration admits at most one successor, exactly as before.
  for (;;) {
    int64_t next = iterations_done_.load(std::memory_order_relaxed);
    if (next >= admitted_ ||
        !complete_ring_[static_cast<size_t>(next % config_.window)])
      break;
    complete_ring_[static_cast<size_t>(next % config_.window)] = 0;
    iterations_done_.store(next + 1, std::memory_order_release);
    if (admitted_ < config_.iterations)
      admit_iteration(admitted_, ready);  // may re-enter (skipped cascades)
  }
}

Component* Scheduler::job_component(const JobRef& job) {
  const Task& t = prog_.task(job.task);
  return t.components.empty() ? nullptr
                              : &prog_.component(t.components.front());
}

void Scheduler::execute(const JobRef& job, ExecContext& ctx) {
  const Task& t = prog_.task(job.task);
  if (job.phase == 1) {
    // Reconfiguration splice: the subgraph is quiescent; adding the
    // pre-created components and synchronizing them is cheap (§3.4).
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    uint64_t comps = 0;
    {
      std::lock_guard<std::mutex> lock(run.mutex);
      for (const auto& [opt, on] : run.pending_flips) {
        (void)on;
        comps += prog_.options()[static_cast<size_t>(opt)].components.size();
      }
    }
    ctx.charge_compute(config_.costs.splice_base_cycles +
                       comps * config_.costs.splice_per_component_cycles);
    return;
  }
  switch (t.kind) {
    case TaskKind::kComponent:
      // Grouped components run back to back within the same job (same
      // core, shared charge accumulator): the §4.1 fusion behaviour.
      for (int comp : t.components) {
        ctx.rebind(&prog_.component(comp));
        prog_.component(comp).run(ctx);
      }
      break;
    case TaskKind::kManagerEnter:
    case TaskKind::kManagerExit:
      poll_manager(t.manager, ctx);
      break;
  }
}

void Scheduler::poll_manager(int mgr_idx, ExecContext& ctx) {
  const ManagerInfo& info = prog_.managers()[static_cast<size_t>(mgr_idx)];
  ManagerRun& run = manager_run_[static_cast<size_t>(mgr_idx)];
  std::lock_guard<std::mutex> lock(run.mutex);
  ctx.charge_compute(config_.costs.manager_poll_cycles);

  EventQueue* queue = prog_.queues().find(info.queue);
  SUP_CHECK(queue != nullptr);
  while (auto ev = queue->poll()) {
    ++run.events_handled;
    for (const sp::EventRule& rule : info.rules) {
      if (rule.event != ev->name) continue;
      switch (rule.action) {
        case sp::EventAction::kEnable:
        case sp::EventAction::kDisable:
        case sp::EventAction::kToggle: {
          // Resolve the option by its spec-level (base) name.
          for (int opt : info.options) {
            const OptionInfo& oi = prog_.options()[static_cast<size_t>(opt)];
            if (oi.base != rule.target) continue;
            bool current = option_active_[static_cast<size_t>(opt)].load(
                std::memory_order_relaxed);
            for (const auto& [p, on] : run.pending_flips)
              if (p == opt) current = on;
            bool desired = rule.action == sp::EventAction::kEnable
                               ? true
                               : rule.action == sp::EventAction::kDisable
                                     ? false
                                     : !current;
            // "The event is ignored when the option is already in the
            // required state." (§3.4)
            if (desired == current) continue;
            run.pending_flips.emplace_back(opt, desired);
            if (desired) {
              // Pre-create the option's components now, overlapping with
              // execution, so the quiesced window stays short (§3.4).
              uint64_t n = oi.components.size();
              run.components_created += n;
              ctx.charge_compute(n * config_.costs.component_create_cycles);
            }
          }
          break;
        }
        case sp::EventAction::kForward:
          prog_.queues().get_or_create(rule.target).push(*ev);
          break;
        case sp::EventAction::kReconfigure: {
          const std::string& req =
              rule.payload.empty() ? ev->payload : rule.payload;
          for (int c : info.components) prog_.component(c).reconfigure(req);
          break;
        }
      }
    }
  }
}

std::vector<JobRef> Scheduler::complete(const JobRef& job) {
  std::vector<JobRef> ready;
  const Task& t = prog_.task(job.task);
  stat_shards_[stat_shard_index()].executed.fetch_add(
      1, std::memory_order_relaxed);

  if (job.phase == 1) {
    // Apply the configuration flip between iterations. The flips are
    // published under the manager lock; the lock is dropped before the
    // finish() cascade so no ManagerRun mutex is held while firing.
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    {
      std::lock_guard<std::mutex> lock(run.mutex);
      for (const auto& [opt, on] : run.pending_flips)
        option_active_[static_cast<size_t>(opt)].store(
            on, std::memory_order_relaxed);
      run.pending_flips.clear();
      run.waiting_iter = -1;
      stats_.reconfigurations.fetch_add(1, std::memory_order_relaxed);
      stats_.events_handled.fetch_add(run.events_handled,
                                      std::memory_order_relaxed);
      run.events_handled = 0;
      stats_.components_created.fetch_add(run.components_created,
                                          std::memory_order_relaxed);
      run.components_created = 0;
    }
    finish(job.task, job.iter, &ready);
    return ready;
  }

  if (t.kind == TaskKind::kManagerEnter) {
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    bool hold_for_splice = false;
    {
      std::lock_guard<std::mutex> lock(run.mutex);
      if (!run.pending_flips.empty()) {
        // Quiesce: the subgraph may still be executing earlier
        // iterations; splice only once the previous iteration has fully
        // exited. finish(exit) updates last_exit_done under this same
        // mutex, so exactly one side emits the splice job.
        hold_for_splice = true;
        if (job.iter == 0 || run.last_exit_done >= job.iter - 1) {
          ready.push_back(JobRef{job.task, job.iter, 1});
        } else {
          run.waiting_iter = job.iter;
        }
      } else {
        stats_.events_handled.fetch_add(run.events_handled,
                                        std::memory_order_relaxed);
        run.events_handled = 0;
      }
    }
    if (hold_for_splice) return ready;
  }

  finish(job.task, job.iter, &ready);
  return ready;
}

}  // namespace hinch
