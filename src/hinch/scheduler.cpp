#include "hinch/scheduler.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace hinch {

Scheduler::Scheduler(Program& prog, const RunConfig& config)
    : prog_(prog), config_(config), ntasks_(prog.tasks().size()) {
  SUP_CHECK(config_.iterations >= 0);
  config_.window = std::max(1, std::min(config_.window, prog.stream_depth()));
  instances_.assign(static_cast<size_t>(config_.window) * ntasks_, {});
  done_counts_.assign(static_cast<size_t>(config_.window), 0);
  option_active_.reserve(prog.options().size());
  for (const OptionInfo& o : prog.options())
    option_active_.push_back(o.initially_enabled);
  manager_run_ = std::vector<ManagerRun>(prog.managers().size());
  for (int c = 0; c < prog.component_count(); ++c) prog.component(c).reset();
  for (const auto& s : prog.streams()) s->reset();
}

bool Scheduler::task_skipped(const Task& t) const {
  for (int opt : t.options)
    if (!option_active_[static_cast<size_t>(opt)]) return true;
  return false;
}

std::vector<JobRef> Scheduler::start() {
  std::vector<JobRef> ready;
  int64_t first_batch = std::min<int64_t>(config_.window, config_.iterations);
  for (int64_t k = 0; k < first_batch; ++k) admit_iteration(k, &ready);
  return ready;
}

void Scheduler::admit_iteration(int64_t iter, std::vector<JobRef>* ready) {
  SUP_CHECK(iter == admitted_);
  ++admitted_;
  done_counts_[static_cast<size_t>(iter % config_.window)] = 0;
  // Initialize instances with their unmet-dependency counts.
  for (const Task& t : prog_.tasks()) {
    Instance& in = inst(t.id, iter);
    in.state = InstState::kWaiting;
    in.remaining = static_cast<int>(t.preds.size());
    if (iter > 0 && config_.window > 1) {
      // Self-dependency: a component is sequential with itself across
      // iterations. The previous instance's slot is still live here
      // (distinct ring slot). With window == 1 the previous iteration is
      // fully complete by construction — admission happens when
      // iteration iter-window finishes — and its slot aliases this one,
      // so it must not be consulted.
      if (inst(t.id, iter - 1).state != InstState::kDone) ++in.remaining;
    }
  }
  // Fire everything that is already unblocked.
  for (const Task& t : prog_.tasks()) {
    if (inst(t.id, iter).state == InstState::kWaiting &&
        inst(t.id, iter).remaining == 0) {
      fire(t.id, iter, ready);
    }
  }
}

void Scheduler::fire(int task, int64_t iter, std::vector<JobRef>* ready) {
  Instance& in = inst(task, iter);
  SUP_CHECK(in.state == InstState::kWaiting && in.remaining == 0);
  const Task& t = prog_.task(task);
  if (task_skipped(t)) {
    ++stats_.jobs_skipped;
    finish(task, iter, ready);
    return;
  }
  in.state = InstState::kReady;
  ready->push_back(JobRef{task, iter, 0});
}

void Scheduler::finish(int task, int64_t iter, std::vector<JobRef>* ready) {
  Instance& in = inst(task, iter);
  SUP_CHECK(in.state != InstState::kDone);
  in.state = InstState::kDone;
  const Task& t = prog_.task(task);

  // Manager quiesce bookkeeping: an exit completing may unblock a
  // pending reconfiguration of the next iteration's enter.
  if (t.kind == TaskKind::kManagerExit) {
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    run.last_exit_done = iter;
    if (run.waiting_iter == iter + 1) {
      ready->push_back(
          JobRef{prog_.managers()[static_cast<size_t>(t.manager)].enter_task,
                 iter + 1, 1});
    }
  }

  // Successors within the iteration.
  for (int s : t.succs) {
    Instance& succ = inst(s, iter);
    SUP_CHECK(succ.state == InstState::kWaiting && succ.remaining > 0);
    if (--succ.remaining == 0) fire(s, iter, ready);
  }
  // Self-dependency of the next iteration, if it has been admitted.
  if (iter + 1 < admitted_) {
    Instance& next = inst(task, iter + 1);
    if (next.state == InstState::kWaiting && --next.remaining == 0)
      fire(task, iter + 1, ready);
  }

  // Iteration completion (iterations always complete in order because of
  // the per-task self-dependencies).
  int64_t& done = done_counts_[static_cast<size_t>(iter % config_.window)];
  if (++done == static_cast<int64_t>(ntasks_)) {
    SUP_CHECK(iter == iterations_done_);
    iterations_done_ = iter + 1;
    if (admitted_ < config_.iterations) admit_iteration(admitted_, ready);
  }
}

Component* Scheduler::job_component(const JobRef& job) {
  const Task& t = prog_.task(job.task);
  return t.components.empty() ? nullptr
                              : &prog_.component(t.components.front());
}

void Scheduler::execute(const JobRef& job, ExecContext& ctx) {
  const Task& t = prog_.task(job.task);
  if (job.phase == 1) {
    // Reconfiguration splice: the subgraph is quiescent; adding the
    // pre-created components and synchronizing them is cheap (§3.4).
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    uint64_t comps = 0;
    for (const auto& [opt, on] : run.pending_flips) {
      (void)on;
      comps += prog_.options()[static_cast<size_t>(opt)].components.size();
    }
    ctx.charge_compute(config_.costs.splice_base_cycles +
                       comps * config_.costs.splice_per_component_cycles);
    return;
  }
  switch (t.kind) {
    case TaskKind::kComponent:
      // Grouped components run back to back within the same job (same
      // core, shared charge accumulator): the §4.1 fusion behaviour.
      for (int comp : t.components) {
        ctx.rebind(&prog_.component(comp));
        prog_.component(comp).run(ctx);
      }
      break;
    case TaskKind::kManagerEnter:
    case TaskKind::kManagerExit:
      poll_manager(t.manager, ctx);
      break;
  }
}

void Scheduler::poll_manager(int mgr_idx, ExecContext& ctx) {
  const ManagerInfo& info = prog_.managers()[static_cast<size_t>(mgr_idx)];
  ManagerRun& run = manager_run_[static_cast<size_t>(mgr_idx)];
  std::lock_guard<std::mutex> lock(run.mutex);
  ctx.charge_compute(config_.costs.manager_poll_cycles);

  EventQueue* queue = prog_.queues().find(info.queue);
  SUP_CHECK(queue != nullptr);
  while (auto ev = queue->poll()) {
    ++run.events_handled;
    for (const sp::EventRule& rule : info.rules) {
      if (rule.event != ev->name) continue;
      switch (rule.action) {
        case sp::EventAction::kEnable:
        case sp::EventAction::kDisable:
        case sp::EventAction::kToggle: {
          // Resolve the option by its spec-level (base) name.
          for (int opt : info.options) {
            const OptionInfo& oi = prog_.options()[static_cast<size_t>(opt)];
            if (oi.base != rule.target) continue;
            bool current = option_active_[static_cast<size_t>(opt)];
            for (const auto& [p, on] : run.pending_flips)
              if (p == opt) current = on;
            bool desired = rule.action == sp::EventAction::kEnable
                               ? true
                               : rule.action == sp::EventAction::kDisable
                                     ? false
                                     : !current;
            // "The event is ignored when the option is already in the
            // required state." (§3.4)
            if (desired == current) continue;
            run.pending_flips.emplace_back(opt, desired);
            if (desired) {
              // Pre-create the option's components now, overlapping with
              // execution, so the quiesced window stays short (§3.4).
              uint64_t n = oi.components.size();
              run.components_created += n;
              ctx.charge_compute(n * config_.costs.component_create_cycles);
            }
          }
          break;
        }
        case sp::EventAction::kForward:
          prog_.queues().get_or_create(rule.target).push(*ev);
          break;
        case sp::EventAction::kReconfigure: {
          const std::string& req =
              rule.payload.empty() ? ev->payload : rule.payload;
          for (int c : info.components) prog_.component(c).reconfigure(req);
          break;
        }
      }
    }
  }
}

std::vector<JobRef> Scheduler::complete(const JobRef& job) {
  std::vector<JobRef> ready;
  const Task& t = prog_.task(job.task);
  ++stats_.jobs_executed;

  if (job.phase == 1) {
    // Apply the configuration flip between iterations.
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    std::lock_guard<std::mutex> lock(run.mutex);
    for (const auto& [opt, on] : run.pending_flips)
      option_active_[static_cast<size_t>(opt)] = on;
    run.pending_flips.clear();
    run.waiting_iter = -1;
    ++stats_.reconfigurations;
    stats_.events_handled += run.events_handled;
    run.events_handled = 0;
    stats_.components_created += run.components_created;
    run.components_created = 0;
    finish(job.task, job.iter, &ready);
    return ready;
  }

  if (t.kind == TaskKind::kManagerEnter) {
    ManagerRun& run = manager_run_[static_cast<size_t>(t.manager)];
    std::lock_guard<std::mutex> lock(run.mutex);
    if (!run.pending_flips.empty()) {
      // Quiesce: the subgraph may still be executing earlier iterations;
      // splice only once the previous iteration has fully exited.
      if (job.iter == 0 || run.last_exit_done >= job.iter - 1) {
        ready.push_back(JobRef{job.task, job.iter, 1});
      } else {
        run.waiting_iter = job.iter;
      }
      return ready;
    }
    stats_.events_handled += run.events_handled;
    run.events_handled = 0;
  }

  finish(job.task, job.iter, &ready);
  return ready;
}

}  // namespace hinch
