// Native execution: a pool of worker threads pulling jobs from a central
// job queue protected by one mutex — exactly the Hinch design the paper
// describes (§1: "automatic load balancing using a central job queue").
//
// Used by the example applications and the correctness tests; the
// simulator backend is what reproduces the paper's cycle counts.
#pragma once

#include "hinch/scheduler.hpp"

namespace hinch {

struct ThreadResult {
  double wall_seconds = 0;
  SchedulerStats sched;
  uint64_t jobs = 0;
};

// Runs all iterations with `workers` threads (>= 1).
ThreadResult run_on_threads(Program& prog, const RunConfig& config,
                            int workers);

}  // namespace hinch
