// Native execution with per-worker work-stealing deques.
//
// Each worker owns a deque: new jobs are pushed and popped LIFO at the
// owner's end (locality — a job's successors run where their inputs are
// warm), idle workers steal FIFO from the opposite end of randomly
// ordered victims. This replaces the seed's single central queue + one
// global mutex, which serialized every dequeue and completion and capped
// wall-clock scaling well below the simulator's modelled speedup. The
// paper's load-balancing contract (§1: "automatic load balancing using a
// central job queue") is preserved observably: any free worker ends up
// running any ready job.
//
// Used by the example applications and the correctness tests; the
// simulator backend is what reproduces the paper's cycle counts.
#pragma once

#include <cstdint>
#include <vector>

#include "hinch/scheduler.hpp"

namespace obs {
class MetricsRegistry;
class TraceSession;
}

namespace hinch {

struct ThreadResult {
  double wall_seconds = 0;
  SchedulerStats sched;
  uint64_t jobs = 0;
  // Executor-level statistics (new with the work-stealing pool).
  uint64_t steals = 0;        // jobs obtained from another worker's deque
  uint64_t idle_parks = 0;    // running -> parked transitions
  std::vector<uint64_t> worker_jobs;  // jobs executed per worker
};

// Runs all iterations with `workers` threads (>= 1). When `trace` is
// non-null (and tracing is compiled in), each worker records job spans,
// steal/park markers and a pending-jobs counter into its own lane,
// stamped in wall-clock nanoseconds since run start (obs/trace.hpp).
// When `metrics` is non-null, workers refresh "live.*" gauges
// (pending jobs, iterations done) as chains fan out and retire; the
// registry is internally locked, so other threads — and policy
// components inside the run — may snapshot() it concurrently while the
// run is in flight.
ThreadResult run_on_threads(Program& prog, const RunConfig& config,
                            int workers, obs::TraceSession* trace = nullptr,
                            obs::MetricsRegistry* metrics = nullptr);

}  // namespace hinch
