#include "hinch/thread_executor.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace hinch {
namespace {

class ThreadRun {
 public:
  ThreadRun(Program& prog, const RunConfig& config)
      : prog_(prog), scheduler_(prog, config) {}

  ThreadResult run(int workers) {
    SUP_CHECK(workers >= 1);
    auto t0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const JobRef& job : scheduler_.start()) queue_.push_back(job);
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([this, w] { worker(w); });
    for (std::thread& t : pool) t.join();
    auto t1 = std::chrono::steady_clock::now();

    SUP_CHECK_MSG(scheduler_.finished(),
                  "worker pool drained with unfinished iterations");
    ThreadResult result;
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.sched = scheduler_.stats();
    result.jobs = jobs_;
    return result;
  }

 private:
  void worker(int id) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] {
        return !queue_.empty() || (running_ == 0 && queue_.empty());
      });
      if (queue_.empty()) {
        // Nothing queued and nothing running: the program is finished
        // (or would be deadlocked, which valid SP programs cannot be).
        cv_.notify_all();
        return;
      }
      JobRef job = queue_.front();
      queue_.pop_front();
      ++running_;
      lock.unlock();

      ExecContext ctx(scheduler_.job_component(job), job.iter, id,
                      &prog_.queues());
      scheduler_.execute(job, ctx);

      lock.lock();
      ++jobs_;
      std::vector<JobRef> newly = scheduler_.complete(job);
      --running_;
      for (const JobRef& j : newly) queue_.push_back(j);
      if (!newly.empty() || running_ == 0) cv_.notify_all();
    }
  }

  Program& prog_;
  Scheduler scheduler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<JobRef> queue_;
  int running_ = 0;
  uint64_t jobs_ = 0;
};

}  // namespace

ThreadResult run_on_threads(Program& prog, const RunConfig& config,
                            int workers) {
  ThreadRun run(prog, config);
  return run.run(workers);
}

}  // namespace hinch
