#include "hinch/thread_executor.hpp"

#include "hinch/session.hpp"
#include "obs/metrics.hpp"

namespace hinch {

// One thread backend, two surfaces: run_on_threads is the degenerate
// one-session case of the SessionExecutor (session.hpp). A fresh pool is
// built per call — same thread count, seeds and deque discipline as a
// server pool — the borrowed program becomes session 0, metrics publish
// unprefixed into the caller's registry (SessionConfig::metrics compat
// path), and the pool's lifetime stats are the run's stats because the
// pool ran nothing else.
ThreadResult run_on_threads(Program& prog, const RunConfig& config,
                            int workers, obs::TraceSession* trace,
                            obs::MetricsRegistry* metrics) {
  SessionExecutor::Config pool;
  pool.workers = workers;
  SessionExecutor exec(pool);

  SessionConfig cfg;
  cfg.run = config;
  cfg.trace = trace;
  cfg.metrics = metrics;
  SessionPtr session = exec.submit(prog, cfg);
  SessionResult done = session->wait();
  SUP_CHECK_MSG(done.status == SessionStatus::kDone,
                "single-session run did not complete");
  exec.shutdown();

  ThreadResult result;
  result.wall_seconds = done.wall_seconds;
  result.sched = done.sched;
  result.jobs = done.jobs;
  SessionExecutor::PoolStats stats = exec.pool_stats();
  result.steals = stats.steals;
  result.idle_parks = stats.idle_parks;
  result.worker_jobs = std::move(stats.worker_jobs);
  return result;
}

}  // namespace hinch
