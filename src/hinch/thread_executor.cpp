#include "hinch/thread_executor.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hinch {
namespace {

// splitmix64: deterministic per-run worker RNG for victim selection.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class ThreadRun {
  // One per worker, cache-line padded so deque locks and counters of
  // neighbouring workers do not false-share. The statistics counters are
  // owner-written relaxed atomics: only the owning worker increments
  // them, but a metrics/trace snapshot may read them while the run is
  // still in flight, so plain uint64_t would be a torn/racy read.
  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<JobRef> jobs;  // owner: push/pop back (LIFO); thief: front
    uint64_t rng = 0;
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> parks{0};
  };

 public:
  ThreadRun(Program& prog, const RunConfig& config)
      : prog_(prog), scheduler_(prog, config) {}

  ThreadResult run(int workers, obs::TraceSession* trace,
                   obs::MetricsRegistry* metrics) {
    SUP_CHECK(workers >= 1);
    workers_ = workers;
    metrics_ = metrics;
    auto t0 = std::chrono::steady_clock::now();
    if (obs::kTraceCompiledIn && trace != nullptr) {
      trace_ = trace;
      trace_->begin_run(workers, obs::ClockDomain::kWallNanos);
      task_names_.reserve(prog_.tasks().size());
      for (const Task& t : prog_.tasks()) {
        std::string label =
            t.label.empty() ? "task" + std::to_string(t.id) : t.label;
        task_names_.push_back(trace_->intern(label));
      }
      steal_name_ = trace_->intern("steal");
      park_name_ = trace_->intern("park");
      reconfig_name_ = trace_->intern("reconfiguration");
      pending_name_ = trace_->intern("pending jobs");
      trace_t0_ = t0;
    }

    slots_ = std::vector<Worker>(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      // Deterministic per-run seed: same program + worker count -> same
      // victim sequences (no wall-clock or address entropy).
      slots_[static_cast<size_t>(w)].rng =
          0x853C49E6748FEA9BULL ^ (static_cast<uint64_t>(w + 1) * 0x9E37ULL);
    }

    std::vector<JobRef> initial = scheduler_.start();
    pending_.store(static_cast<int64_t>(initial.size()),
                   std::memory_order_relaxed);
    if (initial.empty()) {
      done_.store(true, std::memory_order_relaxed);
    } else {
      // Spread the initial wavefront round-robin so workers start busy.
      for (size_t i = 0; i < initial.size(); ++i)
        slots_[i % static_cast<size_t>(workers)].jobs.push_back(initial[i]);
    }

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([this, w] { worker_loop(w); });
    for (std::thread& t : pool) t.join();
    auto t1 = std::chrono::steady_clock::now();

    SUP_CHECK_MSG(scheduler_.finished(),
                  "worker pool drained with unfinished iterations");
    ThreadResult result;
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    result.sched = scheduler_.stats();
    result.worker_jobs.reserve(slots_.size());
    for (const Worker& w : slots_) {
      uint64_t executed = w.executed.load(std::memory_order_relaxed);
      result.jobs += executed;
      result.steals += w.steals.load(std::memory_order_relaxed);
      result.idle_parks += w.parks.load(std::memory_order_relaxed);
      result.worker_jobs.push_back(executed);
    }
    return result;
  }

 private:
  void worker_loop(int id) {
    Worker& self = slots_[static_cast<size_t>(id)];
    JobRef job;
    int failed_sweeps = 0;
    for (;;) {
      if (pop_own(self, &job) || steal(id, &job)) {
        failed_sweeps = 0;
        run_job(id, job);
        continue;
      }
      if (done_.load(std::memory_order_acquire)) return;
      // Spin through a few sweeps before parking: job supply is bursty
      // (a completion fans out a whole wavefront at once).
      if (++failed_sweeps < 4) {
        std::this_thread::yield();
        continue;
      }
      failed_sweeps = 0;
      park(self);
    }
  }

  void run_job(int id, JobRef job) {
    Worker& self = slots_[static_cast<size_t>(id)];
    // Chain loop: run the job, then directly continue with its first
    // child — for the dominant one-successor case (the self-dependency
    // chain of a task across iterations) this touches neither the deque
    // nor the pending counter: the parent's "1 pending" simply transfers
    // to the child. Extra children are published for thieves.
    obs::TraceRecorder* rec =
        trace_ != nullptr ? trace_->recorder(id) : nullptr;
    for (;;) {
      uint64_t t_start = rec != nullptr ? now_ns() : 0;
      ExecContext ctx(scheduler_.job_component(job), job.iter, id,
                      &prog_.queues(), metrics_);
      scheduler_.execute(job, ctx);
      std::vector<JobRef> newly = scheduler_.complete(job);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      if (rec != nullptr) {
        uint64_t t_end = now_ns();
        rec->span(task_names_[static_cast<size_t>(job.task)],
                  obs::Category::kTask, t_start, t_end - t_start, job.iter,
                  job.task);
        if (job.phase == 1)
          rec->instant(reconfig_name_, obs::Category::kReconfig, t_end,
                       job.iter, job.task);
      }
      if (newly.empty()) break;
      if (newly.size() > 1) {
        // Count the extra children before continuing so `pending_` can
        // never dip to zero while work still exists.
        int64_t now_pending =
            pending_.fetch_add(static_cast<int64_t>(newly.size()) - 1,
                               std::memory_order_relaxed) +
            static_cast<int64_t>(newly.size()) - 1;
        if (rec != nullptr)
          rec->counter(pending_name_, obs::Category::kSched, now_ns(),
                       now_pending);
        if (metrics_ != nullptr) publish_live(now_pending);
        {
          std::lock_guard<std::mutex> lock(self.mu);
          for (size_t i = 1; i < newly.size(); ++i)
            self.jobs.push_back(newly[i]);
        }
        wake_sleepers(newly.size() - 1);
      }
      job = newly[0];
    }
    // The chain retires: drop its pending unit.
    if (rec != nullptr)
      rec->counter(pending_name_, obs::Category::kSched, now_ns(),
                   pending_.load(std::memory_order_relaxed) - 1);
    if (metrics_ != nullptr)
      publish_live(pending_.load(std::memory_order_relaxed) - 1);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last job in the system: the run is over.
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        done_.store(true, std::memory_order_release);
      }
      idle_cv_.notify_all();
    }
  }

  bool pop_own(Worker& self, JobRef* out) {
    std::lock_guard<std::mutex> lock(self.mu);
    if (self.jobs.empty()) return false;
    *out = self.jobs.back();
    self.jobs.pop_back();
    return true;
  }

  bool steal(int id, JobRef* out) {
    int n = workers_;
    if (n <= 1) return false;
    Worker& self = slots_[static_cast<size_t>(id)];
    // Randomized victim order (deterministic seed): scan all other
    // workers starting at a random offset. try_lock keeps thieves from
    // convoying on a busy victim; a missed deque is retried on the next
    // sweep (termination never depends on sweep completeness — the
    // pending_ counter governs it).
    int start = static_cast<int>(splitmix64(self.rng) %
                                 static_cast<uint64_t>(n - 1));
    for (int i = 0; i < n - 1; ++i) {
      int victim = (start + i) % (n - 1);
      if (victim >= id) ++victim;  // skip self
      Worker& v = slots_[static_cast<size_t>(victim)];
      std::unique_lock<std::mutex> lock(v.mu, std::try_to_lock);
      if (!lock.owns_lock() || v.jobs.empty()) continue;
      *out = v.jobs.front();  // FIFO end: oldest, largest-grain work
      v.jobs.pop_front();
      self.steals.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr)
        trace_->recorder(id)->instant(steal_name_, obs::Category::kSched,
                                      now_ns(), victim, out->task);
      return true;
    }
    return false;
  }

  void park(Worker& self) {
    if (trace_ != nullptr) {
      int id = static_cast<int>(&self - slots_.data());
      trace_->recorder(id)->instant(park_name_, obs::Category::kSched,
                                    now_ns(), 0, -1);
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (done_.load(std::memory_order_relaxed)) return;
    uint64_t epoch = wake_epoch_;
    ++sleepers_;
    self.parks.fetch_add(1, std::memory_order_relaxed);
    // Bounded wait: a producer that observed sleepers_ == 0 an instant
    // before we got here may skip its wakeup; the timeout turns that
    // lost-wakeup window into a short stall instead of a hang.
    idle_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
      return wake_epoch_ != epoch || done_.load(std::memory_order_relaxed);
    });
    --sleepers_;
  }

  void wake_sleepers(size_t new_jobs) {
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      ++wake_epoch_;
    }
    if (new_jobs > 1)
      idle_cv_.notify_all();
    else
      idle_cv_.notify_one();
  }

  // Refresh "live.*" gauges at the points the pending counter already
  // changes (chain fan-out and chain retire). Workers race on the same
  // names; the registry's internal lock makes each write atomic, and the
  // gauges are approximations by design — the policy reads a consistent
  // snapshot, not an exact instant.
  void publish_live(int64_t pending_now) {
    metrics_->set("live.pending_jobs", pending_now);
    metrics_->set("live.iterations_done", scheduler_.iterations_done());
  }

  uint64_t now_ns() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - trace_t0_)
            .count());
  }

  Program& prog_;
  Scheduler scheduler_;
  int workers_ = 1;
  std::vector<Worker> slots_;

  obs::MetricsRegistry* metrics_ = nullptr;  // nullptr: no live publication
  obs::TraceSession* trace_ = nullptr;  // nullptr when tracing is off
  std::chrono::steady_clock::time_point trace_t0_{};
  std::vector<uint16_t> task_names_;
  uint16_t steal_name_ = 0;
  uint16_t park_name_ = 0;
  uint16_t reconfig_name_ = 0;
  uint16_t pending_name_ = 0;

  // Jobs enqueued or running. 0 <=> the run is complete (children are
  // counted before their parent retires).
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> done_{false};

  // Idle/termination protocol (see docs/RUNTIME.md).
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  uint64_t wake_epoch_ = 0;       // guarded by idle_mu_
  std::atomic<int> sleepers_{0};  // relaxed hint for producers
};

}  // namespace

ThreadResult run_on_threads(Program& prog, const RunConfig& config,
                            int workers, obs::TraceSession* trace,
                            obs::MetricsRegistry* metrics) {
  ThreadRun run(prog, config);
  return run.run(workers, trace, metrics);
}

}  // namespace hinch
