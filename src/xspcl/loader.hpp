// One-call conveniences: XSPCL text/file -> validated SP graph -> live
// Hinch Program (Fig. 1's XSPCL -> RTS path, done at load time instead
// of through generated C++; codegen.hpp provides the generated-code
// path).
#pragma once

#include <memory>

#include "hinch/program.hpp"
#include "sp/graph.hpp"
#include "support/status.hpp"

namespace xspcl {

// Parse + elaborate + validate.
support::Result<sp::NodePtr> load_string(std::string_view text);
support::Result<sp::NodePtr> load_file(const std::string& path);

// Parse + elaborate + validate + instantiate with the given registry.
support::Result<std::unique_ptr<hinch::Program>> build_program(
    std::string_view text, const hinch::ComponentRegistry& registry,
    const hinch::Program::BuildConfig& config = {});
support::Result<std::unique_ptr<hinch::Program>> build_program_from_file(
    const std::string& path, const hinch::ComponentRegistry& registry,
    const hinch::Program::BuildConfig& config = {});

}  // namespace xspcl
