// XSPCL -> C++ code generation: the paper's conversion tool emits glue
// code that builds the task graph and hands it to the Hinch RTS (§1,
// §3). The generated source contains `build_graph()` reconstructing the
// fully elaborated SP graph, plus (optionally) a main() that registers
// the standard component library, builds the Program, and runs it.
//
// As in the paper, this glue only executes at initialization time; the
// steady-state iteration loop is entirely inside the runtime.
#pragma once

#include <string>

#include "sp/graph.hpp"

namespace xspcl {

struct CodegenOptions {
  // Identifier-safe application name: namespace `xspcl_gen_<app_name>`.
  std::string app_name = "app";
  // Also emit a main() that runs the application on the simulator or the
  // thread backend (--backend=sim|threads --cores=N --iterations=N).
  bool emit_main = true;
  int64_t default_iterations = 32;
};

// Returns the complete C++ translation unit.
std::string generate_cpp(const sp::Node& root, const CodegenOptions& options);

}  // namespace xspcl
