#include "xspcl/spec_cache.hpp"

#include <utility>

#include "xspcl/loader.hpp"

namespace xspcl {
namespace {

// Composite key: fingerprint and salt first (short, discriminate fast),
// then the full spec text. '\n' cannot appear in a fingerprint and the
// '\0' separators cannot appear in well-formed XML, so the key is
// injective over (text, fingerprint, salt).
std::string make_key(std::string_view text, const sp::PassOptions& passes,
                     std::string_view salt) {
  std::string key = sp::pass_fingerprint(passes);
  key += '\0';
  key.append(salt.data(), salt.size());
  key += '\0';
  key.append(text.data(), text.size());
  return key;
}

}  // namespace

support::Result<const sp::Node*> SpecCache::load(std::string_view text,
                                                 const sp::PassOptions& passes,
                                                 std::string_view salt) {
  std::string key = make_key(text, passes, salt);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second.get();
    }
    ++stats_.misses;
  }
  // Compile outside the lock: a slow front-end must not serialize hits
  // on other specs. Two racing misses both compile; the FIRST insert
  // wins and the loser drops its own graph (both are equal by
  // construction). First-wins is load-bearing: pointers already handed
  // out must stay valid until clear(), so an entry is never replaced.
  SUP_ASSIGN_OR_RETURN(sp::NodePtr graph, load_string(text));
  sp::PassManager pipeline = sp::make_pipeline(passes);
  if (!pipeline.empty()) {
    SUP_ASSIGN_OR_RETURN(graph, pipeline.run(std::move(graph)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::move(key),
                                             std::move(graph));
  (void)inserted;
  return it->second.get();
}

support::Result<std::unique_ptr<hinch::Program>> SpecCache::build_program(
    std::string_view text, const hinch::ComponentRegistry& registry,
    const hinch::Program::BuildConfig& config, std::string_view salt) {
  SUP_ASSIGN_OR_RETURN(const sp::Node* graph,
                       load(text, config.passes, salt));
  hinch::Program::BuildConfig compiled = config;
  compiled.passes = sp::PassOptions::none();
  return hinch::Program::build(*graph, registry, compiled);
}

SpecCache::Stats SpecCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SpecCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SpecCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace xspcl
