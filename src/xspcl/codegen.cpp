#include "xspcl/codegen.hpp"

#include "support/strings.hpp"

namespace xspcl {
namespace {

std::string cpp_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string quoted(const std::string& s) { return "\"" + cpp_escape(s) + "\""; }

class Emitter {
 public:
  // Emits statements building the node; returns the variable name.
  std::string emit(const sp::Node& n) {
    switch (n.kind()) {
      case sp::NodeKind::kLeaf: {
        std::string spec = fresh("spec");
        line("sp::LeafSpec " + spec + ";");
        line(spec + ".instance = " + quoted(n.leaf.instance) + ";");
        line(spec + ".klass = " + quoted(n.leaf.klass) + ";");
        for (const sp::Param& p : n.leaf.params)
          line(spec + ".params.push_back({" + quoted(p.name) + ", " +
               quoted(p.value) + "});");
        for (const sp::PortBinding& b : n.leaf.inputs)
          line(spec + ".inputs.push_back({" + quoted(b.port) + ", " +
               quoted(b.stream) + "});");
        for (const sp::PortBinding& b : n.leaf.outputs)
          line(spec + ".outputs.push_back({" + quoted(b.port) + ", " +
               quoted(b.stream) + "});");
        if (!n.leaf.initial_reconfig.empty())
          line(spec + ".initial_reconfig = " +
               quoted(n.leaf.initial_reconfig) + ";");
        std::string var = fresh("node");
        line("sp::NodePtr " + var + " = sp::make_leaf(std::move(" + spec +
             "));");
        return var;
      }
      case sp::NodeKind::kSeq: {
        std::string vec = emit_children(n);
        std::string var = fresh("node");
        line("sp::NodePtr " + var + " = sp::make_seq(std::move(" + vec +
             "));");
        return var;
      }
      case sp::NodeKind::kPar: {
        std::string vec = emit_children(n);
        std::string var = fresh("node");
        line(support::format(
            "sp::NodePtr %s = sp::make_par(sp::ParShape::%s, %d, "
            "std::move(%s));",
            var.c_str(),
            n.shape == sp::ParShape::kTask
                ? "kTask"
                : n.shape == sp::ParShape::kSlice ? "kSlice" : "kCrossDep",
            n.replicas, vec.c_str()));
        return var;
      }
      case sp::NodeKind::kOption: {
        std::string body = emit(*n.children[0]);
        std::string var = fresh("node");
        line("sp::NodePtr " + var + " = sp::make_option(" +
             quoted(n.option_name) + ", " +
             (n.initially_enabled ? "true" : "false") + ", std::move(" +
             body + "));");
        return var;
      }
      case sp::NodeKind::kGroup: {
        std::string vec = emit_children(n);
        std::string var = fresh("node");
        line("sp::NodePtr " + var + " = sp::make_group(std::move(" + vec +
             "));");
        return var;
      }
      case sp::NodeKind::kManager: {
        std::string rules = fresh("rules");
        line("std::vector<sp::EventRule> " + rules + ";");
        for (const sp::EventRule& r : n.rules) {
          const char* action =
              r.action == sp::EventAction::kEnable     ? "kEnable"
              : r.action == sp::EventAction::kDisable  ? "kDisable"
              : r.action == sp::EventAction::kToggle   ? "kToggle"
              : r.action == sp::EventAction::kForward  ? "kForward"
                                                       : "kReconfigure";
          line(rules + ".push_back({" + quoted(r.event) +
               ", sp::EventAction::" + action + ", " + quoted(r.target) +
               ", " + quoted(r.payload) + "});");
        }
        std::string body = emit(*n.children[0]);
        std::string var = fresh("node");
        line("sp::NodePtr " + var + " = sp::make_manager(" +
             quoted(n.manager_name) + ", " + quoted(n.event_queue) +
             ", std::move(" + rules + "), std::move(" + body + "));");
        return var;
      }
    }
    SUP_CHECK(false);
    return "";
  }

  std::string emit_children(const sp::Node& n) {
    std::vector<std::string> vars;
    vars.reserve(n.children.size());
    for (const sp::NodePtr& c : n.children) vars.push_back(emit(*c));
    std::string vec = fresh("children");
    line("std::vector<sp::NodePtr> " + vec + ";");
    for (const std::string& v : vars)
      line(vec + ".push_back(std::move(" + v + "));");
    return vec;
  }

  void line(const std::string& s) { body_ += "  " + s + "\n"; }
  const std::string& body() const { return body_; }

 private:
  std::string fresh(const char* stem) {
    return support::format("%s%d", stem, next_++);
  }

  std::string body_;
  int next_ = 0;
};

}  // namespace

std::string generate_cpp(const sp::Node& root,
                         const CodegenOptions& options) {
  Emitter emitter;
  std::string result_var = emitter.emit(root);

  std::string out;
  out +=
      "// Generated by xspclc from an XSPCL specification. Do not edit.\n"
      "//\n"
      "// This is the glue code between the components and the Hinch run\n"
      "// time system; it executes only at initialization time.\n"
      "#include <cstdio>\n"
      "#include <cstring>\n"
      "#include <cstdlib>\n"
      "#include <vector>\n"
      "\n"
      "#include \"sp/graph.hpp\"\n";
  if (options.emit_main) {
    out +=
        "#include \"components/components.hpp\"\n"
        "#include \"hinch/runtime.hpp\"\n"
        "#include \"sp/validate.hpp\"\n";
  }
  out += "\nnamespace xspcl_gen_" + options.app_name + " {\n\n";
  out += "sp::NodePtr build_graph() {\n";
  out += emitter.body();
  out += "  return " + result_var + ";\n";
  out += "}\n\n";
  out += "}  // namespace xspcl_gen_" + options.app_name + "\n";

  if (options.emit_main) {
    out += support::format(R"(
int main(int argc, char** argv) {
  int cores = 1;
  long long iterations = %lld;
  bool threads = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cores=", 8) == 0)
      cores = std::atoi(argv[i] + 8);
    else if (std::strncmp(argv[i], "--iterations=", 13) == 0)
      iterations = std::atoll(argv[i] + 13);
    else if (std::strcmp(argv[i], "--backend=threads") == 0)
      threads = true;
    else if (std::strcmp(argv[i], "--backend=sim") != 0) {
      std::fprintf(stderr, "usage: %%s [--backend=sim|threads] [--cores=N]"
                           " [--iterations=N]\n", argv[0]);
      return 2;
    }
  }
  sp::NodePtr graph = xspcl_gen_%s::build_graph();
  support::Status valid = sp::validate(*graph);
  if (!valid.is_ok()) {
    std::fprintf(stderr, "invalid graph: %%s\n", valid.to_string().c_str());
    return 1;
  }
  components::register_standard_globally();
  auto prog = hinch::Program::build(*graph,
                                    hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "build failed: %%s\n",
                 prog.status().to_string().c_str());
    return 1;
  }
  hinch::RunConfig run{};
  run.iterations = iterations;
  if (threads) {
    hinch::ThreadResult r =
        hinch::run_on_threads(*prog.value(), run, cores);
    std::printf("backend=threads workers=%%d iterations=%%lld "
                "wall_seconds=%%.6f jobs=%%llu\n",
                cores, (long long)iterations, r.wall_seconds,
                (unsigned long long)r.jobs);
  } else {
    hinch::SimParams sim{};
    sim.cores = cores;
    hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
    std::printf("backend=sim cores=%%d iterations=%%lld cycles=%%llu "
                "jobs=%%llu l1_hit_rate=%%.3f\n",
                cores, (long long)iterations,
                (unsigned long long)r.total_cycles,
                (unsigned long long)r.jobs, r.mem.l1_hit_rate());
  }
  return 0;
}
)",
                           static_cast<long long>(options.default_iterations),
                           options.app_name.c_str());
  }
  return out;
}

}  // namespace xspcl
