#include "xspcl/parser.hpp"

#include <filesystem>
#include <set>

#include "support/strings.hpp"
#include "xml/parser.hpp"

namespace xspcl {
namespace {

using ast::Node;
using ast::NodePtr;

support::Status err(const xml::Element& e, const std::string& what) {
  return support::invalid_argument("XSPCL: " + e.describe() + ": " + what);
}

support::Result<NodePtr> parse_body(const xml::Element& e);

support::Result<NodePtr> parse_component(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kComponent;
  node->pos = e.position();
  SUP_ASSIGN_OR_RETURN(node->name, e.require_attr("name"));
  SUP_ASSIGN_OR_RETURN(node->klass, e.require_attr("class"));
  if (!support::is_identifier(node->name))
    return err(e, "component name '" + node->name +
                   "' is not a valid identifier");
  for (const xml::ElementPtr& c : e.children()) {
    if (c->name() == "param") {
      SUP_ASSIGN_OR_RETURN(std::string pname, c->require_attr("name"));
      SUP_ASSIGN_OR_RETURN(std::string pvalue, c->require_attr("value"));
      node->params.push_back({std::move(pname), std::move(pvalue)});
    } else if (c->name() == "inport" || c->name() == "outport") {
      SUP_ASSIGN_OR_RETURN(std::string port, c->require_attr("name"));
      SUP_ASSIGN_OR_RETURN(std::string stream, c->require_attr("stream"));
      auto& list = c->name() == "inport" ? node->inputs : node->outputs;
      list.push_back({std::move(port), std::move(stream)});
    } else if (c->name() == "reconfig") {
      SUP_ASSIGN_OR_RETURN(node->reconfig, c->require_attr("request"));
    } else {
      return err(*c, "unexpected tag inside <component>");
    }
  }
  return NodePtr(std::move(node));
}

support::Result<NodePtr> parse_call(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kCall;
  node->pos = e.position();
  SUP_ASSIGN_OR_RETURN(node->callee, e.require_attr("procedure"));
  node->call_name = e.attr_or("name", node->callee);
  for (const xml::ElementPtr& c : e.children()) {
    if (c->name() != "arg") return err(*c, "only <arg> allowed in <call>");
    ast::Arg arg;
    SUP_ASSIGN_OR_RETURN(arg.name, c->require_attr("name"));
    if (const std::string* s = c->find_attr("stream")) {
      arg.value = *s;
      arg.is_stream = true;
    } else if (const std::string* v = c->find_attr("value")) {
      arg.value = *v;
      arg.is_stream = false;
    } else {
      return err(*c, "<arg> needs a stream= or value= attribute");
    }
    node->args.push_back(std::move(arg));
  }
  return NodePtr(std::move(node));
}

support::Result<NodePtr> parse_parallel(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kParallel;
  node->pos = e.position();
  SUP_ASSIGN_OR_RETURN(std::string shape, e.require_attr("shape"));
  if (shape == "task") {
    node->shape = sp::ParShape::kTask;
  } else if (shape == "slice") {
    node->shape = sp::ParShape::kSlice;
  } else if (shape == "crossdep") {
    node->shape = sp::ParShape::kCrossDep;
  } else {
    return err(e, "unknown parallel shape '" + shape +
                   "' (task, slice, crossdep)");
  }
  node->replicas_expr = e.attr_or("n", "1");
  if (node->shape != sp::ParShape::kTask && !e.has_attr("n"))
    return err(e, "slice/crossdep parallel regions need an n= attribute");
  for (const xml::ElementPtr& c : e.children()) {
    if (c->name() != "parblock")
      return err(*c, "only <parblock> allowed in <parallel>");
    SUP_ASSIGN_OR_RETURN(NodePtr block, parse_body(*c));
    node->children.push_back(std::move(block));
  }
  if (node->children.empty())
    return err(e, "<parallel> needs at least one <parblock>");
  return NodePtr(std::move(node));
}

// <group>: components fused into one schedulable entity (§4.1).
support::Result<NodePtr> parse_group(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kGroup;
  node->pos = e.position();
  for (const xml::ElementPtr& c : e.children()) {
    if (c->name() != "component")
      return err(*c, "only <component> allowed inside <group>");
    SUP_ASSIGN_OR_RETURN(NodePtr comp, parse_component(*c));
    node->children.push_back(std::move(comp));
  }
  if (node->children.empty())
    return err(e, "<group> needs at least one <component>");
  return NodePtr(std::move(node));
}

support::Result<NodePtr> parse_option(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kOption;
  node->pos = e.position();
  SUP_ASSIGN_OR_RETURN(node->option_name, e.require_attr("name"));
  std::string enabled = e.attr_or("enabled", "true");
  if (enabled == "true" || enabled == "1") {
    node->enabled = true;
  } else if (enabled == "false" || enabled == "0") {
    node->enabled = false;
  } else {
    return err(e, "enabled= must be true/false");
  }
  SUP_ASSIGN_OR_RETURN(NodePtr body, parse_body(e));
  node->children.push_back(std::move(body));
  return NodePtr(std::move(node));
}

support::Result<NodePtr> parse_manager(const xml::Element& e) {
  auto node = std::make_unique<Node>();
  node->kind = ast::Kind::kManager;
  node->pos = e.position();
  SUP_ASSIGN_OR_RETURN(node->manager_name, e.require_attr("name"));
  SUP_ASSIGN_OR_RETURN(node->queue, e.require_attr("queue"));
  const xml::Element* body_elem = nullptr;
  for (const xml::ElementPtr& c : e.children()) {
    if (c->name() == "on") {
      sp::EventRule rule;
      SUP_ASSIGN_OR_RETURN(rule.event, c->require_attr("event"));
      SUP_ASSIGN_OR_RETURN(std::string action, c->require_attr("action"));
      if (action == "enable" || action == "disable" || action == "toggle") {
        rule.action = action == "enable" ? sp::EventAction::kEnable
                      : action == "disable" ? sp::EventAction::kDisable
                                            : sp::EventAction::kToggle;
        SUP_ASSIGN_OR_RETURN(rule.target, c->require_attr("option"));
      } else if (action == "forward") {
        rule.action = sp::EventAction::kForward;
        SUP_ASSIGN_OR_RETURN(rule.target, c->require_attr("queue"));
      } else if (action == "reconfigure") {
        rule.action = sp::EventAction::kReconfigure;
        rule.payload = c->attr_or("payload", "");
      } else {
        return err(*c, "unknown action '" + action +
                       "' (enable, disable, toggle, forward, reconfigure)");
      }
      node->rules.push_back(std::move(rule));
    } else if (c->name() == "body") {
      if (body_elem) return err(*c, "<manager> has more than one <body>");
      body_elem = c.get();
    } else {
      return err(*c, "unexpected tag inside <manager>");
    }
  }
  if (!body_elem) return err(e, "<manager> needs a <body>");
  SUP_ASSIGN_OR_RETURN(NodePtr body, parse_body(*body_elem));
  node->children.push_back(std::move(body));
  return NodePtr(std::move(node));
}

// Parse the children of `e` as a sequential body (a kSeq node).
support::Result<NodePtr> parse_body(const xml::Element& e) {
  auto seq = std::make_unique<Node>();
  seq->kind = ast::Kind::kSeq;
  seq->pos = e.position();
  for (const xml::ElementPtr& c : e.children()) {
    support::Result<NodePtr> child = [&]() -> support::Result<NodePtr> {
      if (c->name() == "component") return parse_component(*c);
      if (c->name() == "call") return parse_call(*c);
      if (c->name() == "parallel") return parse_parallel(*c);
      if (c->name() == "group") return parse_group(*c);
      if (c->name() == "option") return parse_option(*c);
      if (c->name() == "manager") return parse_manager(*c);
      return support::Result<NodePtr>(
          err(*c, "unexpected tag '" + c->name() + "' in a body"));
    }();
    if (!child.is_ok()) return child.status();
    seq->children.push_back(std::move(child).take());
  }
  return NodePtr(std::move(seq));
}

// Parse one <procedure> element into the program.
support::Status parse_procedure(const xml::Element& c,
                                ast::Program* program) {
  ast::Procedure proc;
  proc.pos = c.position();
  SUP_ASSIGN_OR_RETURN(proc.name, c.require_attr("name"));
  if (program->find(proc.name))
    return err(c, "duplicate procedure '" + proc.name + "'");
  const xml::Element* body_elem = nullptr;
  for (const xml::ElementPtr& p : c.children()) {
    if (p->name() == "formal") {
      ast::Formal f;
      SUP_ASSIGN_OR_RETURN(f.name, p->require_attr("name"));
      std::string kind = p->attr_or("kind", "value");
      if (kind == "stream") {
        f.kind = ast::Formal::Kind::kStream;
      } else if (kind == "value") {
        f.kind = ast::Formal::Kind::kValue;
      } else {
        return err(*p, "formal kind must be stream or value");
      }
      if (const std::string* d = p->find_attr("default")) {
        if (f.kind == ast::Formal::Kind::kStream)
          return err(*p, "stream formals cannot have defaults");
        f.fallback = *d;
        f.has_default = true;
      }
      if (proc.find_formal(f.name))
        return err(*p, "duplicate formal '" + f.name + "'");
      proc.formals.push_back(std::move(f));
    } else if (p->name() == "body") {
      if (body_elem) return err(*p, "procedure has more than one <body>");
      body_elem = p.get();
    } else {
      return err(*p, "unexpected tag inside <procedure>");
    }
  }
  if (!body_elem)
    return err(c, "procedure '" + proc.name + "' has no <body>");
  SUP_ASSIGN_OR_RETURN(proc.body, parse_body(*body_elem));
  program->procedures.push_back(std::move(proc));
  return support::Status::ok();
}

support::Status parse_into(const xml::Element& root,
                           const std::string& base_dir,
                           std::set<std::string>* visited,
                           ast::Program* program, bool is_root);

// Handle a top-level <include file="..."/>: parse the referenced file
// and merge its procedures.
support::Status parse_include(const xml::Element& e,
                              const std::string& base_dir,
                              std::set<std::string>* visited,
                              ast::Program* program) {
  SUP_ASSIGN_OR_RETURN(std::string file, e.require_attr("file"));
  std::filesystem::path path(file);
  if (path.is_relative()) path = std::filesystem::path(base_dir) / path;
  std::error_code ec;
  std::filesystem::path canonical = std::filesystem::weakly_canonical(path,
                                                                      ec);
  std::string key = ec ? path.string() : canonical.string();
  if (!visited->insert(key).second)
    return err(e, "include cycle through '" + key + "'");
  auto doc = xml::parse_file(path.string());
  if (!doc.is_ok())
    return support::invalid_argument("while including '" + path.string() +
                                     "': " + doc.status().message());
  return parse_into(*doc.value(), path.parent_path().string(), visited,
                    program, /*is_root=*/false);
}

support::Status parse_into(const xml::Element& root,
                           const std::string& base_dir,
                           std::set<std::string>* visited,
                           ast::Program* program, bool is_root) {
  if (root.name() != "xspcl")
    return err(root, "root element must be <xspcl>");
  for (const xml::ElementPtr& c : root.children()) {
    if (c->name() == "include") {
      SUP_RETURN_IF_ERROR(parse_include(*c, base_dir, visited, program));
      continue;
    }
    if (c->name() != "procedure")
      return err(*c, "only <procedure> and <include> allowed at top level");
    SUP_RETURN_IF_ERROR(parse_procedure(*c, program));
  }
  if (is_root && !program->find("main"))
    return support::invalid_argument(
        "XSPCL: no 'main' procedure (§3.2: the top-most procedure must be "
        "named 'main')");
  return support::Status::ok();
}

}  // namespace

support::Result<ast::Program> parse(const xml::Element& root,
                                    const std::string& base_dir) {
  ast::Program program;
  std::set<std::string> visited;
  SUP_RETURN_IF_ERROR(
      parse_into(root, base_dir, &visited, &program, /*is_root=*/true));
  return program;
}

support::Result<ast::Program> parse_string(std::string_view text) {
  SUP_ASSIGN_OR_RETURN(xml::ElementPtr root, xml::parse(text));
  return parse(*root);
}

support::Result<ast::Program> parse_file(const std::string& path) {
  SUP_ASSIGN_OR_RETURN(xml::ElementPtr root, xml::parse_file(path));
  // Relative <include> paths resolve against the including file.
  return parse(*root, std::filesystem::path(path).parent_path().string());
}

}  // namespace xspcl
