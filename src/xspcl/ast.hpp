// Abstract syntax of XSPCL (§3), as parsed from the XML concrete syntax.
//
// Concrete syntax summary (tags were stripped from the published PDF;
// this grammar follows the paper's prose and its SPC-XML ancestry):
//
//   <xspcl>
//     <procedure name="main">
//       <body> ...structures... </body>
//     </procedure>
//     <procedure name="scaler_chain">
//       <formal name="in"     kind="stream"/>
//       <formal name="factor" kind="value" default="4"/>
//       <body> ... </body>
//     </procedure>
//   </xspcl>
//
// Structures inside <body> (executed sequentially unless parallel):
//
//   <component name="down" class="downscale">
//     <param name="factor" value="$factor"/>
//     <inport  name="in"  stream="$in"/>
//     <outport name="out" stream="small"/>
//     <reconfig request="pos=10,10"/>            (optional, §3.1)
//   </component>
//
//   <call procedure="scaler_chain" name="left">
//     <arg name="in" stream="video1"/>
//     <arg name="factor" value="3"/>
//   </call>
//
//   <parallel shape="task|slice|crossdep" n="8">
//     <parblock> ... </parblock> ...
//   </parallel>                                   (§3.3)
//
//   <group> <component .../> <component .../> </group>
//     components scheduled as one entity (§4.1 fusion; extension)
//
//   <manager name="m" queue="ui">
//     <on event="key2" action="toggle" option="pip2"/>
//     <on event="fwd"  action="forward" queue="other"/>
//     <on event="move" action="reconfigure" payload="pos=64,64"/>
//     <body>
//       <option name="pip2" enabled="false"> ... </option>
//     </body>
//   </manager>                                    (§3.4)
//
// `$name` / `${name}` in attribute values substitute procedure formals.
// Stream names are procedure-local unless bound to a stream formal.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sp/graph.hpp"
#include "xml/dom.hpp"

namespace xspcl::ast {

enum class Kind { kSeq, kComponent, kCall, kParallel, kOption, kManager, kGroup };

struct Arg {
  std::string name;
  std::string value;
  bool is_stream = false;  // <arg ... stream=.../> vs value=...
};

struct Formal {
  enum class Kind { kStream, kValue };
  std::string name;
  Kind kind = Kind::kValue;
  std::string fallback;  // default value (kValue only)
  bool has_default = false;
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  Kind kind = Kind::kSeq;
  xml::Position pos;

  // kComponent
  std::string name;
  std::string klass;
  std::vector<sp::Param> params;
  std::vector<sp::PortBinding> inputs;
  std::vector<sp::PortBinding> outputs;
  std::string reconfig;

  // kCall
  std::string callee;
  std::string call_name;  // scope label; defaults to the callee name
  std::vector<Arg> args;

  // kParallel
  sp::ParShape shape = sp::ParShape::kTask;
  std::string replicas_expr;  // may reference a formal

  // kOption
  std::string option_name;
  bool enabled = true;

  // kManager
  std::string manager_name;
  std::string queue;
  std::vector<sp::EventRule> rules;

  // kSeq: steps. kParallel: parblocks (each kSeq). kOption/kManager: one
  // kSeq body.
  std::vector<NodePtr> children;
};

struct Procedure {
  std::string name;
  std::vector<Formal> formals;
  NodePtr body;  // kSeq
  xml::Position pos;

  const Formal* find_formal(const std::string& n) const {
    for (const Formal& f : formals)
      if (f.name == n) return &f;
    return nullptr;
  }
};

struct Program {
  std::vector<Procedure> procedures;

  const Procedure* find(const std::string& name) const {
    for (const Procedure& p : procedures)
      if (p.name == name) return &p;
    return nullptr;
  }
};

}  // namespace xspcl::ast
