#include "xspcl/loader.hpp"

#include "sp/validate.hpp"
#include "xspcl/elaborate.hpp"
#include "xspcl/parser.hpp"

namespace xspcl {

support::Result<sp::NodePtr> load_string(std::string_view text) {
  SUP_ASSIGN_OR_RETURN(ast::Program program, parse_string(text));
  SUP_ASSIGN_OR_RETURN(sp::NodePtr graph, elaborate(program));
  SUP_RETURN_IF_ERROR(sp::validate(*graph));
  return graph;
}

support::Result<sp::NodePtr> load_file(const std::string& path) {
  SUP_ASSIGN_OR_RETURN(ast::Program program, parse_file(path));
  SUP_ASSIGN_OR_RETURN(sp::NodePtr graph, elaborate(program));
  SUP_RETURN_IF_ERROR(sp::validate(*graph));
  return graph;
}

support::Result<std::unique_ptr<hinch::Program>> build_program(
    std::string_view text, const hinch::ComponentRegistry& registry,
    const hinch::Program::BuildConfig& config) {
  SUP_ASSIGN_OR_RETURN(sp::NodePtr graph, load_string(text));
  return hinch::Program::build(*graph, registry, config);
}

support::Result<std::unique_ptr<hinch::Program>> build_program_from_file(
    const std::string& path, const hinch::ComponentRegistry& registry,
    const hinch::Program::BuildConfig& config) {
  SUP_ASSIGN_OR_RETURN(sp::NodePtr graph, load_file(path));
  return hinch::Program::build(*graph, registry, config);
}

}  // namespace xspcl
