#include "xspcl/elaborate.hpp"

#include <cctype>
#include <map>
#include <set>

#include "support/strings.hpp"

namespace xspcl {
namespace {

using ast::Node;

std::string join_scope(const std::string& scope, const std::string& name) {
  return scope.empty() ? name : scope + "/" + name;
}

struct Env {
  std::map<std::string, std::string> values;   // value formal -> text
  std::map<std::string, std::string> streams;  // stream formal -> resolved
  std::string scope;
};

support::Status err_at(xml::Position pos, const std::string& what) {
  return support::invalid_argument(
      support::format("XSPCL elaboration at %d:%d: %s", pos.line, pos.column,
                      what.c_str()));
}

support::Result<std::string> subst(const std::string& text, const Env& env,
                                   xml::Position pos) {
  std::map<std::string, std::string> bindings = env.values;
  // Stream formals may also appear in value contexts (e.g. queue names
  // derived from a stream); they substitute to the resolved stream name.
  for (const auto& [k, v] : env.streams) bindings.emplace(k, v);
  auto result = substitute(text, bindings);
  if (!result.is_ok()) return err_at(pos, result.status().message());
  return result;
}

// Resolve a stream reference: a stream formal (optionally written with a
// leading $) maps to the caller's stream; anything else is local to the
// current scope.
support::Result<std::string> resolve_stream(const std::string& raw,
                                            const Env& env,
                                            xml::Position pos) {
  std::string token = raw;
  if (!token.empty() && token[0] == '$') {
    token = token.substr(1);
    if (!token.empty() && token.front() == '{' && token.back() == '}')
      token = token.substr(1, token.size() - 2);
  }
  auto it = env.streams.find(token);
  if (it != env.streams.end()) return it->second;
  if (raw[0] == '$') {
    // A $reference that is not a stream formal must be a value formal
    // holding a stream name.
    SUP_ASSIGN_OR_RETURN(std::string v, subst(raw, env, pos));
    return join_scope(env.scope, v);
  }
  return join_scope(env.scope, raw);
}

class Elaborator {
 public:
  explicit Elaborator(const ast::Program& program) : program_(program) {}

  support::Result<sp::NodePtr> run(const std::string& entry) {
    const ast::Procedure* proc = program_.find(entry);
    if (!proc)
      return support::not_found("XSPCL: no procedure named '" + entry + "'");
    if (!proc->formals.empty())
      return support::invalid_argument(
          "XSPCL: entry procedure '" + entry + "' must take no parameters");
    Env env;
    call_stack_.insert(entry);
    return elaborate_node(*proc->body, env);
  }

 private:
  // Stamps every elaborated node with the position of the XML element it
  // came from, so downstream diagnostics (sp::validate, pass
  // verification) can point back into the spec. A call site keeps its
  // body's own position — the leaves inside carry theirs regardless.
  support::Result<sp::NodePtr> elaborate_node(const Node& n, const Env& env) {
    SUP_ASSIGN_OR_RETURN(sp::NodePtr out, elaborate_node_impl(n, env));
    if (n.kind != ast::Kind::kCall)
      out->loc = sp::SourceLoc{n.pos.line, n.pos.column};
    return out;
  }

  support::Result<sp::NodePtr> elaborate_node_impl(const Node& n,
                                                   const Env& env) {
    switch (n.kind) {
      case ast::Kind::kSeq: {
        std::vector<sp::NodePtr> steps;
        for (const ast::NodePtr& c : n.children) {
          SUP_ASSIGN_OR_RETURN(sp::NodePtr child, elaborate_node(*c, env));
          steps.push_back(std::move(child));
        }
        return sp::make_seq(std::move(steps));
      }
      case ast::Kind::kComponent: {
        sp::LeafSpec leaf;
        leaf.instance = join_scope(env.scope, n.name);
        leaf.klass = n.klass;
        for (const sp::Param& p : n.params) {
          SUP_ASSIGN_OR_RETURN(std::string v, subst(p.value, env, n.pos));
          leaf.params.push_back({p.name, std::move(v)});
        }
        for (const sp::PortBinding& b : n.inputs) {
          SUP_ASSIGN_OR_RETURN(std::string s,
                               resolve_stream(b.stream, env, n.pos));
          leaf.inputs.push_back({b.port, std::move(s)});
        }
        for (const sp::PortBinding& b : n.outputs) {
          SUP_ASSIGN_OR_RETURN(std::string s,
                               resolve_stream(b.stream, env, n.pos));
          leaf.outputs.push_back({b.port, std::move(s)});
        }
        if (!n.reconfig.empty()) {
          SUP_ASSIGN_OR_RETURN(leaf.initial_reconfig,
                               subst(n.reconfig, env, n.pos));
        }
        return sp::make_leaf(std::move(leaf));
      }
      case ast::Kind::kCall:
        return elaborate_call(n, env);
      case ast::Kind::kGroup: {
        std::vector<sp::NodePtr> comps;
        for (const ast::NodePtr& c : n.children) {
          SUP_ASSIGN_OR_RETURN(sp::NodePtr comp, elaborate_node(*c, env));
          comps.push_back(std::move(comp));
        }
        return sp::make_group(std::move(comps));
      }
      case ast::Kind::kParallel: {
        SUP_ASSIGN_OR_RETURN(std::string n_text,
                             subst(n.replicas_expr, env, n.pos));
        auto n_val = support::parse_int(n_text);
        if (!n_val.is_ok() || n_val.value() < 1 || n_val.value() > 4096)
          return err_at(n.pos, "parallel n= must be an integer in [1,4096]"
                               ", got '" + n_text + "'");
        std::vector<sp::NodePtr> blocks;
        for (const ast::NodePtr& c : n.children) {
          SUP_ASSIGN_OR_RETURN(sp::NodePtr block, elaborate_node(*c, env));
          blocks.push_back(std::move(block));
        }
        return sp::make_par(n.shape, static_cast<int>(n_val.value()),
                            std::move(blocks));
      }
      case ast::Kind::kOption: {
        SUP_ASSIGN_OR_RETURN(sp::NodePtr body,
                             elaborate_node(*n.children[0], env));
        return sp::make_option(join_scope(env.scope, n.option_name),
                               n.enabled, std::move(body));
      }
      case ast::Kind::kManager: {
        SUP_ASSIGN_OR_RETURN(std::string queue, subst(n.queue, env, n.pos));
        std::vector<sp::EventRule> rules;
        for (const sp::EventRule& r : n.rules) {
          sp::EventRule rule = r;
          SUP_ASSIGN_OR_RETURN(rule.event, subst(r.event, env, n.pos));
          SUP_ASSIGN_OR_RETURN(rule.target, subst(r.target, env, n.pos));
          SUP_ASSIGN_OR_RETURN(rule.payload, subst(r.payload, env, n.pos));
          if (rule.action == sp::EventAction::kEnable ||
              rule.action == sp::EventAction::kDisable ||
              rule.action == sp::EventAction::kToggle) {
            rule.target = join_scope(env.scope, rule.target);
          }
          rules.push_back(std::move(rule));
        }
        SUP_ASSIGN_OR_RETURN(sp::NodePtr body,
                             elaborate_node(*n.children[0], env));
        return sp::make_manager(join_scope(env.scope, n.manager_name),
                                std::move(queue), std::move(rules),
                                std::move(body));
      }
    }
    return support::internal_error("unreachable AST kind");
  }

  support::Result<sp::NodePtr> elaborate_call(const Node& n, const Env& env) {
    const ast::Procedure* proc = program_.find(n.callee);
    if (!proc)
      return err_at(n.pos, "call to unknown procedure '" + n.callee + "'");
    if (call_stack_.count(n.callee))
      return err_at(n.pos,
                    "recursive call to '" + n.callee +
                        "' (recursion is not supported, §3.2)");

    Env callee;
    SUP_ASSIGN_OR_RETURN(std::string label, subst(n.call_name, env, n.pos));
    callee.scope = join_scope(env.scope, label);

    std::set<std::string> bound;
    for (const ast::Arg& arg : n.args) {
      const ast::Formal* formal = proc->find_formal(arg.name);
      if (!formal)
        return err_at(n.pos, "procedure '" + n.callee +
                                 "' has no formal '" + arg.name + "'");
      if (!bound.insert(arg.name).second)
        return err_at(n.pos, "argument '" + arg.name + "' bound twice");
      if (formal->kind == ast::Formal::Kind::kStream) {
        if (!arg.is_stream)
          return err_at(n.pos, "formal '" + arg.name +
                                   "' is a stream; pass it with stream=");
        SUP_ASSIGN_OR_RETURN(std::string resolved,
                             resolve_stream(arg.value, env, n.pos));
        callee.streams[arg.name] = std::move(resolved);
      } else {
        if (arg.is_stream)
          return err_at(n.pos, "formal '" + arg.name +
                                   "' is a value; pass it with value=");
        SUP_ASSIGN_OR_RETURN(std::string v, subst(arg.value, env, n.pos));
        callee.values[arg.name] = std::move(v);
      }
    }
    for (const ast::Formal& f : proc->formals) {
      if (bound.count(f.name)) continue;
      if (f.kind == ast::Formal::Kind::kValue && f.has_default) {
        callee.values[f.name] = f.fallback;
        continue;
      }
      return err_at(n.pos, "call to '" + n.callee +
                               "' is missing argument '" + f.name + "'");
    }

    call_stack_.insert(n.callee);
    auto body = elaborate_node(*proc->body, callee);
    call_stack_.erase(n.callee);
    return body;
  }

  const ast::Program& program_;
  std::set<std::string> call_stack_;
};

}  // namespace

support::Result<std::string> substitute(
    const std::string& text,
    const std::map<std::string, std::string>& bindings) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '$') {
      out += text[i];
      continue;
    }
    if (i + 1 < text.size() && text[i + 1] == '$') {
      out += '$';
      ++i;
      continue;
    }
    size_t start = i + 1;
    std::string name;
    if (start < text.size() && text[start] == '{') {
      size_t close = text.find('}', start);
      if (close == std::string::npos)
        return support::invalid_argument("unterminated ${...} in '" + text +
                                         "'");
      name = text.substr(start + 1, close - start - 1);
      i = close;
    } else {
      size_t end = start;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_'))
        ++end;
      name = text.substr(start, end - start);
      i = end - 1;
    }
    if (name.empty())
      return support::invalid_argument("dangling '$' in '" + text + "'");
    auto it = bindings.find(name);
    if (it == bindings.end())
      return support::invalid_argument("unknown parameter '$" + name +
                                       "' in '" + text + "'");
    out += it->second;
  }
  return out;
}

support::Result<sp::NodePtr> elaborate(const ast::Program& program,
                                       const std::string& entry) {
  Elaborator e(program);
  return e.run(entry);
}

}  // namespace xspcl
