// Compiled-spec cache: XSPCL text + pass pipeline -> ready-to-instantiate
// SP graph, computed once.
//
// A multi-tenant server (tools/hinchd.cpp) opens many sessions on a small
// set of application specs. Parsing, elaborating, validating and running
// the SP-IR pipeline are pure functions of (spec bytes, pass options), so
// repeating them per session is pure waste — under churn the front-end
// dominates session-open latency. The cache keys on exactly that pair
// (the full spec text plus sp::pass_fingerprint, so there is no hash
// collision to reason about) and stores the *post-pipeline* graph;
// build_program() then instantiates a fresh Program from the cached
// graph with sp::PassOptions::none(), which Program::build compiles
// without cloning. Programs stay per-session (they hold live components
// and streams); only the immutable front-end product is shared.
//
// Advisor caveat: the fingerprint marks advisor presence but cannot
// identify the callable (see sp::pass_fingerprint). Callers mixing
// differently-behaving advisors under identical flags must pass a
// distinct `salt` per advisor.
//
// Thread-safety: all methods lock; concurrent load() of the same key may
// both compile, last insert wins (the graphs are equal). Cached graphs
// are only read after insertion, so handed-out pointers stay valid —
// and Program::build from one cached graph is concurrency-safe — until
// clear() or destruction, which must not race live users.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "hinch/program.hpp"
#include "sp/graph.hpp"
#include "sp/pass.hpp"
#include "support/status.hpp"

namespace xspcl {

class SpecCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  SpecCache() = default;
  SpecCache(const SpecCache&) = delete;
  SpecCache& operator=(const SpecCache&) = delete;

  // The cached post-pipeline graph for (text, passes, salt); compiled on
  // first use. The pointer is owned by the cache (valid until clear()).
  support::Result<const sp::Node*> load(std::string_view text,
                                        const sp::PassOptions& passes,
                                        std::string_view salt = {});

  // Instantiate a fresh Program from the cached graph: front-end and
  // pipeline amortized, components/streams newly created. config.passes
  // selects the cache entry; the returned Program is built with
  // PassOptions::none() (the pipeline already ran).
  support::Result<std::unique_ptr<hinch::Program>> build_program(
      std::string_view text, const hinch::ComponentRegistry& registry,
      const hinch::Program::BuildConfig& config = {},
      std::string_view salt = {});

  Stats stats() const;
  size_t size() const;
  // Drops every entry. Invalidates pointers returned by load(); callers
  // must ensure no session is still building from them.
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, sp::NodePtr> entries_;
  Stats stats_;
};

}  // namespace xspcl
