// XML platform specs: the simulated machine as data, not code.
//
//   <platform name="spacecake4" topology="ring" hop_cycles_per_chunk="64"
//             dispatch="fastest">
//     <coreclass name="trimedia" cycle_multiplier="1.0"/>
//     <coreclass name="lite"     cycle_multiplier="2.0"/>
//     <tile cores="4" class="trimedia" l2_bytes="4194304"/>
//     <tile cores="4" class="lite" count="3"/>
//   </platform>
//
// topology: crossbar (default) | ring | mesh (needs mesh_width="N");
// dispatch: lowest (default) | fastest | affinity;
// <coreclass> is optional (omitted = one baseline class, multiplier 1);
// <tile count="K"> repeats the tile K times; l2_bytes="0"/omitted uses
// the CacheConfig default (16 MiB).
//
// All structural errors are reported as positioned diagnostics
// ("platform spec at LINE:COL: ..."), same idiom as the XSPCL
// elaborator. Loaded specs are fed to hinch::SimParams::platform
// (`xspclc run --platform=FILE`).
#pragma once

#include <string>
#include <string_view>

#include "sim/platform.hpp"
#include "support/status.hpp"
#include "xml/dom.hpp"

namespace xspcl {

// Convert an already-parsed <platform> element.
support::Result<sim::PlatformConfig> parse_platform(const xml::Element& root);

// Parse + convert an XML document / file.
support::Result<sim::PlatformConfig> load_platform_string(
    std::string_view text);
support::Result<sim::PlatformConfig> load_platform_file(
    const std::string& path);

}  // namespace xspcl
