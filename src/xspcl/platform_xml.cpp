#include "xspcl/platform_xml.hpp"

#include <cmath>
#include <map>

#include "support/strings.hpp"
#include "xml/parser.hpp"

namespace xspcl {
namespace {

support::Status err_at(xml::Position pos, const std::string& what) {
  return support::invalid_argument(support::format(
      "platform spec at %d:%d: %s", pos.line, pos.column, what.c_str()));
}

support::Result<int64_t> int_attr(const xml::Element& el,
                                  std::string_view name, int64_t fallback) {
  const std::string* raw = el.find_attr(name);
  if (raw == nullptr) return fallback;
  auto parsed = support::parse_int(*raw);
  if (!parsed.is_ok())
    return err_at(el.position(),
                  "attribute '" + std::string(name) + "' of <" + el.name() +
                      ">: " + parsed.status().message());
  return parsed;
}

support::Result<double> double_attr(const xml::Element& el,
                                    std::string_view name, double fallback) {
  const std::string* raw = el.find_attr(name);
  if (raw == nullptr) return fallback;
  auto parsed = support::parse_double(*raw);
  if (!parsed.is_ok())
    return err_at(el.position(),
                  "attribute '" + std::string(name) + "' of <" + el.name() +
                      ">: " + parsed.status().message());
  return parsed;
}

}  // namespace

support::Result<sim::PlatformConfig> parse_platform(const xml::Element& root) {
  if (root.name() != "platform")
    return err_at(root.position(),
                  "expected <platform> root, got <" + root.name() + ">");

  sim::PlatformConfig platform;
  platform.name = root.attr_or("name", "spacecake");

  const std::string topology = root.attr_or("topology", "crossbar");
  if (topology == "crossbar") {
    platform.topology = sim::Topology::kCrossbar;
  } else if (topology == "ring") {
    platform.topology = sim::Topology::kRing;
  } else if (topology == "mesh") {
    platform.topology = sim::Topology::kMesh;
  } else {
    return err_at(root.position(), "unknown topology '" + topology +
                                       "' (crossbar | ring | mesh)");
  }
  SUP_ASSIGN_OR_RETURN(int64_t mesh_width,
                       int_attr(root, "mesh_width", 0));
  platform.mesh_width = static_cast<int>(mesh_width);

  SUP_ASSIGN_OR_RETURN(
      int64_t hop,
      int_attr(root, "hop_cycles_per_chunk",
               static_cast<int64_t>(platform.hop_cycles_per_chunk)));
  if (hop < 0)
    return err_at(root.position(), "hop_cycles_per_chunk must be >= 0");
  platform.hop_cycles_per_chunk = static_cast<sim::Cycles>(hop);

  const std::string dispatch = root.attr_or("dispatch", "lowest");
  if (dispatch == "lowest") {
    platform.dispatch = sim::DispatchPolicy::kLowestCore;
  } else if (dispatch == "fastest") {
    platform.dispatch = sim::DispatchPolicy::kFastestFirst;
  } else if (dispatch == "affinity") {
    platform.dispatch = sim::DispatchPolicy::kTileAffinity;
  } else {
    return err_at(root.position(), "unknown dispatch policy '" + dispatch +
                                       "' (lowest | fastest | affinity)");
  }

  std::map<std::string, int> class_index;
  for (const xml::ElementPtr& child : root.children()) {
    const xml::Element& el = *child;
    if (el.name() == "coreclass") {
      sim::CoreClass cls;
      cls.name = el.attr_or("name",
                            "class" + std::to_string(platform.classes.size()));
      if (class_index.count(cls.name))
        return err_at(el.position(),
                      "duplicate core class '" + cls.name + "'");
      SUP_ASSIGN_OR_RETURN(cls.cycle_multiplier,
                           double_attr(el, "cycle_multiplier", 1.0));
      if (!(cls.cycle_multiplier > 0.0) ||
          !std::isfinite(cls.cycle_multiplier))
        return err_at(el.position(),
                      "cycle_multiplier must be positive and finite");
      class_index[cls.name] = static_cast<int>(platform.classes.size());
      platform.classes.push_back(std::move(cls));
    } else if (el.name() == "tile") {
      sim::TileSpec tile;
      SUP_ASSIGN_OR_RETURN(int64_t cores, int_attr(el, "cores", 0));
      if (cores < 1)
        return err_at(el.position(), "<tile> needs cores >= 1");
      tile.cores = static_cast<int>(cores);
      if (const std::string* cls = el.find_attr("class")) {
        auto it = class_index.find(*cls);
        if (it == class_index.end())
          return err_at(el.position(), "unknown core class '" + *cls +
                                           "' (declare <coreclass> first)");
        tile.core_class = it->second;
      } else if (!platform.classes.empty()) {
        tile.core_class = 0;  // first declared class is the default
      }
      SUP_ASSIGN_OR_RETURN(int64_t l2, int_attr(el, "l2_bytes", 0));
      if (l2 < 0) return err_at(el.position(), "l2_bytes must be >= 0");
      tile.l2_bytes = static_cast<uint64_t>(l2);
      SUP_ASSIGN_OR_RETURN(int64_t count, int_attr(el, "count", 1));
      if (count < 1) return err_at(el.position(), "count must be >= 1");
      for (int64_t i = 0; i < count; ++i) platform.tiles.push_back(tile);
    } else {
      return err_at(el.position(),
                    "unknown element <" + el.name() +
                        "> in <platform> (coreclass | tile)");
    }
  }

  if (platform.tiles.empty())
    return err_at(root.position(), "<platform> declares no <tile>");
  if (platform.topology == sim::Topology::kMesh && platform.mesh_width < 1)
    return err_at(root.position(),
                  "mesh topology needs mesh_width >= 1");
  return platform;
}

support::Result<sim::PlatformConfig> load_platform_string(
    std::string_view text) {
  SUP_ASSIGN_OR_RETURN(xml::ElementPtr root, xml::parse(text));
  return parse_platform(*root);
}

support::Result<sim::PlatformConfig> load_platform_file(
    const std::string& path) {
  SUP_ASSIGN_OR_RETURN(xml::ElementPtr root, xml::parse_file(path));
  return parse_platform(*root);
}

}  // namespace xspcl
