// AST -> SP graph elaboration: inlines procedure calls (procedural
// abstraction, §3.2), substitutes $formal parameters in attribute
// values, scopes procedure-local stream / instance / option names, and
// resolves replica counts.
//
// Scoping rules:
//  - instance, option and manager names are prefixed with the call path
//    ("left/down" for component `down` in a procedure called as `left`);
//  - stream names are procedure-local unless bound to a stream formal,
//    which resolves to the caller's stream;
//  - event queue names are global (events cross the whole application);
//  - manager rule option targets resolve in the manager's own scope.
//
// Recursion is rejected, as in the paper ("recursion is currently not
// supported as there is no way to end the recursion", §3.2).
#pragma once

#include <map>

#include "sp/graph.hpp"
#include "support/status.hpp"
#include "xspcl/ast.hpp"

namespace xspcl {

support::Result<sp::NodePtr> elaborate(const ast::Program& program,
                                       const std::string& entry = "main");

// Substitute $name / ${name} references using the given bindings.
// "$$" escapes a literal dollar. Unknown references are errors.
support::Result<std::string> substitute(
    const std::string& text,
    const std::map<std::string, std::string>& bindings);

}  // namespace xspcl
