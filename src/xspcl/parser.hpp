// XML DOM -> XSPCL AST, with source positions in every diagnostic.
//
// Top-level `<include file="lib.xml"/>` tags merge the procedures of
// another specification (relative paths resolve against the including
// file; include cycles and duplicate procedure names are errors). This
// is how reusable procedure libraries — e.g. specs/skeletons.xml — are
// shared between applications (§2 item 5: XSPCL is extensible).
#pragma once

#include <string_view>

#include "support/status.hpp"
#include "xml/dom.hpp"
#include "xspcl/ast.hpp"

namespace xspcl {

// `base_dir` resolves relative <include> paths ("." for in-memory text).
support::Result<ast::Program> parse(const xml::Element& root,
                                    const std::string& base_dir = ".");
support::Result<ast::Program> parse_string(std::string_view text);
support::Result<ast::Program> parse_file(const std::string& path);

}  // namespace xspcl
