// A small XML DOM: the substrate for the XSPCL coordination language.
// Supports elements, attributes, character data, comments (discarded),
// CDATA, and the five predefined entities plus numeric character refs.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace xml {

// Source position for diagnostics (1-based).
struct Position {
  int line = 1;
  int column = 1;
};

class Element;
using ElementPtr = std::unique_ptr<Element>;

struct Attribute {
  std::string name;
  std::string value;
};

// An XML element. Text content is kept as a single concatenated string
// (interleaving order with child elements is not preserved; XSPCL never
// relies on mixed content).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  Position position() const { return pos_; }
  void set_position(Position p) { pos_ = p; }

  // --- attributes ---
  const std::vector<Attribute>& attributes() const { return attrs_; }
  // Returns nullptr when absent.
  const std::string* find_attr(std::string_view name) const;
  bool has_attr(std::string_view name) const { return find_attr(name); }
  // Returns the value or `fallback` when absent.
  std::string attr_or(std::string_view name, std::string_view fallback) const;
  // Error (kNotFound) when the attribute is absent.
  support::Result<std::string> require_attr(std::string_view name) const;
  void set_attr(std::string_view name, std::string_view value);

  // --- children ---
  const std::vector<ElementPtr>& children() const { return children_; }
  Element& add_child(std::string name);
  void adopt_child(ElementPtr child) { children_.push_back(std::move(child)); }
  // First child with the given tag name, or nullptr.
  const Element* find_child(std::string_view name) const;
  // All children with the given tag name.
  std::vector<const Element*> find_children(std::string_view name) const;

  // --- text ---
  const std::string& text() const { return text_; }
  void append_text(std::string_view t) { text_.append(t); }
  void set_text(std::string_view t) { text_.assign(t); }

  // Deep copy.
  ElementPtr clone() const;

  // "name@line:col" label for error messages.
  std::string describe() const;

 private:
  std::string name_;
  Position pos_;
  std::vector<Attribute> attrs_;
  std::vector<ElementPtr> children_;
  std::string text_;
};

}  // namespace xml
