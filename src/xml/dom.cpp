#include "xml/dom.hpp"

#include "support/strings.hpp"

namespace xml {

const std::string* Element::find_attr(std::string_view name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

std::string Element::attr_or(std::string_view name,
                             std::string_view fallback) const {
  const std::string* v = find_attr(name);
  return v ? *v : std::string(fallback);
}

support::Result<std::string> Element::require_attr(
    std::string_view name) const {
  const std::string* v = find_attr(name);
  if (!v) {
    return support::not_found(support::format(
        "element <%s> at %d:%d is missing required attribute '%s'",
        name_.c_str(), pos_.line, pos_.column, std::string(name).c_str()));
  }
  return *v;
}

void Element::set_attr(std::string_view name, std::string_view value) {
  for (Attribute& a : attrs_) {
    if (a.name == name) {
      a.value.assign(value);
      return;
    }
  }
  attrs_.push_back({std::string(name), std::string(value)});
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

const Element* Element::find_child(std::string_view name) const {
  for (const ElementPtr& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::find_children(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const ElementPtr& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

ElementPtr Element::clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->pos_ = pos_;
  copy->attrs_ = attrs_;
  copy->text_ = text_;
  copy->children_.reserve(children_.size());
  for (const ElementPtr& c : children_) copy->children_.push_back(c->clone());
  return copy;
}

std::string Element::describe() const {
  return support::format("<%s> at %d:%d", name_.c_str(), pos_.line,
                         pos_.column);
}

}  // namespace xml
