#include "xml/writer.hpp"

namespace xml {
namespace {

void append_escaped(std::string& out, std::string_view s, bool attr) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (attr) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
}

void write_element(const Element& e, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += '<';
  out += e.name();
  for (const Attribute& a : e.attributes()) {
    out += ' ';
    out += a.name;
    out += "=\"";
    append_escaped(out, a.value, /*attr=*/true);
    out += '"';
  }
  if (e.children().empty() && e.text().empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (!e.text().empty()) append_escaped(out, e.text(), /*attr=*/false);
  if (!e.children().empty()) {
    out += '\n';
    for (const ElementPtr& c : e.children())
      write_element(*c, depth + 1, out);
    out.append(static_cast<size_t>(depth) * 2, ' ');
  }
  out += "</";
  out += e.name();
  out += ">\n";
}

}  // namespace

std::string escape_text(std::string_view s) {
  std::string out;
  append_escaped(out, s, /*attr=*/false);
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  append_escaped(out, s, /*attr=*/true);
  return out;
}

std::string write(const Element& root) {
  std::string out;
  write_element(root, 0, out);
  return out;
}

}  // namespace xml
