// Serializes a DOM back to text. parse(write(e)) reproduces the element
// structure, attributes, and (trimmed) text exactly — the round-trip
// property the tests rely on.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace xml {

// Escape characters that are special in character data / attributes.
std::string escape_text(std::string_view s);
std::string escape_attr(std::string_view s);

// Pretty-print with two-space indentation.
std::string write(const Element& root);

}  // namespace xml
