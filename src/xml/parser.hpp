// Recursive-descent parser for the XML subset used by XSPCL.
//
// Supported: one root element, nested elements, attributes with single or
// double quotes, character data, comments, CDATA sections, XML
// declarations / processing instructions (skipped), predefined entities
// (&amp; &lt; &gt; &quot; &apos;) and numeric character references
// (&#NN; and &#xHH;, ASCII range).
//
// Not supported (rejected with a diagnostic): DOCTYPE, custom entities,
// namespaces beyond treating ':' as a name character.
#pragma once

#include <string_view>

#include "support/status.hpp"
#include "xml/dom.hpp"

namespace xml {

// Parse a complete document; returns its root element.
support::Result<ElementPtr> parse(std::string_view input);

// Parse the contents of a file.
support::Result<ElementPtr> parse_file(const std::string& path);

}  // namespace xml
