#include "xml/parser.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  support::Result<ElementPtr> parse_document() {
    skip_misc();
    if (at_end()) return err("document contains no root element");
    SUP_ASSIGN_OR_RETURN(ElementPtr root, parse_element());
    skip_misc();
    if (!at_end()) return err("content after root element");
    return root;
  }

 private:
  // --- character stream ---
  bool at_end() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  char peek_at(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool looking_at(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void skip(size_t n) {
    for (size_t i = 0; i < n && !at_end(); ++i) advance();
  }
  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  support::Status err(const std::string& what) const {
    return support::invalid_argument(
        support::format("XML parse error at %d:%d: %s", line_, col_,
                        what.c_str()));
  }

  // Skip whitespace, comments, PIs, and the XML declaration between
  // top-level constructs.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<?")) {
        skip_pi();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    skip(4);  // "<!--"
    while (!at_end() && !looking_at("-->")) advance();
    skip(3);
  }

  void skip_pi() {
    skip(2);  // "<?"
    while (!at_end() && !looking_at("?>")) advance();
    skip(2);
  }

  support::Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return err("expected a name");
    size_t start = pos_;
    while (!at_end() && is_name_char(peek())) advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  // Decode one entity starting at '&'. Appends to out.
  support::Status parse_entity(std::string& out) {
    advance();  // '&'
    size_t start = pos_;
    while (!at_end() && peek() != ';') {
      if (pos_ - start > 8) return err("unterminated entity reference");
      advance();
    }
    if (at_end()) return err("unterminated entity reference");
    std::string_view name = in_.substr(start, pos_ - start);
    advance();  // ';'
    if (name == "amp") {
      out += '&';
    } else if (name == "lt") {
      out += '<';
    } else if (name == "gt") {
      out += '>';
    } else if (name == "quot") {
      out += '"';
    } else if (name == "apos") {
      out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      long code = 0;
      char* end = nullptr;
      std::string digits(name.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, &end, 16);
        if (end != digits.c_str() + digits.size())
          return err("bad hex character reference");
      } else {
        code = std::strtol(digits.c_str(), &end, 10);
        if (end != digits.c_str() + digits.size())
          return err("bad character reference");
      }
      if (code <= 0 || code > 127)
        return err("character reference outside ASCII range");
      out += static_cast<char>(code);
    } else {
      return err("unknown entity '&" + std::string(name) + ";'");
    }
    return support::Status::ok();
  }

  support::Result<Attribute> parse_attribute() {
    SUP_ASSIGN_OR_RETURN(std::string name, parse_name());
    skip_ws();
    if (at_end() || peek() != '=') return err("expected '=' after attribute");
    advance();
    skip_ws();
    if (at_end() || (peek() != '"' && peek() != '\''))
      return err("expected quoted attribute value");
    char quote = peek();
    advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') return err("'<' in attribute value");
      if (peek() == '&') {
        SUP_RETURN_IF_ERROR(parse_entity(value));
      } else {
        value += peek();
        advance();
      }
    }
    if (at_end()) return err("unterminated attribute value");
    advance();  // closing quote
    return Attribute{std::move(name), std::move(value)};
  }

  support::Result<ElementPtr> parse_element() {
    Position open_pos{line_, col_};
    if (at_end() || peek() != '<') return err("expected '<'");
    if (looking_at("<!DOCTYPE"))
      return err("DOCTYPE declarations are not supported");
    advance();
    SUP_ASSIGN_OR_RETURN(std::string name, parse_name());
    auto elem = std::make_unique<Element>(name);
    elem->set_position(open_pos);

    // Attributes.
    for (;;) {
      skip_ws();
      if (at_end()) return err("unterminated start tag <" + name + ">");
      if (peek() == '/' || peek() == '>') break;
      SUP_ASSIGN_OR_RETURN(Attribute attr, parse_attribute());
      if (elem->has_attr(attr.name))
        return err("duplicate attribute '" + attr.name + "'");
      elem->set_attr(attr.name, attr.value);
    }

    if (peek() == '/') {
      advance();
      if (at_end() || peek() != '>') return err("expected '>' after '/'");
      advance();
      return elem;  // empty element
    }
    advance();  // '>'

    // Content.
    for (;;) {
      if (at_end())
        return err("missing closing tag </" + name + ">");
      if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<![CDATA[")) {
        skip(9);
        std::string text;
        while (!at_end() && !looking_at("]]>")) {
          text += peek();
          advance();
        }
        if (at_end()) return err("unterminated CDATA section");
        skip(3);
        elem->append_text(text);
      } else if (looking_at("</")) {
        skip(2);
        SUP_ASSIGN_OR_RETURN(std::string close, parse_name());
        if (close != name)
          return err("mismatched closing tag </" + close + ">, expected </" +
                     name + ">");
        skip_ws();
        if (at_end() || peek() != '>') return err("expected '>'");
        advance();
        return elem;
      } else if (looking_at("<?")) {
        skip_pi();
      } else if (peek() == '<') {
        SUP_ASSIGN_OR_RETURN(ElementPtr child, parse_element());
        elem->adopt_child(std::move(child));
      } else {
        std::string text;
        while (!at_end() && peek() != '<') {
          if (peek() == '&') {
            SUP_RETURN_IF_ERROR(parse_entity(text));
          } else {
            text += peek();
            advance();
          }
        }
        // Keep only non-whitespace character data.
        if (!support::trim(text).empty()) elem->append_text(text);
      }
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

support::Result<ElementPtr> parse(std::string_view input) {
  Parser p(input);
  return p.parse_document();
}

support::Result<ElementPtr> parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return support::io_error("cannot open file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

}  // namespace xml
