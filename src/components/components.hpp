// The standard component library: the building blocks of the paper's
// three applications (PiP, JPiP, Blur) plus generic sources, sinks, and
// event utilities.
//
// Component classes (XSPCL `class` attribute → behaviour):
//
//   video_source   out:"out"       Emits one uncompressed frame per
//                                  iteration. params: source=synth|file,
//                                  seed,width,height,frames,format
//                                  (synth) or path (file).
//   mjpeg_source   out:"out"       Emits one JPEG-compressed frame
//                                  (byte packet) per iteration. params as
//                                  video_source plus quality.
//   copy           in:"in" out:"out"
//                                  Copies the frame (sliced by rows).
//   downscale      in:"in" out:"out"
//                                  Box downscale by `factor`. plane=-1:
//                                  all planes; plane=p: that plane to a
//                                  gray frame. Sliced by output rows.
//   blend          in:"fg" out:"canvas" (in-place)
//                                  Alpha-blends fg over the canvas at
//                                  (x, y) in target-plane coordinates.
//                                  params: x,y,alpha,plane. Reconfig
//                                  request "pos=X,Y" moves the picture
//                                  (the paper's §3.1 example). Sliced by
//                                  fg rows.
//   blur_h/blur_v  in:"in" out:"out"
//                                  Separable Gaussian (kernel=3|5,
//                                  plane=p, gray output). Reconfig
//                                  request "kernel=N" switches size.
//                                  Sliced by rows.
//   jpeg_decode    in:"jpeg" out:"coeffs"
//                                  Entropy decode + dequantize into a
//                                  CoeffImage packet.
//   idct           in:"coeffs" out:"out"
//                                  IDCT of component `plane` into a gray
//                                  frame. Sliced by block rows.
//
// Fused-loop classes (synthesized by the fuse-kernels pass from the
// chains listed in standard_fusions(); also usable directly):
//
//   jpeg_decode_planes
//                  in:"jpeg" out:"y","u","v"
//                                  jpeg_decode + three idcts in one
//                                  component; the CoeffImage is private
//                                  scratch, never a stream packet.
//   downscale_blend
//                  in:"in" out:"canvas" (in-place)
//                                  downscale + blend in one traversal
//                                  (media::downscale_blend); the small
//                                  frame never materializes. params:
//                                  factor, src_plane, x, y, alpha,
//                                  plane. Honours "pos=X,Y". Sliced by
//                                  downscaled rows.
//   blur_hv        in:"in" out:"out"
//                                  Both blur passes over a
//                                  kernel_size-row ring. Honours
//                                  "kernel=N". Sliced by rows.
//   idct_downscale in:"coeffs" out:"out"
//                                  IDCT + box downscale through an
//                                  lcm(8, factor)-row strip. params:
//                                  plane, factor. Sliced by output rows.
//   frame_sink     in:"in"         Consumes frames; FNV checksum, frame
//                                  count, optional retention (store=1).
//   yuv_sink       in:"y","u","v"  Reassembles per-plane gray frames;
//                                  checksum/retention like frame_sink.
//   event_ticker   (no ports)      Sends `event` to `queue` every
//                                  `period` iterations (user-interaction
//                                  stand-in driving reconfiguration).
//   policy         (no ports)      Polls the run's live metrics and
//                                  sends manager events on threshold
//                                  crossings with hysteresis. params:
//                                  queue, rules ("metric:high:low:
//                                  on_high:on_low;..."), period, hold.
//                                  See docs/OBSERVABILITY.md.
//   var_load       (no ports)      Charges `cycles` of compute per
//                                  iteration, stepping to `step_cycles`
//                                  at `step_at` (back at `restore_at`) —
//                                  the load step the adaptation bench
//                                  and policy tests drive.
#pragma once

#include "hinch/registry.hpp"
#include "obs/metrics.hpp"
#include "sp/fuse_kernels.hpp"

namespace components {

// Admission controller for the multi-tenant server (tools/hinchd.cpp):
// the server-side sibling of the in-graph `policy` component. It watches
// the *aggregate* backlog — the sum of every session's
// "session.<id>.live.pending_jobs" gauge in the SessionExecutor's shared
// registry — normalized per worker, through the same two-threshold
// hysteresis discipline: sustained overload shrinks the recommended
// active-session cap (queued tenants wait rather than thrash the pool),
// sustained headroom grows it. Pure and single-threaded: feed it
// snapshots, apply its recommendation via set_active_cap().
struct ServerRebalanceConfig {
  // Hysteresis band on backlog-per-worker. Above `high`: overloaded;
  // below `low`: headroom. Must satisfy high >= low.
  double high_backlog_per_worker = 8.0;
  double low_backlog_per_worker = 2.0;
  int min_active = 1;   // never recommend below this
  int max_active = 0;   // 0 = unbounded growth
  // Consecutive polls beyond a band edge before acting (debounce).
  int hold_polls = 2;
};

class ServerRebalance {
 public:
  explicit ServerRebalance(const ServerRebalanceConfig& config);

  // Observe one poll of the server registry; returns the recommended
  // cap (== current_cap when no change is warranted). `workers` is the
  // pool size, `current_cap` the cap in force (0 = uncapped, treated as
  // "active count is the effective cap" for step purposes).
  int recommend(const obs::MetricsRegistry::Snapshot& server, int workers,
                int current_cap);

  // Sum of "session.<id>.live.pending_jobs" over all sessions in `snap`.
  static double aggregate_backlog(const obs::MetricsRegistry::Snapshot& snap);

 private:
  ServerRebalanceConfig config_;
  int high_streak_ = 0;
  int low_streak_ = 0;
};

// Register every standard class into `registry`.
void register_standard(hinch::ComponentRegistry& registry);

// Idempotent registration into the global registry.
void register_standard_globally();

// The fusible chains the standard library provides fused kernels for
// (static storage; safe to hand to sp::fuse_kernels_pass by pointer):
//   jpeg_decode -> idct x3   =>  jpeg_decode_planes
//   downscale -> blend       =>  downscale_blend   (slice-preserving)
//   blur_h -> blur_v         =>  blur_hv           (slice-preserving)
//   idct -> downscale        =>  idct_downscale    (slice-preserving)
const sp::KernelFusionRegistry& standard_fusions();

}  // namespace components
