// Sink components: consume the final frames, accumulate checksums, and
// optionally retain output for correctness comparisons in tests.
#include <vector>

#include "components/detail.hpp"
#include "components/sinks.hpp"
#include "hinch/component.hpp"
#include "media/kernels.hpp"
#include "media/metrics.hpp"
#include "obs/metrics.hpp"

namespace components {

uint64_t SinkState::checksum() const {
  std::lock_guard<std::mutex> lock(mutex);
  return hash;
}

int SinkState::frames() const {
  std::lock_guard<std::mutex> lock(mutex);
  return count;
}

media::FramePtr SinkState::frame(int i) const {
  std::lock_guard<std::mutex> lock(mutex);
  SUP_CHECK(i >= 0 && i < static_cast<int>(stored.size()));
  return stored[static_cast<size_t>(i)];
}

void SinkState::record(const media::Frame& f, bool store) {
  std::lock_guard<std::mutex> lock(mutex);
  // Iterations complete in order and a sink is sequential with itself, so
  // the running hash is well-defined under both executors.
  hash = media::frame_hash(f, hash);
  ++count;
  if (store) stored.push_back(f.clone());
}

namespace {

// Consumes one full frame per iteration.
class FrameSink : public hinch::Component, public SinkAccess {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    bool store = hinch::param_int_or(config.params, "store", 0) != 0;
    return std::unique_ptr<hinch::Component>(new FrameSink(store));
  }

  explicit FrameSink(bool store) : in_(declare_input("in")), store_(store) {}

  void run(hinch::ExecContext& ctx) override {
    media::FramePtr f = ctx.read(in_).frame();
    state_.record(*f, store_);
    ctx.touch_read(in_, 0, f->bytes());
    // DMA the composed frame out (display / file).
    ctx.charge_compute(media::io_cycles(f->bytes()));
    if (auto* m = ctx.metrics()) {
      m->add("live.frames_done", 1);
      m->add("live.frame_bytes_done", static_cast<int64_t>(f->bytes()));
    }
  }

  void reset() override { state_.clear(); }
  const SinkState& sink() const override { return state_; }

 private:
  int in_;
  bool store_;
  SinkState state_;
};

// Consumes three gray planes (Y, U, V) per iteration and reassembles a
// frame — the "Output" node of the per-plane task graphs (Fig. 7).
class YuvSink : public hinch::Component, public SinkAccess {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    bool store = hinch::param_int_or(config.params, "store", 0) != 0;
    return std::unique_ptr<hinch::Component>(new YuvSink(store));
  }

  explicit YuvSink(bool store)
      : y_(declare_input("y")),
        u_(declare_input("u")),
        v_(declare_input("v")),
        store_(store) {}

  void run(hinch::ExecContext& ctx) override {
    media::FramePtr py = ctx.read(y_).frame();
    media::FramePtr pu = ctx.read(u_).frame();
    media::FramePtr pv = ctx.read(v_).frame();
    // Infer the subsampling from the plane sizes.
    bool is420 = pu->width() == (py->width() + 1) / 2;
    media::FramePtr frame = media::make_frame(
        is420 ? media::PixelFormat::kYuv420 : media::PixelFormat::kYuv444,
        py->width(), py->height());
    const media::FramePtr in[3] = {py, pu, pv};
    for (int p = 0; p < 3; ++p) {
      media::copy_plane(in[p]->plane(0), frame->plane(p), 0,
                        frame->plane(p).height);
      ctx.touch_read(p, 0, in[p]->bytes());
    }
    state_.record(*frame, store_);
    ctx.charge_compute(media::io_cycles(frame->bytes()));
    if (auto* m = ctx.metrics()) {
      m->add("live.frames_done", 1);
      m->add("live.frame_bytes_done", static_cast<int64_t>(frame->bytes()));
    }
  }

  void reset() override { state_.clear(); }
  const SinkState& sink() const override { return state_; }

 private:
  int y_;
  int u_;
  int v_;
  bool store_;
  SinkState state_;
};

}  // namespace

void register_sinks(hinch::ComponentRegistry& registry) {
  registry.register_class("frame_sink", &FrameSink::create);
  registry.register_class("yuv_sink", &YuvSink::create);
}

}  // namespace components
