// Event-producing components: the stand-in for asynchronous user
// interaction. The reconfigurable variants of §4.3 toggle options every
// 12 frames; an event_ticker drives exactly that.
#include "components/detail.hpp"
#include "hinch/component.hpp"
#include "media/kernels.hpp"
#include "support/strings.hpp"

namespace components {
namespace {

// Sends `event` to `queue` every `period` iterations (starting at
// iteration `period`). A `payload` param is forwarded verbatim.
class EventTicker : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<EventTicker>(new EventTicker());
    SUP_ASSIGN_OR_RETURN(comp->event_,
                         hinch::param_string(config.params, "event"));
    SUP_ASSIGN_OR_RETURN(comp->queue_,
                         hinch::param_string(config.params, "queue"));
    comp->period_ = hinch::param_int_or(config.params, "period", 0);
    comp->payload_ = hinch::param_string_or(config.params, "payload", "");
    if (comp->period_ < 1)
      return support::invalid_argument("event_ticker: period must be >= 1");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  void run(hinch::ExecContext& ctx) override {
    // A key press is a handful of cycles of polling work.
    ctx.charge_compute(50);
    int64_t it = ctx.iteration();
    if (it > 0 && it % period_ == 0)
      ctx.send_event(queue_, hinch::Event{event_, payload_});
  }

 private:
  std::string event_;
  std::string queue_;
  std::string payload_;
  int64_t period_ = 0;
};

// Sends scripted events: param "script" is a ;-separated list of
// iteration:event[:payload] entries. Used by tests and the interactive
// example to model a user pressing specific keys at specific times.
class EventScript : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<EventScript>(new EventScript());
    SUP_ASSIGN_OR_RETURN(comp->queue_,
                         hinch::param_string(config.params, "queue"));
    SUP_ASSIGN_OR_RETURN(std::string script,
                         hinch::param_string(config.params, "script"));
    for (const std::string& entry : support::split(script, ';')) {
      if (support::trim(entry).empty()) continue;
      auto parts = support::split(entry, ':');
      if (parts.size() < 2 || parts.size() > 3)
        return support::invalid_argument(
            "event_script: entries are iteration:event[:payload]");
      SUP_ASSIGN_OR_RETURN(int64_t iter, support::parse_int(parts[0]));
      comp->entries_.push_back(
          {iter, parts[1], parts.size() == 3 ? parts[2] : ""});
    }
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  void run(hinch::ExecContext& ctx) override {
    ctx.charge_compute(50);
    for (const Entry& e : entries_) {
      if (e.iter == ctx.iteration())
        ctx.send_event(queue_, hinch::Event{e.event, e.payload});
    }
  }

 private:
  struct Entry {
    int64_t iter;
    std::string event;
    std::string payload;
  };
  std::string queue_;
  std::vector<Entry> entries_;
};

// Detects scene changes in its input video and reports them as events —
// the §2 non-interactive use of events: "In non-interactive
// applications, events can be used to respond to special input values."
// Passes the frame through unchanged. Params: queue, event,
// threshold (mean absolute luma difference x 100, default 800 = 8.0).
class SceneChange : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<SceneChange>(new SceneChange());
    SUP_ASSIGN_OR_RETURN(comp->event_,
                         hinch::param_string(config.params, "event"));
    SUP_ASSIGN_OR_RETURN(comp->queue_,
                         hinch::param_string(config.params, "queue"));
    comp->threshold_x100_ =
        hinch::param_int_or(config.params, "threshold", 800);
    if (comp->threshold_x100_ < 0)
      return support::invalid_argument(
          "scene_change: threshold must be >= 0");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  SceneChange() : in_(declare_input("in")), out_(declare_output("out")) {}

  void reset() override { prev_.reset(); }

  void run(hinch::ExecContext& ctx) override {
    media::FramePtr frame = ctx.read(in_).frame();
    media::ConstPlaneView y = frame->plane(0);
    if (prev_) {
      uint64_t sad = 0;
      media::ConstPlaneView p = prev_->plane(0);
      for (int row = 0; row < y.height; ++row) {
        const uint8_t* a = y.row(row);
        const uint8_t* b = p.row(row);
        for (int col = 0; col < y.width; ++col)
          sad += static_cast<uint64_t>(a[col] > b[col] ? a[col] - b[col]
                                                       : b[col] - a[col]);
      }
      uint64_t mean_x100 = sad * 100 / y.bytes();
      if (mean_x100 >= static_cast<uint64_t>(threshold_x100_)) {
        ctx.send_event(queue_,
                       hinch::Event{event_, std::to_string(mean_x100)});
      }
      ctx.charge_compute(2 * y.bytes());  // SAD over both lumas
      ctx.touch_read(in_, 0, y.bytes());
      ctx.touch_scratch(y.bytes());
    }
    // Keep a private copy of the luma for the next iteration.
    media::FramePtr keep =
        media::make_frame(media::PixelFormat::kGray, y.width, y.height);
    media::copy_plane(y, keep->plane(0), 0, y.height);
    prev_ = std::move(keep);
    ctx.write(out_, hinch::Packet::of_frame(frame));
  }

 private:
  int in_;
  int out_;
  std::string event_;
  std::string queue_;
  int64_t threshold_x100_ = 800;
  media::FramePtr prev_;
};

}  // namespace

void register_events(hinch::ComponentRegistry& registry) {
  registry.register_class("event_ticker", &EventTicker::create);
  registry.register_class("event_script", &EventScript::create);
  registry.register_class("scene_change", &SceneChange::create);
}

}  // namespace components
