// Public access to sink components' accumulated state, used by tests and
// benchmarks to verify that different executions (sequential baseline,
// XSPCL/sim, XSPCL/threads, different core counts) produced identical
// output video.
#pragma once

#include <mutex>
#include <vector>

#include "media/frame.hpp"
#include "media/mjpeg.hpp"

namespace components {

class SinkState {
 public:
  uint64_t checksum() const;
  int frames() const;
  media::FramePtr frame(int i) const;  // only when built with store=1

  void record(const media::Frame& f, bool store);
  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    hash = 14695981039346656037ULL;
    count = 0;
    stored.clear();
  }

 private:
  friend class SinkStateTestPeer;
  mutable std::mutex mutex;
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
  int count = 0;
  std::vector<media::FramePtr> stored;
};

// Implemented by sink components; retrieve with
//   dynamic_cast<const SinkAccess*>(&program.component(i))
class SinkAccess {
 public:
  virtual ~SinkAccess() = default;
  virtual const SinkState& sink() const = 0;
};

// Implemented by mjpeg_sink: access the collected compressed clip.
class MjpegSinkAccess {
 public:
  virtual ~MjpegSinkAccess() = default;
  virtual media::MjpegClip clip() const = 0;
};

}  // namespace components
