// The two-stage JPEG decode of the JPiP graph (Fig. 7): "JPEG decode"
// (entropy decode + dequantize) followed by per-plane "IDCT" components.
#include <mutex>

#include "components/detail.hpp"
#include "components/sinks.hpp"
#include "hinch/component.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "media/mjpeg.hpp"

namespace components {
namespace {

using media::jpeg::CoeffImage;

uint64_t coeff_bytes(const CoeffImage& img) {
  uint64_t total = 0;
  for (const auto& c : img.comps)
    total += c.blocks.size() * sizeof(std::array<int16_t, 64>);
  return total;
}

uint64_t total_blocks(const CoeffImage& img) {
  uint64_t total = 0;
  for (const auto& c : img.comps) total += c.blocks.size();
  return total;
}

// Byte offset of component `plane`'s blocks inside the coefficient
// payload (for memory-traffic accounting).
uint64_t coeff_plane_offset(const CoeffImage& img, int plane) {
  uint64_t off = 0;
  for (int i = 0; i < plane; ++i)
    off += img.comps[static_cast<size_t>(i)].blocks.size() *
           sizeof(std::array<int16_t, 64>);
  return off;
}

// Entropy decode + dequantization. The Huffman bitstream is inherently
// sequential — unless the encoder emitted restart markers, in which case
// the `workers` param splits the scan across that many host threads
// (bit-identical result; streams without markers decode serially). The
// simulated-cycle charge is unaffected either way.
class JpegDecodeComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int workers =
        static_cast<int>(hinch::param_int_or(config.params, "workers", 1));
    if (workers < 1 || workers > 256)
      return support::invalid_argument(
          "jpeg_decode: workers must be in [1, 256]");
    return std::unique_ptr<hinch::Component>(
        new JpegDecodeComponent(workers));
  }

  explicit JpegDecodeComponent(int workers)
      : in_(declare_input("jpeg")), out_(declare_output("coeffs")),
        workers_(workers) {}

  void run(hinch::ExecContext& ctx) override {
    auto bytes = ctx.read(in_).get<std::vector<uint8_t>>();
    // Reuse the previous frame's coefficient buffer once every
    // downstream IDCT stage has released it (we hold the only
    // reference); a 1080p CoeffImage is several MB, and a fresh
    // allocation + fill per frame costs as much as the entropy decode.
    if (!spare_ || spare_.use_count() != 1)
      spare_ = std::make_shared<CoeffImage>();
    auto img = spare_;
    support::Status st = media::jpeg::decode_to_coefficients_into(
        bytes->data(), bytes->size(), img.get(),
        media::jpeg::HuffmanImpl::kLookupTable, workers_);
    SUP_CHECK_MSG(st.is_ok(), st.to_string().c_str());
    uint64_t out_bytes = coeff_bytes(*img);
    uint64_t blocks = total_blocks(*img);
    ctx.touch_read(in_, 0, bytes->size());
    ctx.touch_write(out_, 0, out_bytes);
    ctx.charge_compute(
        media::jpeg::entropy_decode_cycles(bytes->size(), blocks));
    ctx.write(out_, hinch::Packet::of(std::move(img), out_bytes));
  }

 private:
  int in_;
  int out_;
  int workers_;
  std::shared_ptr<CoeffImage> spare_;
};

// IDCT of one colour component into a gray frame; data-parallel over
// block rows (the paper runs it with 45 slices on 1280x720).
class IdctComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int plane =
        static_cast<int>(hinch::param_int_or(config.params, "plane", 0));
    if (plane < 0 || plane > 2)
      return support::invalid_argument("idct: plane must be 0, 1 or 2");
    return std::unique_ptr<hinch::Component>(new IdctComponent(plane));
  }

  explicit IdctComponent(int plane)
      : in_(declare_input("coeffs")), out_(declare_output("out")),
        plane_(plane) {}

  void run(hinch::ExecContext& ctx) override {
    auto img = ctx.read(in_).get<CoeffImage>();
    SUP_CHECK_MSG(plane_ < static_cast<int>(img->comps.size()),
                  "idct: no such component in the JPEG stream");
    const media::jpeg::CoeffPlane& comp =
        img->comps[static_cast<size_t>(plane_)];
    media::FramePtr dst = output_stream(out_)->get_or_alloc_frame(
        ctx.iteration(), media::PixelFormat::kGray, comp.width, comp.height);
    int b0 = 0, b1 = 0;
    hinch::slice_rows(comp.blocks_h, slice_index(), slice_count(), &b0, &b1);
    media::jpeg::idct_component(comp, dst->plane(0), b0, b1);

    uint64_t blocks =
        static_cast<uint64_t>(b1 - b0) * static_cast<uint64_t>(comp.blocks_w);
    uint64_t row_bytes = static_cast<uint64_t>(comp.blocks_w) * 128;
    ctx.touch_read(in_, coeff_plane_offset(*img, plane_) +
                            static_cast<uint64_t>(b0) * row_bytes,
                   static_cast<uint64_t>(b1 - b0) * row_bytes);
    int r0 = std::min(b0 * 8, comp.height);
    int r1 = std::min(b1 * 8, comp.height);
    ctx.touch_write(out_, static_cast<uint64_t>(r0) * comp.width,
                    static_cast<uint64_t>(r1 - r0) * comp.width);
    ctx.charge_compute(media::jpeg::idct_cycles(blocks));
  }

 private:
  int in_;
  int out_;
  int plane_;
};

// Compresses frames back to baseline JPEG: the producer half of a
// transcoding pipeline. params: quality (default 75), restart (MCUs per
// restart marker, default 0).
class JpegEncodeComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int quality =
        static_cast<int>(hinch::param_int_or(config.params, "quality", 75));
    int restart =
        static_cast<int>(hinch::param_int_or(config.params, "restart", 0));
    if (quality < 1 || quality > 100)
      return support::invalid_argument(
          "jpeg_encode: quality must be in [1, 100]");
    if (restart < 0 || restart > 65535)
      return support::invalid_argument(
          "jpeg_encode: restart must be in [0, 65535]");
    return std::unique_ptr<hinch::Component>(
        new JpegEncodeComponent(quality, restart));
  }

  JpegEncodeComponent(int quality, int restart)
      : in_(declare_input("in")),
        out_(declare_output("jpeg")),
        quality_(quality),
        restart_(restart) {}

  void run(hinch::ExecContext& ctx) override {
    media::FramePtr frame = ctx.read(in_).frame();
    auto encoded = media::jpeg::encode(*frame, quality_, restart_);
    SUP_CHECK_MSG(encoded.is_ok(), encoded.status().to_string().c_str());
    auto bytes = std::make_shared<std::vector<uint8_t>>(
        std::move(encoded).take());
    uint64_t size = bytes->size();
    uint64_t blocks = frame->bytes() / 64 + 1;
    ctx.touch_read(in_, 0, frame->bytes());
    ctx.touch_write(out_, 0, size);
    ctx.charge_compute(media::jpeg::encode_cycles(blocks, size));
    ctx.write(out_, hinch::Packet::of(std::move(bytes), size));
  }

 private:
  int in_;
  int out_;
  int quality_;
  int restart_;
};

// Collects compressed frames into an MjpegClip (retrieve through
// MjpegSinkAccess, or set the `path` param to save the clip after every
// appended frame — handy for tools, O(total bytes) per frame).
class MjpegSink : public hinch::Component, public MjpegSinkAccess {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<MjpegSink>(new MjpegSink());
    comp->path_ = hinch::param_string_or(config.params, "path", "");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  MjpegSink() : in_(declare_input("in")) {}

  void reset() override {
    std::lock_guard<std::mutex> lock(mutex_);
    clip_ = media::MjpegClip();
  }

  void run(hinch::ExecContext& ctx) override {
    auto bytes = ctx.read(in_).get<std::vector<uint8_t>>();
    ctx.touch_read(in_, 0, bytes->size());
    ctx.charge_compute(media::io_cycles(bytes->size()));
    std::lock_guard<std::mutex> lock(mutex_);
    clip_.append(*bytes);
    if (!path_.empty()) {
      support::Status st = clip_.save(path_);
      SUP_CHECK_MSG(st.is_ok(), st.to_string().c_str());
    }
  }

  media::MjpegClip clip() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return clip_;
  }

 private:
  int in_;
  std::string path_;
  mutable std::mutex mutex_;
  media::MjpegClip clip_;
};

}  // namespace

void register_jpeg_stages(hinch::ComponentRegistry& registry) {
  registry.register_class("jpeg_decode", &JpegDecodeComponent::create);
  registry.register_class("idct", &IdctComponent::create);
  registry.register_class("jpeg_encode", &JpegEncodeComponent::create);
  registry.register_class("mjpeg_sink", &MjpegSink::create);
}

}  // namespace components
