// Fused-loop components: single components executing what is otherwise
// a chain of standard components, in one loop over a strip-sized
// scratch — the kernels the fuse-kernels pass (sp/fuse_kernels.hpp)
// rewrites matched chains into. Each is also an ordinary registered
// class, usable directly from XSPCL.
//
// Every fused component is bit-exact against the unfused chain it
// replaces (tests/test_kernels_equiv.cpp and the fused-program
// equivalence tests pin this), and charges the same arithmetic cycles
// as the chain's stages; what fusion changes is the memory traffic —
// the chain's linking packets become scratch strips, charged through
// touch_scratch/touch_scratch_read so the cache model prices the strip
// instead of the full frame round-trip.
#include <algorithm>
#include <numeric>

#include "components/components.hpp"
#include "components/detail.hpp"
#include "hinch/component.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "sp/fuse_kernels.hpp"
#include "support/strings.hpp"

namespace components {
namespace {

using hinch::ExecContext;
using hinch::Packet;
using media::Frame;
using media::FramePtr;
using media::jpeg::CoeffImage;
using media::jpeg::CoeffPlane;

// Same accounting helpers as jpeg_stages.cpp / filters.cpp.
uint64_t coeff_bytes(const CoeffImage& img) {
  uint64_t total = 0;
  for (const auto& c : img.comps)
    total += c.blocks.size() * sizeof(std::array<int16_t, 64>);
  return total;
}

uint64_t coeff_plane_offset(const CoeffImage& img, int plane) {
  uint64_t off = 0;
  for (int i = 0; i < plane; ++i)
    off += img.comps[static_cast<size_t>(i)].blocks.size() *
           sizeof(std::array<int16_t, 64>);
  return off;
}

void charge_touch_rows(ExecContext& ctx, bool is_input, int port,
                       const Frame& f, int plane, int row0, int row1) {
  media::ConstPlaneView v = f.plane(plane);
  if (row1 <= row0) return;
  uint64_t offset =
      f.plane_offset(plane) +
      static_cast<uint64_t>(row0) * static_cast<uint64_t>(v.width);
  uint64_t len =
      static_cast<uint64_t>(row1 - row0) * static_cast<uint64_t>(v.width);
  if (is_input) {
    ctx.touch_read(port, offset, len);
  } else {
    ctx.touch_write(port, offset, len);
  }
}

// --- jpeg_decode_planes ------------------------------------------------------
//
// jpeg_decode + the three per-plane IDCTs as ONE component: the
// coefficient image lives in a private buffer that never crosses a
// stream — charged as scratch (one decode write pass, one IDCT read
// pass) instead of a parked multi-megabyte packet. This is the loop
// fusion of the JPiP decode chain; the hand-written sequential decoder
// (apps::run_jpip_sequential) has exactly this memory behaviour.
class JpegDecodePlanesComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int workers =
        static_cast<int>(hinch::param_int_or(config.params, "workers", 1));
    if (workers < 1 || workers > 256)
      return support::invalid_argument(
          "jpeg_decode_planes: workers must be in [1, 256]");
    return std::unique_ptr<hinch::Component>(
        new JpegDecodePlanesComponent(workers));
  }

  explicit JpegDecodePlanesComponent(int workers)
      : in_(declare_input("jpeg")),
        outs_{declare_output("y"), declare_output("u"), declare_output("v")},
        workers_(workers) {}

  void run(ExecContext& ctx) override {
    auto bytes = ctx.read(in_).get<std::vector<uint8_t>>();
    // Same buffer reuse as JpegDecodeComponent — and since the image
    // never leaves this component, the spare is always reusable.
    if (!spare_ || spare_.use_count() != 1)
      spare_ = std::make_shared<CoeffImage>();
    auto img = spare_;
    support::Status st = media::jpeg::decode_to_coefficients_into(
        bytes->data(), bytes->size(), img.get(),
        media::jpeg::HuffmanImpl::kLookupTable, workers_);
    SUP_CHECK_MSG(st.is_ok(), st.to_string().c_str());
    SUP_CHECK_MSG(img->comps.size() == 3,
                  "jpeg_decode_planes: stream is not YUV");
    uint64_t blocks = 0;
    for (const auto& c : img->comps) blocks += c.blocks.size();
    uint64_t cycles =
        media::jpeg::entropy_decode_cycles(bytes->size(), blocks);
    for (int p = 0; p < 3; ++p) {
      const CoeffPlane& comp = img->comps[static_cast<size_t>(p)];
      FramePtr dst = output_stream(outs_[p])->get_or_alloc_frame(
          ctx.iteration(), media::PixelFormat::kGray, comp.width,
          comp.height);
      media::jpeg::idct_component(comp, dst->plane(0), 0, comp.blocks_h);
      cycles += media::jpeg::idct_cycles(comp.blocks.size());
      ctx.touch_write(outs_[p], 0, dst->plane(0).bytes());
    }
    ctx.touch_read(in_, 0, bytes->size());
    // The coefficient store: written by the entropy decode, read back by
    // the IDCTs — still warm, and never a stream packet.
    uint64_t cb = coeff_bytes(*img);
    ctx.touch_scratch(cb);
    ctx.touch_scratch_read(cb);
    ctx.charge_compute(cycles);
  }

 private:
  int in_;
  int outs_[3];
  int workers_;
  std::shared_ptr<CoeffImage> spare_;
};

// --- downscale_blend ---------------------------------------------------------
//
// downscale + blend in one traversal (media::downscale_blend) — the
// paper's §4.1 hand-written PiP kernel. The downscaled foreground never
// materializes; sliced by downscaled-foreground rows exactly like the
// unfused pair, so per-band fusion is exact (slice-preserving).
class DownscaleBlendComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    SUP_ASSIGN_OR_RETURN(int64_t factor,
                         hinch::param_int(config.params, "factor"));
    if (factor < 1 || factor > 256)
      return support::invalid_argument(
          "downscale_blend: factor must be in [1,256]");
    auto comp = std::unique_ptr<DownscaleBlendComponent>(
        new DownscaleBlendComponent(static_cast<int>(factor)));
    comp->src_plane_ = static_cast<int>(
        hinch::param_int_or(config.params, "src_plane", -1));
    comp->x_ = static_cast<int>(hinch::param_int_or(config.params, "x", 0));
    comp->y_ = static_cast<int>(hinch::param_int_or(config.params, "y", 0));
    comp->alpha_ =
        static_cast<int>(hinch::param_int_or(config.params, "alpha", 256));
    comp->plane_ =
        static_cast<int>(hinch::param_int_or(config.params, "plane", -1));
    if (comp->alpha_ < 0 || comp->alpha_ > 256)
      return support::invalid_argument(
          "downscale_blend: alpha must be in [0,256]");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  explicit DownscaleBlendComponent(int factor)
      : in_(declare_input("in")),
        canvas_(declare_output("canvas")),
        factor_(factor) {}

  // Same request the unfused blend honours, so reconfiguration keeps
  // working across the rewrite.
  void reconfigure(std::string_view request) override {
    auto req = std::string(request);
    if (support::starts_with(req, "pos=")) {
      auto parts = support::split(req.substr(4), ',');
      if (parts.size() == 2) {
        auto x = support::parse_int(parts[0]);
        auto y = support::parse_int(parts[1]);
        if (x.is_ok() && y.is_ok()) {
          x_ = static_cast<int>(x.value());
          y_ = static_cast<int>(y.value());
        }
      }
    }
  }

  void run(ExecContext& ctx) override {
    FramePtr src = ctx.read(in_).frame();
    Packet& slot = ctx.inout(canvas_);
    FramePtr canvas = slot.frame();
    int sp_idx = src_plane_ >= 0 ? src_plane_ : 0;
    SUP_CHECK_MSG(src_plane_ < src->planes(),
                  "downscale_blend: no such plane");
    SUP_CHECK_MSG(src_plane_ >= 0 || src->planes() == 1,
                  "downscale_blend: multi-plane source needs src_plane");
    media::ConstPlaneView sp = src->plane(sp_idx);
    int target = canvas->planes() == 1 ? 0 : std::max(plane_, 0);
    media::PlaneView c = canvas->plane(target);
    // Luma-space offset scaled into the target plane's coordinate space
    // (same arithmetic as the unfused blend).
    int px = canvas->width() ? x_ * c.width / canvas->width() : x_;
    int py = canvas->height() ? y_ * c.height / canvas->height() : y_;
    int sh = sp.height / factor_;
    int sw = sp.width / factor_;
    int r0 = 0, r1 = 0;
    hinch::slice_rows(sh, slice_index(), slice_count(), &r0, &r1);
    media::downscale_blend(sp, c, factor_, px, py, alpha_, py + r0, py + r1);
    ctx.charge_compute(media::downscale_blend_cycles(sw, r1 - r0, factor_));
    charge_touch_rows(ctx, true, in_, *src, sp_idx, r0 * factor_,
                      r1 * factor_);
    int c0 = std::clamp(py + r0, 0, c.height);
    int c1 = std::clamp(py + r1, 0, c.height);
    charge_touch_rows(ctx, false, canvas_, *canvas, target, c0, c1);
  }

 private:
  int in_;
  int canvas_;
  int factor_;
  int src_plane_ = -1;
  int x_ = 0;
  int y_ = 0;
  int alpha_ = 256;
  int plane_ = -1;
};

// --- blur_hv -----------------------------------------------------------------
//
// Both blur passes in one traversal over a kernel_size-row ring
// (media::blur_hv). The horizontally-blurred plane never materializes;
// each band recomputes its halo rows, so bands stay independent and the
// rewrite is slice-preserving.
class BlurHvComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int kernel =
        static_cast<int>(hinch::param_int_or(config.params, "kernel", 3));
    if (kernel != 3 && kernel != 5)
      return support::invalid_argument("blur_hv: kernel must be 3 or 5");
    int plane =
        static_cast<int>(hinch::param_int_or(config.params, "plane", 0));
    return std::unique_ptr<hinch::Component>(
        new BlurHvComponent(kernel, plane));
  }

  BlurHvComponent(int kernel, int plane)
      : in_(declare_input("in")),
        out_(declare_output("out")),
        kernel_(kernel),
        plane_(plane) {}

  void reconfigure(std::string_view request) override {
    auto req = std::string(request);
    if (support::starts_with(req, "kernel=")) {
      auto k = support::parse_int(req.substr(7));
      if (k.is_ok() && (k.value() == 3 || k.value() == 5))
        kernel_ = static_cast<int>(k.value());
    }
  }

  int kernel() const { return kernel_; }

  void run(ExecContext& ctx) override {
    FramePtr src = ctx.read(in_).frame();
    int plane = src->planes() == 1 ? 0 : plane_;
    SUP_CHECK_MSG(plane < src->planes(), "blur_hv: no such plane");
    media::ConstPlaneView sp = src->plane(plane);
    FramePtr dst = output_stream(out_)->get_or_alloc_frame(
        ctx.iteration(), media::PixelFormat::kGray, sp.width, sp.height);
    int r0 = 0, r1 = 0;
    hinch::slice_rows(sp.height, slice_index(), slice_count(), &r0, &r1);
    media::blur_hv(sp, dst->plane(0), kernel_, r0, r1);
    // The vertical taps reach kernel_/2 rows past the band, and the ring
    // h-blurs exactly the source rows those taps need.
    int halo = kernel_ / 2;
    charge_touch_rows(ctx, true, in_, *src, plane, std::max(0, r0 - halo),
                      std::min(sp.height, r1 + halo));
    uint64_t ring = static_cast<uint64_t>(kernel_) *
                    static_cast<uint64_t>(sp.width);
    ctx.touch_scratch(ring);
    ctx.touch_scratch_read(ring);
    ctx.charge_compute(media::blur_hv_cycles(sp.width, r1 - r0, kernel_));
    charge_touch_rows(ctx, false, out_, *dst, 0, r0, r1);
  }

 private:
  int in_;
  int out_;
  int kernel_;
  int plane_;
};

// --- idct_downscale ----------------------------------------------------------
//
// Per-plane IDCT + box downscale in one traversal
// (media::jpeg::idct_downscale): blocks are transformed into an
// lcm(8, factor)-row strip and averaged straight out of it — the
// full-size plane never materializes. Sliced by downscaled output rows.
class IdctDownscaleComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    SUP_ASSIGN_OR_RETURN(int64_t factor,
                         hinch::param_int(config.params, "factor"));
    if (factor < 1 || factor > 256)
      return support::invalid_argument(
          "idct_downscale: factor must be in [1,256]");
    int plane =
        static_cast<int>(hinch::param_int_or(config.params, "plane", 0));
    if (plane < 0 || plane > 2)
      return support::invalid_argument(
          "idct_downscale: plane must be 0, 1 or 2");
    return std::unique_ptr<hinch::Component>(
        new IdctDownscaleComponent(plane, static_cast<int>(factor)));
  }

  IdctDownscaleComponent(int plane, int factor)
      : in_(declare_input("coeffs")),
        out_(declare_output("out")),
        plane_(plane),
        factor_(factor) {}

  void run(ExecContext& ctx) override {
    auto img = ctx.read(in_).get<CoeffImage>();
    SUP_CHECK_MSG(plane_ < static_cast<int>(img->comps.size()),
                  "idct_downscale: no such component in the JPEG stream");
    const CoeffPlane& comp = img->comps[static_cast<size_t>(plane_)];
    const int ow = comp.width / factor_;
    const int oh = comp.height / factor_;
    FramePtr dst = output_stream(out_)->get_or_alloc_frame(
        ctx.iteration(), media::PixelFormat::kGray, ow, oh);
    int r0 = 0, r1 = 0;
    hinch::slice_rows(oh, slice_index(), slice_count(), &r0, &r1);
    media::jpeg::idct_downscale(comp, dst->plane(0), factor_, r0, r1);

    const int b0 = (r0 * factor_) / 8;
    const int b1 = std::min(comp.blocks_h, (r1 * factor_ + 7) / 8);
    uint64_t row_bytes = static_cast<uint64_t>(comp.blocks_w) * 128;
    ctx.touch_read(in_, coeff_plane_offset(*img, plane_) +
                            static_cast<uint64_t>(b0) * row_bytes,
                   static_cast<uint64_t>(b1 - b0) * row_bytes);
    // One lcm(8, factor)-row pixel strip, written by the IDCT and read
    // back by the box filter.
    const int lcm = 8 * factor_ / std::gcd(8, factor_);
    uint64_t strip = static_cast<uint64_t>(lcm) *
                     static_cast<uint64_t>(comp.width);
    ctx.touch_scratch(strip);
    ctx.touch_scratch_read(strip);
    uint64_t blocks =
        static_cast<uint64_t>(b1 - b0) * static_cast<uint64_t>(comp.blocks_w);
    ctx.charge_compute(
        media::jpeg::idct_downscale_cycles(blocks, ow, r1 - r0, factor_));
    charge_touch_rows(ctx, false, out_, *dst, 0, r0, r1);
  }

 private:
  int in_;
  int out_;
  int plane_;
  int factor_;
};

// --- fusion pattern rewrites -------------------------------------------------

const std::string* binding(const std::vector<sp::PortBinding>& bindings,
                           const std::string& port) {
  for (const sp::PortBinding& b : bindings)
    if (b.port == port) return &b.stream;
  return nullptr;
}

std::string param_or(const sp::LeafSpec& leaf, const std::string& name,
                     const std::string& fallback) {
  for (const sp::Param& p : leaf.params)
    if (p.name == name) return p.value;
  return fallback;
}

std::string joined_instance(const std::vector<const sp::LeafSpec*>& specs) {
  std::string name;
  for (const sp::LeafSpec* s : specs) {
    if (!name.empty()) name += "+";
    name += s->instance;
  }
  return name;
}

support::Status unsupported(const char* what) {
  return support::invalid_argument(what);
}

// downscale -> blend  =>  downscale_blend
support::Result<sp::LeafSpec> rewrite_downscale_blend(
    const std::vector<const sp::LeafSpec*>& specs) {
  const sp::LeafSpec& ds = *specs[0];
  const sp::LeafSpec& bl = *specs[1];
  const std::string* in = binding(ds.inputs, "in");
  const std::string* canvas = binding(bl.outputs, "canvas");
  if (!in || !canvas)
    return unsupported("downscale_blend fusion: missing port binding");
  if (!ds.initial_reconfig.empty())
    return unsupported("downscale_blend fusion: downscale has a reconfig");
  sp::LeafSpec fused;
  fused.instance = joined_instance(specs);
  fused.klass = "downscale_blend";
  fused.params = {{"factor", param_or(ds, "factor", "1")},
                  {"src_plane", param_or(ds, "plane", "-1")},
                  {"x", param_or(bl, "x", "0")},
                  {"y", param_or(bl, "y", "0")},
                  {"alpha", param_or(bl, "alpha", "256")},
                  {"plane", param_or(bl, "plane", "-1")}};
  fused.inputs = {{"in", *in}};
  fused.outputs = {{"canvas", *canvas}};
  fused.initial_reconfig = bl.initial_reconfig;
  return fused;
}

// jpeg_decode -> idct x3  =>  jpeg_decode_planes
support::Result<sp::LeafSpec> rewrite_jpeg_decode_planes(
    const std::vector<const sp::LeafSpec*>& specs) {
  const sp::LeafSpec& dec = *specs[0];
  const std::string* jpeg = binding(dec.inputs, "jpeg");
  if (!jpeg)
    return unsupported("jpeg_decode_planes fusion: missing port binding");
  // The fused decode emits y/u/v in plane order; any other plane
  // assignment has no fused kernel.
  const char* ports[3] = {"y", "u", "v"};
  std::vector<sp::PortBinding> outs;
  for (int p = 0; p < 3; ++p) {
    const sp::LeafSpec& idct = *specs[static_cast<size_t>(p) + 1];
    if (param_or(idct, "plane", "0") != std::to_string(p))
      return unsupported("jpeg_decode_planes fusion: planes not 0,1,2");
    const std::string* out = binding(idct.outputs, "out");
    if (!out)
      return unsupported("jpeg_decode_planes fusion: missing port binding");
    outs.push_back({ports[p], *out});
  }
  sp::LeafSpec fused;
  fused.instance = joined_instance(specs);
  fused.klass = "jpeg_decode_planes";
  fused.params = {{"workers", param_or(dec, "workers", "1")}};
  fused.inputs = {{"jpeg", *jpeg}};
  fused.outputs = std::move(outs);
  return fused;
}

// blur_h -> blur_v  =>  blur_hv
support::Result<sp::LeafSpec> rewrite_blur_hv(
    const std::vector<const sp::LeafSpec*>& specs) {
  const sp::LeafSpec& bh = *specs[0];
  const sp::LeafSpec& bv = *specs[1];
  if (param_or(bh, "kernel", "3") != param_or(bv, "kernel", "3"))
    return unsupported("blur_hv fusion: passes use different kernels");
  const std::string* in = binding(bh.inputs, "in");
  const std::string* out = binding(bv.outputs, "out");
  if (!in || !out)
    return unsupported("blur_hv fusion: missing port binding");
  sp::LeafSpec fused;
  fused.instance = joined_instance(specs);
  fused.klass = "blur_hv";
  fused.params = {{"kernel", param_or(bh, "kernel", "3")},
                  {"plane", param_or(bh, "plane", "0")}};
  fused.inputs = {{"in", *in}};
  fused.outputs = {{"out", *out}};
  fused.initial_reconfig = bh.initial_reconfig;
  return fused;
}

// idct -> downscale  =>  idct_downscale
support::Result<sp::LeafSpec> rewrite_idct_downscale(
    const std::vector<const sp::LeafSpec*>& specs) {
  const sp::LeafSpec& idct = *specs[0];
  const sp::LeafSpec& ds = *specs[1];
  // The IDCT output is gray; a downscale asked to extract plane > 0
  // from it means the wiring is not the plain chain.
  const std::string ds_plane = param_or(ds, "plane", "-1");
  if (ds_plane != "-1" && ds_plane != "0")
    return unsupported("idct_downscale fusion: downscale wants plane > 0");
  const std::string* in = binding(idct.inputs, "coeffs");
  const std::string* out = binding(ds.outputs, "out");
  if (!in || !out)
    return unsupported("idct_downscale fusion: missing port binding");
  sp::LeafSpec fused;
  fused.instance = joined_instance(specs);
  fused.klass = "idct_downscale";
  fused.params = {{"plane", param_or(idct, "plane", "0")},
                  {"factor", param_or(ds, "factor", "1")}};
  fused.inputs = {{"coeffs", *in}};
  fused.outputs = {{"out", *out}};
  return fused;
}

}  // namespace

void register_fused(hinch::ComponentRegistry& registry) {
  registry.register_class("jpeg_decode_planes",
                          &JpegDecodePlanesComponent::create);
  registry.register_class("downscale_blend",
                          &DownscaleBlendComponent::create);
  registry.register_class("blur_hv", &BlurHvComponent::create);
  registry.register_class("idct_downscale",
                          &IdctDownscaleComponent::create);
}

const sp::KernelFusionRegistry& standard_fusions() {
  static const sp::KernelFusionRegistry* registry = [] {
    auto* r = new sp::KernelFusionRegistry();
    r->add({"jpeg_decode_planes",
            {"jpeg_decode", "idct", "idct", "idct"},
            &rewrite_jpeg_decode_planes,
            /*slice_preserving=*/false});
    r->add({"downscale_blend",
            {"downscale", "blend"},
            &rewrite_downscale_blend,
            /*slice_preserving=*/true});
    r->add({"blur_hv",
            {"blur_h", "blur_v"},
            &rewrite_blur_hv,
            /*slice_preserving=*/true});
    r->add({"idct_downscale",
            {"idct", "downscale"},
            &rewrite_idct_downscale,
            /*slice_preserving=*/true});
    return r;
  }();
  return *registry;
}

}  // namespace components
