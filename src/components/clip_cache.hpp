// Process-wide cache of synthetic clips and their MJPEG encodings.
//
// Benchmarks build the same Program for many core counts; regenerating
// (and JPEG-encoding) identical input clips each time would dominate
// build time without changing any result, so clips are cached by their
// full parameter tuple.
//
// The cache is byte-budgeted: entries are kept in LRU order and evicted
// when the total payload size exceeds the budget, so parameter sweeps
// (many distinct clip sizes) no longer grow process memory without
// bound. Evicted clips stay alive as long as a caller holds the
// shared_ptr; only the cache's reference is dropped.
#pragma once

#include <cstddef>
#include <memory>

#include "media/mjpeg.hpp"

namespace components {

struct ClipKey {
  uint64_t seed;
  int width;
  int height;
  media::PixelFormat format;
  int frames;
  int quality;      // only meaningful for encoded clips
  int restart = 0;  // JPEG restart interval (encoded clips; 0 = none)

  bool operator==(const ClipKey&) const = default;
};

// Shared immutable synthetic clip (quality ignored).
std::shared_ptr<const media::RawVideo> cached_raw_clip(const ClipKey& key);

// Shared immutable MJPEG encoding of the synthetic clip.
std::shared_ptr<const media::MjpegClip> cached_mjpeg_clip(const ClipKey& key);

// Maximum total payload bytes kept across both caches (default 512 MiB).
// Shrinking the budget evicts immediately. Returns the previous budget.
size_t set_clip_cache_budget(size_t max_bytes);

// Current total payload bytes held by the caches (for tests/diagnostics).
size_t clip_cache_bytes();

// Drop every cached clip (benchmark teardown; keeps the budget).
void clear_clip_caches();

}  // namespace components
