// Process-wide cache of synthetic clips and their MJPEG encodings.
//
// Benchmarks build the same Program for many core counts; regenerating
// (and JPEG-encoding) identical input clips each time would dominate
// build time without changing any result, so clips are cached by their
// full parameter tuple.
#pragma once

#include <memory>

#include "media/mjpeg.hpp"

namespace components {

struct ClipKey {
  uint64_t seed;
  int width;
  int height;
  media::PixelFormat format;
  int frames;
  int quality;  // only meaningful for encoded clips

  bool operator==(const ClipKey&) const = default;
};

// Shared immutable synthetic clip (quality ignored).
std::shared_ptr<const media::RawVideo> cached_raw_clip(const ClipKey& key);

// Shared immutable MJPEG encoding of the synthetic clip.
std::shared_ptr<const media::MjpegClip> cached_mjpeg_clip(const ClipKey& key);

}  // namespace components
