// Pixel-processing components: copy, downscale, blend, separable blur.
#include <algorithm>

#include "components/detail.hpp"
#include "hinch/component.hpp"
#include "media/kernels.hpp"
#include "support/strings.hpp"

namespace components {
namespace {

using hinch::ExecContext;
using hinch::Packet;
using media::Frame;
using media::FramePtr;

// Charge a touch for rows [row0, row1) of plane `plane` of the frame in
// the given port's slot.
void charge_touch_rows(ExecContext& ctx, bool is_input, int port,
                       const Frame& f, int plane, int row0, int row1,
                       bool write) {
  media::ConstPlaneView v = f.plane(plane);
  if (row1 <= row0) return;
  uint64_t offset = f.plane_offset(plane) +
                    static_cast<uint64_t>(row0) * static_cast<uint64_t>(v.width);
  uint64_t len = static_cast<uint64_t>(row1 - row0) *
                 static_cast<uint64_t>(v.width);
  if (is_input) {
    ctx.touch_read(port, offset, len);
  } else {
    ctx.touch_write(port, offset, len);
  }
  (void)write;
}

// --- copy --------------------------------------------------------------------

// Full-frame copy; the "background video is simply copied" component of
// PiP (§4). Sliced: each copy handles a horizontal band of every plane.
class CopyComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig&) {
    return std::unique_ptr<hinch::Component>(new CopyComponent());
  }

  CopyComponent() : in_(declare_input("in")), out_(declare_output("out")) {}

  void run(ExecContext& ctx) override {
    FramePtr src = ctx.read(in_).frame();
    FramePtr dst = output_stream(out_)->get_or_alloc_frame(
        ctx.iteration(), src->format(), src->width(), src->height());
    for (int p = 0; p < src->planes(); ++p) {
      media::ConstPlaneView sp = src->plane(p);
      int r0 = 0, r1 = 0;
      hinch::slice_rows(sp.height, slice_index(), slice_count(), &r0, &r1);
      media::copy_plane(sp, dst->plane(p), r0, r1);
      ctx.charge_compute(media::copy_cycles(sp.width, r1 - r0));
      charge_touch_rows(ctx, true, in_, *src, p, r0, r1, false);
      charge_touch_rows(ctx, false, out_, *dst, p, r0, r1, true);
    }
  }

 private:
  int in_;
  int out_;
};

// --- downscale ---------------------------------------------------------------

// Spatial down scaler (§3.1's running example). plane=-1: all planes,
// plane=p: that plane only, to a gray frame.
class DownscaleComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    SUP_ASSIGN_OR_RETURN(int64_t factor,
                         hinch::param_int(config.params, "factor"));
    if (factor < 1 || factor > 256)
      return support::invalid_argument("downscale: factor must be in [1,256]");
    int plane = static_cast<int>(
        hinch::param_int_or(config.params, "plane", -1));
    return std::unique_ptr<hinch::Component>(
        new DownscaleComponent(static_cast<int>(factor), plane));
  }

  DownscaleComponent(int factor, int plane)
      : in_(declare_input("in")),
        out_(declare_output("out")),
        factor_(factor),
        plane_(plane) {}

  void run(ExecContext& ctx) override {
    FramePtr src = ctx.read(in_).frame();
    if (plane_ >= 0) {
      SUP_CHECK_MSG(plane_ < src->planes(), "downscale: no such plane");
      media::ConstPlaneView sp = src->plane(plane_);
      FramePtr dst = output_stream(out_)->get_or_alloc_frame(
          ctx.iteration(), media::PixelFormat::kGray, sp.width / factor_,
          sp.height / factor_);
      scale_plane(ctx, *src, plane_, sp, *dst, dst->plane(0));
    } else {
      FramePtr dst = output_stream(out_)->get_or_alloc_frame(
          ctx.iteration(), src->format(), src->width() / factor_,
          src->height() / factor_);
      for (int p = 0; p < src->planes(); ++p)
        scale_plane(ctx, *src, p, src->plane(p), *dst, dst->plane(p));
    }
  }

 private:
  void scale_plane(ExecContext& ctx, const Frame& src_frame, int src_plane,
                   media::ConstPlaneView sp, Frame& dst_frame,
                   media::PlaneView dp) {
    int r0 = 0, r1 = 0;
    hinch::slice_rows(dp.height, slice_index(), slice_count(), &r0, &r1);
    media::downscale_box(sp, dp, factor_, r0, r1);
    ctx.charge_compute(media::downscale_cycles(dp.width, r1 - r0, factor_));
    charge_touch_rows(ctx, true, in_, src_frame, src_plane, r0 * factor_,
                      r1 * factor_, false);
    int dst_plane_idx = dst_frame.planes() == 1 ? 0 : src_plane;
    charge_touch_rows(ctx, false, out_, dst_frame, dst_plane_idx, r0, r1,
                      true);
  }

  int in_;
  int out_;
  int factor_;
  int plane_;
};

// --- blend -------------------------------------------------------------------

// Alpha-blends the foreground over the canvas stream in place. The
// canvas must have been produced earlier in the iteration (copy / idct).
// Reconfiguration request "pos=X,Y" moves the blended picture — the
// paper's example of a reconfigurable picture-in-picture blender (§3.1).
class BlendComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<BlendComponent>(new BlendComponent());
    comp->x_ = static_cast<int>(hinch::param_int_or(config.params, "x", 0));
    comp->y_ = static_cast<int>(hinch::param_int_or(config.params, "y", 0));
    comp->alpha_ = static_cast<int>(
        hinch::param_int_or(config.params, "alpha", 256));
    comp->plane_ = static_cast<int>(
        hinch::param_int_or(config.params, "plane", -1));
    if (comp->alpha_ < 0 || comp->alpha_ > 256)
      return support::invalid_argument("blend: alpha must be in [0,256]");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  BlendComponent()
      : fg_(declare_input("fg")), canvas_(declare_output("canvas")) {}

  void reconfigure(std::string_view request) override {
    auto req = std::string(request);
    if (support::starts_with(req, "pos=")) {
      auto parts = support::split(req.substr(4), ',');
      if (parts.size() == 2) {
        auto x = support::parse_int(parts[0]);
        auto y = support::parse_int(parts[1]);
        if (x.is_ok() && y.is_ok()) {
          x_ = static_cast<int>(x.value());
          y_ = static_cast<int>(y.value());
        }
      }
    }
  }

  void run(ExecContext& ctx) override {
    FramePtr fg = ctx.read(fg_).frame();
    Packet& slot = ctx.inout(canvas_);
    FramePtr canvas = slot.frame();

    if (fg->planes() > 1 && plane_ < 0) {
      // Full-frame blend: each fg plane onto the matching canvas plane,
      // with coordinates scaled by the plane's subsampling.
      SUP_CHECK(canvas->planes() == fg->planes());
      for (int p = 0; p < fg->planes(); ++p)
        blend_plane(ctx, *fg, p, *canvas, p);
    } else {
      int target = canvas->planes() == 1 ? 0 : std::max(plane_, 0);
      blend_plane(ctx, *fg, fg->planes() == 1 ? 0 : std::max(plane_, 0),
                  *canvas, target);
    }
  }

 private:
  void blend_plane(ExecContext& ctx, const Frame& fg, int fp, Frame& canvas,
                   int cp) {
    media::ConstPlaneView f = fg.plane(fp);
    media::PlaneView c = canvas.plane(cp);
    // Scale the luma-space offset into this plane's coordinate space.
    int px = canvas.width() ? x_ * c.width / canvas.width() : x_;
    int py = canvas.height() ? y_ * c.height / canvas.height() : y_;
    int r0 = 0, r1 = 0;
    hinch::slice_rows(f.height, slice_index(), slice_count(), &r0, &r1);
    media::blend(f, c, px, py, alpha_, py + r0, py + r1);
    ctx.charge_compute(media::blend_cycles(f.width, r1 - r0));
    charge_touch_rows(ctx, true, fg_, fg, fp, r0, r1, false);
    int c0 = std::clamp(py + r0, 0, c.height);
    int c1 = std::clamp(py + r1, 0, c.height);
    charge_touch_rows(ctx, false, canvas_, canvas, cp, c0, c1, true);
  }

  int fg_;
  int canvas_;
  int x_ = 0;
  int y_ = 0;
  int alpha_ = 256;
  int plane_ = -1;
};

// --- separable Gaussian blur ----------------------------------------------------

// One pass (horizontal or vertical) of the Blur application (§4). The
// two passes run as crossdep parblocks (Fig. 5). Output is the blurred
// plane as a gray frame.
class BlurComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create_pass(
      const hinch::ComponentConfig& config, bool horizontal) {
    int kernel =
        static_cast<int>(hinch::param_int_or(config.params, "kernel", 3));
    if (kernel != 3 && kernel != 5)
      return support::invalid_argument("blur: kernel must be 3 or 5");
    int plane =
        static_cast<int>(hinch::param_int_or(config.params, "plane", 0));
    return std::unique_ptr<hinch::Component>(
        new BlurComponent(horizontal, kernel, plane));
  }

  static support::Result<std::unique_ptr<hinch::Component>> create_h(
      const hinch::ComponentConfig& config) {
    return create_pass(config, /*horizontal=*/true);
  }
  static support::Result<std::unique_ptr<hinch::Component>> create_v(
      const hinch::ComponentConfig& config) {
    return create_pass(config, /*horizontal=*/false);
  }

  BlurComponent(bool horizontal, int kernel, int plane)
      : in_(declare_input("in")),
        out_(declare_output("out")),
        horizontal_(horizontal),
        kernel_(kernel),
        plane_(plane) {}

  void reconfigure(std::string_view request) override {
    auto req = std::string(request);
    if (support::starts_with(req, "kernel=")) {
      auto k = support::parse_int(req.substr(7));
      if (k.is_ok() && (k.value() == 3 || k.value() == 5))
        kernel_ = static_cast<int>(k.value());
    }
  }

  int kernel() const { return kernel_; }

  void run(ExecContext& ctx) override {
    FramePtr src = ctx.read(in_).frame();
    int plane = src->planes() == 1 ? 0 : plane_;
    SUP_CHECK_MSG(plane < src->planes(), "blur: no such plane");
    media::ConstPlaneView sp = src->plane(plane);
    FramePtr dst = output_stream(out_)->get_or_alloc_frame(
        ctx.iteration(), media::PixelFormat::kGray, sp.width, sp.height);
    int r0 = 0, r1 = 0;
    hinch::slice_rows(sp.height, slice_index(), slice_count(), &r0, &r1);
    if (horizontal_) {
      media::blur_h(sp, dst->plane(0), kernel_, r0, r1);
      charge_touch_rows(ctx, true, in_, *src, plane, r0, r1, false);
    } else {
      media::blur_v(sp, dst->plane(0), kernel_, r0, r1);
      // The vertical pass reads a halo of kernel_/2 rows above and below
      // its band — the cross dependencies of Fig. 5 exist exactly to
      // make the neighbouring slices' data available.
      int halo = kernel_ / 2;
      charge_touch_rows(ctx, true, in_, *src, plane,
                 std::max(0, r0 - halo), std::min(sp.height, r1 + halo),
                 false);
    }
    ctx.charge_compute(media::blur_cycles(sp.width, r1 - r0, kernel_));
    charge_touch_rows(ctx, false, out_, *dst, 0, r0, r1, true);
  }

 private:
  int in_;
  int out_;
  bool horizontal_;
  int kernel_;
  int plane_;
};

}  // namespace

void register_filters(hinch::ComponentRegistry& registry) {
  registry.register_class("copy", &CopyComponent::create);
  registry.register_class("downscale", &DownscaleComponent::create);
  registry.register_class("blend", &BlendComponent::create);
  registry.register_class("blur_h", &BlurComponent::create_h);
  registry.register_class("blur_v", &BlurComponent::create_v);
}

}  // namespace components
