#include "components/components.hpp"

#include <mutex>

#include "components/detail.hpp"

namespace components {

void register_standard(hinch::ComponentRegistry& registry) {
  register_sources(registry);
  register_filters(registry);
  register_jpeg_stages(registry);
  register_fused(registry);
  register_sinks(registry);
  register_events(registry);
  register_adaptive(registry);
}

void register_standard_globally() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_standard(hinch::ComponentRegistry::global());
  });
}

}  // namespace components
