// Shared declarations for the standard component library's translation
// units (registration hooks and small helpers).
#pragma once

#include "hinch/registry.hpp"
#include "media/frame.hpp"
#include "support/status.hpp"

namespace components {

void register_sources(hinch::ComponentRegistry& registry);
void register_filters(hinch::ComponentRegistry& registry);
void register_jpeg_stages(hinch::ComponentRegistry& registry);
void register_fused(hinch::ComponentRegistry& registry);
void register_sinks(hinch::ComponentRegistry& registry);
void register_events(hinch::ComponentRegistry& registry);
void register_adaptive(hinch::ComponentRegistry& registry);

support::Result<media::PixelFormat> parse_format(const std::string& s);

}  // namespace components
