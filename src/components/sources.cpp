// Source components: uncompressed and MJPEG video inputs.
#include <string>

#include "components/clip_cache.hpp"
#include "components/detail.hpp"
#include "media/kernels.hpp"

namespace components {

support::Result<media::PixelFormat> parse_format(const std::string& s) {
  if (s == "yuv420") return media::PixelFormat::kYuv420;
  if (s == "yuv444") return media::PixelFormat::kYuv444;
  if (s == "gray") return media::PixelFormat::kGray;
  return support::invalid_argument("unknown pixel format '" + s + "'");
}

support::Result<ClipKey> clip_key_from_params(const hinch::ParamMap& params) {
  ClipKey key;
  key.seed = static_cast<uint64_t>(hinch::param_int_or(params, "seed", 1));
  key.width = static_cast<int>(hinch::param_int_or(params, "width", 320));
  key.height = static_cast<int>(hinch::param_int_or(params, "height", 240));
  key.frames = static_cast<int>(hinch::param_int_or(params, "frames", 32));
  key.quality = static_cast<int>(hinch::param_int_or(params, "quality", 75));
  key.restart = static_cast<int>(hinch::param_int_or(params, "restart", 0));
  SUP_ASSIGN_OR_RETURN(
      key.format,
      parse_format(hinch::param_string_or(params, "format", "yuv420")));
  if (key.width < 8 || key.height < 8)
    return support::invalid_argument("source frames must be at least 8x8");
  if (key.frames < 1)
    return support::invalid_argument("source needs at least one frame");
  if (key.restart < 0 || key.restart > 65535)
    return support::invalid_argument("restart interval must be in [0, 65535]");
  return key;
}

namespace {

// Emits one uncompressed frame per iteration (looping over the clip).
// The paper's PiP inputs: "reads multiple uncompressed video files".
class VideoSource : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::make_unique<VideoSource>();
    std::string source =
        hinch::param_string_or(config.params, "source", "synth");
    if (source == "synth") {
      SUP_ASSIGN_OR_RETURN(ClipKey key, clip_key_from_params(config.params));
      comp->clip_ = cached_raw_clip(key);
    } else if (source == "file") {
      SUP_ASSIGN_OR_RETURN(std::string path,
                           hinch::param_string(config.params, "path"));
      SUP_ASSIGN_OR_RETURN(media::RawVideo video,
                           media::RawVideo::load(path));
      comp->clip_ =
          std::make_shared<const media::RawVideo>(std::move(video));
    } else {
      return support::invalid_argument("video_source: source must be "
                                       "'synth' or 'file'");
    }
    return support::Result<std::unique_ptr<hinch::Component>>(std::move(comp));
  }

  VideoSource() : out_(declare_output("out")) {}

  void run(hinch::ExecContext& ctx) override {
    int t = static_cast<int>(ctx.iteration() %
                             static_cast<int64_t>(clip_->frame_count()));
    const media::FramePtr& frame = clip_->frame(t);
    ctx.write(out_, hinch::Packet::of_frame(frame));
    // DMA the file data into the stream buffer.
    ctx.touch_write(out_, 0, frame->bytes());
    ctx.charge_compute(media::io_cycles(frame->bytes()));
  }

 private:
  std::shared_ptr<const media::RawVideo> clip_;
  int out_;
};

// Emits one JPEG-compressed frame (byte packet) per iteration: the
// "MJPEG input" component of the paper's JPiP graph (Fig. 7).
class MjpegSource : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::make_unique<MjpegSource>();
    std::string source =
        hinch::param_string_or(config.params, "source", "synth");
    if (source == "synth") {
      SUP_ASSIGN_OR_RETURN(ClipKey key, clip_key_from_params(config.params));
      if (key.format != media::PixelFormat::kYuv420 &&
          key.format != media::PixelFormat::kGray)
        return support::invalid_argument(
            "mjpeg_source: JPEG input must be yuv420 or gray");
      comp->clip_ = cached_mjpeg_clip(key);
    } else if (source == "file") {
      SUP_ASSIGN_OR_RETURN(std::string path,
                           hinch::param_string(config.params, "path"));
      SUP_ASSIGN_OR_RETURN(media::MjpegClip clip,
                           media::MjpegClip::load(path));
      comp->clip_ =
          std::make_shared<const media::MjpegClip>(std::move(clip));
    } else {
      return support::invalid_argument("mjpeg_source: source must be "
                                       "'synth' or 'file'");
    }
    if (comp->clip_->frame_count() == 0)
      return support::invalid_argument("mjpeg_source: empty clip");
    return support::Result<std::unique_ptr<hinch::Component>>(std::move(comp));
  }

  MjpegSource() : out_(declare_output("out")) {}

  void run(hinch::ExecContext& ctx) override {
    int t = static_cast<int>(ctx.iteration() %
                             static_cast<int64_t>(clip_->frame_count()));
    std::shared_ptr<const std::vector<uint8_t>> bytes(
        clip_, &clip_->frame(t));
    uint64_t size = bytes->size();
    ctx.write(out_, hinch::Packet::of_const(std::move(bytes), size));
    ctx.touch_write(out_, 0, size);
    ctx.charge_compute(media::io_cycles(size));
  }

 private:
  std::shared_ptr<const media::MjpegClip> clip_;
  int out_;
};

}  // namespace

void register_sources(hinch::ComponentRegistry& registry) {
  registry.register_class("video_source", &VideoSource::create);
  registry.register_class("mjpeg_source", &MjpegSource::create);
}

}  // namespace components
