// Adaptation components closing the feedback loop of §3.4: a policy
// component polls the executor's live metrics and drives the existing
// manager/option protocol through events, so "what to adapt on" is
// declared in the XML spec as data — thresholds, hysteresis bands and
// event names are parameters, not code. A var_load component provides
// the controllable load step the adaptation bench (bench_adapt) and the
// policy tests exercise the loop with.
#include <algorithm>

#include "components/components.hpp"
#include "components/detail.hpp"
#include "hinch/component.hpp"
#include "obs/metrics.hpp"
#include "support/strings.hpp"

namespace components {
namespace {

// Watches live metrics ("live.*" gauges published by the executors, see
// docs/OBSERVABILITY.md) against per-rule thresholds and sends manager
// events when a metric crosses them. Params:
//
//   queue   event queue of the manager to drive (required)
//   rules   ';'-separated "metric:high:low:on_high:on_low" entries
//           (required): when `metric` rises to >= high, send event
//           `on_high`; when it falls back to <= low, send `on_low`.
//           high > low is the hysteresis band — a metric oscillating
//           inside (low, high) triggers nothing.
//   period  poll every `period` iterations (default 1)
//   hold    after sending an event, suppress further events of the same
//           rule for `hold` iterations (default 0) — bounds the
//           reconfiguration rate even with a degenerate band.
//   warmup  ignore all rules for the first `warmup` iterations
//           (default 0): the first cycles-per-iteration samples include
//           pipeline-fill cost and overshoot steady state, which would
//           otherwise trigger a spurious reaction at startup.
//
// The component has no ports: it runs once per iteration as its own
// task. Without a live registry attached to the run it is inert.
class PolicyComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<PolicyComponent>(new PolicyComponent());
    SUP_ASSIGN_OR_RETURN(comp->queue_,
                         hinch::param_string(config.params, "queue"));
    SUP_ASSIGN_OR_RETURN(std::string rules,
                         hinch::param_string(config.params, "rules"));
    comp->period_ = hinch::param_int_or(config.params, "period", 1);
    comp->hold_ = hinch::param_int_or(config.params, "hold", 0);
    comp->warmup_ = hinch::param_int_or(config.params, "warmup", 0);
    if (comp->period_ < 1)
      return support::invalid_argument("policy: period must be >= 1");
    if (comp->hold_ < 0 || comp->warmup_ < 0)
      return support::invalid_argument("policy: hold/warmup must be >= 0");
    for (const std::string& entry : support::split(rules, ';')) {
      if (support::trim(entry).empty()) continue;
      auto parts = support::split(entry, ':');
      if (parts.size() != 5)
        return support::invalid_argument(
            "policy: rules entries are metric:high:low:on_high:on_low");
      Rule rule;
      rule.metric = std::string(support::trim(parts[0]));
      SUP_ASSIGN_OR_RETURN(rule.high, support::parse_double(parts[1]));
      SUP_ASSIGN_OR_RETURN(rule.low, support::parse_double(parts[2]));
      rule.on_high = std::string(support::trim(parts[3]));
      rule.on_low = std::string(support::trim(parts[4]));
      if (rule.high < rule.low)
        return support::invalid_argument(
            "policy: rule '" + rule.metric + "' has high < low");
      comp->rules_.push_back(std::move(rule));
    }
    if (comp->rules_.empty())
      return support::invalid_argument("policy: no rules given");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  void reset() override {
    for (Rule& r : rules_) {
      r.above = false;
      r.last_action_iter = -1;
    }
  }

  void run(hinch::ExecContext& ctx) override {
    // A poll is a snapshot plus a handful of comparisons.
    ctx.charge_compute(120);
    int64_t it = ctx.iteration();
    if (it < warmup_ || it % period_ != 0) return;
    obs::MetricsRegistry* metrics = ctx.metrics();
    if (metrics == nullptr) return;  // run without live publication
    obs::MetricsRegistry::Snapshot snap = metrics->snapshot();
    for (Rule& r : rules_) {
      if (!snap.has(r.metric)) continue;  // executor has not published yet
      double value = snap.get_double(r.metric);
      if (r.last_action_iter >= 0 && it - r.last_action_iter < hold_)
        continue;
      // Two-threshold hysteresis: only a crossing of the *far* edge of
      // the band flips the state, so noise inside (low, high) cannot
      // make the manager oscillate between options.
      if (!r.above && value >= r.high) {
        r.above = true;
        r.last_action_iter = it;
        if (!r.on_high.empty())
          ctx.send_event(queue_, hinch::Event{r.on_high, r.metric});
      } else if (r.above && value <= r.low) {
        r.above = false;
        r.last_action_iter = it;
        if (!r.on_low.empty())
          ctx.send_event(queue_, hinch::Event{r.on_low, r.metric});
      }
    }
  }

 private:
  struct Rule {
    std::string metric;
    double high = 0;
    double low = 0;
    std::string on_high;
    std::string on_low;
    bool above = false;           // current side of the hysteresis band
    int64_t last_action_iter = -1;
  };

  std::string queue_;
  std::vector<Rule> rules_;
  int64_t period_ = 1;
  int64_t hold_ = 0;
  int64_t warmup_ = 0;
};

// Charges a stepped compute load: `cycles` per iteration, switching to
// `step_cycles` from iteration `step_at` on, and back to `cycles` from
// `restore_at` (default: never). The knob the adaptation bench turns to
// make live.cycles_per_iter move. No ports; runs as its own task.
class VarLoad : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    auto comp = std::unique_ptr<VarLoad>(new VarLoad());
    SUP_ASSIGN_OR_RETURN(comp->cycles_,
                         hinch::param_int(config.params, "cycles"));
    comp->step_at_ = hinch::param_int_or(config.params, "step_at", -1);
    comp->step_cycles_ =
        hinch::param_int_or(config.params, "step_cycles", comp->cycles_);
    comp->restore_at_ = hinch::param_int_or(config.params, "restore_at", -1);
    if (comp->cycles_ < 0 || comp->step_cycles_ < 0)
      return support::invalid_argument("var_load: cycles must be >= 0");
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::move(comp));
  }

  void run(hinch::ExecContext& ctx) override {
    int64_t it = ctx.iteration();
    bool stepped = step_at_ >= 0 && it >= step_at_ &&
                   (restore_at_ < 0 || it < restore_at_);
    ctx.charge_compute(
        static_cast<uint64_t>(stepped ? step_cycles_ : cycles_));
  }

 private:
  int64_t cycles_ = 0;
  int64_t step_at_ = -1;
  int64_t step_cycles_ = 0;
  int64_t restore_at_ = -1;
};

}  // namespace

void register_adaptive(hinch::ComponentRegistry& registry) {
  registry.register_class("policy", &PolicyComponent::create);
  registry.register_class("var_load", &VarLoad::create);
}

ServerRebalance::ServerRebalance(const ServerRebalanceConfig& config)
    : config_(config) {
  SUP_CHECK_MSG(config.high_backlog_per_worker >=
                    config.low_backlog_per_worker,
                "server_rebalance: high < low");
  SUP_CHECK_MSG(config.min_active >= 1, "server_rebalance: min_active < 1");
  SUP_CHECK_MSG(config.hold_polls >= 1, "server_rebalance: hold_polls < 1");
}

double ServerRebalance::aggregate_backlog(
    const obs::MetricsRegistry::Snapshot& snap) {
  // Session gauges are "session.<id>.live.pending_jobs" in the shared
  // registry; the map is sorted, so walk the "session." range once.
  static const std::string kPrefix = "session.";
  static const std::string kSuffix = ".live.pending_jobs";
  double total = 0;
  auto it = snap.values().lower_bound(kPrefix);
  for (; it != snap.values().end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) break;
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0)
      total += it->second.as_double();
  }
  return total;
}

int ServerRebalance::recommend(const obs::MetricsRegistry::Snapshot& server,
                               int workers, int current_cap) {
  SUP_CHECK(workers >= 1);
  double per_worker = aggregate_backlog(server) / workers;
  // The step base: with no cap in force, step relative to what is
  // actually running — capping below the live count is what sheds load.
  int base = current_cap > 0
                 ? current_cap
                 : static_cast<int>(server.get_int("server.active_sessions"));
  if (per_worker >= config_.high_backlog_per_worker) {
    low_streak_ = 0;
    if (++high_streak_ >= config_.hold_polls) {
      high_streak_ = 0;
      return std::max(config_.min_active, base - 1);
    }
  } else if (per_worker <= config_.low_backlog_per_worker) {
    high_streak_ = 0;
    bool demand = server.get_int("server.queued_sessions") > 0;
    if (++low_streak_ >= config_.hold_polls) {
      low_streak_ = 0;
      if (demand && current_cap > 0) {
        int grown = current_cap + 1;
        if (config_.max_active > 0 && grown > config_.max_active)
          grown = config_.max_active;
        return grown;
      }
    }
  } else {
    // Inside the band: noise, reset both streaks.
    high_streak_ = 0;
    low_streak_ = 0;
  }
  return current_cap;
}

}  // namespace components
