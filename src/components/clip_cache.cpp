#include "components/clip_cache.hpp"

#include <list>
#include <map>
#include <mutex>
#include <tuple>

namespace components {
namespace {

// Raw and encoded clips share one LRU list and one byte budget; the
// payload kind only matters at lookup time.
using MapKey = std::tuple<int, uint64_t, int, int, int, int, int, int>;

constexpr int kRawKind = 0;
constexpr int kMjpegKind = 1;

MapKey map_key(int kind, const ClipKey& k) {
  return {kind,      k.seed,    k.width,  k.height,
          static_cast<int>(k.format), k.frames, k.quality, k.restart};
}

struct CacheEntry {
  MapKey key;
  std::shared_ptr<const media::RawVideo> raw;     // kind == kRawKind
  std::shared_ptr<const media::MjpegClip> mjpeg;  // kind == kMjpegKind
  size_t bytes = 0;
};

std::mutex g_mutex;
// MRU at the front; eviction pops from the back.
std::list<CacheEntry> g_lru;
std::map<MapKey, std::list<CacheEntry>::iterator> g_index;
size_t g_bytes = 0;
size_t g_budget = size_t{512} << 20;

size_t raw_bytes(const media::RawVideo& v) {
  if (v.frame_count() == 0) return 0;
  // All frames share format and dimensions.
  return static_cast<size_t>(v.frame_count()) * v.frame(0)->bytes();
}

// Caller holds g_mutex.
void evict_to_budget() {
  while (g_bytes > g_budget && !g_lru.empty()) {
    const CacheEntry& victim = g_lru.back();
    g_bytes -= victim.bytes;
    g_index.erase(victim.key);
    g_lru.pop_back();
  }
}

// Caller holds g_mutex. Returns the cached entry for `key` moved to the
// MRU position, or nullptr when absent.
CacheEntry* touch(const MapKey& key) {
  auto it = g_index.find(key);
  if (it == g_index.end()) return nullptr;
  g_lru.splice(g_lru.begin(), g_lru, it->second);
  return &g_lru.front();
}

// Caller holds g_mutex.
CacheEntry* insert(CacheEntry entry) {
  g_bytes += entry.bytes;
  g_lru.push_front(std::move(entry));
  g_index[g_lru.front().key] = g_lru.begin();
  // The new entry itself is never evicted (it is at the MRU end and a
  // single clip may legitimately exceed the budget — the caller needs it
  // regardless); only colder entries go. evict_to_budget() would drain
  // the list completely when the fresh entry alone exceeds the budget,
  // leaving the returned pointer dangling, so stop before the MRU entry.
  while (g_bytes > g_budget && g_lru.size() > 1) {
    const CacheEntry& victim = g_lru.back();
    g_bytes -= victim.bytes;
    g_index.erase(victim.key);
    g_lru.pop_back();
  }
  return &g_lru.front();
}

}  // namespace

std::shared_ptr<const media::RawVideo> cached_raw_clip(const ClipKey& key) {
  ClipKey k = key;
  k.quality = 0;  // irrelevant for raw clips
  k.restart = 0;
  MapKey mk = map_key(kRawKind, k);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (CacheEntry* hit = touch(mk)) return hit->raw;
  media::SynthSpec spec;
  spec.seed = k.seed;
  spec.width = k.width;
  spec.height = k.height;
  spec.format = k.format;
  CacheEntry entry;
  entry.key = mk;
  entry.raw = std::make_shared<const media::RawVideo>(
      media::RawVideo::synthesize(spec, k.frames));
  entry.bytes = raw_bytes(*entry.raw);
  return insert(std::move(entry))->raw;
}

std::shared_ptr<const media::MjpegClip> cached_mjpeg_clip(const ClipKey& key) {
  MapKey mk = map_key(kMjpegKind, key);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (CacheEntry* hit = touch(mk)) return hit->mjpeg;
  media::SynthSpec spec;
  spec.seed = key.seed;
  spec.width = key.width;
  spec.height = key.height;
  spec.format = key.format;
  media::RawVideo raw = media::RawVideo::synthesize(spec, key.frames);
  auto encoded = media::MjpegClip::encode(raw, key.quality, key.restart);
  SUP_CHECK_MSG(encoded.is_ok(), encoded.status().to_string().c_str());
  CacheEntry entry;
  entry.key = mk;
  entry.mjpeg =
      std::make_shared<const media::MjpegClip>(std::move(encoded).take());
  entry.bytes = entry.mjpeg->total_bytes();
  return insert(std::move(entry))->mjpeg;
}

size_t set_clip_cache_budget(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(g_mutex);
  size_t prev = g_budget;
  g_budget = max_bytes;
  evict_to_budget();
  return prev;
}

size_t clip_cache_bytes() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_bytes;
}

void clear_clip_caches() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_index.clear();
  g_lru.clear();
  g_bytes = 0;
}

}  // namespace components
