#include "components/clip_cache.hpp"

#include <map>
#include <mutex>
#include <tuple>

namespace components {
namespace {

using MapKey = std::tuple<uint64_t, int, int, int, int, int>;

MapKey map_key(const ClipKey& k) {
  return {k.seed, k.width, k.height, static_cast<int>(k.format), k.frames,
          k.quality};
}

std::mutex g_mutex;
std::map<MapKey, std::shared_ptr<const media::RawVideo>> g_raw;
std::map<MapKey, std::shared_ptr<const media::MjpegClip>> g_mjpeg;

}  // namespace

std::shared_ptr<const media::RawVideo> cached_raw_clip(const ClipKey& key) {
  ClipKey k = key;
  k.quality = 0;  // irrelevant for raw clips
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& slot = g_raw[map_key(k)];
  if (!slot) {
    media::SynthSpec spec;
    spec.seed = k.seed;
    spec.width = k.width;
    spec.height = k.height;
    spec.format = k.format;
    slot = std::make_shared<const media::RawVideo>(
        media::RawVideo::synthesize(spec, k.frames));
  }
  return slot;
}

std::shared_ptr<const media::MjpegClip> cached_mjpeg_clip(const ClipKey& key) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& slot = g_mjpeg[map_key(key)];
  if (!slot) {
    media::SynthSpec spec;
    spec.seed = key.seed;
    spec.width = key.width;
    spec.height = key.height;
    spec.format = key.format;
    media::RawVideo raw = media::RawVideo::synthesize(spec, key.frames);
    auto encoded = media::MjpegClip::encode(raw, key.quality);
    SUP_CHECK_MSG(encoded.is_ok(), encoded.status().to_string().c_str());
    slot = std::make_shared<const media::MjpegClip>(
        std::move(encoded).take());
  }
  return slot;
}

}  // namespace components
