#include "obs/trace.hpp"

#include <algorithm>

namespace obs {
namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kTask:
      return "task";
    case Category::kSched:
      return "sched";
    case Category::kReconfig:
      return "reconfig";
    case Category::kCache:
      return "cache";
    case Category::kStream:
      return "stream";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(round_up_pow2(std::max<size_t>(capacity, 2))),
      mask_(ring_.size() - 1) {}

std::vector<TraceEvent> TraceRecorder::collect() const {
  uint64_t h = head_.load(std::memory_order_acquire);
  uint64_t first = h > ring_.size() ? h - ring_.size() : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(h - first));
  for (uint64_t i = first; i < h; ++i)
    out.push_back(ring_[static_cast<size_t>(i) & mask_]);
  return out;
}

TraceSession::TraceSession(size_t ring_capacity)
    : ring_capacity_(ring_capacity) {}

void TraceSession::begin_run(int lanes, ClockDomain clock) {
  SUP_CHECK(lanes >= 1);
  clock_ = clock;
  recorders_.clear();
  recorders_.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i)
    recorders_.push_back(std::make_unique<TraceRecorder>(ring_capacity_));
  lane_names_.assign(static_cast<size_t>(lanes), std::string());
}

void TraceSession::set_lane_name(int lane, std::string name) {
  lane_names_[static_cast<size_t>(lane)] = std::move(name);
}

uint16_t TraceSession::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<uint16_t>(i);
  SUP_CHECK_MSG(names_.size() < 65535, "too many distinct trace names");
  names_.push_back(name);
  return static_cast<uint16_t>(names_.size() - 1);
}

std::vector<std::string> TraceSession::names() const {
  std::lock_guard<std::mutex> lock(names_mutex_);
  return names_;
}

uint64_t TraceSession::dropped() const {
  uint64_t total = 0;
  for (const auto& r : recorders_) total += r->dropped();
  return total;
}

uint64_t TraceSession::emitted() const {
  uint64_t total = 0;
  for (const auto& r : recorders_) total += r->emitted();
  return total;
}

}  // namespace obs
