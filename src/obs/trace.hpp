// Structured tracing for the Hinch runtime and the SpaceCAKE-substitute
// simulator (see docs/OBSERVABILITY.md).
//
// The model is deliberately small: a run is observed through per-lane
// ring-buffer recorders (a lane is one simulated core under the sim
// executor, one worker thread under the thread executor) into which the
// executors emit typed, fixed-size events —
//
//   span     a (task, iteration) job execution: start + duration
//   instant  a point marker (job admission, a steal, a reconfiguration)
//   counter  a sampled value on a named track (queue depth, cumulative
//            cache misses, per-stream in-flight slots)
//
// Timestamps live in the run's clock domain: *simulated cycles* for sim
// runs, *wall-clock nanoseconds* for thread-executor runs. The two are
// never mixed inside one session.
//
// Concurrency: each lane's recorder is single-producer (only the owning
// core/worker emits into it) and the ring write is a plain store plus a
// release on the head index, so tracing adds no locks to the executors'
// hot paths. Name interning takes a mutex but happens once per distinct
// name, at run setup. Collection (collect(), the exporter) must only
// run while the producers are quiescent — after the run returned.
//
// Cost when off: a run without an attached session never constructs a
// recorder and every emit site sits behind a nullptr test on a local.
// Building with -DHINCH_TRACING=OFF (which defines XSPCL_OBS_DISABLED)
// additionally turns the emit paths into constant-foldable no-ops so
// the instrumentation compiles out of the executors entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace obs {

#ifdef XSPCL_OBS_DISABLED
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

// The time base of a session's timestamps.
enum class ClockDomain : uint8_t {
  kCycles,     // simulated cycles (deterministic sim runs)
  kWallNanos,  // steady-clock nanoseconds since run start (thread runs)
};

enum class EventKind : uint8_t { kSpan, kInstant, kCounter };

// Event category, exported as the Chrome trace "cat" field and used by
// the hinchtrace summarizer for grouping.
enum class Category : uint8_t { kTask, kSched, kReconfig, kCache, kStream };

const char* category_name(Category c);

// One fixed-size trace record. `name` is an id interned through the
// owning TraceSession; the meaning of value/arg depends on the kind:
//   span     value = iteration, arg = task id, dur = duration
//   instant  value = iteration (or payload), arg = task id (or -1)
//   counter  value = the sampled counter value, arg unused
struct TraceEvent {
  uint64_t ts = 0;
  uint64_t dur = 0;
  int64_t value = 0;
  int32_t arg = 0;
  uint16_t name = 0;
  EventKind kind = EventKind::kInstant;
  Category cat = Category::kTask;
};

// Single-producer ring recorder. Overflow wraps around, overwriting the
// oldest events (flight-recorder semantics); dropped() counts how many
// were lost. The capacity is rounded up to a power of two.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity);

  void emit(const TraceEvent& ev) {
    if constexpr (!kTraceCompiledIn) {
      (void)ev;
      return;
    }
    uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[static_cast<size_t>(h) & mask_] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  void span(uint16_t name, Category cat, uint64_t ts, uint64_t dur,
            int64_t iter, int32_t task) {
    emit(TraceEvent{ts, dur, iter, task, name, EventKind::kSpan, cat});
  }
  void instant(uint16_t name, Category cat, uint64_t ts, int64_t value,
               int32_t arg) {
    emit(TraceEvent{ts, 0, value, arg, name, EventKind::kInstant, cat});
  }
  void counter(uint16_t name, Category cat, uint64_t ts, int64_t value) {
    emit(TraceEvent{ts, 0, value, 0, name, EventKind::kCounter, cat});
  }

  size_t capacity() const { return ring_.size(); }
  // Total events ever emitted (tear-free snapshot; safe mid-run).
  uint64_t emitted() const { return head_.load(std::memory_order_acquire); }
  // Events lost to ring wraparound.
  uint64_t dropped() const {
    uint64_t n = emitted();
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  // Retained events, oldest first. Producer must be quiescent.
  std::vector<TraceEvent> collect() const;

 private:
  std::vector<TraceEvent> ring_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

// A tracing session covering one (or several consecutive) runs. The
// caller owns it and hands a pointer to the executor (SimParams::trace /
// run_on_threads); the executor calls begin_run() with its lane count
// and clock domain, emits through the per-lane recorders, and the
// caller exports afterwards (obs/chrome_export.hpp).
class TraceSession {
 public:
  // `ring_capacity` is per lane, in events (rounded up to a power of 2).
  explicit TraceSession(size_t ring_capacity = size_t{1} << 16);

  // Reset the recorders for a new run. Interned names are kept (ids are
  // stable across runs of the same program).
  void begin_run(int lanes, ClockDomain clock);

  int lanes() const { return static_cast<int>(recorders_.size()); }
  ClockDomain clock() const { return clock_; }
  TraceRecorder* recorder(int lane) {
    return recorders_[static_cast<size_t>(lane)].get();
  }
  const TraceRecorder* recorder(int lane) const {
    return recorders_[static_cast<size_t>(lane)].get();
  }

  // Optional display name for a lane (the sim executor labels
  // multi-tile platforms "tile<t>.core<c>"); empty = the exporter's
  // defaults ("core N" / "worker N"). Cleared by begin_run.
  void set_lane_name(int lane, std::string name);
  const std::string& lane_name(int lane) const {
    return lane_names_[static_cast<size_t>(lane)];
  }

  // Intern `name`, returning its stable id. Thread-safe; interning the
  // same string twice returns the same id.
  uint16_t intern(const std::string& name);
  // Snapshot of the interned names, indexed by id (quiescent use).
  std::vector<std::string> names() const;

  // Sum of dropped() over all lanes.
  uint64_t dropped() const;
  // Sum of emitted() over all lanes.
  uint64_t emitted() const;

 private:
  size_t ring_capacity_;
  ClockDomain clock_ = ClockDomain::kCycles;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  std::vector<std::string> lane_names_;
  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;
};

}  // namespace obs
