#include "obs/chrome_export.hpp"

#include <cinttypes>
#include <cstdio>

namespace obs {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ts/dur fields: cycles map 1:1 onto the format's microsecond unit;
// wall-clock nanoseconds become fractional microseconds.
void append_time(std::string* out, uint64_t t, ClockDomain clock) {
  char buf[40];
  if (clock == ClockDomain::kCycles) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, t);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
  }
  *out += buf;
}

}  // namespace

std::string to_chrome_json(const TraceSession& session) {
  const std::vector<std::string> names = session.names();
  const ClockDomain clock = session.clock();
  const char* lane_prefix =
      clock == ClockDomain::kCycles ? "core" : "worker";

  std::string out;
  out += "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"clock\": \"";
  out += clock == ClockDomain::kCycles ? "cycles" : "wall_ns";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\", \"lanes\": %d, \"emitted\": %" PRIu64
                ", \"dropped\": %" PRIu64 "},\n",
                session.lanes(), session.emitted(), session.dropped());
  out += buf;
  out += "  \"traceEvents\": [\n";

  bool first = true;
  auto emit_line = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  // Lane-name metadata so the UI labels rows "core 0" / "worker 3".
  for (int lane = 0; lane < session.lanes(); ++lane) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
                  lane, lane_prefix, lane);
    emit_line(buf);
  }

  for (int lane = 0; lane < session.lanes(); ++lane) {
    for (const TraceEvent& ev : session.recorder(lane)->collect()) {
      std::string line = "{\"name\":\"";
      if (ev.name < names.size())
        append_escaped(&line, names[ev.name]);
      else
        line += "?";
      line += "\",\"cat\":\"";
      line += category_name(ev.cat);
      line += "\",\"ph\":\"";
      switch (ev.kind) {
        case EventKind::kSpan: {
          line += "X\",\"ts\":";
          append_time(&line, ev.ts, clock);
          line += ",\"dur\":";
          append_time(&line, ev.dur, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":0,\"tid\":%d,\"args\":{\"iter\":%" PRId64
                        ",\"task\":%d}}",
                        lane, ev.value, ev.arg);
          line += buf;
          break;
        }
        case EventKind::kInstant: {
          // Reconfiguration markers get global scope so they draw a
          // full-height line across every lane in the UI.
          line += "i\",\"s\":\"";
          line += ev.cat == Category::kReconfig ? "g" : "t";
          line += "\",\"ts\":";
          append_time(&line, ev.ts, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":0,\"tid\":%d,\"args\":{\"iter\":%" PRId64
                        ",\"task\":%d}}",
                        lane, ev.value, ev.arg);
          line += buf;
          break;
        }
        case EventKind::kCounter: {
          line += "C\",\"ts\":";
          append_time(&line, ev.ts, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":0,\"tid\":%d,\"args\":{\"value\":%" PRId64
                        "}}",
                        lane, ev.value);
          line += buf;
          break;
        }
      }
      emit_line(line);
    }
  }

  out += "\n  ]\n}\n";
  return out;
}

bool write_chrome_trace(const TraceSession& session,
                        const std::string& path) {
  std::string json = to_chrome_json(session);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace output '%s'\n",
                 path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok)
    std::fprintf(stderr, "obs: short write to trace output '%s'\n",
                 path.c_str());
  return ok;
}

}  // namespace obs
