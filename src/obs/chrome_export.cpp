#include "obs/chrome_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <functional>

namespace obs {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// ts/dur fields: cycles map 1:1 onto the format's microsecond unit;
// wall-clock nanoseconds become fractional microseconds.
void append_time(std::string* out, uint64_t t, ClockDomain clock) {
  char buf[40];
  if (clock == ClockDomain::kCycles) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, t);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
  }
  *out += buf;
}

// One session's lane metadata and events, stamped with `pid` — the
// process id is what keeps sessions apart in a merged export (each
// session renders as its own process group in the UI).
void emit_session(const TraceSession& session, int pid,
                  const std::function<void(const std::string&)>& emit_line) {
  const std::vector<std::string> names = session.names();
  const ClockDomain clock = session.clock();
  const char* lane_prefix = clock == ClockDomain::kCycles ? "core" : "worker";
  char buf[160];

  // Lane-name metadata so the UI labels rows "core 0" / "worker 3" —
  // or a custom per-lane name when the session carries one (multi-tile
  // sim runs label lanes "tile<t>.core<c>").
  for (int lane = 0; lane < session.lanes(); ++lane) {
    const std::string& custom = session.lane_name(lane);
    if (!custom.empty()) {
      std::string line =
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
          std::to_string(pid) + ",\"tid\":" + std::to_string(lane) +
          ",\"args\":{\"name\":\"";
      append_escaped(&line, custom);
      line += "\"}}";
      emit_line(line);
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s %d\"}}",
                  pid, lane, lane_prefix, lane);
    emit_line(buf);
  }

  for (int lane = 0; lane < session.lanes(); ++lane) {
    for (const TraceEvent& ev : session.recorder(lane)->collect()) {
      std::string line = "{\"name\":\"";
      if (ev.name < names.size())
        append_escaped(&line, names[ev.name]);
      else
        line += "?";
      line += "\",\"cat\":\"";
      line += category_name(ev.cat);
      line += "\",\"ph\":\"";
      switch (ev.kind) {
        case EventKind::kSpan: {
          line += "X\",\"ts\":";
          append_time(&line, ev.ts, clock);
          line += ",\"dur\":";
          append_time(&line, ev.dur, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":%d,\"tid\":%d,\"args\":{\"iter\":%" PRId64
                        ",\"task\":%d}}",
                        pid, lane, ev.value, ev.arg);
          line += buf;
          break;
        }
        case EventKind::kInstant: {
          // Reconfiguration markers get global scope so they draw a
          // full-height line across every lane in the UI.
          line += "i\",\"s\":\"";
          line += ev.cat == Category::kReconfig ? "g" : "t";
          line += "\",\"ts\":";
          append_time(&line, ev.ts, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":%d,\"tid\":%d,\"args\":{\"iter\":%" PRId64
                        ",\"task\":%d}}",
                        pid, lane, ev.value, ev.arg);
          line += buf;
          break;
        }
        case EventKind::kCounter: {
          line += "C\",\"ts\":";
          append_time(&line, ev.ts, clock);
          std::snprintf(buf, sizeof(buf),
                        ",\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%" PRId64
                        "}}",
                        pid, lane, ev.value);
          line += buf;
          break;
        }
      }
      emit_line(line);
    }
  }
}

}  // namespace

std::string to_chrome_json(const TraceSession& session) {
  const ClockDomain clock = session.clock();

  std::string out;
  out += "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"clock\": \"";
  out += clock == ClockDomain::kCycles ? "cycles" : "wall_ns";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\", \"lanes\": %d, \"emitted\": %" PRIu64
                ", \"dropped\": %" PRIu64 "},\n",
                session.lanes(), session.emitted(), session.dropped());
  out += buf;
  out += "  \"traceEvents\": [\n";

  bool first = true;
  emit_session(session, /*pid=*/0, [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  });

  out += "\n  ]\n}\n";
  return out;
}

std::string to_chrome_json(const std::vector<TraceProcess>& processes) {
  std::string out;
  out += "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  uint64_t emitted = 0, dropped = 0;
  for (const TraceProcess& p : processes) {
    emitted += p.session->emitted();
    dropped += p.session->dropped();
  }
  // All sessions of one merged export share a clock domain (the server
  // traces everything in wall ns); report the first's.
  const char* clock_name =
      !processes.empty() &&
              processes.front().session->clock() == ClockDomain::kCycles
          ? "cycles"
          : "wall_ns";
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "  \"otherData\": {\"clock\": \"%s\", \"sessions\": %d, "
                "\"emitted\": %" PRIu64 ", \"dropped\": %" PRIu64 "},\n",
                clock_name, static_cast<int>(processes.size()), emitted,
                dropped);
  out += buf;
  out += "  \"traceEvents\": [\n";

  bool first = true;
  auto emit_line = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (const TraceProcess& p : processes) {
    // Process metadata names the group "session <pid>: <name>". Note
    // that timestamps stay session-relative (ns since *that* session's
    // start): the merged view aligns session starts, which is the
    // useful comparison for concurrently-admitted tenants.
    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%d", p.pid);
    meta += buf;
    meta += ",\"args\":{\"name\":\"";
    append_escaped(&meta, p.name);
    meta += "\"}}";
    emit_line(meta);
    emit_session(*p.session, p.pid, emit_line);
  }

  out += "\n  ]\n}\n";
  return out;
}

namespace {

bool write_string(const std::string& json, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace output '%s'\n",
                 path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = std::fclose(f) == 0 && written == json.size();
  if (!ok)
    std::fprintf(stderr, "obs: short write to trace output '%s'\n",
                 path.c_str());
  return ok;
}

}  // namespace

bool write_chrome_trace(const TraceSession& session,
                        const std::string& path) {
  return write_string(to_chrome_json(session), path);
}

bool write_chrome_trace(const std::vector<TraceProcess>& processes,
                        const std::string& path) {
  return write_string(to_chrome_json(processes), path);
}

}  // namespace obs
