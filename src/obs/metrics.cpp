#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/strings.hpp"

namespace obs {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void append_value(std::string* out, const MetricValue& m) {
  if (m.is_double) {
    support::append_double(out, m.d);
  } else {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, m.i);
    *out += buf;
  }
}

}  // namespace

int64_t MetricsRegistry::Snapshot::get_int(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second.as_int();
}

double MetricsRegistry::Snapshot::get_double(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second.as_double();
}

bool MetricsRegistry::Snapshot::has(const std::string& name) const {
  return values_.count(name) != 0;
}

void MetricsRegistry::set(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = MetricValue{false, value, 0};
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = MetricValue{true, 0, value};
}

void MetricsRegistry::add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricValue& m = metrics_[name];
  // Accumulate into the active representation: a metric set() as a
  // double keeps its double identity (the old code updated m.i here,
  // which to_text/to_json/get_int never read while is_double was set —
  // the delta silently vanished).
  if (m.is_double)
    m.d += static_cast<double>(delta);
  else
    m.i += delta;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricValue& m = metrics_[name];
  if (!m.is_double) {
    // Promote: an int-typed metric receiving a fractional delta becomes
    // a double gauge carrying its accumulated integer value forward.
    m.d = static_cast<double>(m.i);
    m.i = 0;
    m.is_double = true;
  }
  m.d += delta;
}

int64_t MetricsRegistry::get_int(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.as_int();
}

double MetricsRegistry::get_double(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.as_double();
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.count(name) != 0;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.values_ = metrics_;
  return snap;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, m] : metrics_) {
    out += name;
    out += ' ';
    append_value(&out, m);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    append_escaped(&out, name);
    out += "\": ";
    append_value(&out, m);
  }
  out += "\n}\n";
  return out;
}

}  // namespace obs
