#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace obs {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void append_value(std::string* out, const MetricValue& m) {
  if (m.is_double) {
    support::append_double(out, m.d);
  } else {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, m.i);
    *out += buf;
  }
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

int64_t MetricsRegistry::Snapshot::get_int(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second.as_int();
}

double MetricsRegistry::Snapshot::get_double(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second.as_double();
}

bool MetricsRegistry::Snapshot::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string MetricsRegistry::Snapshot::to_text() const {
  std::string out;
  for (const auto& [name, m] : values_) {
    out += name;
    out += ' ';
    append_value(&out, m);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::Snapshot::to_json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, m] : values_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    append_escaped(&out, name);
    out += "\": ";
    append_value(&out, m);
  }
  out += "\n}\n";
  return out;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry* parent, std::string prefix)
    : parent_(parent), prefix_(std::move(prefix)) {
  SUP_CHECK_MSG(parent != nullptr, "metrics view needs a parent registry");
}

void MetricsRegistry::set(const std::string& name, int64_t value) {
  if (parent_ != nullptr) {
    parent_->set(prefix_ + name, value);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = MetricValue{false, value, 0};
}

void MetricsRegistry::set(const std::string& name, double value) {
  if (parent_ != nullptr) {
    parent_->set(prefix_ + name, value);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = MetricValue{true, 0, value};
}

void MetricsRegistry::add(const std::string& name, int64_t delta) {
  if (parent_ != nullptr) {
    parent_->add(prefix_ + name, delta);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  MetricValue& m = metrics_[name];
  // Accumulate into the active representation: a metric set() as a
  // double keeps its double identity (the old code updated m.i here,
  // which to_text/to_json/get_int never read while is_double was set —
  // the delta silently vanished).
  if (m.is_double)
    m.d += static_cast<double>(delta);
  else
    m.i += delta;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  if (parent_ != nullptr) {
    parent_->add(prefix_ + name, delta);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  MetricValue& m = metrics_[name];
  if (!m.is_double) {
    // Promote: an int-typed metric receiving a fractional delta becomes
    // a double gauge carrying its accumulated integer value forward.
    m.d = static_cast<double>(m.i);
    m.i = 0;
    m.is_double = true;
  }
  m.d += delta;
}

int64_t MetricsRegistry::get_int(const std::string& name) const {
  if (parent_ != nullptr) return parent_->get_int(prefix_ + name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.as_int();
}

double MetricsRegistry::get_double(const std::string& name) const {
  if (parent_ != nullptr) return parent_->get_double(prefix_ + name);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.as_double();
}

bool MetricsRegistry::has(const std::string& name) const {
  if (parent_ != nullptr) return parent_->has(prefix_ + name);
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.count(name) != 0;
}

size_t MetricsRegistry::size() const {
  if (parent_ != nullptr) return snapshot().size();
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

void MetricsRegistry::clear() {
  if (parent_ != nullptr) {
    parent_->erase_prefix(prefix_);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

void MetricsRegistry::erase_prefix(const std::string& prefix) {
  if (parent_ != nullptr) {
    parent_->erase_prefix(prefix_ + prefix);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.lower_bound(prefix);
  while (it != metrics_.end() && starts_with(it->first, prefix))
    it = metrics_.erase(it);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  if (parent_ != nullptr) {
    // Resolve inside the namespace: keep only prefixed entries, strip
    // the prefix, so per-session code reads the names it published.
    Snapshot all = parent_->snapshot();
    Snapshot snap;
    auto it = all.values_.lower_bound(prefix_);
    while (it != all.values_.end() && starts_with(it->first, prefix_)) {
      snap.values_.emplace(it->first.substr(prefix_.size()), it->second);
      ++it;
    }
    return snap;
  }
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.values_ = metrics_;
  return snap;
}

std::string MetricsRegistry::to_text() const { return snapshot().to_text(); }

std::string MetricsRegistry::to_json() const { return snapshot().to_json(); }

}  // namespace obs
