#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace obs {
namespace {

void append_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void append_value(std::string* out, bool is_double, int64_t i, double d) {
  char buf[48];
  if (is_double)
    std::snprintf(buf, sizeof(buf), "%.6g", d);
  else
    std::snprintf(buf, sizeof(buf), "%" PRId64, i);
  *out += buf;
}

}  // namespace

void MetricsRegistry::set(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = Metric{false, value, 0};
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_[name] = Metric{true, 0, value};
}

void MetricsRegistry::add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& m = metrics_[name];
  m.i += delta;
}

int64_t MetricsRegistry::get_int(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  return it->second.is_double ? static_cast<int64_t>(it->second.d)
                              : it->second.i;
}

double MetricsRegistry::get_double(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  return it->second.is_double ? it->second.d
                              : static_cast<double>(it->second.i);
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.count(name) != 0;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, m] : metrics_) {
    out += name;
    out += ' ';
    append_value(&out, m.is_double, m.i, m.d);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    append_escaped(&out, name);
    out += "\": ";
    append_value(&out, m.is_double, m.i, m.d);
  }
  out += "\n}\n";
  return out;
}

}  // namespace obs
