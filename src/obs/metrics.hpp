// MetricsRegistry: one named-counter surface for every runtime
// observable the figure benches and tools read — scheduler stats,
// executor stats, cache/memory stats, per-region breakdowns, per-task
// profiles. Each producer keeps its own native struct (SchedulerStats,
// sim::MemStats, ...); collect_metrics overloads (hinch/runtime.hpp)
// flatten them into the registry under dotted names, and a single
// deterministic text or JSON dump replaces the three ad-hoc printing
// paths that existed before (see docs/OBSERVABILITY.md).
//
// Live polling: both executors can publish in-run counters ("live.*"
// names) into a registry handed to them via SimParams::metrics /
// run_on_threads, and snapshot() returns a self-contained copy of the
// whole map under one lock acquisition — the low-overhead poll surface
// the policy components adapt on (docs/OBSERVABILITY.md, "Live polling
// & adaptation").
//
// Thread-safety: every method takes the registry mutex, so a snapshot
// or dump taken while another thread is still filling counters is
// tear-free (it may interleave between two set() calls, which is the
// documented snapshot semantics — same as Scheduler::stats()).
//
// Type model: a metric is either an int64 counter or a double gauge,
// decided by the last set(). add() accumulates into whichever
// representation the metric currently has (a delta on a double-typed
// metric lands in the double; a double delta on an int-typed metric
// promotes it to double). A metric created by add() starts as int64.
//
// Views: a registry constructed as MetricsRegistry(&parent, "session.3.")
// is a *view* — it owns no storage and forwards every operation to the
// parent with the prefix prepended, so an executor or component handed
// the view publishes "live.x" and the parent records "session.3.live.x".
// Reads are symmetric (get/has/snapshot resolve inside the namespace,
// names stripped of the prefix), which lets per-session code — including
// in-graph policy components polling snapshot() — run unchanged under a
// multi-tenant server. Views compose (a view of a view concatenates
// prefixes) and clear() erases only the view's namespace.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace obs {

// One metric value as stored: an int64 counter or a double gauge.
struct MetricValue {
  bool is_double = false;
  int64_t i = 0;
  double d = 0;

  int64_t as_int() const { return is_double ? static_cast<int64_t>(d) : i; }
  double as_double() const { return is_double ? d : static_cast<double>(i); }
};

class MetricsRegistry {
 public:
  // Copyable point-in-time view of the whole registry, detached from
  // the producer: lookups take no lock and never block the run.
  class Snapshot {
   public:
    Snapshot() = default;

    int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool has(const std::string& name) const;
    size_t size() const { return values_.size(); }

    const std::map<std::string, MetricValue>& values() const {
      return values_;
    }

    // "name value\n" lines / flat JSON object, keys sorted; the same
    // deterministic formats the registry dumps (it delegates here).
    std::string to_text() const;
    std::string to_json() const;

   private:
    friend class MetricsRegistry;
    std::map<std::string, MetricValue> values_;
  };

  MetricsRegistry() = default;
  // View constructor: every operation forwards to `parent` with
  // `prefix` prepended to the metric name (see the header comment).
  // `parent` must outlive the view.
  MetricsRegistry(MetricsRegistry* parent, std::string prefix);

  bool is_view() const { return parent_ != nullptr; }
  const std::string& prefix() const { return prefix_; }

  void set(const std::string& name, int64_t value);
  void set(const std::string& name, double value);
  // Accumulate into the metric's current representation (see the type
  // model above).
  void add(const std::string& name, int64_t delta);
  void add(const std::string& name, double delta);
  // Smaller integer types would otherwise be ambiguous between the
  // int64 and double overloads; they are counters, route accordingly.
  void set(const std::string& name, int value) {
    set(name, static_cast<int64_t>(value));
  }
  void add(const std::string& name, int delta) {
    add(name, static_cast<int64_t>(delta));
  }

  // Value lookups (0 when absent). has() distinguishes absent from 0.
  int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool has(const std::string& name) const;

  size_t size() const;
  void clear();
  // Remove every metric whose name starts with `prefix` (a view's
  // clear() maps to this on the parent).
  void erase_prefix(const std::string& prefix);

  // Copy of every metric under a single lock acquisition — the live
  // poll API (safe to call while executors are still publishing).
  Snapshot snapshot() const;

  // "name value\n" lines, sorted by name; doubles print with 6
  // significant digits (locale-independent, always '.').
  std::string to_text() const;
  // One flat JSON object, keys sorted.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, MetricValue> metrics_;
  // View state: non-null parent makes this registry storage-free.
  MetricsRegistry* parent_ = nullptr;
  std::string prefix_;
};

}  // namespace obs
