// MetricsRegistry: one named-counter surface for every runtime
// observable the figure benches and tools read — scheduler stats,
// executor stats, cache/memory stats, per-region breakdowns, per-task
// profiles. Each producer keeps its own native struct (SchedulerStats,
// sim::MemStats, ...); collect_metrics overloads (hinch/runtime.hpp)
// flatten them into the registry under dotted names, and a single
// deterministic text or JSON dump replaces the three ad-hoc printing
// paths that existed before (see docs/OBSERVABILITY.md).
//
// Thread-safety: every method takes the registry mutex, so a snapshot
// or dump taken while another thread is still filling counters is
// tear-free (it may interleave between two set() calls, which is the
// documented snapshot semantics — same as Scheduler::stats()).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace obs {

class MetricsRegistry {
 public:
  void set(const std::string& name, int64_t value);
  void set(const std::string& name, double value);
  void add(const std::string& name, int64_t delta);

  // Value lookups (0 when absent). has() distinguishes absent from 0.
  int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool has(const std::string& name) const;

  size_t size() const;
  void clear();

  // "name value\n" lines, sorted by name; doubles print with %.6g.
  std::string to_text() const;
  // One flat JSON object, keys sorted.
  std::string to_json() const;

 private:
  struct Metric {
    bool is_double = false;
    int64_t i = 0;
    double d = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace obs
