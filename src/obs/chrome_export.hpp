// Chrome trace-event JSON exporter: serializes a quiescent TraceSession
// into the "JSON object format" that chrome://tracing and Perfetto's
// legacy-trace importer load directly (docs/OBSERVABILITY.md explains
// how to open one).
//
// Timestamp mapping: the Chrome format's `ts`/`dur` fields are nominally
// microseconds. Sessions in the kCycles domain export one simulated
// cycle as one "microsecond" (the UI's absolute time axis is then read
// as cycles); kWallNanos sessions export real microseconds with
// sub-microsecond fractions. The domain is recorded under
// otherData.clock so tools (hinchtrace) never have to guess.
//
// The output is deterministic: same session contents => identical bytes
// (the golden-trace tests rely on this).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace obs {

// Serialize the whole session. Producers must be quiescent. Events carry
// pid 0 (the single-process layout tools and golden tests expect).
std::string to_chrome_json(const TraceSession& session);

// One tenant of a merged multi-session export. The pid becomes the
// Chrome process id — sessions render as separate process groups, and
// hinchtrace --session=<pid> filters on it.
struct TraceProcess {
  int pid = 0;
  std::string name;  // process_name metadata ("pip", "jpip-4k", ...)
  const TraceSession* session = nullptr;
};

// Merged export: every session's lanes under its own pid. Timestamps
// stay session-relative (each session's t0 aligns at 0).
std::string to_chrome_json(const std::vector<TraceProcess>& processes);

// to_chrome_json + write to `path`. Returns false (with a message on
// stderr) when the file cannot be written.
bool write_chrome_trace(const TraceSession& session, const std::string& path);
bool write_chrome_trace(const std::vector<TraceProcess>& processes,
                        const std::string& path);

}  // namespace obs
