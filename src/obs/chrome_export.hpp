// Chrome trace-event JSON exporter: serializes a quiescent TraceSession
// into the "JSON object format" that chrome://tracing and Perfetto's
// legacy-trace importer load directly (docs/OBSERVABILITY.md explains
// how to open one).
//
// Timestamp mapping: the Chrome format's `ts`/`dur` fields are nominally
// microseconds. Sessions in the kCycles domain export one simulated
// cycle as one "microsecond" (the UI's absolute time axis is then read
// as cycles); kWallNanos sessions export real microseconds with
// sub-microsecond fractions. The domain is recorded under
// otherData.clock so tools (hinchtrace) never have to guess.
//
// The output is deterministic: same session contents => identical bytes
// (the golden-trace tests rely on this).
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace obs {

// Serialize the whole session. Producers must be quiescent.
std::string to_chrome_json(const TraceSession& session);

// to_chrome_json + write to `path`. Returns false (with a message on
// stderr) when the file cannot be written.
bool write_chrome_trace(const TraceSession& session, const std::string& path);

}  // namespace obs
