#include "apps/pip.hpp"

#include "apps/seq_machine.hpp"
#include "components/clip_cache.hpp"
#include "media/kernels.hpp"
#include "support/strings.hpp"

namespace apps {
namespace {

using support::format;

// One source component tag.
std::string source_xml(const std::string& name, uint64_t seed,
                       const PipConfig& c, const std::string& stream) {
  return format(
      "      <component name=\"%s\" class=\"video_source\">\n"
      "        <param name=\"seed\" value=\"%llu\"/>\n"
      "        <param name=\"width\" value=\"%d\"/>\n"
      "        <param name=\"height\" value=\"%d\"/>\n"
      "        <param name=\"frames\" value=\"%d\"/>\n"
      "        <outport name=\"out\" stream=\"%s\"/>\n"
      "      </component>\n",
      name.c_str(), static_cast<unsigned long long>(seed), c.width, c.height,
      c.clip_frames, stream.c_str());
}

std::string chain_call_xml(const std::string& name, const std::string& src,
                           const PipConfig& c, int index) {
  int x = 0, y = 0;
  pip_position(c, index, &x, &y);
  return format(
      "      <call procedure=\"pip_chain\" name=\"%s\">\n"
      "        <arg name=\"src\" stream=\"%s\"/>\n"
      "        <arg name=\"canvas\" stream=\"canvas\"/>\n"
      "        <arg name=\"factor\" value=\"%d\"/>\n"
      "        <arg name=\"x\" value=\"%d\"/>\n"
      "        <arg name=\"y\" value=\"%d\"/>\n"
      "        <arg name=\"alpha\" value=\"%d\"/>\n"
      "        <arg name=\"slices\" value=\"%d\"/>\n"
      "      </call>\n",
      name.c_str(), src.c_str(), c.factor, x, y, c.alpha, c.slices);
}

// The downscale+blend procedure: one sliced downscaler and one sliced
// blender per colour field, fields processed concurrently (§4 item 1).
const char* kPipChainProcedure = R"(
  <procedure name="pip_chain">
    <formal name="src" kind="stream"/>
    <formal name="canvas" kind="stream"/>
    <formal name="factor" kind="value"/>
    <formal name="x" kind="value"/>
    <formal name="y" kind="value"/>
    <formal name="alpha" kind="value" default="256"/>
    <formal name="slices" kind="value"/>
    <body>
      <parallel shape="task">
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="ds_y" class="downscale">
              <param name="factor" value="$factor"/>
              <param name="plane" value="0"/>
              <inport name="in" stream="src"/>
              <outport name="out" stream="ds_y"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="ds_u" class="downscale">
              <param name="factor" value="$factor"/>
              <param name="plane" value="1"/>
              <inport name="in" stream="src"/>
              <outport name="out" stream="ds_u"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="ds_v" class="downscale">
              <param name="factor" value="$factor"/>
              <param name="plane" value="2"/>
              <inport name="in" stream="src"/>
              <outport name="out" stream="ds_v"/>
            </component>
          </parblock></parallel>
        </parblock>
      </parallel>
      <parallel shape="task">
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="bl_y" class="blend">
              <param name="x" value="$x"/>
              <param name="y" value="$y"/>
              <param name="alpha" value="$alpha"/>
              <param name="plane" value="0"/>
              <inport name="fg" stream="ds_y"/>
              <outport name="canvas" stream="canvas"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="bl_u" class="blend">
              <param name="x" value="$x"/>
              <param name="y" value="$y"/>
              <param name="alpha" value="$alpha"/>
              <param name="plane" value="1"/>
              <inport name="fg" stream="ds_u"/>
              <outport name="canvas" stream="canvas"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="bl_v" class="blend">
              <param name="x" value="$x"/>
              <param name="y" value="$y"/>
              <param name="alpha" value="$alpha"/>
              <param name="plane" value="2"/>
              <inport name="fg" stream="ds_v"/>
              <outport name="canvas" stream="canvas"/>
            </component>
          </parblock></parallel>
        </parblock>
      </parallel>
    </body>
  </procedure>
)";

}  // namespace

void pip_position(const PipConfig& config, int index, int* x, int* y) {
  int sw = config.width / config.factor;
  int sh = config.height / config.factor;
  int col = index % 2;
  int row = index / 2;
  *x = col == 0 ? 16 : config.width - sw - 16;
  *y = 16 + row * (sh + 16);
  // Even coordinates so 4:2:0 chroma positions are exact.
  *x &= ~1;
  *y &= ~1;
}

std::string pip_xspcl(const PipConfig& config) {
  SUP_CHECK(config.pips >= 1);
  SUP_CHECK(!config.reconfigurable || config.pips >= 2);

  std::string body;

  // Sources run concurrently (task shape). For the reconfigurable
  // variant, pip sources beyond the first live inside their option.
  int static_pips = config.reconfigurable ? 1 : config.pips;
  body += "      <parallel shape=\"task\">\n";
  body += "        <parblock>\n" +
          source_xml("bg_src", config.bg_seed, config, "bg") +
          "        </parblock>\n";
  for (int i = 0; i < static_pips; ++i) {
    body += "        <parblock>\n" +
            source_xml(format("pip%d_src", i + 1), config.pip_seed + i,
                       config, format("pip%d", i + 1)) +
            "        </parblock>\n";
  }
  body += "      </parallel>\n";

  if (config.reconfigurable) {
    body += format(
        "      <component name=\"ticker\" class=\"event_ticker\">\n"
        "        <param name=\"event\" value=\"toggle2\"/>\n"
        "        <param name=\"queue\" value=\"ui\"/>\n"
        "        <param name=\"period\" value=\"%d\"/>\n"
        "      </component>\n",
        config.toggle_period);
  }

  // The background copy is data-parallel like the other kernels.
  body += format(
      "      <parallel shape=\"slice\" n=\"%d\"><parblock>\n"
      "      <component name=\"bgcopy\" class=\"copy\">\n"
      "        <inport name=\"in\" stream=\"bg\"/>\n"
      "        <outport name=\"out\" stream=\"canvas\"/>\n"
      "      </component>\n"
      "      </parblock></parallel>\n",
      config.slices);

  body += chain_call_xml("pip1", "pip1", config, 0);
  if (config.reconfigurable) {
    // PiP-12 (§4.3): the second picture-in-picture is an option managed
    // by `mgr`, toggled by the ticker's events.
    body +=
        "      <manager name=\"mgr\" queue=\"ui\">\n"
        "        <on event=\"toggle2\" action=\"toggle\" option=\"pip2\"/>\n"
        "        <body>\n"
        "          <option name=\"pip2\" enabled=\"false\">\n" +
        source_xml("pip2_src", config.pip_seed + 1, config, "pip2") +
        chain_call_xml("pip2", "pip2", config, 1) +
        "          </option>\n"
        "        </body>\n"
        "      </manager>\n";
  } else {
    for (int i = 1; i < config.pips; ++i)
      body += chain_call_xml(format("pip%d", i + 1), format("pip%d", i + 1),
                             config, i);
  }

  body += format(
      "      <component name=\"sink\" class=\"frame_sink\">\n"
      "        <param name=\"store\" value=\"%d\"/>\n"
      "        <inport name=\"in\" stream=\"canvas\"/>\n"
      "      </component>\n",
      config.store_output ? 1 : 0);

  std::string out = "<xspcl>\n  <procedure name=\"main\">\n    <body>\n";
  out += body;
  out += "    </body>\n  </procedure>\n";
  out += kPipChainProcedure;
  out += "</xspcl>\n";
  return out;
}

SeqResult run_pip_sequential(const PipConfig& config,
                             const sim::CacheConfig& cache,
                             SeqTrace* trace) {
  SUP_CHECK(!config.reconfigurable);
  SeqMachine m(cache, trace);

  components::ClipKey bg_key{config.bg_seed, config.width, config.height,
                             media::PixelFormat::kYuv420, config.clip_frames,
                             0};
  auto bg_clip = components::cached_raw_clip(bg_key);
  std::vector<std::shared_ptr<const media::RawVideo>> pip_clips;
  for (int i = 0; i < config.pips; ++i) {
    components::ClipKey key = bg_key;
    key.seed = config.pip_seed + static_cast<uint64_t>(i);
    pip_clips.push_back(components::cached_raw_clip(key));
  }

  media::FramePtr canvas = media::make_frame(media::PixelFormat::kYuv420,
                                             config.width, config.height);
  uint64_t frame_bytes = canvas->bytes();
  sim::RegionId bg_r = m.region(frame_bytes, "bg");
  std::vector<sim::RegionId> pip_r;
  for (int i = 0; i < config.pips; ++i)
    pip_r.push_back(m.region(frame_bytes, format("pip%d", i + 1)));
  sim::RegionId canvas_r = m.region(frame_bytes, "canvas");

  SeqResult result;
  for (int t = 0; t < config.frames; ++t) {
    int ct = t % config.clip_frames;
    const media::FramePtr& bg = bg_clip->frame(ct);

    // Input: DMA the files into the frame buffers.
    m.charge(media::io_cycles(frame_bytes));
    m.write(bg_r, 0, frame_bytes);
    for (int i = 0; i < config.pips; ++i) {
      m.charge(media::io_cycles(frame_bytes));
      m.write(pip_r[static_cast<size_t>(i)], 0, frame_bytes);
    }

    // Background copy.
    for (int p = 0; p < 3; ++p) {
      media::ConstPlaneView src = bg->plane(p);
      media::copy_plane(src, canvas->plane(p), 0, src.height);
      m.charge(media::copy_cycles(src.width, src.height));
      uint64_t off = bg->plane_offset(p);
      uint64_t len = src.bytes();
      m.read(bg_r, off, len);
      m.write(canvas_r, off, len);
    }

    // Fused downscale+blend — the hand-written version combines the two
    // operations into one traversal with no intermediate buffer (§4.1).
    for (int i = 0; i < config.pips; ++i) {
      const media::FramePtr& pip =
          pip_clips[static_cast<size_t>(i)]->frame(ct);
      int x = 0, y = 0;
      pip_position(config, i, &x, &y);
      for (int p = 0; p < 3; ++p) {
        media::ConstPlaneView src = pip->plane(p);
        media::PlaneView dst = canvas->plane(p);
        int px = x * dst.width / canvas->width();
        int py = y * dst.height / canvas->height();
        media::downscale_blend(src, dst, config.factor, px, py, config.alpha,
                               0, dst.height);
        int sw = src.width / config.factor;
        int sh = src.height / config.factor;
        m.charge(media::downscale_blend_cycles(sw, sh, config.factor));
        m.read(pip_r[static_cast<size_t>(i)], pip->plane_offset(p),
               src.bytes());
        m.write(canvas_r,
                canvas->plane_offset(p) +
                    static_cast<uint64_t>(py) * static_cast<uint64_t>(dst.width),
                static_cast<uint64_t>(sh) * static_cast<uint64_t>(dst.width));
      }
    }

    // Output: DMA the composed frame out.
    m.charge(media::io_cycles(frame_bytes));
    m.read(canvas_r, 0, frame_bytes);
    result.checksum = media::frame_hash(*canvas, result.checksum);
    ++result.frames;
  }
  result.cycles = m.cycles();
  result.mem = m.mem_stats();
  return result;
}

}  // namespace apps
