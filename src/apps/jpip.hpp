// JPEG Picture-in-Picture (§4, Fig. 7): like PiP, but the inputs are
// motion-JPEG streams that must be entropy-decoded and IDCT'd first.
// Components per input: MJPEG input -> JPEG decode -> IDCT Y/U/V; the
// picture-in-picture chains add Downscale Y/U/V -> Blend Y/U/V into the
// background's decoded planes. Paper parameters: 1280x720, 24 frames,
// downscale 16, 45 slices for IDCT / downscale / blend.
#pragma once

#include <string>

#include "apps/pip.hpp"  // SeqResult

namespace apps {

struct JpipConfig {
  int width = 1280;
  int height = 720;
  int frames = 24;   // iterations (paper: 24, limited by simulator speed)
  int pips = 1;
  int factor = 16;   // paper: 16
  int slices = 45;   // paper: 45
  int quality = 75;  // JPEG quality of the synthetic inputs
  bool reconfigurable = false;  // JPiP-12 (§4.3)
  // §4.1's proposed fix for the cache misses: fuse the decode chain
  // (entropy decode + the three IDCTs) into one <group> so the
  // coefficient image never parks in a stream. Costs the IDCT slicing.
  bool grouped = false;
  int toggle_period = 12;
  int clip_frames = 6;
  uint64_t bg_seed = 301;
  uint64_t pip_seed = 400;
  int alpha = 256;
  bool store_output = false;
};

// Luma-space position of picture-in-picture `index`.
void jpip_position(const JpipConfig& config, int index, int* x, int* y);

std::string jpip_xspcl(const JpipConfig& config);

SeqResult run_jpip_sequential(const JpipConfig& config,
                              const sim::CacheConfig& cache = {},
                              SeqTrace* trace = nullptr);

}  // namespace apps
