// Picture-in-Picture (§4: "reads multiple uncompressed video files and
// combines these into a single video file"). The background is copied;
// each picture-in-picture video is downscaled by `factor` and blended
// into the background. Task parallelism: pipeline + concurrent colour
// fields; data parallelism: `slices` slices for the downscaler and
// blender (paper: 8 slices at 720x576, factor 4).
#pragma once

#include <cstdint>
#include <string>

#include "apps/seq_machine.hpp"
#include "media/metrics.hpp"
#include "sim/cache.hpp"

namespace apps {

// Result of a hand-written sequential run.
struct SeqResult {
  uint64_t cycles = 0;
  uint64_t checksum = media::kFnvBasis;  // chained frame_hash of the output
  int frames = 0;
  sim::MemStats mem;
};

struct PipConfig {
  int width = 720;
  int height = 576;
  int frames = 96;   // iterations (paper: 96)
  int pips = 1;      // picture-in-picture count
  int factor = 4;    // spatial downscale factor (paper: 4)
  int slices = 8;    // data-parallel slices (paper: 8)
  // Reconfigurable variant (PiP-12): pip #2 starts disabled and toggles
  // every `toggle_period` frames (§4.3). Requires pips >= 2.
  bool reconfigurable = false;
  int toggle_period = 12;
  // Synthetic input clips (looped).
  int clip_frames = 16;
  uint64_t bg_seed = 101;
  uint64_t pip_seed = 200;  // pip i uses pip_seed + i
  int alpha = 256;          // 256 = opaque overlay
  bool store_output = false;
};

// Luma-space position of picture-in-picture `index`.
void pip_position(const PipConfig& config, int index, int* x, int* y);

// XSPCL specification text.
std::string pip_xspcl(const PipConfig& config);

// Hand-written fused sequential version.
SeqResult run_pip_sequential(const PipConfig& config,
                             const sim::CacheConfig& cache = {},
                             SeqTrace* trace = nullptr);

}  // namespace apps
