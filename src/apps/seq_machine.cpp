#include "apps/seq_machine.hpp"

#include "support/check.hpp"

namespace apps {

SeqMachine::SeqMachine(const sim::CacheConfig& cache, SeqTrace* record)
    : mem_([&] {
        sim::CacheConfig c = cache;
        c.cores = 1;
        return c;
      }()),
      record_(record) {}

sim::RegionId SeqMachine::region(uint64_t bytes, const std::string& label) {
  sim::RegionId r = mem_.register_region(bytes, label);
  if (record_ != nullptr)
    record_->ops.push_back({bytes, 0, r, SeqTrace::kRegion});
  return r;
}

void SeqMachine::read(sim::RegionId r, uint64_t offset, uint64_t len) {
  cycles_ += mem_.access(0, r, offset, len, /*write=*/false);
  if (record_ != nullptr)
    record_->ops.push_back({offset, len, r, SeqTrace::kRead});
}

void SeqMachine::write(sim::RegionId r, uint64_t offset, uint64_t len) {
  cycles_ += mem_.access(0, r, offset, len, /*write=*/true);
  if (record_ != nullptr)
    record_->ops.push_back({offset, len, r, SeqTrace::kWrite});
}

SeqReplay replay_seq_trace(const SeqTrace& trace,
                           const sim::CacheConfig& cache) {
  sim::CacheConfig c = cache;
  c.cores = 1;
  sim::MemorySystem mem(c);
  SeqReplay out;
  for (const SeqTrace::Op& op : trace.ops) {
    switch (op.kind) {
      case SeqTrace::kRegion: {
        sim::RegionId r = mem.register_region(op.a, "replay");
        SUP_CHECK_MSG(r == op.region,
                      "seq trace replay: region ids diverged");
        break;
      }
      case SeqTrace::kCharge:
        out.cycles += op.a;
        break;
      case SeqTrace::kRead:
        out.cycles += mem.access(0, op.region, op.a, op.b, /*write=*/false);
        break;
      case SeqTrace::kWrite:
        out.cycles += mem.access(0, op.region, op.a, op.b, /*write=*/true);
        break;
    }
  }
  out.mem = mem.stats();
  return out;
}

}  // namespace apps
