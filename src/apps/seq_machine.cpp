#include "apps/seq_machine.hpp"

namespace apps {

SeqMachine::SeqMachine(const sim::CacheConfig& cache)
    : mem_([&] {
        sim::CacheConfig c = cache;
        c.cores = 1;
        return c;
      }()) {}

sim::RegionId SeqMachine::region(uint64_t bytes, const std::string& label) {
  return mem_.register_region(bytes, label);
}

void SeqMachine::read(sim::RegionId r, uint64_t offset, uint64_t len) {
  cycles_ += mem_.access(0, r, offset, len, /*write=*/false);
}

void SeqMachine::write(sim::RegionId r, uint64_t offset, uint64_t len) {
  cycles_ += mem_.access(0, r, offset, len, /*write=*/true);
}

}  // namespace apps
