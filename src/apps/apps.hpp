// The paper's three evaluation applications (§4), each available as:
//  - an XSPCL specification (XML text) built with *_xspcl(), runnable on
//    either Hinch executor, and
//  - a hand-written sequential baseline (run_*_sequential) that fuses
//    kernels and uses no runtime, charged on the same single-core memory
//    model (Fig. 8's comparison).
//
// All variants of one configuration produce bit-identical output video;
// the checksum fields make that checkable.
#pragma once

#include "apps/blur.hpp"
#include "apps/catalog.hpp"
#include "apps/jpip.hpp"
#include "apps/mjpeg.hpp"
#include "apps/pip.hpp"
