// Named access to the built-in application specs: "pip", "jpip", "blur",
// "mjpeg" -> XSPCL text, with a small string parameter surface.
//
// The multi-tenant server (tools/hinchd.cpp) and its load generator open
// sessions by app *name* over a line protocol; this catalog is the one
// place that maps those names (plus "key=value" parameter overrides)
// onto the typed *_xspcl() config structs, so the server, the bench and
// xspclc emit-app cannot drift apart on what "jpip" means.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace apps {

// One "key=value" override.
using CatalogParam = std::pair<std::string, std::string>;

// Names accepted by builtin_xspcl, in stable order.
const std::vector<std::string>& catalog_names();

// The XSPCL spec for `name` with `params` applied over the app's default
// config. Common keys: frames, slices, pips, factor, width, height,
// reconfigurable (0/1); "kernel" (blur), "quality" (jpip/mjpeg),
// "grouped" (jpip). Unknown names list the catalog; unknown keys or
// non-numeric values are invalid-argument errors.
support::Result<std::string> builtin_xspcl(
    const std::string& name, const std::vector<CatalogParam>& params = {});

// Parse "key=value" tokens (the server protocol / CLI form).
support::Result<std::vector<CatalogParam>> parse_catalog_params(
    const std::vector<std::string>& tokens);

}  // namespace apps
