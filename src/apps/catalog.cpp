#include "apps/catalog.hpp"

#include <cstdlib>

#include "apps/apps.hpp"
#include "support/strings.hpp"

namespace apps {
namespace {

support::Result<int> parse_int(const std::string& key,
                               const std::string& value) {
  char* end = nullptr;
  long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    return support::invalid_argument(
        support::format("catalog: %s expects an integer, got '%s'",
                        key.c_str(), value.c_str()));
  return static_cast<int>(v);
}

// Apply one override; true if `key` is known to this app.
template <typename Config>
support::Result<bool> apply_common(Config* c, const std::string& key,
                                   const std::string& value) {
  if (key == "width") {
    SUP_ASSIGN_OR_RETURN(c->width, parse_int(key, value));
  } else if (key == "height") {
    SUP_ASSIGN_OR_RETURN(c->height, parse_int(key, value));
  } else if (key == "frames") {
    SUP_ASSIGN_OR_RETURN(c->frames, parse_int(key, value));
  } else if (key == "slices") {
    SUP_ASSIGN_OR_RETURN(c->slices, parse_int(key, value));
  } else {
    return false;
  }
  return true;
}

support::Status unknown_key(const char* app, const std::string& key) {
  return support::invalid_argument(
      support::format("catalog: app '%s' has no parameter '%s'", app,
                      key.c_str()));
}

}  // namespace

const std::vector<std::string>& catalog_names() {
  static const std::vector<std::string> names = {"pip", "jpip", "blur",
                                                 "mjpeg"};
  return names;
}

support::Result<std::string> builtin_xspcl(
    const std::string& name, const std::vector<CatalogParam>& params) {
  if (name == "pip") {
    PipConfig c;
    for (const auto& [key, value] : params) {
      SUP_ASSIGN_OR_RETURN(bool common, apply_common(&c, key, value));
      if (common) continue;
      if (key == "pips") {
        SUP_ASSIGN_OR_RETURN(c.pips, parse_int(key, value));
      } else if (key == "factor") {
        SUP_ASSIGN_OR_RETURN(c.factor, parse_int(key, value));
      } else if (key == "reconfigurable") {
        SUP_ASSIGN_OR_RETURN(int v, parse_int(key, value));
        c.reconfigurable = v != 0;
        if (c.reconfigurable && c.pips < 2) c.pips = 2;
      } else {
        return unknown_key("pip", key);
      }
    }
    return pip_xspcl(c);
  }
  if (name == "jpip") {
    JpipConfig c;
    for (const auto& [key, value] : params) {
      SUP_ASSIGN_OR_RETURN(bool common, apply_common(&c, key, value));
      if (common) continue;
      if (key == "pips") {
        SUP_ASSIGN_OR_RETURN(c.pips, parse_int(key, value));
      } else if (key == "factor") {
        SUP_ASSIGN_OR_RETURN(c.factor, parse_int(key, value));
      } else if (key == "quality") {
        SUP_ASSIGN_OR_RETURN(c.quality, parse_int(key, value));
      } else if (key == "grouped") {
        SUP_ASSIGN_OR_RETURN(int v, parse_int(key, value));
        c.grouped = v != 0;
      } else if (key == "reconfigurable") {
        SUP_ASSIGN_OR_RETURN(int v, parse_int(key, value));
        c.reconfigurable = v != 0;
      } else {
        return unknown_key("jpip", key);
      }
    }
    return jpip_xspcl(c);
  }
  if (name == "blur") {
    BlurConfig c;
    for (const auto& [key, value] : params) {
      SUP_ASSIGN_OR_RETURN(bool common, apply_common(&c, key, value));
      if (common) continue;
      if (key == "kernel") {
        SUP_ASSIGN_OR_RETURN(c.kernel, parse_int(key, value));
      } else if (key == "reconfigurable") {
        SUP_ASSIGN_OR_RETURN(int v, parse_int(key, value));
        c.reconfigurable = v != 0;
      } else {
        return unknown_key("blur", key);
      }
    }
    return blur_xspcl(c);
  }
  if (name == "mjpeg") {
    MjpegDecodeConfig c;
    for (const auto& [key, value] : params) {
      SUP_ASSIGN_OR_RETURN(bool common, apply_common(&c, key, value));
      if (common) continue;
      if (key == "quality") {
        SUP_ASSIGN_OR_RETURN(c.quality, parse_int(key, value));
      } else if (key == "restart") {
        SUP_ASSIGN_OR_RETURN(c.restart, parse_int(key, value));
      } else {
        return unknown_key("mjpeg", key);
      }
    }
    return mjpeg_xspcl(c);
  }
  std::string known;
  for (const std::string& n : catalog_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return support::invalid_argument(support::format(
      "catalog: unknown app '%s' (known: %s)", name.c_str(), known.c_str()));
}

support::Result<std::vector<CatalogParam>> parse_catalog_params(
    const std::vector<std::string>& tokens) {
  std::vector<CatalogParam> params;
  params.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      return support::invalid_argument(support::format(
          "catalog: expected key=value, got '%s'", tok.c_str()));
    params.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return params;
}

}  // namespace apps
