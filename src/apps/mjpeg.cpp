#include "apps/mjpeg.hpp"

#include "components/clip_cache.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "obs/metrics.hpp"
#include "support/strings.hpp"
#include "xspcl/loader.hpp"

namespace apps {
namespace {

using support::format;

// Decode chain: entropy decode (optionally restart-parallel) followed by
// three concurrent sliced IDCTs, reassembled by the sink.
const char* kDecodeProcedure = R"(
  <procedure name="mjpeg_chain">
    <formal name="jpeg" kind="stream"/>
    <formal name="py" kind="stream"/>
    <formal name="pu" kind="stream"/>
    <formal name="pv" kind="stream"/>
    <formal name="slices" kind="value"/>
    <formal name="entropy_workers" kind="value"/>
    <body>
      <component name="dec" class="jpeg_decode">
        <param name="workers" value="$entropy_workers"/>
        <inport name="jpeg" stream="jpeg"/>
        <outport name="coeffs" stream="coeffs"/>
      </component>
      <parallel shape="task">
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_y" class="idct">
              <param name="plane" value="0"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="py"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_u" class="idct">
              <param name="plane" value="1"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="pu"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_v" class="idct">
              <param name="plane" value="2"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="pv"/>
            </component>
          </parblock></parallel>
        </parblock>
      </parallel>
    </body>
  </procedure>
)";

}  // namespace

std::string mjpeg_xspcl(const MjpegDecodeConfig& c) {
  std::string body = format(
      "      <component name=\"src\" class=\"mjpeg_source\">\n"
      "        <param name=\"seed\" value=\"%llu\"/>\n"
      "        <param name=\"width\" value=\"%d\"/>\n"
      "        <param name=\"height\" value=\"%d\"/>\n"
      "        <param name=\"frames\" value=\"%d\"/>\n"
      "        <param name=\"quality\" value=\"%d\"/>\n"
      "        <param name=\"restart\" value=\"%d\"/>\n"
      "        <outport name=\"out\" stream=\"jpeg\"/>\n"
      "      </component>\n",
      static_cast<unsigned long long>(c.seed), c.width, c.height,
      c.clip_frames, c.quality, c.restart);
  body += format(
      "      <call procedure=\"mjpeg_chain\" name=\"dec\">\n"
      "        <arg name=\"jpeg\" stream=\"jpeg\"/>\n"
      "        <arg name=\"py\" stream=\"py\"/>\n"
      "        <arg name=\"pu\" stream=\"pu\"/>\n"
      "        <arg name=\"pv\" stream=\"pv\"/>\n"
      "        <arg name=\"slices\" value=\"%d\"/>\n"
      "        <arg name=\"entropy_workers\" value=\"%d\"/>\n"
      "      </call>\n",
      c.slices, c.entropy_workers);
  body += format(
      "      <component name=\"sink\" class=\"yuv_sink\">\n"
      "        <param name=\"store\" value=\"%d\"/>\n"
      "        <inport name=\"y\" stream=\"py\"/>\n"
      "        <inport name=\"u\" stream=\"pu\"/>\n"
      "        <inport name=\"v\" stream=\"pv\"/>\n"
      "      </component>\n",
      c.store_output ? 1 : 0);

  std::string out = "<xspcl>\n  <procedure name=\"main\">\n    <body>\n";
  out += body;
  out += "    </body>\n  </procedure>\n";
  out += kDecodeProcedure;
  out += "</xspcl>\n";
  return out;
}

MjpegDecodeResult run_mjpeg_decode(const MjpegDecodeConfig& config) {
  components::register_standard_globally();
  auto prog = xspcl::build_program(mjpeg_xspcl(config),
                                   hinch::ComponentRegistry::global());
  SUP_CHECK_MSG(prog.is_ok(), prog.status().to_string().c_str());

  obs::MetricsRegistry metrics;
  hinch::RunOptions options;
  options.run.iterations = config.frames;
  options.run.window = config.window;
  options.backend = hinch::Backend::kThreads;
  options.workers = config.workers;
  options.metrics = &metrics;
  hinch::RunResult rr = hinch::run(*prog.value(), options);

  MjpegDecodeResult result;
  result.wall_seconds = rr.wall_seconds;
  result.frames_done_metric = metrics.get_int("live.frames_done");
  for (int i = 0; i < prog.value()->component_count(); ++i) {
    auto* sink = dynamic_cast<const components::SinkAccess*>(
        &prog.value()->component(i));
    if (!sink) continue;
    result.checksum = sink->sink().checksum();
    result.frames = sink->sink().frames();
    break;
  }

  // Compressed payload actually pushed through the decoder (the clip
  // loops when frames > clip_frames).
  components::ClipKey key{config.seed,        config.width,
                          config.height,      media::PixelFormat::kYuv420,
                          config.clip_frames, config.quality,
                          config.restart};
  auto clip = components::cached_mjpeg_clip(key);
  for (int t = 0; t < config.frames; ++t)
    result.compressed_bytes += clip->frame(t % clip->frame_count()).size();

  if (result.wall_seconds > 0) {
    result.frames_per_sec = result.frames / result.wall_seconds;
    result.mb_per_sec = static_cast<double>(result.compressed_bytes) /
                        (1e6 * result.wall_seconds);
  }
  return result;
}

}  // namespace apps
