#include "apps/blur.hpp"

#include "apps/seq_machine.hpp"
#include "components/clip_cache.hpp"
#include "media/kernels.hpp"
#include "support/strings.hpp"

namespace apps {
namespace {

using support::format;

// The two-phase crossdep region for one kernel size. `tmp` holds the
// horizontal phase's output; the vertical phase of slice i needs slices
// i-1, i, i+1 of it (boundary rows), which is exactly the crossdep
// pattern of Fig. 5.
std::string crossdep_xml(const BlurConfig& c, int kernel,
                         const std::string& tag, const std::string& indent) {
  std::string tmp = "tmp" + tag;
  std::string out;
  auto line = [&](const std::string& s) { out += indent + s + "\n"; };
  line(format("<parallel shape=\"crossdep\" n=\"%d\">", c.slices));
  line("  <parblock>");
  line(format("    <component name=\"hblur%s\" class=\"blur_h\">",
              tag.c_str()));
  line(format("      <param name=\"kernel\" value=\"%d\"/>", kernel));
  line("      <param name=\"plane\" value=\"0\"/>");
  line("      <inport name=\"in\" stream=\"video\"/>");
  line(format("      <outport name=\"out\" stream=\"%s\"/>", tmp.c_str()));
  line("    </component>");
  line("  </parblock>");
  line("  <parblock>");
  line(format("    <component name=\"vblur%s\" class=\"blur_v\">",
              tag.c_str()));
  line(format("      <param name=\"kernel\" value=\"%d\"/>", kernel));
  line(format("      <inport name=\"in\" stream=\"%s\"/>", tmp.c_str()));
  line("      <outport name=\"out\" stream=\"blurred\"/>");
  line("    </component>");
  line("  </parblock>");
  line("</parallel>");
  return out;
}

}  // namespace

std::string blur_xspcl(const BlurConfig& config) {
  SUP_CHECK(config.kernel == 3 || config.kernel == 5);

  std::string body;
  body += format(
      "      <component name=\"src\" class=\"video_source\">\n"
      "        <param name=\"seed\" value=\"%llu\"/>\n"
      "        <param name=\"width\" value=\"%d\"/>\n"
      "        <param name=\"height\" value=\"%d\"/>\n"
      "        <param name=\"frames\" value=\"%d\"/>\n"
      "        <outport name=\"out\" stream=\"video\"/>\n"
      "      </component>\n",
      static_cast<unsigned long long>(config.seed), config.width,
      config.height, config.clip_frames);

  if (config.reconfigurable) {
    // Blur-35 (§4.3): two options, one per kernel size, toggled together
    // by each `switch` event — exactly one is active at any time.
    body += format(
        "      <component name=\"ticker\" class=\"event_ticker\">\n"
        "        <param name=\"event\" value=\"switch\"/>\n"
        "        <param name=\"queue\" value=\"ui\"/>\n"
        "        <param name=\"period\" value=\"%d\"/>\n"
        "      </component>\n",
        config.toggle_period);
    body +=
        "      <manager name=\"mgr\" queue=\"ui\">\n"
        "        <on event=\"switch\" action=\"toggle\" option=\"k3\"/>\n"
        "        <on event=\"switch\" action=\"toggle\" option=\"k5\"/>\n"
        "        <body>\n";
    body += format("          <option name=\"k3\" enabled=\"%s\">\n",
                   config.kernel == 3 ? "true" : "false");
    body += crossdep_xml(config, 3, "3", "            ");
    body += "          </option>\n";
    body += format("          <option name=\"k5\" enabled=\"%s\">\n",
                   config.kernel == 5 ? "true" : "false");
    body += crossdep_xml(config, 5, "5", "            ");
    body += "          </option>\n";
    body +=
        "        </body>\n"
        "      </manager>\n";
  } else {
    body += crossdep_xml(config, config.kernel, "", "      ");
  }

  body += format(
      "      <component name=\"sink\" class=\"frame_sink\">\n"
      "        <param name=\"store\" value=\"%d\"/>\n"
      "        <inport name=\"in\" stream=\"blurred\"/>\n"
      "      </component>\n",
      config.store_output ? 1 : 0);

  std::string out = "<xspcl>\n  <procedure name=\"main\">\n    <body>\n";
  out += body;
  out += "    </body>\n  </procedure>\n</xspcl>\n";
  return out;
}

SeqResult run_blur_sequential(const BlurConfig& config,
                              const sim::CacheConfig& cache,
                              SeqTrace* trace) {
  SUP_CHECK(!config.reconfigurable);
  SeqMachine m(cache, trace);

  components::ClipKey key{config.seed, config.width, config.height,
                          media::PixelFormat::kYuv420, config.clip_frames, 0};
  auto clip = components::cached_raw_clip(key);

  media::FramePtr tmp = media::make_frame(media::PixelFormat::kGray,
                                          config.width, config.height);
  media::FramePtr out = media::make_frame(media::PixelFormat::kGray,
                                          config.width, config.height);
  uint64_t in_bytes = clip->frame(0)->bytes();
  uint64_t plane_bytes = tmp->bytes();
  sim::RegionId in_r = m.region(in_bytes, "video");
  sim::RegionId tmp_r = m.region(plane_bytes, "tmp");
  sim::RegionId out_r = m.region(plane_bytes, "out");

  SeqResult result;
  for (int t = 0; t < config.frames; ++t) {
    const media::FramePtr& frame = clip->frame(t % config.clip_frames);
    media::ConstPlaneView y = frame->plane(0);

    // Input: DMA the file into memory.
    m.charge(media::io_cycles(in_bytes));
    m.write(in_r, 0, in_bytes);

    // In the sequential Blur "no operations are combined" (§4.1): the
    // horizontal pass writes the full temporary plane, then the vertical
    // pass consumes it — the same structure as the XSPCL version.
    media::blur_h(y, tmp->plane(0), config.kernel, 0, y.height);
    m.charge(media::blur_cycles(config.width, config.height, config.kernel));
    m.read(in_r, frame->plane_offset(0), y.bytes());
    m.write(tmp_r, 0, plane_bytes);

    media::blur_v(tmp->plane(0), out->plane(0), config.kernel, 0, y.height);
    m.charge(media::blur_cycles(config.width, config.height, config.kernel));
    m.read(tmp_r, 0, plane_bytes);
    m.write(out_r, 0, plane_bytes);

    // Output: DMA the blurred plane out.
    m.charge(media::io_cycles(plane_bytes));
    m.read(out_r, 0, plane_bytes);
    result.checksum = media::frame_hash(*out, result.checksum);
    ++result.frames;
  }
  result.cycles = m.cycles();
  result.mem = m.mem_stats();
  return result;
}

}  // namespace apps
