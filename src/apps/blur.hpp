// Gaussian Blur (§4): a 3x3 or 5x5 Gaussian kernel applied to the
// luminance field of an uncompressed 360x288 video. The kernel is
// separated into horizontal and vertical phases run as crossdep
// parblocks (Fig. 5) with 9 data-parallel slices.
#pragma once

#include <string>

#include "apps/pip.hpp"  // SeqResult

namespace apps {

struct BlurConfig {
  int width = 360;
  int height = 288;
  int frames = 96;
  int kernel = 3;  // 3 or 5 (sigma = 1 in both, §4)
  int slices = 9;  // paper: 9
  // Reconfigurable variant (Blur-35): switches between the 3x3 and 5x5
  // kernels every `toggle_period` frames (§4.3).
  bool reconfigurable = false;
  int toggle_period = 12;
  int clip_frames = 16;
  uint64_t seed = 501;
  bool store_output = false;
};

std::string blur_xspcl(const BlurConfig& config);

SeqResult run_blur_sequential(const BlurConfig& config,
                              const sim::CacheConfig& cache = {},
                              SeqTrace* trace = nullptr);

}  // namespace apps
