// Frame-parallel MJPEG decode: the wall-clock throughput application of
// the SIMD + parallel media path. An mjpeg_source feeds a windowed
// decode chain (entropy decode -> sliced IDCT Y/U/V -> yuv_sink) run on
// the work-stealing thread executor, so successive frames decode
// concurrently (every frame of an MJPEG stream is independently coded).
//
// Three orthogonal parallelism knobs:
//   workers          host threads in the executor pool (frame-parallel
//                    via the iteration window),
//   slices           data-parallel IDCT slices inside one frame,
//   entropy_workers  restart-segment threads inside one entropy decode
//                    (needs restart > 0 at encode time).
//
// Throughput is measured in wall seconds (thread backend); the
// simulated-cycle models are not involved.
#pragma once

#include <cstdint>
#include <string>

namespace apps {

struct MjpegDecodeConfig {
  int width = 1920;
  int height = 1080;
  int frames = 32;      // iterations (clip loops if shorter)
  int clip_frames = 8;  // distinct synthetic frames in the clip
  int quality = 85;
  uint64_t seed = 501;
  int slices = 1;           // IDCT slices per plane
  int window = 4;           // concurrently in-flight frames
  int workers = 4;          // executor threads
  int entropy_workers = 1;  // restart-parallel Huffman threads
  int restart = 0;          // restart interval encoded into the clip (MCUs)
  bool store_output = false;
};

struct MjpegDecodeResult {
  double wall_seconds = 0;
  int frames = 0;
  uint64_t checksum = 0;
  uint64_t compressed_bytes = 0;  // total input payload actually decoded
  double frames_per_sec = 0;
  double mb_per_sec = 0;  // compressed megabytes per second
  int64_t frames_done_metric = 0;  // final "live.frames_done" gauge
};

// XSPCL program text for the decode graph.
std::string mjpeg_xspcl(const MjpegDecodeConfig& config);

// Build and run the program on the thread backend; aborts on malformed
// config (this is a bench/test entry point, not a library API).
MjpegDecodeResult run_mjpeg_decode(const MjpegDecodeConfig& config);

}  // namespace apps
