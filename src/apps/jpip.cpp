#include "apps/jpip.hpp"

#include "apps/seq_machine.hpp"
#include "components/clip_cache.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "support/strings.hpp"

namespace apps {
namespace {

using support::format;

std::string source_xml(const std::string& name, uint64_t seed,
                       const JpipConfig& c, const std::string& stream) {
  return format(
      "      <component name=\"%s\" class=\"mjpeg_source\">\n"
      "        <param name=\"seed\" value=\"%llu\"/>\n"
      "        <param name=\"width\" value=\"%d\"/>\n"
      "        <param name=\"height\" value=\"%d\"/>\n"
      "        <param name=\"frames\" value=\"%d\"/>\n"
      "        <param name=\"quality\" value=\"%d\"/>\n"
      "        <outport name=\"out\" stream=\"%s\"/>\n"
      "      </component>\n",
      name.c_str(), static_cast<unsigned long long>(seed), c.width, c.height,
      c.clip_frames, c.quality, stream.c_str());
}

// Decode procedure: JPEG decode followed by three concurrent sliced
// IDCTs (Fig. 7's left column), writing into the given plane streams.
const char* kDecodeProcedure = R"(
  <procedure name="jpeg_chain">
    <formal name="jpeg" kind="stream"/>
    <formal name="py" kind="stream"/>
    <formal name="pu" kind="stream"/>
    <formal name="pv" kind="stream"/>
    <formal name="slices" kind="value"/>
    <body>
      <component name="dec" class="jpeg_decode">
        <inport name="jpeg" stream="jpeg"/>
        <outport name="coeffs" stream="coeffs"/>
      </component>
      <parallel shape="task">
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_y" class="idct">
              <param name="plane" value="0"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="py"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_u" class="idct">
              <param name="plane" value="1"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="pu"/>
            </component>
          </parblock></parallel>
        </parblock>
        <parblock>
          <parallel shape="slice" n="$slices"><parblock>
            <component name="idct_v" class="idct">
              <param name="plane" value="2"/>
              <inport name="coeffs" stream="coeffs"/>
              <outport name="out" stream="pv"/>
            </component>
          </parblock></parallel>
        </parblock>
      </parallel>
    </body>
  </procedure>
)";

// The §4.1 fusion experiment: the whole decode chain (entropy decode +
// the three IDCTs) fused into ONE group, so the coefficient image is
// consumed immediately after it is produced instead of parking in a
// 5-slot stream. This is exactly the paper's proposal — and also its
// caveat: the fused task is unsliced, so "this approach reduces the
// amount of parallelism in the application".
const char* kDecodeGroupedProcedure = R"(
  <procedure name="jpeg_chain_grouped">
    <formal name="jpeg" kind="stream"/>
    <formal name="py" kind="stream"/>
    <formal name="pu" kind="stream"/>
    <formal name="pv" kind="stream"/>
    <formal name="slices" kind="value"/>
    <body>
      <group>
        <component name="dec" class="jpeg_decode">
          <inport name="jpeg" stream="jpeg"/>
          <outport name="coeffs" stream="coeffs"/>
        </component>
        <component name="idct_y" class="idct">
          <param name="plane" value="0"/>
          <inport name="coeffs" stream="coeffs"/>
          <outport name="out" stream="py"/>
        </component>
        <component name="idct_u" class="idct">
          <param name="plane" value="1"/>
          <inport name="coeffs" stream="coeffs"/>
          <outport name="out" stream="pu"/>
        </component>
        <component name="idct_v" class="idct">
          <param name="plane" value="2"/>
          <inport name="coeffs" stream="coeffs"/>
          <outport name="out" stream="pv"/>
        </component>
      </group>
    </body>
  </procedure>
)";

// Downscale+blend for one already-decoded plane (gray streams). The
// blend coordinates are in this plane's coordinate space.
const char* kPlaneScaleBlendProcedure = R"(
  <procedure name="scale_blend_plane">
    <formal name="src" kind="stream"/>
    <formal name="canvas" kind="stream"/>
    <formal name="factor" kind="value"/>
    <formal name="x" kind="value"/>
    <formal name="y" kind="value"/>
    <formal name="alpha" kind="value" default="256"/>
    <formal name="slices" kind="value"/>
    <body>
      <parallel shape="slice" n="$slices"><parblock>
        <component name="ds" class="downscale">
          <param name="factor" value="$factor"/>
          <inport name="in" stream="src"/>
          <outport name="out" stream="small"/>
        </component>
      </parblock></parallel>
      <parallel shape="slice" n="$slices"><parblock>
        <component name="bl" class="blend">
          <param name="x" value="$x"/>
          <param name="y" value="$y"/>
          <param name="alpha" value="$alpha"/>
          <inport name="fg" stream="small"/>
          <outport name="canvas" stream="canvas"/>
        </component>
      </parblock></parallel>
    </body>
  </procedure>
)";

std::string decode_call_xml(const std::string& name, const std::string& src,
                            const std::string& plane_prefix,
                            const JpipConfig& c) {
  return format(
      "      <call procedure=\"%s\" name=\"%s\">\n"
      "        <arg name=\"jpeg\" stream=\"%s\"/>\n"
      "        <arg name=\"py\" stream=\"%sy\"/>\n"
      "        <arg name=\"pu\" stream=\"%su\"/>\n"
      "        <arg name=\"pv\" stream=\"%sv\"/>\n"
      "        <arg name=\"slices\" value=\"%d\"/>\n"
      "      </call>\n",
      c.grouped ? "jpeg_chain_grouped" : "jpeg_chain", name.c_str(),
      src.c_str(), plane_prefix.c_str(), plane_prefix.c_str(),
      plane_prefix.c_str(), c.slices);
}

// Per-plane dimensions of a yuv420 frame.
void plane_size(const JpipConfig& c, int plane, int* w, int* h) {
  media::plane_dims(media::PixelFormat::kYuv420, c.width, c.height, plane, w,
                    h);
}

// The three per-plane scale+blend calls of one picture-in-picture chain,
// processed concurrently (task shape over colour fields).
std::string scale_blend_calls_xml(const std::string& name,
                                  const std::string& plane_prefix,
                                  const JpipConfig& c, int index) {
  int x = 0, y = 0;
  jpip_position(c, index, &x, &y);
  std::string out = "      <parallel shape=\"task\">\n";
  const char* planes = "yuv";
  for (int p = 0; p < 3; ++p) {
    int pw = 0, ph = 0;
    plane_size(c, p, &pw, &ph);
    int px = x * pw / c.width;
    int py = y * ph / c.height;
    out += format(
        "        <parblock>\n"
        "          <call procedure=\"%s\" name=\"%s_%c\">\n"
        "            <arg name=\"src\" stream=\"%s%c\"/>\n"
        "            <arg name=\"canvas\" stream=\"canvas%c\"/>\n"
        "            <arg name=\"factor\" value=\"%d\"/>\n"
        "            <arg name=\"x\" value=\"%d\"/>\n"
        "            <arg name=\"y\" value=\"%d\"/>\n"
        "            <arg name=\"alpha\" value=\"%d\"/>\n"
        "            <arg name=\"slices\" value=\"%d\"/>\n"
        "          </call>\n"
        "        </parblock>\n",
        "scale_blend_plane", name.c_str(), planes[p], plane_prefix.c_str(),
        planes[p], planes[p], c.factor, px, py, c.alpha, c.slices);
  }
  out += "      </parallel>\n";
  return out;
}

}  // namespace

void jpip_position(const JpipConfig& config, int index, int* x, int* y) {
  int sw = config.width / config.factor;
  int sh = config.height / config.factor;
  int col = index % 2;
  int row = index / 2;
  *x = col == 0 ? 32 : config.width - sw - 32;
  *y = 32 + row * (sh + 32);
  *x &= ~1;
  *y &= ~1;
}

std::string jpip_xspcl(const JpipConfig& config) {
  SUP_CHECK(config.pips >= 1);
  SUP_CHECK(!config.reconfigurable || config.pips >= 2);
  int static_pips = config.reconfigurable ? 1 : config.pips;

  std::string body;
  body += "      <parallel shape=\"task\">\n";
  body += "        <parblock>\n" +
          source_xml("bg_src", config.bg_seed, config, "bg_jpeg") +
          "        </parblock>\n";
  for (int i = 0; i < static_pips; ++i) {
    body += "        <parblock>\n" +
            source_xml(format("pip%d_src", i + 1),
                       config.pip_seed + static_cast<uint64_t>(i), config,
                       format("pip%d_jpeg", i + 1)) +
            "        </parblock>\n";
  }
  body += "      </parallel>\n";

  if (config.reconfigurable) {
    body += format(
        "      <component name=\"ticker\" class=\"event_ticker\">\n"
        "        <param name=\"event\" value=\"toggle2\"/>\n"
        "        <param name=\"queue\" value=\"ui\"/>\n"
        "        <param name=\"period\" value=\"%d\"/>\n"
        "      </component>\n",
        config.toggle_period);
  }

  // Background: decode straight into the canvas planes (blends write
  // over them in place, Fig. 7).
  body += decode_call_xml("bg", "bg_jpeg", "canvas", config);

  // Picture-in-picture chains.
  auto pip_chain = [&](int i) {
    std::string prefix = format("pip%d_", i + 1);
    return decode_call_xml(format("pip%ddec", i + 1),
                           format("pip%d_jpeg", i + 1), prefix, config) +
           scale_blend_calls_xml(format("pip%d", i + 1), prefix, config, i);
  };
  body += pip_chain(0);
  if (config.reconfigurable) {
    body +=
        "      <manager name=\"mgr\" queue=\"ui\">\n"
        "        <on event=\"toggle2\" action=\"toggle\" option=\"pip2\"/>\n"
        "        <body>\n"
        "          <option name=\"pip2\" enabled=\"false\">\n" +
        source_xml("pip2_src", config.pip_seed + 1, config, "pip2_jpeg") +
        pip_chain(1) +
        "          </option>\n"
        "        </body>\n"
        "      </manager>\n";
  } else {
    for (int i = 1; i < config.pips; ++i) body += pip_chain(i);
  }

  body += format(
      "      <component name=\"sink\" class=\"yuv_sink\">\n"
      "        <param name=\"store\" value=\"%d\"/>\n"
      "        <inport name=\"y\" stream=\"canvasy\"/>\n"
      "        <inport name=\"u\" stream=\"canvasu\"/>\n"
      "        <inport name=\"v\" stream=\"canvasv\"/>\n"
      "      </component>\n",
      config.store_output ? 1 : 0);

  std::string out = "<xspcl>\n  <procedure name=\"main\">\n    <body>\n";
  out += body;
  out += "    </body>\n  </procedure>\n";
  out += config.grouped ? kDecodeGroupedProcedure : kDecodeProcedure;
  out += kPlaneScaleBlendProcedure;
  out += "</xspcl>\n";
  return out;
}

SeqResult run_jpip_sequential(const JpipConfig& config,
                              const sim::CacheConfig& cache,
                              SeqTrace* trace) {
  SUP_CHECK(!config.reconfigurable);
  SeqMachine m(cache, trace);

  components::ClipKey bg_key{config.bg_seed, config.width, config.height,
                             media::PixelFormat::kYuv420, config.clip_frames,
                             config.quality};
  auto bg_clip = components::cached_mjpeg_clip(bg_key);
  std::vector<std::shared_ptr<const media::MjpegClip>> pip_clips;
  for (int i = 0; i < config.pips; ++i) {
    components::ClipKey key = bg_key;
    key.seed = config.pip_seed + static_cast<uint64_t>(i);
    pip_clips.push_back(components::cached_mjpeg_clip(key));
  }

  media::FramePtr canvas = media::make_frame(media::PixelFormat::kYuv420,
                                             config.width, config.height);
  media::FramePtr pip_frame = media::make_frame(media::PixelFormat::kYuv420,
                                                config.width, config.height);

  // Regions: bitstreams, one coefficient store (reused), decoded planes.
  sim::RegionId bits_r = m.region(1u << 22, "bitstream");
  // Coefficient store: yuv420 coefficients are 1.5x pixels, 2 B each.
  uint64_t coeff_bytes = canvas->bytes() * 2;
  sim::RegionId coeff_r = m.region(coeff_bytes, "coeffs");
  sim::RegionId canvas_r = m.region(canvas->bytes(), "canvas");
  sim::RegionId pip_r = m.region(pip_frame->bytes(), "pip_planes");

  auto decode_into = [&](const std::vector<uint8_t>& bytes,
                         media::Frame& target, sim::RegionId target_r) {
    // Input: DMA the compressed frame into memory.
    m.charge(media::io_cycles(bytes.size()));
    m.write(bits_r, 0, bytes.size());
    auto coeffs = media::jpeg::decode_to_coefficients(bytes.data(),
                                                      bytes.size());
    SUP_CHECK_MSG(coeffs.is_ok(), coeffs.status().to_string().c_str());
    const media::jpeg::CoeffImage& img = coeffs.value();
    uint64_t blocks = 0;
    uint64_t actual_coeff_bytes = 0;
    for (const auto& c : img.comps) {
      blocks += c.blocks.size();
      actual_coeff_bytes += c.blocks.size() * 128;
    }
    m.charge(media::jpeg::entropy_decode_cycles(bytes.size(), blocks));
    m.read(bits_r, 0, bytes.size());
    m.write(coeff_r, 0, actual_coeff_bytes);

    // IDCT each plane, immediately after the decode (good locality — the
    // coefficients are still warm; the componentized version interleaves
    // other work here).
    uint64_t coeff_off = 0;
    for (int p = 0; p < 3; ++p) {
      const media::jpeg::CoeffPlane& cp = img.comps[static_cast<size_t>(p)];
      media::jpeg::idct_component(cp, target.plane(p), 0, cp.blocks_h);
      m.charge(media::jpeg::idct_cycles(cp.blocks.size()));
      m.read(coeff_r, coeff_off, cp.blocks.size() * 128);
      coeff_off += cp.blocks.size() * 128;
      m.write(target_r, target.plane_offset(p), target.plane(p).bytes());
    }
  };

  SeqResult result;
  for (int t = 0; t < config.frames; ++t) {
    int ct = t % config.clip_frames;
    decode_into(bg_clip->frame(ct), *canvas, canvas_r);

    for (int i = 0; i < config.pips; ++i) {
      decode_into(pip_clips[static_cast<size_t>(i)]->frame(ct), *pip_frame,
                  pip_r);
      int x = 0, y = 0;
      jpip_position(config, i, &x, &y);
      for (int p = 0; p < 3; ++p) {
        media::ConstPlaneView src = pip_frame->plane(p);
        media::PlaneView dst = canvas->plane(p);
        int px = x * dst.width / canvas->width();
        int py = y * dst.height / canvas->height();
        media::downscale_blend(src, dst, config.factor, px, py, config.alpha,
                               0, dst.height);
        int sw = src.width / config.factor;
        int sh = src.height / config.factor;
        m.charge(media::downscale_blend_cycles(sw, sh, config.factor));
        m.read(pip_r, pip_frame->plane_offset(p), src.bytes());
        m.write(canvas_r,
                canvas->plane_offset(p) +
                    static_cast<uint64_t>(py) * static_cast<uint64_t>(dst.width),
                static_cast<uint64_t>(sh) * static_cast<uint64_t>(dst.width));
      }
    }

    // Output: DMA the composed frame out.
    m.charge(media::io_cycles(canvas->bytes()));
    m.read(canvas_r, 0, canvas->bytes());
    result.checksum = media::frame_hash(*canvas, result.checksum);
    ++result.frames;
  }
  result.cycles = m.cycles();
  result.mem = m.mem_stats();
  return result;
}

}  // namespace apps
