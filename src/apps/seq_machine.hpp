// Cost accounting for the hand-written sequential application versions.
//
// The paper's Fig. 8 compares XSPCL applications against hand-written
// sequential programs that do not use the Hinch runtime. To make the
// comparison apples-to-apples, the sequential versions run on the same
// single-core memory-hierarchy model and charge the same per-kernel
// compute costs — the only differences are exactly the ones the paper
// attributes the overhead to: kernel fusion (no intermediate stream
// buffers) and the absence of runtime scheduling work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hpp"

namespace apps {

// Recorded op stream of one sequential run (the SeqMachine analogue of
// hinch::ChargeTrace): every region registration, compute charge, and
// memory access in order. Replaying the trace against a fresh cache
// model reproduces the recorded cycles and memory statistics exactly —
// without re-executing the application's kernels — so parameter sweeps
// and bench_sim's end-to-end measurement pay only the simulator cost.
struct SeqTrace {
  enum Kind : uint8_t { kRegion, kCharge, kRead, kWrite };
  struct Op {
    uint64_t a = 0;  // kRegion: bytes; kCharge: cycles; else: offset
    uint64_t b = 0;  // kRead/kWrite: len
    sim::RegionId region = 0;
    Kind kind = kCharge;
  };
  std::vector<Op> ops;
};

// Cycle/memory result of replaying a SeqTrace (no checksum — the
// kernels do not run).
struct SeqReplay {
  uint64_t cycles = 0;
  sim::MemStats mem;
};

SeqReplay replay_seq_trace(const SeqTrace& trace,
                           const sim::CacheConfig& cache);

class SeqMachine {
 public:
  // `record` (optional) captures the op stream for replay_seq_trace; it
  // must outlive the machine.
  explicit SeqMachine(const sim::CacheConfig& cache = {},
                      SeqTrace* record = nullptr);

  // Register a buffer (frame, bitstream, coefficient store).
  sim::RegionId region(uint64_t bytes, const std::string& label);

  void charge(uint64_t cycles) {
    cycles_ += cycles;
    if (record_ != nullptr)
      record_->ops.push_back({cycles, 0, 0, SeqTrace::kCharge});
  }
  void read(sim::RegionId r, uint64_t offset, uint64_t len);
  void write(sim::RegionId r, uint64_t offset, uint64_t len);

  uint64_t cycles() const { return cycles_; }
  const sim::MemStats& mem_stats() const { return mem_.stats(); }

 private:
  sim::MemorySystem mem_;
  uint64_t cycles_ = 0;
  SeqTrace* record_ = nullptr;
};

}  // namespace apps
