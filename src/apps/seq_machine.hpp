// Cost accounting for the hand-written sequential application versions.
//
// The paper's Fig. 8 compares XSPCL applications against hand-written
// sequential programs that do not use the Hinch runtime. To make the
// comparison apples-to-apples, the sequential versions run on the same
// single-core memory-hierarchy model and charge the same per-kernel
// compute costs — the only differences are exactly the ones the paper
// attributes the overhead to: kernel fusion (no intermediate stream
// buffers) and the absence of runtime scheduling work.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cache.hpp"

namespace apps {

class SeqMachine {
 public:
  explicit SeqMachine(const sim::CacheConfig& cache = {});

  // Register a buffer (frame, bitstream, coefficient store).
  sim::RegionId region(uint64_t bytes, const std::string& label);

  void charge(uint64_t cycles) { cycles_ += cycles; }
  void read(sim::RegionId r, uint64_t offset, uint64_t len);
  void write(sim::RegionId r, uint64_t offset, uint64_t len);

  uint64_t cycles() const { return cycles_; }
  const sim::MemStats& mem_stats() const { return mem_.stats(); }

 private:
  sim::MemorySystem mem_;
  uint64_t cycles_ = 0;
};

}  // namespace apps
