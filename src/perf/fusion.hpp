// The cost-model side of the auto-group pass (§4.1): decides, per
// fusion candidate, whether fusing a stream-connected chain into one
// task beats leaving it pipelined/sliced.
//
// The decision sees the simulated cache hierarchy (sim::CacheConfig):
// fusing pays off when the linking streams' in-flight packets overflow
// the L2 — every consumer read then goes to memory — and the predicted
// miss-stall savings beat the serialization loss from giving up the
// chain's parallelism. Link footprints come from a short profiling run
// (measure_stream_slot_bytes) of the *unfused* program.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hinch/registry.hpp"
#include "media/kernels.hpp"
#include "sim/cache.hpp"
#include "sp/fuse.hpp"
#include "support/status.hpp"

namespace perf {

// What the fusion decision knows about the machine and the run.
struct FusionModel {
  sim::CacheConfig cache;  // the simulated hierarchy (§4.1's L2 regime)
  int cores = 1;           // parallelism fusion would actually forfeit
  int window = 5;          // stream depth: packets in flight per link
  // Share of the L2 the parked link packets may occupy before the model
  // calls the link thrashing. Half leaves room for the working set the
  // components themselves touch.
  double l2_share = 0.5;
  // Fallback estimate of compute cycles per byte moved across the link,
  // used to price the serialization loss of the fused chain. The scalar
  // tier's 4.0 is the default so simulated decisions stay
  // host-independent; dispatch_cycles_per_byte() derives the value for
  // a vector tier when the caller wants the host's actual throughput
  // priced in (see that function's contract).
  double cycles_per_byte = 4.0;
};

// Compute-cycles-per-byte estimate for a kernel dispatch tier: the
// scalar reference moves ~4 cycles/byte through a pixel chain; the
// vector tiers amortize the same work over wider lanes, so giving up
// their parallelism costs proportionally less. kAuto resolves through
// media::active_kernel_dispatch(). NOTE: feeding a host-derived tier
// into FusionModel makes fusion *decisions* depend on the machine the
// advisor ran on — fine for live tuning (the adaptation path), wrong
// for the committed figure benches, which must keep the scalar default.
double dispatch_cycles_per_byte(media::KernelDispatch dispatch);

// Per-stream high-water packet bytes, keyed by elaborated stream name.
using StreamBytes = std::map<std::string, uint64_t>;

// Builds the (unfused) program and simulates `iterations` frames on one
// core, then reads every stream's high-water packet size. Streams never
// written during the profile (e.g. inside disabled options) report 0,
// which makes the advisor decline their fusions — conservative.
support::Result<StreamBytes> measure_stream_slot_bytes(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    int iterations = 2);

// The pure decision, exposed for tests: `link_bytes` is the summed
// packet size of the links a fusion would internalize,
// `lost_parallelism` the slice replication the fused task gives up.
bool fusion_wins(const FusionModel& model, uint64_t link_bytes,
                 int lost_parallelism);

// Advisor over an already-measured byte map (cheap to copy per sweep
// point; the map is shared by value).
sp::FusionAdvisor make_fusion_advisor(StreamBytes bytes, FusionModel model);

// --- loop-level (fuse-kernels) decisions ------------------------------------
//
// The fuse-kernels pass elides the link's packets entirely: the fused
// loop keeps the intermediate in a strip-sized scratch, so BOTH the
// producer's store pass and the consumer's load pass over the link
// bytes disappear — priced at the cache level the parked packets
// currently live at (L2 while the window's worth fits the budget,
// memory once it overflows). Against that saving the model charges the
// fused loop's register pressure (a per-chunk constant — wider fused
// loops keep more live state, throttling the issue rate) and, as for
// auto-group, the serialization loss when the rewrite forfeits slice
// replication on a multi-core run.
bool kernel_fusion_wins(const FusionModel& model, uint64_t link_bytes,
                        int lost_parallelism);

// Advisor for PassOptions::kernel_advisor over a measured byte map.
sp::FusionAdvisor make_kernel_fusion_advisor(StreamBytes bytes,
                                             FusionModel model);

// Convenience: measure the graph, then wrap the result. Fails when the
// profiling build/run fails (unknown component class etc.).
support::Result<sp::FusionAdvisor> make_fusion_advisor(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    FusionModel model);

}  // namespace perf
