// The cost-model side of the auto-group pass (§4.1): decides, per
// fusion candidate, whether fusing a stream-connected chain into one
// task beats leaving it pipelined/sliced.
//
// The decision sees the simulated cache hierarchy (sim::CacheConfig):
// fusing pays off when the linking streams' in-flight packets overflow
// the L2 — every consumer read then goes to memory — and the predicted
// miss-stall savings beat the serialization loss from giving up the
// chain's parallelism. Link footprints come from a short profiling run
// (measure_stream_slot_bytes) of the *unfused* program.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hinch/registry.hpp"
#include "sim/cache.hpp"
#include "sp/fuse.hpp"
#include "support/status.hpp"

namespace perf {

// What the fusion decision knows about the machine and the run.
struct FusionModel {
  sim::CacheConfig cache;  // the simulated hierarchy (§4.1's L2 regime)
  int cores = 1;           // parallelism fusion would actually forfeit
  int window = 5;          // stream depth: packets in flight per link
  // Share of the L2 the parked link packets may occupy before the model
  // calls the link thrashing. Half leaves room for the working set the
  // components themselves touch.
  double l2_share = 0.5;
  // Fallback estimate of compute cycles per byte moved across the link,
  // used to price the serialization loss of the fused chain.
  double cycles_per_byte = 4.0;
};

// Per-stream high-water packet bytes, keyed by elaborated stream name.
using StreamBytes = std::map<std::string, uint64_t>;

// Builds the (unfused) program and simulates `iterations` frames on one
// core, then reads every stream's high-water packet size. Streams never
// written during the profile (e.g. inside disabled options) report 0,
// which makes the advisor decline their fusions — conservative.
support::Result<StreamBytes> measure_stream_slot_bytes(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    int iterations = 2);

// The pure decision, exposed for tests: `link_bytes` is the summed
// packet size of the links a fusion would internalize,
// `lost_parallelism` the slice replication the fused task gives up.
bool fusion_wins(const FusionModel& model, uint64_t link_bytes,
                 int lost_parallelism);

// Advisor over an already-measured byte map (cheap to copy per sweep
// point; the map is shared by value).
sp::FusionAdvisor make_fusion_advisor(StreamBytes bytes, FusionModel model);

// Convenience: measure the graph, then wrap the result. Fails when the
// profiling build/run fails (unknown component class etc.).
support::Result<sp::FusionAdvisor> make_fusion_advisor(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    FusionModel model);

}  // namespace perf
