#include "perf/predict.hpp"

#include <algorithm>

#include "sp/pass.hpp"
#include "sp/validate.hpp"

namespace perf {
namespace {

struct WorkSpan {
  double work = 0;
  double span = 0;
  double max_leaf = 0;
};

WorkSpan evaluate(const sp::Node& n, const LeafCost& cost, int slice_count,
                  bool include_disabled = false) {
  switch (n.kind()) {
    case sp::NodeKind::kLeaf: {
      double c = cost(n.leaf, slice_count);
      return {c, c, c};
    }
    case sp::NodeKind::kGroup:
    case sp::NodeKind::kSeq: {
      WorkSpan total;
      for (const sp::NodePtr& c : n.children) {
        WorkSpan child = evaluate(*c, cost, slice_count, include_disabled);
        total.work += child.work;
        total.span += child.span;
        total.max_leaf = std::max(total.max_leaf, child.max_leaf);
      }
      return total;
    }
    case sp::NodeKind::kPar: {
      if (n.shape == sp::ParShape::kTask) {
        WorkSpan total;
        for (const sp::NodePtr& c : n.children) {
          WorkSpan child = evaluate(*c, cost, slice_count, include_disabled);
          total.work += child.work;
          total.span = std::max(total.span, child.span);
          total.max_leaf = std::max(total.max_leaf, child.max_leaf);
        }
        return total;
      }
      // Slice: n identical copies, each processing 1/n of the data.
      SUP_CHECK(n.shape == sp::ParShape::kSlice);
      WorkSpan body =
          evaluate(*n.children[0], cost, n.replicas, include_disabled);
      return {body.work * n.replicas, body.span, body.max_leaf};
    }
    case sp::NodeKind::kOption:
      // Predict the enabled configuration (disabled subgraphs cost 0),
      // unless the caller asked for the worst case.
      if (!n.initially_enabled && !include_disabled) return {};
      return evaluate(*n.children[0], cost, slice_count, include_disabled);
    case sp::NodeKind::kManager:
      return evaluate(*n.children[0], cost, slice_count, include_disabled);
  }
  return {};
}

// §3.3: non-SP (crossdep) structures are predicted through their SP
// form. Both tree entry points used to hand-call sp::to_sp_form here;
// they now share the to-sp-form pipeline pass. Returns `root` itself
// when it is already SP; otherwise `storage` owns the converted tree.
const sp::Node* sp_form_of(const sp::Node& root, sp::NodePtr* storage) {
  if (sp::is_sp_form(root)) return &root;
  sp::PassOptions options = sp::PassOptions::none();
  options.to_sp_form = true;
  support::Result<sp::NodePtr> res =
      sp::make_pipeline(options).run(root.clone());
  SUP_CHECK_MSG(res.is_ok(), res.status().to_string().c_str());
  *storage = std::move(res).take();
  return storage->get();
}

Prediction finish(WorkSpan ws, int processors) {
  Prediction p;
  p.processors = std::max(1, processors);
  p.effective = p.processors;
  p.work = ws.work;
  p.span = ws.span;
  // SPC contention bound for one iteration.
  p.t_iteration = std::max(ws.span, ws.work / p.processors);
  // Steady-state pipelined interval: processors limit throughput, and a
  // component is sequential with itself across iterations.
  p.interval = std::max(ws.work / p.processors, ws.max_leaf);
  return p;
}

// Shared DAG profile evaluation: total work, critical path, heaviest
// task, from measured per-task costs.
WorkSpan profile_workspan(const hinch::Program& prog,
                          const std::vector<double>& task_cost) {
  const std::vector<hinch::Task>& tasks = prog.tasks();
  SUP_CHECK(task_cost.size() == tasks.size());
  WorkSpan ws;
  std::vector<double> dist(tasks.size(), -1);
  std::vector<int> indeg(tasks.size(), 0);
  for (const hinch::Task& t : tasks)
    indeg[static_cast<size_t>(t.id)] = static_cast<int>(t.preds.size());
  std::vector<int> queue;
  for (const hinch::Task& t : tasks) {
    ws.work += task_cost[static_cast<size_t>(t.id)];
    ws.max_leaf = std::max(ws.max_leaf, task_cost[static_cast<size_t>(t.id)]);
    if (t.preds.empty()) {
      queue.push_back(t.id);
      dist[static_cast<size_t>(t.id)] = task_cost[static_cast<size_t>(t.id)];
    }
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const hinch::Task& t = tasks[static_cast<size_t>(queue[qi])];
    for (int s : t.succs) {
      double cand = dist[static_cast<size_t>(t.id)] +
                    task_cost[static_cast<size_t>(s)];
      dist[static_cast<size_t>(s)] = std::max(dist[static_cast<size_t>(s)],
                                              cand);
      if (--indeg[static_cast<size_t>(s)] == 0) queue.push_back(s);
    }
  }
  SUP_CHECK_MSG(queue.size() == tasks.size(), "task DAG has a cycle");
  for (double d : dist) ws.span = std::max(ws.span, d);
  return ws;
}

}  // namespace

Prediction predict_from_tree(const sp::Node& root, const LeafCost& cost,
                             int processors) {
  sp::NodePtr storage;
  WorkSpan ws = evaluate(*sp_form_of(root, &storage), cost, 1);
  return finish(ws, processors);
}

Prediction predict_from_profile(const hinch::Program& prog,
                                const std::vector<double>& task_cost,
                                int processors) {
  // Longest path over the DAG. Task ids are created in a topological
  // order? Not guaranteed for crossdep wiring, so do a proper pass.
  return finish(profile_workspan(prog, task_cost), processors);
}

double effective_processors(const sim::PlatformConfig& platform) {
  if (platform.empty()) return 1.0;
  double sum = 0;
  for (double m : platform.core_multipliers()) sum += 1.0 / m;
  return sum;
}

Prediction predict_from_profile(const hinch::Program& prog,
                                const std::vector<double>& task_cost,
                                const sim::PlatformConfig& platform) {
  WorkSpan ws = profile_workspan(prog, task_cost);
  Prediction p;
  p.processors = std::max(1, platform.empty() ? 1 : platform.total_cores());
  p.effective = effective_processors(platform);
  // Critical-path terms scale with the fastest class (best-case
  // placement); the work term with the summed capacity.
  double fastest = 1.0;
  if (!platform.empty()) {
    bool first = true;
    for (double m : platform.core_multipliers()) {
      fastest = first ? m : std::min(fastest, m);
      first = false;
    }
  }
  p.work = ws.work;
  p.span = ws.span * fastest;
  p.t_iteration = std::max(p.span, ws.work / p.effective);
  p.interval = std::max(ws.work / p.effective, ws.max_leaf * fastest);
  return p;
}

double wcet_iteration(const sp::Node& root, const LeafCost& worst_cost,
                      int processors) {
  sp::NodePtr storage;
  WorkSpan ws = evaluate(*sp_form_of(root, &storage), worst_cost, 1,
                         /*include_disabled=*/true);
  return finish(ws, processors).t_iteration;
}

std::vector<double> speedup_curve(const hinch::Program& prog,
                                  const std::vector<double>& task_cost,
                                  int max_processors, int64_t iterations) {
  std::vector<double> out;
  Prediction base = predict_from_profile(prog, task_cost, 1);
  double t1 = base.total(iterations);
  for (int p = 1; p <= max_processors; ++p) {
    Prediction pred = predict_from_profile(prog, task_cost, p);
    out.push_back(t1 / pred.total(iterations));
  }
  return out;
}

}  // namespace perf
