#include "perf/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hinch/runtime.hpp"

namespace perf {

support::Result<StreamBytes> measure_stream_slot_bytes(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    int iterations) {
  // Build with the default pipeline but no fusion (we are sizing the
  // links fusion would remove).
  hinch::BuildConfig config;
  SUP_ASSIGN_OR_RETURN(std::unique_ptr<hinch::Program> prog,
                       hinch::Program::build(root, registry, config));
  hinch::RunConfig run;
  run.iterations = iterations;
  run.window = 1;  // packet sizes don't depend on pipelining
  hinch::SimParams sim;
  sim.cores = 1;
  sim.sync_costs = false;
  hinch::run_on_sim(*prog, run, sim);
  StreamBytes bytes;
  for (const std::unique_ptr<hinch::Stream>& s : prog->streams())
    bytes[s->name()] = s->max_packet_bytes();
  return bytes;
}

bool fusion_wins(const FusionModel& model, uint64_t link_bytes,
                 int lost_parallelism) {
  if (link_bytes == 0) return false;
  // The pipelined program parks `window` packets per link. While they
  // fit in the L2 budget, consumers read them back at L2 cost and
  // fusion has nothing to save.
  const double parked =
      static_cast<double>(model.window) * static_cast<double>(link_bytes);
  if (parked <= model.l2_share * static_cast<double>(model.cache.l2_bytes))
    return false;
  // Overflowed: each consumer read of the link data is a memory fetch
  // instead of an L2 hit. Fusing keeps the data cache-warm, saving the
  // L2-vs-memory latency difference per chunk, once per iteration.
  const double chunks =
      std::ceil(static_cast<double>(link_bytes) /
                static_cast<double>(model.cache.chunk_bytes));
  const double saving =
      chunks * static_cast<double>(model.cache.mem_cycles_per_chunk -
                                   model.cache.l2_cycles_per_chunk);
  // Fusing serializes the chain onto one core. Approximate the chain's
  // work by the bytes it moves across the link, and charge the fraction
  // the forfeited parallelism would have absorbed.
  const int par =
      std::max(1, std::min(model.cores, lost_parallelism));
  const double work =
      model.cycles_per_byte * static_cast<double>(link_bytes);
  const double loss = work * (1.0 - 1.0 / static_cast<double>(par));
  return saving > loss;
}

sp::FusionAdvisor make_fusion_advisor(StreamBytes bytes, FusionModel model) {
  return [bytes = std::move(bytes),
          model](const sp::FusionCandidate& cand) {
    uint64_t link_bytes = 0;
    for (const std::string& s : cand.link_streams) {
      auto it = bytes.find(s);
      if (it != bytes.end()) link_bytes += it->second;
    }
    return fusion_wins(model, link_bytes, cand.lost_replicas);
  };
}

double dispatch_cycles_per_byte(media::KernelDispatch dispatch) {
  if (dispatch == media::KernelDispatch::kAuto)
    dispatch = media::active_kernel_dispatch();
  switch (dispatch) {
    case media::KernelDispatch::kAvx2:
      return 1.0;  // 256-bit lanes: ~4x the scalar pixel throughput
    case media::KernelDispatch::kSse2:
    case media::KernelDispatch::kNeon:
      return 2.0;  // 128-bit lanes
    case media::KernelDispatch::kAuto:
    case media::KernelDispatch::kScalar:
      break;
  }
  return 4.0;  // the scalar reference — and the FusionModel default
}

namespace {

// Issue-rate penalty of a fused loop, per cache chunk of link data: the
// fused body keeps both stages' live values in registers at once, which
// costs spills/restores the separate loops do not pay. Small next to
// the L2-vs-memory delta (448 cycles/chunk on the default config), so
// it only tips marginal candidates.
constexpr double kFusedRegPressureCyclesPerChunk = 8.0;

}  // namespace

bool kernel_fusion_wins(const FusionModel& model, uint64_t link_bytes,
                        int lost_parallelism) {
  if (link_bytes == 0) return false;
  const double chunks =
      std::ceil(static_cast<double>(link_bytes) /
                static_cast<double>(model.cache.chunk_bytes));
  // Where do the parked packets live? Within the L2 budget the elided
  // store+load would have been L2 traffic; overflowed, memory traffic.
  const double parked =
      static_cast<double>(model.window) * static_cast<double>(link_bytes);
  const bool thrashing =
      parked > model.l2_share * static_cast<double>(model.cache.l2_bytes);
  const double per_chunk = static_cast<double>(
      thrashing ? model.cache.mem_cycles_per_chunk
                : model.cache.l2_cycles_per_chunk);
  // One producer store pass + one consumer load pass, both elided.
  const double saving = 2.0 * chunks * per_chunk;
  const int par = std::max(1, std::min(model.cores, lost_parallelism));
  const double loss =
      kFusedRegPressureCyclesPerChunk * chunks +
      model.cycles_per_byte * static_cast<double>(link_bytes) *
          (1.0 - 1.0 / static_cast<double>(par));
  return saving > loss;
}

sp::FusionAdvisor make_kernel_fusion_advisor(StreamBytes bytes,
                                             FusionModel model) {
  return [bytes = std::move(bytes),
          model](const sp::FusionCandidate& cand) {
    uint64_t link_bytes = 0;
    for (const std::string& s : cand.link_streams) {
      auto it = bytes.find(s);
      if (it != bytes.end()) link_bytes += it->second;
    }
    return kernel_fusion_wins(model, link_bytes, cand.lost_replicas);
  };
}

support::Result<sp::FusionAdvisor> make_fusion_advisor(
    const sp::Node& root, const hinch::ComponentRegistry& registry,
    FusionModel model) {
  SUP_ASSIGN_OR_RETURN(StreamBytes bytes,
                       measure_stream_slot_bytes(root, registry));
  return make_fusion_advisor(std::move(bytes), std::move(model));
}

}  // namespace perf
