// Performance prediction (the "Prediction" box of Fig. 1; the paper's
// companion tool is PAM-SoC [30], built on van Gemund's SPC model [28]).
//
// Two entry points:
//  - predict_from_tree: analytic evaluation of an SP graph with a
//    user-supplied leaf-cost function (works before any execution; this
//    is the §2 use case "performance prediction can be used to verify
//    that the application meets its deadlines").
//  - predict_from_profile: evaluation of a compiled Program's task DAG
//    with per-task costs measured by the simulator (profile-then-predict).
//
// Both produce the SPC contention bound: with P processors, one
// iteration takes ~ max(span, work / P); a K-deep software pipeline
// sustains one iteration per max(work / P, heaviest single task).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hinch/program.hpp"
#include "sim/platform.hpp"
#include "sp/graph.hpp"

namespace perf {

struct Prediction {
  double work = 0;        // total cycles of one iteration
  double span = 0;        // critical path of one iteration
  double t_iteration = 0; // predicted cycles/iteration, P processors
  double interval = 0;    // pipelined steady-state cycles/iteration
  int processors = 1;
  // Effective processor count the bound was evaluated at. Equals
  // `processors` for homogeneous platforms; the platform-aware overload
  // sets it to the sum of 1/cycle_multiplier over all cores.
  double effective = 1;

  // Predicted total cycles for `iterations` pipelined iterations:
  // fill the pipeline once (span), then one interval per iteration.
  double total(int64_t iterations) const {
    if (iterations <= 0) return 0;
    return span + static_cast<double>(iterations - 1) * interval;
  }
};

// Cost (cycles) of one execution of a leaf. `slice_count` is the
// data-parallel copy count the leaf runs under (1 outside slice regions):
// the cost function should return the cost of ONE copy.
using LeafCost = std::function<double(const sp::LeafSpec& leaf,
                                      int slice_count)>;

// Analytic SPC evaluation. Crossdep regions are evaluated through their
// SP form (sync point between parblocks), the transformation §3.3
// prescribes for prediction.
Prediction predict_from_tree(const sp::Node& root, const LeafCost& cost,
                             int processors);

// DAG evaluation with measured per-task costs (cycles per execution,
// e.g. SimResult::task_cycles[i] / task_runs[i]).
Prediction predict_from_profile(const hinch::Program& prog,
                                const std::vector<double>& task_cost,
                                int processors);

// Capacity of a heterogeneous platform in baseline-core equivalents: a
// core of cycle multiplier m contributes 1/m (a half-frequency core is
// half a processor under the SPC work bound). Empty platform = 1.
double effective_processors(const sim::PlatformConfig& platform);

// Platform-aware SPC evaluation: the work term is divided by the
// platform's effective processor count, while span-limited terms
// (critical path, heaviest task) are scaled by the *fastest* class's
// multiplier — the best-case assumption that critical-path work lands
// on the fastest cores (matches kFastestFirst dispatch).
Prediction predict_from_profile(const hinch::Program& prog,
                                const std::vector<double>& task_cost,
                                const sim::PlatformConfig& platform);

// Predicted speedups for 1..max_processors, normalized to P=1.
std::vector<double> speedup_curve(const hinch::Program& prog,
                                  const std::vector<double>& task_cost,
                                  int max_processors, int64_t iterations);

// Worst-case execution time of one iteration (§6 future work: "an XSPCL
// specification could be used to estimate the worst case execution time
// by recursively traversing the component graph"). Unlike
// predict_from_tree, every option is assumed ENABLED (the adversarial
// configuration), and `worst_cost` should return per-leaf worst-case
// cycles. Returns the SPC contention bound for one iteration on
// `processors` cores — compare against a deadline to verify timing (§2).
double wcet_iteration(const sp::Node& root, const LeafCost& worst_cost,
                      int processors);

}  // namespace perf
