#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "media/frame.hpp"
#include "media/kernels.hpp"
#include "media/metrics.hpp"
#include "media/mjpeg.hpp"
#include "media/synth.hpp"
#include "media/y4m.hpp"

namespace {

using media::ConstPlaneView;
using media::Frame;
using media::FramePtr;
using media::PixelFormat;

TEST(Frame, PlaneLayout420) {
  Frame f(PixelFormat::kYuv420, 64, 48);
  EXPECT_EQ(f.planes(), 3);
  EXPECT_EQ(f.plane(0).width, 64);
  EXPECT_EQ(f.plane(0).height, 48);
  EXPECT_EQ(f.plane(1).width, 32);
  EXPECT_EQ(f.plane(1).height, 24);
  EXPECT_EQ(f.bytes(), 64u * 48 + 2 * 32 * 24);
  EXPECT_EQ(f.plane_offset(0), 0u);
  EXPECT_EQ(f.plane_offset(1), 64u * 48);
  EXPECT_EQ(f.plane_offset(2), 64u * 48 + 32 * 24);
}

TEST(Frame, OddDimensions420RoundUpChroma) {
  Frame f(PixelFormat::kYuv420, 65, 47);
  EXPECT_EQ(f.plane(1).width, 33);
  EXPECT_EQ(f.plane(1).height, 24);
}

TEST(Frame, GrayAnd444) {
  Frame g(PixelFormat::kGray, 10, 10);
  EXPECT_EQ(g.planes(), 1);
  EXPECT_EQ(g.bytes(), 100u);
  Frame f(PixelFormat::kYuv444, 10, 10);
  EXPECT_EQ(f.planes(), 3);
  EXPECT_EQ(f.bytes(), 300u);
}

TEST(Frame, FillEqualsClone) {
  Frame f(PixelFormat::kYuv420, 16, 16);
  f.fill(77);
  EXPECT_EQ(f.plane(2).row(3)[5], 77);
  FramePtr c = f.clone();
  EXPECT_TRUE(f.equals(*c));
  c->plane(0).row(0)[0] = 1;
  EXPECT_FALSE(f.equals(*c));
}

TEST(Synth, DeterministicPerFrame) {
  media::SynthSpec spec{.seed = 5, .width = 64, .height = 48};
  FramePtr a = media::make_synth_frame(spec, 7);
  FramePtr b = media::make_synth_frame(spec, 7);
  EXPECT_TRUE(a->equals(*b));
  FramePtr c = media::make_synth_frame(spec, 8);
  EXPECT_FALSE(a->equals(*c));
}

TEST(Synth, SeedsProduceDifferentClips) {
  media::SynthSpec a{.seed = 1, .width = 64, .height = 48};
  media::SynthSpec b{.seed = 2, .width = 64, .height = 48};
  EXPECT_FALSE(
      media::make_synth_frame(a, 0)->equals(*media::make_synth_frame(b, 0)));
}

// --- kernels -----------------------------------------------------------------

TEST(Kernels, CopyPlaneRows) {
  Frame src(PixelFormat::kGray, 8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      src.plane(0).row(y)[x] = static_cast<uint8_t>(y * 8 + x);
  Frame dst(PixelFormat::kGray, 8, 8);
  dst.fill(0);
  media::copy_plane(src.plane(0), dst.plane(0), 2, 5);
  EXPECT_EQ(dst.plane(0).row(1)[0], 0);  // outside the band
  EXPECT_EQ(dst.plane(0).row(2)[3], src.plane(0).row(2)[3]);
  EXPECT_EQ(dst.plane(0).row(4)[7], src.plane(0).row(4)[7]);
  EXPECT_EQ(dst.plane(0).row(5)[0], 0);
}

TEST(Kernels, DownscaleAveragesBoxes) {
  Frame src(PixelFormat::kGray, 4, 4);
  // One 2x2 box of {0, 10, 20, 30} -> avg 15; others constant.
  src.fill(100);
  src.plane(0).row(0)[0] = 0;
  src.plane(0).row(0)[1] = 10;
  src.plane(0).row(1)[0] = 20;
  src.plane(0).row(1)[1] = 30;
  Frame dst(PixelFormat::kGray, 2, 2);
  media::downscale_box(src.plane(0), dst.plane(0), 2, 0, 2);
  EXPECT_EQ(dst.plane(0).row(0)[0], 15);
  EXPECT_EQ(dst.plane(0).row(0)[1], 100);
  EXPECT_EQ(dst.plane(0).row(1)[1], 100);
}

TEST(Kernels, DownscaleFactor1IsCopy) {
  media::SynthSpec spec{.seed = 3, .width = 32, .height = 32,
                        .format = PixelFormat::kGray};
  FramePtr src = media::make_synth_frame(spec, 0);
  Frame dst(PixelFormat::kGray, 32, 32);
  media::downscale_box(src->plane(0), dst.plane(0), 1, 0, 32);
  EXPECT_TRUE(src->equals(dst));
}

TEST(Kernels, BlendOpaqueOverwrites) {
  Frame fg(PixelFormat::kGray, 4, 4);
  fg.fill(200);
  Frame bg(PixelFormat::kGray, 8, 8);
  bg.fill(10);
  media::blend(fg.plane(0), bg.plane(0), 2, 3, 256, 0, 8);
  EXPECT_EQ(bg.plane(0).row(3)[2], 200);
  EXPECT_EQ(bg.plane(0).row(6)[5], 200);
  EXPECT_EQ(bg.plane(0).row(2)[2], 10);   // above the overlay
  EXPECT_EQ(bg.plane(0).row(3)[1], 10);   // left of the overlay
  EXPECT_EQ(bg.plane(0).row(7)[2], 10);   // below the overlay
}

TEST(Kernels, BlendAlphaZeroIsNoop) {
  Frame fg(PixelFormat::kGray, 4, 4);
  fg.fill(200);
  Frame bg(PixelFormat::kGray, 8, 8);
  bg.fill(10);
  media::blend(fg.plane(0), bg.plane(0), 0, 0, 0, 0, 8);
  EXPECT_EQ(bg.plane(0).row(0)[0], 10);
}

TEST(Kernels, BlendHalfAlphaMixes) {
  Frame fg(PixelFormat::kGray, 1, 1);
  fg.fill(200);
  Frame bg(PixelFormat::kGray, 1, 1);
  bg.fill(100);
  media::blend(fg.plane(0), bg.plane(0), 0, 0, 128, 0, 1);
  EXPECT_EQ(bg.plane(0).row(0)[0], 150);
}

TEST(Kernels, BlendClipsAtFrameEdges) {
  Frame fg(PixelFormat::kGray, 4, 4);
  fg.fill(200);
  Frame bg(PixelFormat::kGray, 8, 8);
  bg.fill(10);
  media::blend(fg.plane(0), bg.plane(0), 6, 6, 256, 0, 8);  // hangs off
  EXPECT_EQ(bg.plane(0).row(7)[7], 200);
  EXPECT_EQ(bg.plane(0).row(5)[5], 10);
}

// Fused downscale+blend must be pixel-identical to the separate kernels
// (the Fig. 8 comparison depends on both versions computing the same
// output).
class FusedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FusedEquivalenceTest, FusedMatchesSeparate) {
  auto [factor, alpha] = GetParam();
  media::SynthSpec spec{.seed = 17, .width = 64, .height = 48,
                        .format = PixelFormat::kGray};
  FramePtr src = media::make_synth_frame(spec, 2);
  media::SynthSpec bg_spec{.seed = 18, .width = 40, .height = 36,
                           .format = PixelFormat::kGray};
  FramePtr bg1 = media::make_synth_frame(bg_spec, 0);
  FramePtr bg2 = bg1->clone();

  // Separate.
  int sw = 64 / factor, sh = 48 / factor;
  Frame small(PixelFormat::kGray, sw, sh);
  media::downscale_box(src->plane(0), small.plane(0), factor, 0, sh);
  media::blend(small.plane(0), bg1->plane(0), 5, 7, alpha, 0, 36);
  // Fused.
  media::downscale_blend(src->plane(0), bg2->plane(0), factor, 5, 7, alpha,
                         0, 36);
  EXPECT_TRUE(bg1->equals(*bg2))
      << "factor=" << factor << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(64, 128, 256)));

TEST(Kernels, GaussianTapsSumTo256) {
  for (int k : {3, 5}) {
    const int16_t* taps = media::gaussian_taps(k);
    int sum = 0;
    for (int i = 0; i < k; ++i) sum += taps[i];
    EXPECT_EQ(sum, 256) << "kernel " << k;
  }
}

TEST(Kernels, BlurPreservesConstantImage) {
  Frame src(PixelFormat::kGray, 16, 16);
  src.fill(123);
  Frame dst(PixelFormat::kGray, 16, 16);
  for (int k : {3, 5}) {
    media::blur_h(src.plane(0), dst.plane(0), k, 0, 16);
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 16; ++x) EXPECT_EQ(dst.plane(0).row(y)[x], 123);
    media::blur_v(src.plane(0), dst.plane(0), k, 0, 16);
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 16; ++x) EXPECT_EQ(dst.plane(0).row(y)[x], 123);
  }
}

TEST(Kernels, BlurSmoothsAnEdge) {
  Frame src(PixelFormat::kGray, 16, 1);
  for (int x = 0; x < 16; ++x)
    src.plane(0).row(0)[x] = x < 8 ? 0 : 255;
  Frame dst(PixelFormat::kGray, 16, 1);
  media::blur_h(src.plane(0), dst.plane(0), 3, 0, 1);
  EXPECT_EQ(dst.plane(0).row(0)[0], 0);
  EXPECT_EQ(dst.plane(0).row(0)[15], 255);
  // The edge pixels move toward the middle.
  EXPECT_GT(dst.plane(0).row(0)[7], 0);
  EXPECT_LT(dst.plane(0).row(0)[8], 255);
  EXPECT_LT(dst.plane(0).row(0)[7], dst.plane(0).row(0)[8]);
}

// Sliced blur (any partition) equals whole-plane blur: the crossdep
// correctness property.
class SlicedBlurTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SlicedBlurTest, SlicingIsTransparent) {
  auto [kernel, slices] = GetParam();
  media::SynthSpec spec{.seed = 9, .width = 48, .height = 36,
                        .format = PixelFormat::kGray};
  FramePtr src = media::make_synth_frame(spec, 1);
  Frame whole(PixelFormat::kGray, 48, 36);
  media::blur_v(src->plane(0), whole.plane(0), kernel, 0, 36);

  Frame sliced(PixelFormat::kGray, 48, 36);
  int row = 0;
  for (int s = 0; s < slices; ++s) {
    int rows = 36 / slices + (s < 36 % slices ? 1 : 0);
    media::blur_v(src->plane(0), sliced.plane(0), kernel, row, row + rows);
    row += rows;
  }
  EXPECT_TRUE(whole.equals(sliced));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlicedBlurTest,
                         ::testing::Combine(::testing::Values(3, 5),
                                            ::testing::Values(1, 2, 5, 9,
                                                              36)));

// --- metrics -----------------------------------------------------------------

TEST(Metrics, PsnrIdenticalIsInfinite) {
  media::SynthSpec spec{.seed = 4, .width = 32, .height = 32};
  FramePtr a = media::make_synth_frame(spec, 0);
  EXPECT_TRUE(std::isinf(media::psnr(*a, *a)));
  EXPECT_EQ(media::max_abs_diff(*a, *a), 0);
}

TEST(Metrics, PsnrDropsWithNoise) {
  media::SynthSpec spec{.seed = 4, .width = 32, .height = 32};
  FramePtr a = media::make_synth_frame(spec, 0);
  FramePtr b = a->clone();
  b->plane(0).row(0)[0] = static_cast<uint8_t>(b->plane(0).row(0)[0] + 50);
  double one_pixel = media::psnr(*a, *b);
  EXPECT_GT(one_pixel, 40.0);
  for (int x = 0; x < 32; ++x)
    b->plane(0).row(1)[x] = static_cast<uint8_t>(b->plane(0).row(1)[x] + 50);
  EXPECT_LT(media::psnr(*a, *b), one_pixel);
  EXPECT_EQ(media::max_abs_diff(*a, *b), 50);
}

TEST(Metrics, FrameHashChainsAndDiscriminates) {
  media::SynthSpec spec{.seed = 4, .width = 32, .height = 32};
  FramePtr a = media::make_synth_frame(spec, 0);
  FramePtr b = media::make_synth_frame(spec, 1);
  uint64_t ha = media::frame_hash(*a);
  EXPECT_EQ(ha, media::frame_hash(*a));
  EXPECT_NE(ha, media::frame_hash(*b));
  EXPECT_NE(media::frame_hash(*b, ha), media::frame_hash(*a, ha));
}

// --- containers ----------------------------------------------------------------

TEST(RawVideo, SaveLoadRoundTrip) {
  media::SynthSpec spec{.seed = 21, .width = 48, .height = 32};
  media::RawVideo video = media::RawVideo::synthesize(spec, 5);
  std::string path = ::testing::TempDir() + "/clip.rawv";
  ASSERT_TRUE(video.save(path).is_ok());
  auto loaded = media::RawVideo::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().frame_count(), 5);
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(loaded.value().frame(i)->equals(*video.frame(i)));
}

TEST(RawVideo, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.rawv";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not a video";
  }
  EXPECT_FALSE(media::RawVideo::load(path).is_ok());
}

TEST(MjpegClip, SaveLoadRoundTrip) {
  media::SynthSpec spec{.seed = 22, .width = 48, .height = 32};
  media::RawVideo video = media::RawVideo::synthesize(spec, 3);
  auto clip = media::MjpegClip::encode(video, 80);
  ASSERT_TRUE(clip.is_ok()) << clip.status().to_string();
  std::string path = ::testing::TempDir() + "/clip.mjpg";
  ASSERT_TRUE(clip.value().save(path).is_ok());
  auto loaded = media::MjpegClip::load(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().frame_count(), 3);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(loaded.value().frame(i), clip.value().frame(i));
}

TEST(Y4m, WritesParsableHeaderAndPayload) {
  media::SynthSpec spec{.seed = 30, .width = 32, .height = 24};
  media::RawVideo video = media::RawVideo::synthesize(spec, 3);
  std::string path = ::testing::TempDir() + "/clip.y4m";
  ASSERT_TRUE(media::save_y4m(video, path, 30, 1).is_ok());
  std::ifstream f(path, std::ios::binary);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "YUV4MPEG2 W32 H24 F30:1 Ip A1:1 C420jpeg");
  std::string frame_marker;
  std::getline(f, frame_marker);
  EXPECT_EQ(frame_marker, "FRAME");
  // Payload size: header + 3 x (FRAME\n + frame bytes).
  f.seekg(0, std::ios::end);
  auto size = static_cast<size_t>(f.tellg());
  EXPECT_EQ(size, header.size() + 1 + 3 * (6 + video.frame(0)->bytes()));
}

TEST(Y4m, GrayUsesMono) {
  media::SynthSpec spec{.seed = 31, .width = 16, .height = 16,
                        .format = PixelFormat::kGray};
  media::RawVideo video = media::RawVideo::synthesize(spec, 1);
  std::string path = ::testing::TempDir() + "/mono.y4m";
  ASSERT_TRUE(media::save_y4m(video, path).is_ok());
  std::ifstream f(path, std::ios::binary);
  std::string header;
  std::getline(f, header);
  EXPECT_NE(header.find("Cmono"), std::string::npos);
}

TEST(Y4m, Rejects444AndBadRate) {
  media::RawVideo video(PixelFormat::kYuv444, 8, 8);
  video.append(media::make_frame(PixelFormat::kYuv444, 8, 8));
  EXPECT_FALSE(
      media::save_y4m(video, ::testing::TempDir() + "/x.y4m").is_ok());
  media::SynthSpec spec{.seed = 32, .width = 8, .height = 8};
  media::RawVideo ok = media::RawVideo::synthesize(spec, 1);
  EXPECT_FALSE(
      media::save_y4m(ok, ::testing::TempDir() + "/y.y4m", 0, 1).is_ok());
}

}  // namespace
