// End-to-end application tests: the XSPCL versions of PiP, JPiP and Blur
// produce bit-identical output to the hand-written sequential versions,
// on both executors, at several core counts — plus shape checks on the
// overheads the paper reports.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "perf/fusion.hpp"
#include "xspcl/loader.hpp"

namespace {

using apps::BlurConfig;
using apps::JpipConfig;
using apps::PipConfig;

// Scaled-down configs keep the suite fast; the bench binaries run the
// paper-sized ones.
PipConfig small_pip(int pips) {
  PipConfig c;
  c.width = 128;
  c.height = 96;
  c.frames = 10;
  c.pips = pips;
  c.slices = 4;
  c.clip_frames = 5;
  return c;
}

JpipConfig small_jpip(int pips) {
  JpipConfig c;
  c.width = 128;
  c.height = 96;
  c.frames = 8;
  c.pips = pips;
  c.factor = 8;
  c.slices = 4;
  c.clip_frames = 4;
  return c;
}

BlurConfig small_blur(int kernel) {
  BlurConfig c;
  c.width = 96;
  c.height = 72;
  c.frames = 10;
  c.kernel = kernel;
  c.slices = 4;
  c.clip_frames = 5;
  return c;
}

uint64_t sink_checksum(hinch::Program& prog) {
  for (int i = 0; i < prog.component_count(); ++i) {
    auto* sink =
        dynamic_cast<const components::SinkAccess*>(&prog.component(i));
    if (sink) return sink->sink().checksum();
  }
  ADD_FAILURE() << "no sink found";
  return 0;
}

std::unique_ptr<hinch::Program> build(const std::string& spec) {
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  return prog.is_ok() ? std::move(prog).take() : nullptr;
}

uint64_t run_sim_checksum(hinch::Program& prog, int64_t iterations,
                          int cores) {
  hinch::RunConfig run;
  run.iterations = iterations;
  hinch::SimParams sim;
  sim.cores = cores;
  hinch::run_on_sim(prog, run, sim);
  return sink_checksum(prog);
}

// --- PiP -------------------------------------------------------------------------

TEST(PipApp, XspclMatchesSequentialAcrossCores) {
  PipConfig config = small_pip(2);
  apps::SeqResult seq = apps::run_pip_sequential(config);
  EXPECT_EQ(seq.frames, config.frames);
  EXPECT_GT(seq.cycles, 0u);

  auto prog = build(apps::pip_xspcl(config));
  ASSERT_TRUE(prog);
  for (int cores : {1, 3}) {
    EXPECT_EQ(run_sim_checksum(*prog, config.frames, cores), seq.checksum)
        << cores << " cores";
  }
}

TEST(PipApp, ThreadBackendMatchesToo) {
  PipConfig config = small_pip(1);
  apps::SeqResult seq = apps::run_pip_sequential(config);
  auto prog = build(apps::pip_xspcl(config));
  ASSERT_TRUE(prog);
  hinch::RunConfig run;
  run.iterations = config.frames;
  hinch::run_on_threads(*prog, run, 4);
  EXPECT_EQ(sink_checksum(*prog), seq.checksum);
}

TEST(PipApp, MorePipsCostMore) {
  apps::SeqResult one = apps::run_pip_sequential(small_pip(1));
  apps::SeqResult two = apps::run_pip_sequential(small_pip(2));
  EXPECT_GT(two.cycles, one.cycles);
  EXPECT_NE(one.checksum, two.checksum);
}

TEST(PipApp, SliceCountDoesNotChangeOutput) {
  PipConfig base = small_pip(1);
  apps::SeqResult seq = apps::run_pip_sequential(base);
  for (int slices : {1, 2, 8}) {
    PipConfig c = base;
    c.slices = slices;
    auto prog = build(apps::pip_xspcl(c));
    ASSERT_TRUE(prog);
    EXPECT_EQ(run_sim_checksum(*prog, c.frames, 2), seq.checksum)
        << slices << " slices";
  }
}

TEST(PipApp, ReconfigurableVariantRunsAndToggles) {
  PipConfig config = small_pip(2);
  config.reconfigurable = true;
  config.toggle_period = 3;
  auto prog = build(apps::pip_xspcl(config));
  ASSERT_TRUE(prog);
  hinch::RunConfig run;
  run.iterations = config.frames;
  hinch::SimParams sim;
  sim.cores = 2;
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  EXPECT_GE(r.sched.reconfigurations, 2u);
  EXPECT_GT(r.sched.jobs_skipped, 0u);
}

// --- JPiP ------------------------------------------------------------------------

TEST(JpipApp, XspclMatchesSequential) {
  JpipConfig config = small_jpip(1);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  EXPECT_GT(seq.cycles, 0u);
  auto prog = build(apps::jpip_xspcl(config));
  ASSERT_TRUE(prog);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 1), seq.checksum);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 4), seq.checksum);
}

TEST(JpipApp, GroupedVariantProducesIdenticalOutput) {
  // §4.1's fusion proposal must not change semantics, only scheduling.
  JpipConfig config = small_jpip(1);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  JpipConfig grouped = config;
  grouped.grouped = true;
  auto prog = build(apps::jpip_xspcl(grouped));
  ASSERT_TRUE(prog);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 1), seq.checksum);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 3), seq.checksum);
}

TEST(JpipApp, AutoGroupedVariantProducesIdenticalOutput) {
  // The auto-group pass on the PLAIN spec: force every fusion (bypassing
  // the cost model) and the output must still be bit-identical — fusion
  // only reorders scheduling, never dataflow.
  JpipConfig config = small_jpip(1);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  components::register_standard_globally();
  hinch::Program::BuildConfig build_config;
  build_config.passes.auto_group = true;
  build_config.passes.advisor = [](const sp::FusionCandidate&) {
    return true;
  };
  auto prog = xspcl::build_program(apps::jpip_xspcl(config),
                                   hinch::ComponentRegistry::global(),
                                   build_config);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  int fused_tasks = 0;
  for (const hinch::Task& t : prog.value()->tasks())
    if (t.components.size() > 1) ++fused_tasks;
  EXPECT_GT(fused_tasks, 0);
  EXPECT_EQ(run_sim_checksum(*prog.value(), config.frames, 1), seq.checksum);
  EXPECT_EQ(run_sim_checksum(*prog.value(), config.frames, 3), seq.checksum);
}

TEST(JpipApp, CostModelAdvisorPreservesOutput) {
  // End-to-end through the measuring advisor (profiling run + cost
  // model). Whatever it decides at this scaled-down size, the checksum
  // must not move.
  JpipConfig config = small_jpip(1);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  components::register_standard_globally();
  auto graph = xspcl::load_string(apps::jpip_xspcl(config));
  ASSERT_TRUE(graph.is_ok()) << graph.status().to_string();
  perf::FusionModel model;
  model.cores = 1;
  auto advisor = perf::make_fusion_advisor(
      *graph.value(), hinch::ComponentRegistry::global(), model);
  ASSERT_TRUE(advisor.is_ok()) << advisor.status().to_string();
  hinch::Program::BuildConfig build_config;
  build_config.passes.auto_group = true;
  build_config.passes.advisor = advisor.value();
  auto prog = hinch::Program::build(
      *graph.value(), hinch::ComponentRegistry::global(), build_config);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  EXPECT_EQ(run_sim_checksum(*prog.value(), config.frames, 1), seq.checksum);
}

TEST(JpipApp, FuseKernelsVariantProducesIdenticalOutput) {
  // The loop-level fusion pass on the PLAIN spec, every candidate
  // forced: the decode chain collapses to jpeg_decode_planes and each
  // downscale->blend pair to a downscale_blend, and the output must
  // stay bit-identical to the hand-written decoder — fused loops that
  // move a pixel are bugs, not wins.
  JpipConfig config = small_jpip(1);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  components::register_standard_globally();
  hinch::Program::BuildConfig build_config;
  build_config.passes.fuse_kernels = true;
  build_config.passes.kernel_patterns = &components::standard_fusions();
  build_config.passes.kernel_advisor = [](const sp::FusionCandidate&) {
    return true;
  };
  auto prog = xspcl::build_program(apps::jpip_xspcl(config),
                                   hinch::ComponentRegistry::global(),
                                   build_config);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  // At least the decode chain and the PiP's plane pipelines must have
  // been rewritten into synthesized components ("a+b" instance names).
  int rewritten = 0;
  for (const hinch::Task& t : prog.value()->tasks())
    if (t.label.find('+') != std::string::npos) ++rewritten;
  EXPECT_GE(rewritten, 2);
  EXPECT_EQ(run_sim_checksum(*prog.value(), config.frames, 1), seq.checksum);
  EXPECT_EQ(run_sim_checksum(*prog.value(), config.frames, 3), seq.checksum);
}

TEST(JpipApp, TwoPipsMatchSequential) {
  JpipConfig config = small_jpip(2);
  apps::SeqResult seq = apps::run_jpip_sequential(config);
  auto prog = build(apps::jpip_xspcl(config));
  ASSERT_TRUE(prog);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 2), seq.checksum);
}

TEST(JpipApp, ReconfigurableVariantRuns) {
  JpipConfig config = small_jpip(2);
  config.reconfigurable = true;
  config.toggle_period = 2;
  auto prog = build(apps::jpip_xspcl(config));
  ASSERT_TRUE(prog);
  hinch::RunConfig run;
  run.iterations = config.frames;
  hinch::SimParams sim;
  sim.cores = 3;
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  EXPECT_GE(r.sched.reconfigurations, 1u);
}

// --- Blur ------------------------------------------------------------------------

class BlurKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(BlurKernelTest, XspclMatchesSequential) {
  BlurConfig config = small_blur(GetParam());
  apps::SeqResult seq = apps::run_blur_sequential(config);
  auto prog = build(apps::blur_xspcl(config));
  ASSERT_TRUE(prog);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 1), seq.checksum);
  EXPECT_EQ(run_sim_checksum(*prog, config.frames, 4), seq.checksum);

  hinch::RunConfig run;
  run.iterations = config.frames;
  hinch::run_on_threads(*prog, run, 3);
  EXPECT_EQ(sink_checksum(*prog), seq.checksum);
}

INSTANTIATE_TEST_SUITE_P(Kernels, BlurKernelTest, ::testing::Values(3, 5));

TEST(BlurApp, Kernel5CostsMoreThanKernel3) {
  apps::SeqResult k3 = apps::run_blur_sequential(small_blur(3));
  apps::SeqResult k5 = apps::run_blur_sequential(small_blur(5));
  EXPECT_GT(k5.cycles, k3.cycles);
  EXPECT_NE(k3.checksum, k5.checksum);
}

TEST(BlurApp, ReconfigurableSwitchesKernels) {
  BlurConfig config = small_blur(3);
  config.reconfigurable = true;
  config.toggle_period = 3;
  auto prog = build(apps::blur_xspcl(config));
  ASSERT_TRUE(prog);
  hinch::RunConfig run;
  run.iterations = 12;
  hinch::SimParams sim;
  sim.cores = 2;
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  EXPECT_GE(r.sched.reconfigurations, 3u);
}

// --- Fig. 8 shape: overhead ordering ---------------------------------------------

TEST(OverheadShape, XspclOverheadOrdering) {
  // XSPCL versions run the same kernels plus runtime work and extra
  // intermediate-buffer traffic, so on one core they cost at least as
  // much as the fused sequential versions; Blur (no fusion difference)
  // stays close.
  BlurConfig blur = small_blur(3);
  apps::SeqResult blur_seq = apps::run_blur_sequential(blur);
  auto blur_prog = build(apps::blur_xspcl(blur));
  ASSERT_TRUE(blur_prog);
  hinch::RunConfig run;
  run.iterations = blur.frames;
  hinch::SimParams sim;
  sim.cores = 1;
  uint64_t blur_xspcl = hinch::run_on_sim(*blur_prog, run, sim).total_cycles;
  double blur_overhead =
      static_cast<double>(blur_xspcl) / static_cast<double>(blur_seq.cycles) -
      1.0;
  EXPECT_GT(blur_overhead, -0.05);
  EXPECT_LT(blur_overhead, 0.35);
}

// --- determinism across builds ----------------------------------------------------

TEST(Apps, RebuildingProgramGivesSameCycles) {
  PipConfig config = small_pip(1);
  auto prog1 = build(apps::pip_xspcl(config));
  auto prog2 = build(apps::pip_xspcl(config));
  ASSERT_TRUE(prog1 && prog2);
  hinch::RunConfig run;
  run.iterations = config.frames;
  hinch::SimParams sim;
  sim.cores = 3;
  EXPECT_EQ(hinch::run_on_sim(*prog1, run, sim).total_cycles,
            hinch::run_on_sim(*prog2, run, sim).total_cycles);
}

}  // namespace
