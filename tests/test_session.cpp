// Session-scoped runtime tests: tenancy isolation on the shared
// work-stealing pool (bit-identical outputs, metrics/trace/region
// namespaces), admission control, cancellation/teardown ordering, the
// compiled-spec cache, and the server rebalance policy. The churn test
// (concurrent Program build + submit + cancel on a live executor) is a
// designated ThreadSanitizer workload — label "tsan", same build recipe
// as test_thread_stress.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/region_table.hpp"
#include "hinch/runtime.hpp"
#include "hinch/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cache.hpp"
#include "sp/pass.hpp"
#include "xspcl/loader.hpp"
#include "xspcl/spec_cache.hpp"

namespace {

using hinch::Program;
using hinch::SessionConfig;
using hinch::SessionExecutor;
using hinch::SessionPtr;
using hinch::SessionResult;
using hinch::SessionStatus;

std::string blur_spec(int iters, int slices = 2) {
  apps::BlurConfig c;
  c.width = 64;
  c.height = 48;
  c.frames = iters;
  c.kernel = 3;
  c.slices = slices;
  c.clip_frames = 4;
  return apps::blur_xspcl(c);
}

std::unique_ptr<Program> build(const std::string& spec) {
  components::register_standard_globally();
  auto prog = xspcl::build_program(spec, hinch::ComponentRegistry::global());
  SUP_CHECK_MSG(prog.is_ok(), prog.status().message().c_str());
  return std::move(prog).take();
}

// Chained FNV over every sink's checksum — equal iff all output video
// is equal (same reduction hinchd reports per batch).
uint64_t output_checksum(Program& prog) {
  uint64_t hash = 14695981039346656037ULL;
  for (int i = 0; i < prog.component_count(); ++i) {
    const auto* access =
        dynamic_cast<const components::SinkAccess*>(&prog.component(i));
    if (access == nullptr) continue;
    uint64_t c = access->sink().checksum();
    for (int b = 0; b < 8; ++b) {
      hash ^= (c >> (8 * b)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

SessionPtr open(SessionExecutor& exec, std::unique_ptr<Program> prog,
                int64_t iters, obs::TraceSession* trace = nullptr) {
  SessionConfig cfg;
  cfg.run.iterations = iters;
  cfg.run.window = 2;
  cfg.trace = trace;
  return exec.submit(std::move(prog), cfg);
}

// --- bit-identity across tenancy -------------------------------------------

// Two concurrent same-spec sessions must each produce output
// bit-identical to a solo single-session run: component state, streams
// and regions are per-Program, so tenancy must not leak between graphs.
TEST(SessionIsolation, ConcurrentSameSpecSessionsMatchSoloRun) {
  const std::string spec = blur_spec(24);
  const int64_t iters = 24;

  uint64_t solo;
  {
    std::unique_ptr<Program> prog = build(spec);
    SessionExecutor::Config pool;
    pool.workers = 3;
    SessionExecutor exec(pool);
    SessionConfig cfg;
    cfg.run.iterations = iters;
    cfg.run.window = 2;
    SessionPtr s = exec.submit(*prog, cfg);
    EXPECT_EQ(s->wait().status, SessionStatus::kDone);
    solo = output_checksum(*prog);
    exec.shutdown();
  }

  std::unique_ptr<Program> a = build(spec);
  std::unique_ptr<Program> b = build(spec);
  Program* pa = a.get();
  Program* pb = b.get();
  SessionExecutor::Config pool;
  pool.workers = 3;
  SessionExecutor exec(pool);
  SessionConfig cfg;
  cfg.run.iterations = iters;
  cfg.run.window = 2;
  SessionPtr sa = exec.submit(*pa, cfg);
  SessionPtr sb = exec.submit(*pb, cfg);
  EXPECT_EQ(sa->wait().status, SessionStatus::kDone);
  EXPECT_EQ(sb->wait().status, SessionStatus::kDone);
  EXPECT_EQ(output_checksum(*pa), solo);
  EXPECT_EQ(output_checksum(*pb), solo);
  exec.shutdown();
  a.reset();
  b.reset();
}

// The owning submit overload keeps the Program alive through teardown:
// jobs carry the session shared_ptr, the session holds the Program.
TEST(SessionIsolation, OwnedProgramSurvivesUntilDrain) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionPtr s = open(exec, build(blur_spec(16)), 16);
  SessionResult r = s->wait();
  EXPECT_EQ(r.status, SessionStatus::kDone);
  EXPECT_EQ(r.iterations_done, 16);
  EXPECT_GT(r.jobs, 0u);
  EXPECT_NE(output_checksum(s->program()), 0u);
}

// --- metrics namespacing ----------------------------------------------------

TEST(SessionMetrics, LiveGaugesLandInSessionNamespace) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionPtr a = open(exec, build(blur_spec(12)), 12);
  SessionPtr b = open(exec, build(blur_spec(12)), 12);
  a->wait();
  b->wait();

  obs::MetricsRegistry::Snapshot snap = exec.metrics().snapshot();
  std::string pa = "session." + std::to_string(a->id()) + ".";
  std::string pb = "session." + std::to_string(b->id()) + ".";
  EXPECT_NE(a->id(), b->id());
  EXPECT_TRUE(snap.has(pa + "live.iterations_done"));
  EXPECT_TRUE(snap.has(pb + "live.iterations_done"));
  EXPECT_EQ(snap.get_int(pa + "live.iterations_done"), 12);
  EXPECT_EQ(snap.get_int(pb + "live.iterations_done"), 12);
  // Server-level gauges live beside the per-session namespaces.
  EXPECT_TRUE(snap.has("server.sessions_completed"));
  EXPECT_EQ(snap.get_int("server.sessions_completed"), 2);

  // A session's own metrics surface resolves unprefixed names through
  // its view — components publish without knowing about tenancy.
  EXPECT_EQ(a->metrics()->get_int("live.iterations_done"), 12);
  exec.shutdown();
}

// --- per-session tracing ----------------------------------------------------

TEST(SessionTrace, EachSessionGetsItsOwnTrace) {
  obs::TraceSession ta;
  obs::TraceSession tb;
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionPtr a = open(exec, build(blur_spec(12)), 12, &ta);
  SessionPtr b = open(exec, build(blur_spec(12)), 12, &tb);
  SessionResult ra = a->wait();
  SessionResult rb = b->wait();
  exec.shutdown();
  EXPECT_EQ(ra.status, SessionStatus::kDone);
  EXPECT_EQ(rb.status, SessionStatus::kDone);
  // Every executed job emits at least one span into its own session's
  // trace — and only there (lane counts are per-trace, so cross-talk
  // would overshoot one and undershoot the other). With the
  // instrumentation compiled out (HINCH_TRACING=OFF) the executor never
  // touches the trace at all — no lanes, no events.
  if (obs::kTraceCompiledIn) {
    EXPECT_GE(ta.emitted(), ra.jobs);
    EXPECT_GE(tb.emitted(), rb.jobs);
    EXPECT_EQ(ta.lanes(), 2);
    EXPECT_EQ(tb.lanes(), 2);
  }
}

// --- frame-completion probe -------------------------------------------------

TEST(SessionFrames, RecordFrameTimesStampsEveryIteration) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionConfig cfg;
  cfg.run.iterations = 20;
  cfg.run.window = 2;
  cfg.record_frame_times = true;
  SessionPtr s = exec.submit(build(blur_spec(20)), cfg);
  SessionResult r = s->wait();
  exec.shutdown();
  ASSERT_EQ(r.status, SessionStatus::kDone);
  ASSERT_EQ(r.frame_done_ns.size(), 20u);
  for (size_t i = 1; i < r.frame_done_ns.size(); ++i)
    EXPECT_GE(r.frame_done_ns[i], r.frame_done_ns[i - 1]);
}

// --- admission control ------------------------------------------------------

TEST(SessionAdmission, CapQueuesFifoAndCompletesAll) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  pool.max_active_sessions = 1;
  SessionExecutor exec(pool);
  std::vector<SessionPtr> sessions;
  for (int i = 0; i < 4; ++i)
    sessions.push_back(open(exec, build(blur_spec(8)), 8));
  for (SessionPtr& s : sessions)
    EXPECT_EQ(s->wait().status, SessionStatus::kDone);
  EXPECT_EQ(exec.peak_active_sessions(), 1);
  EXPECT_EQ(exec.sessions_completed(), 4u);
  exec.shutdown();
}

TEST(SessionAdmission, RaisingTheCapStartsQueuedSessions) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  pool.max_active_sessions = 1;
  SessionExecutor exec(pool);
  // A long session holds the only slot; two short ones queue.
  SessionPtr slow = open(exec, build(blur_spec(400)), 400);
  SessionPtr q1 = open(exec, build(blur_spec(4)), 4);
  SessionPtr q2 = open(exec, build(blur_spec(4)), 4);
  EXPECT_GE(exec.queued_sessions(), 1);
  exec.set_active_cap(3);
  EXPECT_EQ(q1->wait().status, SessionStatus::kDone);
  EXPECT_EQ(q2->wait().status, SessionStatus::kDone);
  exec.cancel(slow);
  SessionResult r = slow->wait();
  EXPECT_TRUE(r.status == SessionStatus::kCancelled ||
              r.status == SessionStatus::kDone);
  EXPECT_GE(exec.peak_active_sessions(), 2);
  exec.shutdown();
}

// --- cancellation / teardown ------------------------------------------------

TEST(SessionCancel, CancelDrainsOneSessionWithoutStoppingThePool) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionPtr victim = open(exec, build(blur_spec(4000)), 4000);
  exec.cancel(victim);
  SessionResult r = victim->wait();
  EXPECT_TRUE(r.status == SessionStatus::kCancelled ||
              r.status == SessionStatus::kDone);
  EXPECT_LE(r.iterations_done, 4000);

  // The pool is still live: a fresh session runs to completion.
  SessionPtr after = open(exec, build(blur_spec(8)), 8);
  EXPECT_EQ(after->wait().status, SessionStatus::kDone);
  exec.shutdown();
}

TEST(SessionCancel, CancellingAQueuedSessionFinalizesImmediately) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  pool.max_active_sessions = 1;
  SessionExecutor exec(pool);
  SessionPtr slow = open(exec, build(blur_spec(400)), 400);
  SessionPtr queued = open(exec, build(blur_spec(8)), 8);
  exec.cancel(queued);
  SessionResult r = queued->wait();
  EXPECT_EQ(r.status, SessionStatus::kCancelled);
  EXPECT_EQ(r.iterations_done, 0);
  EXPECT_EQ(r.jobs, 0u);
  exec.cancel(slow);
  slow->wait();
  exec.shutdown();
}

TEST(SessionCancel, ShutdownCancelsEverything) {
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  SessionPtr a = open(exec, build(blur_spec(4000)), 4000);
  SessionPtr b = open(exec, build(blur_spec(4000)), 4000);
  exec.shutdown();
  EXPECT_TRUE(a->finished());
  EXPECT_TRUE(b->finished());
}

// --- RegionTable session namespace ------------------------------------------

TEST(SessionRegions, LabelsCarryTheSessionPrefix) {
  sim::CacheConfig mem_config;
  sim::MemorySystem mem(mem_config);
  hinch::RegionTable solo(&mem, 4);
  EXPECT_EQ(solo.session_id(), -1);
  hinch::RegionTable tenant(&mem, 4, /*session_id=*/7);
  EXPECT_EQ(tenant.session_id(), 7);
  // Same (stream, iter) in two tables must not alias: the session
  // prefix keeps their region labels distinct.
  sim::RegionId a = solo.stream_region(0, 0, 64);
  sim::RegionId b = tenant.stream_region(0, 0, 64);
  EXPECT_NE(a, b);
}

TEST(SessionRegionsDeathTest, StreamIndexBeyond32BitsIsRejected) {
  sim::CacheConfig mem_config;
  sim::MemorySystem mem(mem_config);
  hinch::RegionTable table(&mem, 4);
  // 2^32 - 1 packs; 2^32 would shift into the slot half and alias
  // stream index mod 2^32 — the guard must trip, not wrap.
  EXPECT_EQ(table.stream_key((int64_t{1} << 32) - 1, 0) >> 32,
            (uint64_t{1} << 32) - 1);
  EXPECT_DEATH(table.stream_key(int64_t{1} << 32, 0),
               "stream index exceeds");
  EXPECT_DEATH(table.stream_key(-1, 0), "negative stream index");
}

// --- compiled-spec cache ----------------------------------------------------

TEST(SpecCacheTest, HitsShareTheCompiledGraph) {
  components::register_standard_globally();
  xspcl::SpecCache cache;
  const std::string spec = blur_spec(8);
  sp::PassOptions passes;
  auto a = cache.load(spec, passes);
  ASSERT_TRUE(a.is_ok());
  auto b = cache.load(spec, passes);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());  // same cached node
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SpecCacheTest, DistinctPassPipelinesAreDistinctEntries) {
  components::register_standard_globally();
  xspcl::SpecCache cache;
  const std::string spec = blur_spec(8);
  sp::PassOptions defaults;
  sp::PassOptions grouped = defaults;
  grouped.auto_group = true;
  ASSERT_TRUE(cache.load(spec, defaults).is_ok());
  ASSERT_TRUE(cache.load(spec, grouped).is_ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  // A salt separates entries that would otherwise collide (advisors
  // carry identity the fingerprint cannot see).
  ASSERT_TRUE(cache.load(spec, defaults, "tenant-a").is_ok());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SpecCacheTest, BuildProgramInstantiatesFreshState) {
  components::register_standard_globally();
  xspcl::SpecCache cache;
  const std::string spec = blur_spec(12);
  auto a = cache.build_program(spec, hinch::ComponentRegistry::global());
  ASSERT_TRUE(a.is_ok());
  auto b = cache.build_program(spec, hinch::ComponentRegistry::global());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Both cache-built programs run independently and agree with a
  // cold-built one bit for bit.
  std::unique_ptr<Program> cold = build(spec);
  SessionExecutor::Config pool;
  pool.workers = 2;
  SessionExecutor exec(pool);
  std::unique_ptr<Program> pa = std::move(a).take();
  std::unique_ptr<Program> pb = std::move(b).take();
  Program* rawa = pa.get();
  Program* rawb = pb.get();
  SessionConfig cfg;
  cfg.run.iterations = 12;
  SessionPtr sa = exec.submit(std::move(pa), cfg);
  SessionPtr sb = exec.submit(std::move(pb), cfg);
  SessionPtr sc = exec.submit(*cold, cfg);
  sa->wait();
  sb->wait();
  sc->wait();
  EXPECT_EQ(output_checksum(*rawa), output_checksum(*cold));
  EXPECT_EQ(output_checksum(*rawb), output_checksum(*cold));
  exec.shutdown();
}

TEST(SpecCacheTest, BadSpecReportsTheLoaderError) {
  xspcl::SpecCache cache;
  auto r = cache.load("<not a spec", sp::PassOptions());
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(cache.size(), 0u);
}

// --- pass fingerprint -------------------------------------------------------

TEST(PassFingerprint, DistinguishesPipelinesAndIgnoresVerify) {
  sp::PassOptions none = sp::PassOptions::none();
  EXPECT_EQ(sp::pass_fingerprint(none), "none");

  sp::PassOptions defaults;
  sp::PassOptions grouped = defaults;
  grouped.auto_group = true;
  EXPECT_NE(sp::pass_fingerprint(defaults), sp::pass_fingerprint(grouped));

  sp::PassOptions verifying = defaults;
  verifying.verify = !verifying.verify;
  EXPECT_EQ(sp::pass_fingerprint(defaults),
            sp::pass_fingerprint(verifying));
}

// --- server rebalance policy ------------------------------------------------

obs::MetricsRegistry::Snapshot backlog_snapshot(double pending_a,
                                                double pending_b,
                                                int queued) {
  obs::MetricsRegistry reg;
  reg.set("session.0.live.pending_jobs", static_cast<int64_t>(pending_a));
  reg.set("session.1.live.pending_jobs", static_cast<int64_t>(pending_b));
  reg.set("server.active_sessions", 2);
  reg.set("server.queued_sessions", queued);
  return reg.snapshot();
}

TEST(ServerRebalanceTest, HysteresisShrinksOnSustainedOverloadOnly) {
  components::ServerRebalanceConfig cfg;
  cfg.high_backlog_per_worker = 8.0;
  cfg.low_backlog_per_worker = 2.0;
  cfg.hold_polls = 2;
  cfg.min_active = 1;
  cfg.max_active = 4;
  components::ServerRebalance rb(cfg);

  obs::MetricsRegistry::Snapshot hot = backlog_snapshot(40, 40, 1);
  EXPECT_EQ(components::ServerRebalance::aggregate_backlog(hot), 80.0);
  // One hot poll: debounced, no change (cap 2 on 4 workers = 20/worker).
  EXPECT_EQ(rb.recommend(hot, /*workers=*/4, /*current_cap=*/2), 2);
  // Second consecutive hot poll: shrink by one.
  EXPECT_EQ(rb.recommend(hot, 4, 2), 1);
  // Never below min_active.
  EXPECT_EQ(rb.recommend(hot, 4, 1), 1);
  EXPECT_EQ(rb.recommend(hot, 4, 1), 1);
}

TEST(ServerRebalanceTest, GrowsOnlyWithQueuedDemand) {
  components::ServerRebalanceConfig cfg;
  cfg.hold_polls = 2;
  cfg.max_active = 4;
  components::ServerRebalance rb(cfg);

  obs::MetricsRegistry::Snapshot idle_no_queue = backlog_snapshot(0, 0, 0);
  EXPECT_EQ(rb.recommend(idle_no_queue, 4, 2), 2);
  EXPECT_EQ(rb.recommend(idle_no_queue, 4, 2), 2);  // no demand, no grow

  components::ServerRebalance rb2(cfg);
  obs::MetricsRegistry::Snapshot idle_queued = backlog_snapshot(0, 0, 3);
  EXPECT_EQ(rb2.recommend(idle_queued, 4, 2), 2);  // debounce
  EXPECT_EQ(rb2.recommend(idle_queued, 4, 2), 3);  // grow by one
  // In-band polls reset the streaks.
  components::ServerRebalance rb3(cfg);
  obs::MetricsRegistry::Snapshot mid = backlog_snapshot(8, 8, 3);
  EXPECT_EQ(rb3.recommend(idle_queued, 4, 2), 2);
  EXPECT_EQ(rb3.recommend(mid, 4, 2), 2);
  EXPECT_EQ(rb3.recommend(idle_queued, 4, 2), 2);  // streak restarted
}

// --- churn stress (the tsan workload) ---------------------------------------

// Concurrent Program build + submit + cancel + wait against one live
// executor: the cross-thread seams (admission, cancellation flags,
// pending accounting, finalize) all run under contention. Iteration
// counts are small so the test stays fast; the point is overlap, not
// volume.
TEST(SessionChurnStress, ConcurrentBuildSubmitCancelTeardown) {
  const std::string spec = blur_spec(16);
  components::register_standard_globally();
  SessionExecutor::Config pool;
  pool.workers = 3;
  pool.max_active_sessions = 3;
  SessionExecutor exec(pool);
  xspcl::SpecCache cache;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> done{0};
  std::atomic<int> cancelled{0};
  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto prog =
            cache.build_program(spec, hinch::ComponentRegistry::global());
        ASSERT_TRUE(prog.is_ok());
        SessionConfig cfg;
        cfg.run.iterations = 16;
        cfg.name = "churn-" + std::to_string(t);
        SessionPtr s = exec.submit(std::move(prog).take(), cfg);
        if ((t + i) % 2 == 0) exec.cancel(s);
        SessionResult r = s->wait();
        if (r.status == SessionStatus::kDone) {
          EXPECT_EQ(r.iterations_done, 16);
          done.fetch_add(1);
        } else {
          ASSERT_EQ(r.status, SessionStatus::kCancelled);
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : churners) t.join();
  EXPECT_EQ(done.load() + cancelled.load(), kThreads * kPerThread);
  EXPECT_EQ(exec.sessions_completed(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(cache.stats().hits, 1u);
  exec.shutdown();
  EXPECT_EQ(exec.active_sessions(), 0);
  EXPECT_EQ(exec.queued_sessions(), 0);
}

}  // namespace
