// The feedback loop end to end: executors publish "live.*" gauges into
// a MetricsRegistry, the policy component polls them and drives the
// manager/option protocol. Pins the loop's determinism under the sim
// executor (same spec + load step => identical reconfiguration
// sequence) and its thread-safety under the thread executor (live
// snapshot() polling from a foreign thread mid-run — a designated
// ThreadSanitizer workload, see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "xspcl/loader.hpp"

namespace {

// The adapt loop at test scale (specs/adapt_small.xml's shape): a
// stepped load, a policy watching the sim's cycles-per-iteration gauge,
// and a manager that sheds/restores an optional stage.
constexpr char kAdaptSpec[] = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="load" class="var_load">
        <param name="cycles" value="2000"/>
        <param name="step_at" value="40"/>
        <param name="step_cycles" value="12000"/>
        <param name="restore_at" value="120"/>
      </component>
      <component name="watchdog" class="policy">
        <param name="queue" value="ctl"/>
        <param name="rules"
               value="live.cycles_per_iter:9000:6000:overload:calm"/>
        <param name="hold" value="4"/>
        <param name="warmup" value="16"/>
      </component>
      <manager name="mgr" queue="ctl">
        <on event="overload" action="disable" option="hq"/>
        <on event="calm" action="enable" option="hq"/>
        <body>
          <option name="hq" enabled="true">
            <component name="hq_stage" class="var_load">
              <param name="cycles" value="3000"/>
            </component>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";

// Thread-executor variant: wall-clock cycle gauges do not exist there,
// so the policy watches the monotonic live.iterations_done gauge — the
// crossing is guaranteed, the exact iteration it fires on is not.
constexpr char kThreadAdaptSpec[] = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="load" class="var_load">
        <param name="cycles" value="100"/>
      </component>
      <component name="watchdog" class="policy">
        <param name="queue" value="ctl"/>
        <param name="rules"
               value="live.iterations_done:40:-1:overload:calm"/>
      </component>
      <manager name="mgr" queue="ctl">
        <on event="overload" action="disable" option="hq"/>
        <on event="calm" action="enable" option="hq"/>
        <body>
          <option name="hq" enabled="true">
            <component name="hq_stage" class="var_load">
              <param name="cycles" value="100"/>
            </component>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";

std::unique_ptr<hinch::Program> build(const char* spec) {
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  return prog.is_ok() ? std::move(prog).take() : nullptr;
}

struct SimAdaptRun {
  hinch::SimResult result;
  std::vector<uint64_t> reconfig_ts;  // splice markers, in trace order
  std::string live_text;              // final live gauge dump
};

SimAdaptRun run_sim_adapt() {
  SimAdaptRun out;
  auto prog = build(kAdaptSpec);
  obs::TraceSession session;
  obs::MetricsRegistry live;
  hinch::RunConfig run;
  run.iterations = 160;
  hinch::SimParams sim;
  sim.cores = 1;
  sim.trace = &session;
  sim.metrics = &live;
  out.result = hinch::run_on_sim(*prog, run, sim);
  for (int lane = 0; lane < session.lanes(); ++lane) {
    for (const obs::TraceEvent& ev : session.recorder(lane)->collect()) {
      if (ev.kind == obs::EventKind::kInstant &&
          ev.cat == obs::Category::kReconfig)
        out.reconfig_ts.push_back(ev.ts);
    }
  }
  out.live_text = live.to_text();
  return out;
}

TEST(PolicyLoop, SimReactsToLoadStepDeterministically) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "built with HINCH_TRACING=OFF";
  SimAdaptRun a = run_sim_adapt();
  SimAdaptRun b = run_sim_adapt();
  // The loop reacted: one shed at the step, one restore after it.
  EXPECT_EQ(a.result.sched.reconfigurations, 2u);
  ASSERT_EQ(a.reconfig_ts.size(), 2u);
  // Identical spec + load step => identical reconfiguration sequence,
  // cycle counts, and final live gauges.
  EXPECT_EQ(a.result.total_cycles, b.result.total_cycles);
  EXPECT_EQ(a.result.sched.reconfigurations,
            b.result.sched.reconfigurations);
  EXPECT_EQ(a.reconfig_ts, b.reconfig_ts);
  EXPECT_EQ(a.live_text, b.live_text);
}

TEST(PolicyLoop, InertWithoutLiveRegistry) {
  auto prog = build(kAdaptSpec);
  hinch::RunConfig run;
  run.iterations = 160;
  hinch::SimParams sim;
  sim.cores = 1;  // no metrics registry attached
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  EXPECT_EQ(r.sched.reconfigurations, 0u);
}

TEST(PolicyLoop, PublicationNeverAltersSimCycles) {
  auto prog_plain = build(kAdaptSpec);
  hinch::RunConfig run;
  run.iterations = 30;  // inside the warmup: the policy stays passive
  hinch::SimParams sim;
  sim.cores = 2;
  hinch::SimResult plain = hinch::run_on_sim(*prog_plain, run, sim);
  auto prog_live = build(kAdaptSpec);
  obs::MetricsRegistry live;
  sim.metrics = &live;
  hinch::SimResult with_live = hinch::run_on_sim(*prog_live, run, sim);
  EXPECT_EQ(plain.total_cycles, with_live.total_cycles);
  EXPECT_EQ(plain.jobs, with_live.jobs);
  EXPECT_GT(live.get_int("live.cycles"), 0);
}

TEST(PolicyLoop, ThreadRunWithConcurrentSnapshotPolling) {
  auto prog = build(kThreadAdaptSpec);
  obs::MetricsRegistry live;
  hinch::RunConfig run;
  run.iterations = 100;
  // A foreign observer thread hammers the live-poll API for the whole
  // run — snapshot(), lookups, and the text dump must all be race-free
  // against the workers' publication (the tsan workload).
  std::atomic<bool> done{false};
  std::atomic<uint64_t> polls{0};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      obs::MetricsRegistry::Snapshot snap = live.snapshot();
      if (snap.has("live.iterations_done")) {
        EXPECT_GE(snap.get_int("live.iterations_done"), 0);
      }
      (void)live.to_text();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  hinch::ThreadResult r = hinch::run_on_threads(*prog, run, /*workers=*/4,
                                                /*trace=*/nullptr, &live);
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(), 0u);
  // The policy crossed the iterations_done threshold and shed the
  // optional stage exactly once (the gauge is monotonic, so the rule
  // can never flip back).
  EXPECT_EQ(r.sched.reconfigurations, 1u);
  EXPECT_EQ(live.get_int("live.iterations_done"), 100);
}

}  // namespace
