// Property tests over randomly generated SP programs (seeded, so every
// failure is reproducible): for any valid graph the scheduler must run
// every non-optional component exactly once per iteration, never
// deadlock, be deterministic on the simulator, and agree with the
// thread executor.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "hinch/runtime.hpp"
#include "sp/graph.hpp"
#include "sp/validate.hpp"
#include "support/rng.hpp"

namespace {

using hinch::Program;
using hinch::RunConfig;
using hinch::SimParams;
using sp::NodePtr;
using sp::ParShape;

// --- a component with a configurable port signature -------------------------------

struct RunBoard {
  std::mutex mutex;
  std::map<std::string, int> runs;
  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    runs.clear();
  }
};

RunBoard& board() {
  static RunBoard b;
  return b;
}

// Reads `ins` integer packets, writes their sum (plus the iteration) to
// `outs` outputs, charges `cost` cycles.
class RandomComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig& config) {
    int ins = static_cast<int>(hinch::param_int_or(config.params, "ins", 0));
    int outs =
        static_cast<int>(hinch::param_int_or(config.params, "outs", 0));
    int64_t cost = hinch::param_int_or(config.params, "cost", 100);
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::make_unique<RandomComponent>(ins, outs, cost));
  }

  RandomComponent(int ins, int outs, int64_t cost) : cost_(cost) {
    for (int i = 0; i < ins; ++i)
      declare_input("in" + std::to_string(i));
    for (int i = 0; i < outs; ++i)
      declare_output("out" + std::to_string(i));
  }

  void run(hinch::ExecContext& ctx) override {
    ctx.charge_compute(static_cast<uint64_t>(cost_));
    int64_t acc = ctx.iteration();
    for (int i = 0; i < input_count(); ++i) acc += *ctx.read(i).get<int64_t>();
    for (int i = 0; i < output_count(); ++i)
      ctx.write(i, hinch::Packet::of(std::make_shared<int64_t>(acc),
                                     sizeof(int64_t)));
    std::lock_guard<std::mutex> lock(board().mutex);
    ++board().runs[instance()];
  }

 private:
  int64_t cost_;
};

// --- random program generation ------------------------------------------------------

struct Gen {
  support::SplitMix64 rng;
  int next_id = 0;
  int next_stream = 0;
  int components = 0;
  std::vector<std::string> optional_instances;

  explicit Gen(uint64_t seed) : rng(seed) {}

  std::string fresh_stream() {
    return "s" + std::to_string(next_stream++);
  }

  sp::LeafSpec make_leaf(std::vector<std::string>* available,
                         bool force_source) {
    sp::LeafSpec spec;
    spec.instance = "c" + std::to_string(next_id++);
    spec.klass = "random";
    int ins = 0;
    if (!force_source && !available->empty())
      ins = static_cast<int>(rng.next_below(
          std::min<uint64_t>(available->size(), 3) + 1));
    int outs = 1 + static_cast<int>(rng.next_below(2));
    spec.params.push_back({"ins", std::to_string(ins)});
    spec.params.push_back({"outs", std::to_string(outs)});
    spec.params.push_back(
        {"cost", std::to_string(50 + rng.next_below(500))});
    for (int i = 0; i < ins; ++i) {
      const std::string& s =
          (*available)[rng.next_below(available->size())];
      spec.inputs.push_back({"in" + std::to_string(i), s});
    }
    std::vector<std::string> produced;
    for (int i = 0; i < outs; ++i) {
      std::string s = fresh_stream();
      spec.outputs.push_back({"out" + std::to_string(i), s});
      produced.push_back(s);
    }
    for (std::string& s : produced) available->push_back(std::move(s));
    ++components;
    return spec;
  }

  // Generates a subtree; `available` carries the streams visible to
  // sequential successors.
  NodePtr gen(int depth, std::vector<std::string>* available,
              bool inside_manager, bool inside_option) {
    uint64_t pick = rng.next_below(100);
    if (depth <= 0 || pick < 35) {
      NodePtr leaf = sp::make_leaf(make_leaf(available, available->empty()));
      if (inside_option)
        optional_instances.push_back(leaf->leaf.instance);
      return leaf;
    }
    if (pick < 55) {  // seq of 2-4
      int n = 2 + static_cast<int>(rng.next_below(3));
      std::vector<NodePtr> steps;
      for (int i = 0; i < n; ++i)
        steps.push_back(
            gen(depth - 1, available, inside_manager, inside_option));
      return sp::make_seq(std::move(steps));
    }
    if (pick < 70) {  // task par: blocks see only pre-existing streams
      int n = 2 + static_cast<int>(rng.next_below(2));
      std::vector<std::string> before = *available;
      std::vector<NodePtr> blocks;
      for (int i = 0; i < n; ++i) {
        std::vector<std::string> local = before;
        blocks.push_back(
            gen(depth - 1, &local, inside_manager, inside_option));
        for (size_t k = before.size(); k < local.size(); ++k)
          available->push_back(local[k]);
      }
      return sp::make_par(ParShape::kTask, 1, std::move(blocks));
    }
    if (pick < 80) {  // slice region around one component
      int replicas = 2 + static_cast<int>(rng.next_below(4));
      std::vector<NodePtr> one;
      NodePtr leaf = sp::make_leaf(make_leaf(available, available->empty()));
      if (inside_option)
        optional_instances.push_back(leaf->leaf.instance);
      one.push_back(std::move(leaf));
      return sp::make_par(ParShape::kSlice, replicas, std::move(one));
    }
    if (pick < 88) {  // crossdep: two single-leaf phases
      int replicas = 2 + static_cast<int>(rng.next_below(4));
      std::vector<NodePtr> blocks;
      NodePtr h = sp::make_leaf(make_leaf(available, available->empty()));
      NodePtr v = sp::make_leaf(make_leaf(available, false));
      if (inside_option) {
        optional_instances.push_back(h->leaf.instance);
        optional_instances.push_back(v->leaf.instance);
      }
      blocks.push_back(std::move(h));
      blocks.push_back(std::move(v));
      return sp::make_par(ParShape::kCrossDep, replicas, std::move(blocks));
    }
    if (pick < 94 && !inside_manager) {  // manager with an option
      std::string mgr = "m" + std::to_string(next_id++);
      std::string opt = "o" + std::to_string(next_id++);
      bool enabled = rng.next_below(2) == 0;
      // Streams produced inside the option must not escape: when the
      // option is disabled nobody writes them, so an outside reader
      // would see an empty slot.
      std::vector<std::string> local = *available;
      NodePtr body = gen(depth - 1, &local, /*inside_manager=*/true,
                         /*inside_option=*/true);
      NodePtr option = sp::make_option(opt, enabled, std::move(body));
      return sp::make_manager(
          mgr, "q" + std::to_string(next_id),
          {sp::EventRule{"never", sp::EventAction::kToggle, opt, ""}},
          std::move(option));
    }
    // group of 2-3 fused components
    int n = 2 + static_cast<int>(rng.next_below(2));
    std::vector<NodePtr> comps;
    for (int i = 0; i < n; ++i) {
      NodePtr leaf = sp::make_leaf(make_leaf(available, false));
      if (inside_option)
        optional_instances.push_back(leaf->leaf.instance);
      comps.push_back(std::move(leaf));
    }
    return sp::make_group(std::move(comps));
  }
};

struct GeneratedProgram {
  NodePtr graph;
  int components = 0;
  std::vector<std::string> optional;
};

GeneratedProgram generate(uint64_t seed) {
  Gen gen(seed);
  std::vector<std::string> available;
  std::vector<NodePtr> steps;
  int sections = 2 + static_cast<int>(gen.rng.next_below(3));
  for (int i = 0; i < sections; ++i)
    steps.push_back(gen.gen(3, &available, false, false));
  GeneratedProgram out;
  out.graph = sp::make_seq(std::move(steps));
  out.components = gen.components;
  out.optional = std::move(gen.optional_instances);
  return out;
}

hinch::ComponentRegistry& registry() {
  static hinch::ComponentRegistry reg = [] {
    hinch::ComponentRegistry r;
    r.register_class("random", &RandomComponent::create);
    return r;
  }();
  return reg;
}

// --- the properties ------------------------------------------------------------------

class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, SimRunsEveryComponentEveryIteration) {
  GeneratedProgram g = generate(GetParam());
  ASSERT_TRUE(sp::validate(*g.graph).is_ok())
      << sp::validate(*g.graph).to_string();
  auto prog = Program::build(*g.graph, registry());
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();

  const int64_t iterations = 7;
  for (int cores : {1, 3}) {
    board().clear();
    RunConfig run;
    run.iterations = iterations;
    SimParams sim;
    sim.cores = cores;
    hinch::SimResult r = hinch::run_on_sim(*prog.value(), run, sim);
    EXPECT_GT(r.total_cycles, 0u);

    std::set<std::string> optional(g.optional.begin(), g.optional.end());
    std::lock_guard<std::mutex> lock(board().mutex);
    int ran_components = 0;
    for (const auto& [instance, runs] : board().runs) {
      ran_components += runs > 0 ? 1 : 0;
      // Replicated instances carry a suffix; check the base name too.
      std::string base = instance.substr(0, instance.find('#'));
      if (optional.count(base) || optional.count(instance)) {
        EXPECT_LE(runs, iterations) << instance;
      } else {
        EXPECT_EQ(runs, iterations) << instance << " seed=" << GetParam();
      }
    }
    EXPECT_GT(ran_components, 0);
  }
}

TEST_P(RandomGraphTest, SimIsDeterministic) {
  GeneratedProgram g = generate(GetParam());
  auto prog = Program::build(*g.graph, registry());
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 5;
  SimParams sim;
  sim.cores = 4;
  board().clear();
  uint64_t a = hinch::run_on_sim(*prog.value(), run, sim).total_cycles;
  board().clear();
  uint64_t b = hinch::run_on_sim(*prog.value(), run, sim).total_cycles;
  EXPECT_EQ(a, b) << "seed=" << GetParam();
}

TEST_P(RandomGraphTest, ThreadExecutorAgreesWithSim) {
  GeneratedProgram g = generate(GetParam());
  auto prog = Program::build(*g.graph, registry());
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 6;

  board().clear();
  hinch::run_on_sim(*prog.value(), run, SimParams{});
  std::map<std::string, int> sim_runs;
  {
    std::lock_guard<std::mutex> lock(board().mutex);
    sim_runs = board().runs;
  }

  board().clear();
  hinch::run_on_threads(*prog.value(), run, 4);
  std::lock_guard<std::mutex> lock(board().mutex);
  EXPECT_EQ(board().runs, sim_runs) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range<uint64_t>(1, 25));

// A heavier soak: a larger random program, more iterations, more
// workers, narrow window — the configurations most likely to expose
// scheduler races or slot-reuse bugs.
TEST(RandomGraphStress, ManyIterationsManyWorkers) {
  GeneratedProgram g = generate(4242);
  auto prog = Program::build(*g.graph, registry(),
                             hinch::BuildConfig{.stream_depth = 3});
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  for (int workers : {2, 8}) {
    for (int window : {1, 3}) {
      board().clear();
      RunConfig run;
      run.iterations = 60;
      run.window = window;
      hinch::ThreadResult r =
          hinch::run_on_threads(*prog.value(), run, workers);
      EXPECT_GT(r.jobs, 0u);
      std::set<std::string> optional(g.optional.begin(), g.optional.end());
      std::lock_guard<std::mutex> lock(board().mutex);
      for (const auto& [instance, runs] : board().runs) {
        std::string base = instance.substr(0, instance.find('#'));
        if (!optional.count(base) && !optional.count(instance))
          EXPECT_EQ(runs, 60) << instance;
      }
    }
  }
}

}  // namespace
