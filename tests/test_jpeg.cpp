#include <gtest/gtest.h>

#include "media/jpeg.hpp"
#include "media/jpeg_common.hpp"
#include "media/metrics.hpp"
#include "media/synth.hpp"

namespace {

using media::Frame;
using media::FramePtr;
using media::PixelFormat;

std::vector<uint8_t> must_encode(const Frame& f, int quality) {
  auto r = media::jpeg::encode(f, quality);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : std::vector<uint8_t>{};
}

FramePtr must_decode(const std::vector<uint8_t>& bytes) {
  auto r = media::jpeg::decode(bytes.data(), bytes.size());
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(JpegTables, ZigZagIsAPermutation) {
  bool seen[64] = {};
  for (int i = 0; i < 64; ++i) {
    ASSERT_LT(media::jpeg::kZigZag[i], 64);
    EXPECT_FALSE(seen[media::jpeg::kZigZag[i]]);
    seen[media::jpeg::kZigZag[i]] = true;
  }
}

TEST(JpegTables, QuantScaling) {
  auto q50 = media::jpeg::scale_quant_table(media::jpeg::kStdLumaQuant, 50);
  EXPECT_EQ(q50[0], media::jpeg::kStdLumaQuant[0]);
  auto q100 = media::jpeg::scale_quant_table(media::jpeg::kStdLumaQuant, 100);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(q100[static_cast<size_t>(i)], 1);
  auto q10 = media::jpeg::scale_quant_table(media::jpeg::kStdLumaQuant, 10);
  for (int i = 0; i < 64; ++i)
    EXPECT_GE(q10[static_cast<size_t>(i)], q50[static_cast<size_t>(i)]);
}

TEST(JpegTables, HuffmanEncodeDecodeTablesAgree) {
  // Every symbol in the spec must round-trip through the canonical
  // decode table.
  for (auto spec : {media::jpeg::std_dc_luma(), media::jpeg::std_ac_luma(),
                    media::jpeg::std_dc_chroma(),
                    media::jpeg::std_ac_chroma()}) {
    auto enc = media::jpeg::build_encode_table(spec);
    auto dec =
        media::jpeg::build_decode_table(spec.bits, spec.values,
                                        spec.value_count);
    ASSERT_TRUE(dec.valid);
    int present = 0;
    for (int sym = 0; sym < 256; ++sym)
      if (enc.size[static_cast<size_t>(sym)]) ++present;
    EXPECT_EQ(present, spec.value_count);
  }
}

class JpegRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(JpegRoundTripTest, EncodeDecodePsnr) {
  auto [width, height, quality, seed] = GetParam();
  media::SynthSpec spec{.seed = static_cast<uint64_t>(seed), .width = width,
                        .height = height, .format = PixelFormat::kYuv420};
  FramePtr original = media::make_synth_frame(spec, 3);
  std::vector<uint8_t> bytes = must_encode(*original, quality);
  ASSERT_FALSE(bytes.empty());
  // Tiny images are header-dominated; only expect compression when the
  // payload is big enough to amortize the tables.
  if (original->bytes() > 4096)
    EXPECT_LT(bytes.size(), original->bytes());
  FramePtr decoded = must_decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->width(), width);
  EXPECT_EQ(decoded->height(), height);
  EXPECT_EQ(decoded->format(), PixelFormat::kYuv420);
  double quality_db = media::psnr(*original, *decoded);
  double min_db = quality >= 90 ? 38.0 : quality >= 75 ? 33.0 : 27.0;
  EXPECT_GT(quality_db, min_db)
      << width << "x" << height << " q=" << quality;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JpegRoundTripTest,
    ::testing::Values(std::make_tuple(64, 48, 75, 1),
                      std::make_tuple(128, 96, 90, 2),
                      std::make_tuple(96, 96, 50, 3),
                      std::make_tuple(176, 144, 75, 4),
                      std::make_tuple(320, 240, 95, 5),
                      // Non-multiple-of-16 dimensions exercise edge MCUs.
                      std::make_tuple(70, 50, 75, 6),
                      std::make_tuple(17, 9, 85, 7)));

TEST(Jpeg, GrayRoundTrip) {
  media::SynthSpec spec{.seed = 11, .width = 80, .height = 64,
                        .format = PixelFormat::kGray};
  FramePtr original = media::make_synth_frame(spec, 0);
  std::vector<uint8_t> bytes = must_encode(*original, 85);
  FramePtr decoded = must_decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->format(), PixelFormat::kGray);
  EXPECT_GT(media::psnr(*original, *decoded), 35.0);
}

TEST(Jpeg, HigherQualityIsLargerAndBetter) {
  media::SynthSpec spec{.seed = 12, .width = 96, .height = 80};
  FramePtr original = media::make_synth_frame(spec, 0);
  auto low = must_encode(*original, 30);
  auto high = must_encode(*original, 95);
  EXPECT_GT(high.size(), low.size());
  EXPECT_GT(media::psnr(*original, *must_decode(high)),
            media::psnr(*original, *must_decode(low)));
}

TEST(Jpeg, TwoPhaseDecodeMatchesFullDecode) {
  media::SynthSpec spec{.seed = 13, .width = 112, .height = 80};
  FramePtr original = media::make_synth_frame(spec, 2);
  auto bytes = must_encode(*original, 75);

  FramePtr full = must_decode(bytes);
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.data(),
                                                    bytes.size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffImage& img = coeffs.value();
  ASSERT_EQ(img.comps.size(), 3u);

  FramePtr assembled = media::make_frame(img.format, img.width, img.height);
  for (int p = 0; p < 3; ++p) {
    const media::jpeg::CoeffPlane& cp = img.comps[static_cast<size_t>(p)];
    media::jpeg::idct_component(cp, assembled->plane(p), 0, cp.blocks_h);
  }
  EXPECT_TRUE(full->equals(*assembled));
}

TEST(Jpeg, SlicedIdctMatchesWhole) {
  media::SynthSpec spec{.seed = 14, .width = 128, .height = 96};
  FramePtr original = media::make_synth_frame(spec, 1);
  auto bytes = must_encode(*original, 80);
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.data(),
                                                    bytes.size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];

  media::FramePtr whole = media::make_frame(PixelFormat::kGray, y.width,
                                            y.height);
  media::jpeg::idct_component(y, whole->plane(0), 0, y.blocks_h);

  media::FramePtr sliced = media::make_frame(PixelFormat::kGray, y.width,
                                             y.height);
  for (int b = 0; b < y.blocks_h; ++b)
    media::jpeg::idct_component(y, sliced->plane(0), b, b + 1);
  EXPECT_TRUE(whole->equals(*sliced));
}

TEST(Jpeg, CoeffImageStats) {
  media::SynthSpec spec{.seed = 15, .width = 64, .height = 64};
  FramePtr original = media::make_synth_frame(spec, 0);
  auto bytes = must_encode(*original, 75);
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.data(),
                                                    bytes.size());
  ASSERT_TRUE(coeffs.is_ok());
  EXPECT_EQ(coeffs.value().compressed_bytes, bytes.size());
  EXPECT_GT(coeffs.value().nonzero_coeffs, 0u);
  EXPECT_EQ(coeffs.value().comps[0].blocks_w, 8);
  EXPECT_EQ(coeffs.value().comps[0].blocks_h, 8);
  EXPECT_EQ(coeffs.value().comps[1].blocks_w, 4);
}

TEST(Jpeg, EncodeRejectsBadInput) {
  Frame f(PixelFormat::kYuv444, 16, 16);
  EXPECT_FALSE(media::jpeg::encode(f, 75).is_ok());  // 444 unsupported
  Frame g(PixelFormat::kGray, 16, 16);
  EXPECT_FALSE(media::jpeg::encode(g, 0).is_ok());
  EXPECT_FALSE(media::jpeg::encode(g, 101).is_ok());
}

struct Corruption {
  const char* name;
  size_t offset;
  uint8_t value;
};

TEST(Jpeg, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage(100, 0x55);
  EXPECT_FALSE(media::jpeg::decode(garbage.data(), garbage.size()).is_ok());
  EXPECT_FALSE(media::jpeg::decode(garbage.data(), 0).is_ok());
}

TEST(Jpeg, DecodeRejectsTruncation) {
  media::SynthSpec spec{.seed = 16, .width = 48, .height = 48};
  auto bytes = must_encode(*media::make_synth_frame(spec, 0), 75);
  // Chop the stream at several points; none may crash, all must error.
  for (size_t len : {size_t{2}, size_t{10}, bytes.size() / 2}) {
    auto r = media::jpeg::decode(bytes.data(), len);
    EXPECT_FALSE(r.is_ok()) << "len=" << len;
  }
}

TEST(Jpeg, DecodeIsDeterministic) {
  media::SynthSpec spec{.seed = 17, .width = 80, .height = 48};
  auto bytes = must_encode(*media::make_synth_frame(spec, 0), 60);
  FramePtr a = must_decode(bytes);
  FramePtr b = must_decode(bytes);
  EXPECT_TRUE(a->equals(*b));
}

class RestartIntervalTest : public ::testing::TestWithParam<int> {};

TEST_P(RestartIntervalTest, RoundTripsWithRestartMarkers) {
  media::SynthSpec spec{.seed = 23, .width = 96, .height = 80};
  FramePtr original = media::make_synth_frame(spec, 1);
  auto plain = media::jpeg::encode(*original, 75, 0);
  auto with_rst = media::jpeg::encode(*original, 75, GetParam());
  ASSERT_TRUE(plain.is_ok());
  ASSERT_TRUE(with_rst.is_ok());
  // Restart markers add bytes but must not change the decoded pixels.
  EXPECT_GT(with_rst.value().size(), plain.value().size());
  FramePtr a = must_decode(plain.value());
  FramePtr b = must_decode(with_rst.value());
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(a->equals(*b));
}

INSTANTIATE_TEST_SUITE_P(Intervals, RestartIntervalTest,
                         ::testing::Values(1, 3, 8, 30));

TEST(Jpeg, GrayRestartRoundTrip) {
  media::SynthSpec spec{.seed = 24, .width = 60, .height = 44,
                        .format = PixelFormat::kGray};
  FramePtr original = media::make_synth_frame(spec, 0);
  auto bytes = media::jpeg::encode(*original, 80, 5);
  ASSERT_TRUE(bytes.is_ok());
  FramePtr decoded = must_decode(bytes.value());
  ASSERT_TRUE(decoded);
  EXPECT_GT(media::psnr(*original, *decoded), 33.0);
}

TEST(Jpeg, MissingRestartMarkerRejected) {
  media::SynthSpec spec{.seed = 25, .width = 64, .height = 48};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 0), 75, 2);
  ASSERT_TRUE(bytes.is_ok());
  // Find the first RST marker (0xFF 0xD0..0xD7 after the scan start) and
  // corrupt it; the decoder must fail cleanly, not crash.
  std::vector<uint8_t> corrupt = bytes.value();
  for (size_t i = 2; i + 1 < corrupt.size(); ++i) {
    if (corrupt[i] == 0xff && corrupt[i + 1] >= 0xd0 &&
        corrupt[i + 1] <= 0xd7) {
      corrupt[i + 1] = 0x3f;  // no longer a marker
      break;
    }
  }
  EXPECT_FALSE(media::jpeg::decode(corrupt.data(), corrupt.size()).is_ok());
}

void expect_coeffs_identical(const media::jpeg::CoeffImage& a,
                             const media::jpeg::CoeffImage& b) {
  ASSERT_EQ(a.comps.size(), b.comps.size());
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.nonzero_coeffs, b.nonzero_coeffs);
  EXPECT_EQ(a.compressed_bytes, b.compressed_bytes);
  for (size_t c = 0; c < a.comps.size(); ++c) {
    ASSERT_EQ(a.comps[c].blocks.size(), b.comps[c].blocks.size());
    for (size_t blk = 0; blk < a.comps[c].blocks.size(); ++blk)
      ASSERT_EQ(a.comps[c].blocks[blk], b.comps[c].blocks[blk])
          << "comp " << c << " block " << blk;
  }
}

class ParallelRestartTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRestartTest, MatchesSerialBitExactly) {
  media::SynthSpec spec{.seed = 31, .width = 128, .height = 96};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 2), 60,
                                   GetParam());
  ASSERT_TRUE(bytes.is_ok());
  auto serial = media::jpeg::decode_to_coefficients(
      bytes.value().data(), bytes.value().size(),
      media::jpeg::HuffmanImpl::kLookupTable, 1);
  ASSERT_TRUE(serial.is_ok());
  for (int workers : {2, 3, 4, 16}) {
    auto parallel = media::jpeg::decode_to_coefficients(
        bytes.value().data(), bytes.value().size(),
        media::jpeg::HuffmanImpl::kLookupTable, workers);
    ASSERT_TRUE(parallel.is_ok()) << parallel.status().to_string();
    expect_coeffs_identical(serial.value(), parallel.value());
  }
}

// Interval 1 maxes the segment count; larger intervals leave a ragged
// final segment; 96 = exactly two segments of a 48-MCU scan... pattern
// varies per interval.
INSTANTIATE_TEST_SUITE_P(Intervals, ParallelRestartTest,
                         ::testing::Values(1, 2, 5, 7, 48, 96));

TEST(Jpeg, ParallelDecodeWithoutRestartsFallsBackToSerial) {
  media::SynthSpec spec{.seed = 32, .width = 96, .height = 64};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 1), 75, 0);
  ASSERT_TRUE(bytes.is_ok());
  auto serial = media::jpeg::decode_to_coefficients(
      bytes.value().data(), bytes.value().size(),
      media::jpeg::HuffmanImpl::kLookupTable, 1);
  auto parallel = media::jpeg::decode_to_coefficients(
      bytes.value().data(), bytes.value().size(),
      media::jpeg::HuffmanImpl::kLookupTable, 8);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_TRUE(parallel.is_ok());
  expect_coeffs_identical(serial.value(), parallel.value());
}

TEST(Jpeg, ParallelDecodeTruncationErrorsMatchSerial) {
  // Truncating the stream at every byte prefix must yield the same
  // ok/error outcome — and the same error text — from the parallel
  // decoder as from the serial one, because malformed restart layouts
  // fall back to the serial path.
  media::SynthSpec spec{.seed = 33, .width = 64, .height = 48};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 0), 60, 3);
  ASSERT_TRUE(bytes.is_ok());
  const std::vector<uint8_t>& full = bytes.value();
  for (size_t len = 0; len <= full.size(); ++len) {
    media::jpeg::CoeffImage a, b;
    support::Status sa = media::jpeg::decode_to_coefficients_into(
        full.data(), len, &a, media::jpeg::HuffmanImpl::kLookupTable, 1);
    support::Status sb = media::jpeg::decode_to_coefficients_into(
        full.data(), len, &b, media::jpeg::HuffmanImpl::kLookupTable, 4);
    EXPECT_EQ(sa.is_ok(), sb.is_ok()) << "len=" << len;
    EXPECT_EQ(sa.to_string(), sb.to_string()) << "len=" << len;
    if (sa.is_ok()) expect_coeffs_identical(a, b);
  }
}

TEST(Jpeg, ParallelDecodeCorruptedRestartMarkerMatchesSerial) {
  media::SynthSpec spec{.seed = 34, .width = 96, .height = 80};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 1), 70, 2);
  ASSERT_TRUE(bytes.is_ok());
  std::vector<uint8_t> corrupt = bytes.value();
  int seen = 0;
  for (size_t i = 2; i + 1 < corrupt.size(); ++i) {
    if (corrupt[i] == 0xff && corrupt[i + 1] >= 0xd0 &&
        corrupt[i + 1] <= 0xd7 && ++seen == 2) {
      corrupt[i + 1] = 0xd6;  // out-of-sequence restart index
      break;
    }
  }
  ASSERT_EQ(seen, 2);
  media::jpeg::CoeffImage a, b;
  support::Status sa = media::jpeg::decode_to_coefficients_into(
      corrupt.data(), corrupt.size(), &a,
      media::jpeg::HuffmanImpl::kLookupTable, 1);
  support::Status sb = media::jpeg::decode_to_coefficients_into(
      corrupt.data(), corrupt.size(), &b,
      media::jpeg::HuffmanImpl::kLookupTable, 4);
  EXPECT_FALSE(sa.is_ok());
  EXPECT_EQ(sa.to_string(), sb.to_string());
}

TEST(Jpeg, EncodeRejectsBadRestartInterval) {
  media::SynthSpec spec{.seed = 26, .width = 32, .height = 32};
  FramePtr f = media::make_synth_frame(spec, 0);
  EXPECT_FALSE(media::jpeg::encode(*f, 75, -1).is_ok());
  EXPECT_FALSE(media::jpeg::encode(*f, 75, 70000).is_ok());
}

TEST(Jpeg, CostHelpersScale) {
  EXPECT_GT(media::jpeg::entropy_decode_cycles(2000, 100),
            media::jpeg::entropy_decode_cycles(1000, 100));
  EXPECT_EQ(media::jpeg::idct_cycles(10), 10 * media::jpeg::idct_cycles(1));
}

}  // namespace
